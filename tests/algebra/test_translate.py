"""Figure 9 (SQL → SQL-RA), Definition 1, χ, and the converse RA → SQL."""

import random

import pytest

from repro.algebra.ast import is_pure
from repro.algebra.semantics import RASemantics
from repro.algebra.translate import (
    ChiRenaming,
    check_data_manipulation,
    is_data_manipulation,
    ra_to_sql,
    sql_to_ra,
    to_sqlra,
)
from repro.algebra.typecheck import signature
from repro.core import NULL, Database, Schema, validation_schema
from repro.core.errors import NotDataManipulationError
from repro.core.values import FullName
from repro.generator import DM_CONFIG, DataFillerConfig, QueryGenerator, fill_database
from repro.semantics import SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {"R": [(1, 2), (1, 2), (NULL, 3)], "S": [(1,), (NULL,)]},
    )


# -- Definition 1 --------------------------------------------------------------


def test_star_not_data_manipulation(schema):
    q = annotate("SELECT * FROM R", schema)
    with pytest.raises(NotDataManipulationError):
        check_data_manipulation(q, schema)


def test_constants_not_data_manipulation(schema):
    q = annotate("SELECT 1 FROM R", schema)
    with pytest.raises(NotDataManipulationError):
        check_data_manipulation(q, schema)


def test_repeated_output_names_rejected(schema):
    q = annotate("SELECT R.A AS X, R.B AS X FROM R", schema)
    with pytest.raises(NotDataManipulationError):
        check_data_manipulation(q, schema)


def test_outer_reference_in_select_rejected(schema):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT R.B FROM S)", schema
    )
    with pytest.raises(NotDataManipulationError):
        check_data_manipulation(q, schema)


def test_duplicated_column_with_distinct_names_allowed(schema):
    """Definition 1 does not forbid duplicating columns, only output names:
    SELECT R.A AS A1, R.A AS A2 FROM R is fine."""
    q = annotate("SELECT R.A AS A1, R.A AS A2 FROM R", schema)
    check_data_manipulation(q, schema)
    assert is_data_manipulation(q, schema)


def test_nested_queries_checked(schema):
    q = annotate(
        "SELECT R.A FROM R WHERE R.A IN (SELECT 1 FROM S)", schema
    )
    assert not is_data_manipulation(q, schema)


# -- χ -----------------------------------------------------------------------------


def test_chi_injective_and_avoids_forbidden(schema):
    q = annotate("SELECT R.A AS X FROM R", schema)
    chi = ChiRenaming(q, schema)
    names = {chi(FullName("T", a)) for T in "RST" for a in "AB" for T in [T]}
    full_names = [FullName(t, a) for t in "RST" for a in "AB"]
    outputs = [chi(f) for f in full_names]
    assert len(set(outputs)) == len(full_names)  # injective
    assert "X" not in outputs  # avoids N_Q
    assert "A" not in outputs and "B" not in outputs  # avoids N_base


def test_chi_stable(schema):
    q = annotate("SELECT R.A AS X FROM R", schema)
    chi = ChiRenaming(q, schema)
    assert chi(FullName("R", "A")) == chi(FullName("R", "A"))


# -- Figure 9 -----------------------------------------------------------------------


def translated_equals_sql(text, schema, db):
    q = annotate(text, schema)
    expected = SqlSemantics(schema).run(q, db)
    ra = RASemantics(schema)
    sqlra = to_sqlra(q, schema)
    assert ra.evaluate(sqlra, db).same_as(expected), f"SQL-RA: {text}"
    pure = sql_to_ra(q, schema)
    assert is_pure(pure), text
    assert ra.evaluate(pure, db).same_as(expected), f"pure RA: {text}"
    return pure


def test_plain_select(schema, db):
    translated_equals_sql("SELECT R.A, R.B FROM R", schema, db)


def test_select_with_where(schema, db):
    translated_equals_sql("SELECT R.A FROM R WHERE R.B = 2", schema, db)


def test_select_distinct(schema, db):
    translated_equals_sql("SELECT DISTINCT R.A FROM R", schema, db)


def test_product_of_tables(schema, db):
    translated_equals_sql("SELECT R.A, S.A AS A2 FROM R, S", schema, db)


def test_same_table_twice(schema, db):
    translated_equals_sql(
        "SELECT X.A AS XA, Y.A AS YA FROM R AS X, R AS Y WHERE X.B = Y.B",
        schema,
        db,
    )


def test_duplicated_column_projection(schema, db):
    """Duplication of columns exercises the π^α_β syntactic-join encoding,
    including on NULL values."""
    translated_equals_sql("SELECT R.A AS A1, R.A AS A2 FROM R", schema, db)


def test_subquery_in_from(schema, db):
    translated_equals_sql(
        "SELECT U.X FROM (SELECT R.B AS X FROM R) AS U WHERE U.X = 2",
        schema,
        db,
    )


def test_is_null_condition(schema, db):
    translated_equals_sql("SELECT R.B FROM R WHERE R.A IS NULL", schema, db)


def test_uncorrelated_in(schema, db):
    translated_equals_sql(
        "SELECT R.B FROM R WHERE R.A IN (SELECT S.A FROM S)", schema, db
    )


def test_uncorrelated_not_in(schema, db):
    translated_equals_sql(
        "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
        schema,
        db,
    )


def test_correlated_exists(schema, db):
    translated_equals_sql(
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        schema,
        db,
    )


def test_correlated_not_exists(schema, db):
    translated_equals_sql(
        "SELECT R.A FROM R WHERE NOT EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        schema,
        db,
    )


def test_boolean_combinations(schema, db):
    translated_equals_sql(
        "SELECT R.A FROM R WHERE (R.A = 1 OR R.B = 3) AND NOT R.A IS NULL",
        schema,
        db,
    )


@pytest.mark.parametrize("op", ["UNION", "UNION ALL", "INTERSECT", "INTERSECT ALL", "EXCEPT", "EXCEPT ALL"])
def test_set_operations(op, schema, db):
    translated_equals_sql(
        f"SELECT R.A FROM R {op} SELECT S.A FROM S", schema, db
    )


def test_set_op_renames_right_labels(schema, db):
    translated_equals_sql(
        "SELECT R.A AS X FROM R UNION SELECT S.A AS Y FROM S", schema, db
    )


def test_example1_q1_and_q3(schema):
    """The worked translations at the end of Section 5."""
    rs = Schema({"R": ("A",), "S": ("A",)})
    db = Database(rs, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    q1 = translated_equals_sql(
        "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", rs, db
    )
    q3 = translated_equals_sql(
        "SELECT R.A FROM R EXCEPT SELECT S.A FROM S", rs, db
    )
    ra = RASemantics(rs)
    assert ra.evaluate(q1, db).is_empty()
    assert sorted(ra.evaluate(q3, db).bag) == [(1,)]


def test_translated_signature_matches_output_labels(schema, db):
    q = annotate("SELECT R.A AS X, R.B AS Y FROM R", schema)
    expr = to_sqlra(q, schema)
    assert signature(expr, schema) == ("X", "Y")


def test_to_sqlra_rejects_non_dm(schema):
    q = annotate("SELECT * FROM R", schema)
    with pytest.raises(NotDataManipulationError):
        to_sqlra(q, schema)


# -- the converse: RA → SQL -------------------------------------------------------


@pytest.mark.parametrize("seed", range(15))
def test_ra_to_sql_round_trip(seed):
    """RA → SQL → evaluate agrees with direct RA evaluation (standard
    direction of Theorem 1), on RA produced from random SQL queries."""
    schema = validation_schema(4)
    rng = random.Random(seed)
    generator = QueryGenerator(schema, DM_CONFIG, rng)
    query = generator.generate()
    db = fill_database(schema, rng, DataFillerConfig(max_rows=3))
    pure = sql_to_ra(query, schema)
    ra = RASemantics(schema)
    expected = ra.evaluate(pure, db)
    back_to_sql = ra_to_sql(pure, schema)
    got = SqlSemantics(schema).run(back_to_sql, db)
    assert got.same_as(expected)
    assert is_data_manipulation(back_to_sql, schema)


def test_ra_to_sql_rejects_impure(schema):
    from repro.algebra.ast import Empty, R_TRUE, Relation, Selection

    impure = Selection(Relation("R"), Empty(Relation("S")))
    with pytest.raises(ValueError):
        ra_to_sql(impure, schema)
