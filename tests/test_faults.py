"""The fault-injection harness itself: determinism, scoping, serialization.

Chaos runs are only evidence if they are reproducible — the same plan
seed must produce the same injection decisions at every site, in any
process, regardless of thread interleaving elsewhere in the stack.
"""

import json

import pytest

from repro import faults
from repro.faults import FaultPlan


def drain(plan, site, n):
    return [plan.fire(site) for _ in range(n)]


# -- determinism ---------------------------------------------------------------


def test_same_seed_same_decisions():
    a = FaultPlan(7, {"transport.connect": 0.3})
    b = FaultPlan(7, {"transport.connect": 0.3})
    assert drain(a, "transport.connect", 200) == drain(b, "transport.connect", 200)


def test_different_seeds_differ():
    a = FaultPlan(1, {"transport.connect": 0.5})
    b = FaultPlan(2, {"transport.connect": 0.5})
    assert drain(a, "transport.connect", 200) != drain(b, "transport.connect", 200)


def test_sites_have_independent_streams():
    """Checks at one site must not perturb decisions at another — the
    property that makes plans robust to thread interleaving."""
    lone = FaultPlan(5, {"server.slow": 0.4, "server.disconnect": 0.4})
    noisy = FaultPlan(5, {"server.slow": 0.4, "server.disconnect": 0.4})
    expected = drain(lone, "server.slow", 100)
    for _ in range(137):  # interleave checks at the other site
        noisy.fire("server.disconnect")
    assert drain(noisy, "server.slow", 100) == expected


def test_rate_zero_never_fires_and_rate_one_always_fires():
    plan = FaultPlan(0, {"a": 0.0, "b": 1.0})
    assert not any(drain(plan, "a", 50))
    assert all(drain(plan, "b", 50))
    assert plan.checks == {"a": 50, "b": 50}
    assert plan.injected == {"b": 50}


def test_unknown_site_defaults_to_no_fault():
    plan = FaultPlan(0, {"b": 1.0})
    assert not plan.fire("never.configured")


def test_bad_rate_rejected():
    with pytest.raises(ValueError):
        FaultPlan(0, {"a": 1.5})


# -- limits --------------------------------------------------------------------


def test_limits_cap_injections_without_shifting_the_stream():
    capped = FaultPlan(3, {"x": 1.0}, limits={"x": 2})
    assert drain(capped, "x", 5) == [True, True, False, False, False]
    assert capped.injected == {"x": 2}
    assert capped.checks == {"x": 5}
    # The draw happens before the cap check, so an uncapped plan with the
    # same seed sees the identical underlying decision stream.
    free = FaultPlan(3, {"x": 1.0})
    assert drain(free, "x", 5) == [True] * 5


# -- (de)serialization ---------------------------------------------------------


def test_env_round_trip_preserves_decisions(monkeypatch):
    plan = FaultPlan(11, {"worker.crash": 0.25}, limits={"worker.crash": 3})
    encoded = plan.to_env()
    json.loads(encoded)  # must be plain JSON
    restored = FaultPlan.from_env(encoded)
    assert restored.to_json() == plan.to_json()
    assert drain(restored, "worker.crash", 100) == drain(plan, "worker.crash", 100)

    monkeypatch.setenv(faults.ENV_VAR, encoded)
    try:
        installed = faults.install_from_env()
        assert installed is not None
        assert faults.current() is installed
        assert installed.to_json() == plan.to_json()
    finally:
        faults.uninstall()


def test_install_from_env_without_var_is_noop(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    assert faults.install_from_env() is None
    assert faults.current() is None


# -- ambient plan --------------------------------------------------------------


def test_ambient_fire_is_false_without_a_plan():
    assert faults.current() is None
    assert faults.fire("transport.connect") is False


def test_active_context_scopes_the_plan():
    plan = FaultPlan(0, {"z": 1.0})
    with faults.active(plan) as installed:
        assert installed is plan
        assert faults.fire("z") is True
    assert faults.current() is None
    assert faults.fire("z") is False


def test_active_restores_previous_plan():
    outer = FaultPlan(0, {})
    with faults.active(outer):
        with faults.active(FaultPlan(1, {})):
            pass
        assert faults.current() is outer
    assert faults.current() is None


# -- injected exception taxonomy ----------------------------------------------


def test_injected_exceptions_are_their_real_types():
    import sqlite3

    assert issubclass(faults.InjectedConnectionError, ConnectionResetError)
    assert issubclass(faults.InjectedTimeout, TimeoutError)
    assert issubclass(faults.InjectedOperationalError, sqlite3.OperationalError)
    assert issubclass(faults.InjectedCrash, RuntimeError)
    for cls in (
        faults.InjectedConnectionError,
        faults.InjectedTimeout,
        faults.InjectedOperationalError,
        faults.InjectedCrash,
    ):
        assert issubclass(cls, faults.InjectedFault)


# -- file corruption helpers ---------------------------------------------------


def test_tear_final_line_truncates_mid_line(tmp_path):
    path = str(tmp_path / "file.jsonl")
    with open(path, "w") as handle:
        handle.write('{"seed": 1}\n{"seed": 2, "padding": "xxxx"}\n')
    removed = faults.tear_final_line(path)
    assert removed > 0
    data = open(path, "rb").read()
    assert data.startswith(b'{"seed": 1}\n')
    assert not data.endswith(b"\n")  # torn: final line lost its newline
    assert len(data) < len('{"seed": 1}\n{"seed": 2, "padding": "xxxx"}\n')


def test_flip_bit_damages_exactly_one_line(tmp_path):
    path = str(tmp_path / "file.jsonl")
    lines = ['{"seed": 1, "code": 1}', '{"seed": 2, "code": 1}']
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    faults.flip_bit(path, line_number=2)
    damaged = open(path, "rb").read().split(b"\n")
    assert damaged[0].decode() == lines[0]
    assert damaged[1].decode(errors="replace") != lines[1]
    assert len(damaged[1]) == len(lines[1])  # flipped, not truncated
