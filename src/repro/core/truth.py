"""Three-valued (Kleene) logic truth values.

This module implements the truth tables of Figure 1 of the paper: SQL's
three-valued logic (3VL) has truth values true (``t``), false (``f``) and
unknown (``u``), combined with Kleene's strong connectives.

The class :class:`Truth` is a small immutable value type with exactly three
instances, exposed as the module-level constants :data:`TRUE`, :data:`FALSE`
and :data:`UNKNOWN`.  Conjunction, disjunction and negation are available both
as operator overloads (``&``, ``|``, ``~``) and as the named functions
:func:`conj`, :func:`disj` and :func:`neg`.

The *information order* ``u < t``, ``u < f`` (with ``t`` and ``f``
incomparable) is exposed via :meth:`Truth.le_info`; Kleene connectives are
monotone with respect to it, a property exercised by the test suite.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "Truth",
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "conj",
    "disj",
    "neg",
    "conj_all",
    "disj_all",
]


class Truth:
    """One of the three truth values of Kleene logic.

    Instances are interned: the only three objects of this class are
    :data:`TRUE`, :data:`FALSE` and :data:`UNKNOWN`, so identity comparison
    (``is``) is safe and used throughout the code base.
    """

    __slots__ = ("_name",)

    _instances: dict[str, "Truth"] = {}

    def __new__(cls, name: str) -> "Truth":
        if name not in ("t", "f", "u"):
            raise ValueError(f"invalid truth value name: {name!r}")
        if name in cls._instances:
            return cls._instances[name]
        obj = super().__new__(cls)
        obj._name = name
        cls._instances[name] = obj
        return obj

    @property
    def name(self) -> str:
        """The paper's one-letter name of this truth value: t, f or u."""
        return self._name

    # -- predicates --------------------------------------------------------

    @property
    def is_true(self) -> bool:
        """Whether this value is ``t`` (the only value SQL's WHERE keeps)."""
        return self._name == "t"

    @property
    def is_false(self) -> bool:
        return self._name == "f"

    @property
    def is_unknown(self) -> bool:
        return self._name == "u"

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_bool(value: bool) -> "Truth":
        """Embed a classical Boolean into 3VL."""
        return TRUE if value else FALSE

    # -- Kleene connectives (Figure 1) --------------------------------------

    def __and__(self, other: "Truth") -> "Truth":
        if not isinstance(other, Truth):
            return NotImplemented
        if self is FALSE or other is FALSE:
            return FALSE
        if self is TRUE and other is TRUE:
            return TRUE
        return UNKNOWN

    def __or__(self, other: "Truth") -> "Truth":
        if not isinstance(other, Truth):
            return NotImplemented
        if self is TRUE or other is TRUE:
            return TRUE
        if self is FALSE and other is FALSE:
            return FALSE
        return UNKNOWN

    def __invert__(self) -> "Truth":
        if self is TRUE:
            return FALSE
        if self is FALSE:
            return TRUE
        return UNKNOWN

    # -- information order ---------------------------------------------------

    def le_info(self, other: "Truth") -> bool:
        """Whether ``self`` is below ``other`` in the information order.

        ``u`` is below everything; ``t`` and ``f`` are each only below
        themselves.  Kleene connectives are monotone w.r.t. this order.
        """
        return self is UNKNOWN or self is other

    # -- plumbing -------------------------------------------------------------

    def __repr__(self) -> str:
        return {"t": "TRUE", "f": "FALSE", "u": "UNKNOWN"}[self._name]

    def __bool__(self) -> bool:
        raise TypeError(
            "a 3VL Truth cannot be used as a Python boolean; "
            "use .is_true / .is_false / .is_unknown explicitly"
        )

    def __hash__(self) -> int:
        return hash(self._name)

    def __reduce__(self):
        return (Truth, (self._name,))


TRUE = Truth("t")
FALSE = Truth("f")
UNKNOWN = Truth("u")


def conj(a: Truth, b: Truth) -> Truth:
    """Kleene conjunction (the ∧ table of Figure 1)."""
    return a & b


def disj(a: Truth, b: Truth) -> Truth:
    """Kleene disjunction (the ∨ table of Figure 1)."""
    return a | b


def neg(a: Truth) -> Truth:
    """Kleene negation (the ¬ table of Figure 1)."""
    return ~a


def conj_all(values: Iterable[Truth]) -> Truth:
    """Conjunction of an iterable of truth values; empty conjunction is t.

    Matches the paper's use of big-∧ for tuple equality: the conjunction of
    no conditions holds vacuously.
    """
    result = TRUE
    for value in values:
        result = result & value
        if result is FALSE:
            return FALSE
    return result


def disj_all(values: Iterable[Truth]) -> Truth:
    """Disjunction of an iterable of truth values; empty disjunction is f."""
    result = FALSE
    for value in values:
        result = result | value
        if result is TRUE:
            return TRUE
    return result
