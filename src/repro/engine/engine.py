"""The engine facade: compile + optimize + execute, with boundary conversions.

:class:`Engine` plays the role of the real RDBMS in the Section 4
experiment: it takes the same annotated query and database as the formal
semantics and produces a :class:`~repro.core.table.Table`, converting its
internal ``None`` nulls back to :data:`~repro.core.values.NULL` only at the
output boundary.

By default the compiled plan is rewritten by the optimizer
(:mod:`repro.engine.optimizer`): selection pushdown, hash equi-joins, and
cached probes for uncorrelated subqueries.  ``optimize=False`` retains the
paper's naive product-then-filter evaluation — the escape hatch used by the
ablation benchmarks to quantify the speedup, with the validation campaigns
guaranteeing both paths agree with the formal semantics.
"""

from __future__ import annotations

from ..core.bag import Bag
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.values import NULL
from ..sql.ast import Query
from .optimizer import optimize_plan
from .planner import DIALECT_ORACLE, DIALECT_POSTGRES, Planner

__all__ = ["Engine", "DIALECT_POSTGRES", "DIALECT_ORACLE"]


class Engine:
    """An independent executor for basic SQL, in two dialect flavours."""

    def __init__(
        self,
        schema: Schema,
        dialect: str = DIALECT_POSTGRES,
        optimize: bool = True,
    ):
        self.schema = schema
        self.dialect = dialect
        self.optimize = optimize

    def execute(self, query: Query, db: Database) -> Table:
        """Compile and run ``query`` on ``db``.

        Compile-time errors (unknown tables, arity mismatches, ambiguous
        references) are raised before any row is produced, matching the
        behaviour of the real systems the engine stands in for.
        """
        planner = Planner(self.schema, db, self.dialect)
        compiled = planner.compile(query)
        plan = optimize_plan(compiled.plan) if self.optimize else compiled.plan
        rows = plan.iter_rows(())
        records = (
            tuple(NULL if v is None else v for v in row) for row in rows
        )
        return Table(compiled.labels, Bag(records))
