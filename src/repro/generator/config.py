"""Configuration of the random query generator (Section 4).

The paper's generator takes a schema, a set of names usable as aliases, and
four parameters derived from the structure of the TPC-H benchmark queries::

    tables = 6   max number of tables (counting repetitions) mentioned in a
                 well-defined SELECT-FROM-WHERE block, including nested
                 subqueries
    nest   = 3   max level of nested queries in FROM and WHERE
    attr   = 3   max number of attributes in a SELECT clause
    cond   = 8   max number of atomic conditions in WHERE

:data:`PAPER_CONFIG` uses exactly those values.  The remaining knobs control
the probability mix of the generated constructs; they do not exist in the
paper (which does not specify them) and default to values that exercise
every feature regularly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GeneratorConfig", "PAPER_CONFIG", "DM_CONFIG"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of :class:`repro.generator.queries.QueryGenerator`."""

    tables: int = 6
    nest: int = 3
    attr: int = 3
    cond: int = 8

    # Probability mix (not fixed by the paper).
    star_probability: float = 0.2
    distinct_probability: float = 0.3
    setop_probability: float = 0.2
    from_subquery_probability: float = 0.25
    where_subquery_probability: float = 0.3
    correlation_probability: float = 0.4
    constant_probability: float = 0.15
    null_term_probability: float = 0.05
    negation_probability: float = 0.3
    duplicate_output_probability: float = 0.05

    # Value domain for generated constants (small, to force collisions).
    min_constant: int = 0
    max_constant: int = 9

    # Definition 1 mode: only generate data manipulation queries
    # (no *, no constants/NULLs in SELECT, repetition-free output names).
    data_manipulation_only: bool = False

    def for_data_manipulation(self) -> "GeneratorConfig":
        return replace(
            self,
            data_manipulation_only=True,
            star_probability=0.0,
            duplicate_output_probability=0.0,
        )


#: The exact parameter values the paper chose from TPC-H statistics.
PAPER_CONFIG = GeneratorConfig()

#: Definition 1-restricted generation, for the Theorem 1 experiments.
DM_CONFIG = PAPER_CONFIG.for_data_manipulation()
