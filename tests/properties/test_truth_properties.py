"""Property-based tests: Kleene logic as embedded in {0, ½, 1} arithmetic.

Kleene's strong 3VL has a well-known numeric model: t = 1, u = ½, f = 0 with
∧ = min, ∨ = max, ¬x = 1 − x.  Hypothesis checks our truth tables against
that model, plus the lattice/De-Morgan laws on arbitrary combinations."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.core.truth import FALSE, TRUE, UNKNOWN, conj_all, disj_all

truths = st.sampled_from([TRUE, FALSE, UNKNOWN])

_NUM = {TRUE: Fraction(1), UNKNOWN: Fraction(1, 2), FALSE: Fraction(0)}
_VAL = {v: k for k, v in _NUM.items()}


def num(t):
    return _NUM[t]


@given(truths, truths)
def test_conjunction_is_min(a, b):
    assert num(a & b) == min(num(a), num(b))


@given(truths, truths)
def test_disjunction_is_max(a, b):
    assert num(a | b) == max(num(a), num(b))


@given(truths)
def test_negation_is_complement(a):
    assert num(~a) == 1 - num(a)


@given(st.lists(truths, max_size=8))
def test_conj_all_is_min(values):
    expected = min((num(v) for v in values), default=Fraction(1))
    assert num(conj_all(values)) == expected


@given(st.lists(truths, max_size=8))
def test_disj_all_is_max(values):
    expected = max((num(v) for v in values), default=Fraction(0))
    assert num(disj_all(values)) == expected


@given(truths, truths, truths)
def test_absorption(a, b, c):
    assert (a & (a | b)) is a
    assert (a | (a & b)) is a


@given(truths, truths)
def test_de_morgan(a, b):
    assert ~(a & b) is (~a | ~b)
    assert ~(a | b) is (~a & ~b)


@given(truths)
def test_idempotence(a):
    assert (a & a) is a
    assert (a | a) is a


@given(truths)
def test_units(a):
    assert (a & TRUE) is a
    assert (a | FALSE) is a
    assert (a & FALSE) is FALSE
    assert (a | TRUE) is TRUE


@given(truths)
def test_no_excluded_middle_in_kleene(a):
    """a ∨ ¬a is t only for the classical values — u ∨ ¬u = u."""
    if a is UNKNOWN:
        assert (a | ~a) is UNKNOWN
    else:
        assert (a | ~a) is TRUE
