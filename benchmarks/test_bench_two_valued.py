"""Experiment T2 (Theorem 2 / Section 6): 3VL adds no expressive power.

For random queries Q, the Figure 10 translation Q′ must satisfy
⟦Q⟧ = ⟦Q′⟧2v, and the converse translation Q″ must satisfy ⟦Q⟧2v = ⟦Q″⟧ —
under both two-valued interpretations of equality (f/u conflation and
syntactic equality).
"""

import random

from repro.core import validation_schema
from repro.core.errors import ReproError
from repro.generator import (
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.semantics import SqlSemantics, TwoValuedTranslator, to_three_valued
from repro.sql import check_query
from repro.validation.report import format_table

from .conftest import print_banner, trials


def run_two_valued_campaign():
    schema = validation_schema()
    sem3 = SqlSemantics(schema)
    data = DataFillerConfig(max_rows=4)
    count = trials(150)
    results = {}
    for mode in ("conflating", "syntactic"):
        tested = forward = backward = skipped = 0
        for seed in range(count):
            rng = random.Random(seed)
            query = QueryGenerator(schema, PAPER_CONFIG, rng).generate()
            db = fill_database(schema, rng, data)
            try:
                check_query(query, schema, star_style="standard")
            except ReproError:
                skipped += 1
                continue
            tested += 1
            expected = sem3.run(query, db)
            translator = TwoValuedTranslator(schema, mode)
            sem2 = SqlSemantics(schema, logic=translator.logic)
            if sem2.run(translator.translate_query(query), db).same_as(expected):
                forward += 1
            direct2v = sem2.run(query, db)
            if sem3.run(to_three_valued(query, schema, mode), db).same_as(direct2v):
                backward += 1
        results[mode] = (tested, forward, backward, skipped)
    return results


def test_bench_two_valued(benchmark):
    results = benchmark.pedantic(run_two_valued_campaign, rounds=1, iterations=1)
    print_banner(
        "T2 — Theorem 2: ⟦Q⟧ = ⟦Q′⟧2v and ⟦Q⟧2v = ⟦Q″⟧ "
        "(paper: equal expressiveness under either equality reading)"
    )
    rows = [
        (
            mode,
            tested,
            f"{forward}/{tested}",
            f"{backward}/{tested}",
            skipped,
        )
        for mode, (tested, forward, backward, skipped) in results.items()
    ]
    print(
        format_table(
            ("equality", "tested", "⟦Q⟧=⟦Q′⟧2v", "⟦Q⟧2v=⟦Q″⟧", "skipped (ambiguous)"),
            rows,
        )
    )
    for mode, (tested, forward, backward, _skipped) in results.items():
        assert tested > 0, mode
        assert forward == tested, mode
        assert backward == tested, mode
