"""Seeded, deterministic fault injection for the whole stack.

The repo's central invariant — every fast path is digest-gated against the
formal semantics — is only worth much if it survives failure: a killed
worker, a torn checkpoint line, a dropped socket, a compiled-tier crash.
This module is the one place faults come from, so chaos runs are
*reproducible*: a :class:`FaultPlan` is a pure function of ``(seed, site)``
— each injection site draws from its own :class:`random.Random` stream
seeded from the plan seed and the site name, so the decision sequence at a
site depends only on how many times that site has fired, never on thread
interleaving elsewhere.

Sites are plain dotted strings; the hooks threaded through the stack are:

``transport.connect``
    Drop the connection before the request is sent (retriable: the server
    never saw it).
``transport.read_timeout``
    Time out *after* the request was sent and processed — the dangerous
    half of a timeout, which must not be retried on non-idempotent calls.
``transport.slow``
    A short stall before the request (slow network / partial writes).
``checkpoint.torn``
    Tear the final line of a checkpoint flush and crash, as a kill
    mid-``write()`` would.
``worker.crash``
    A distributed worker dies after acquiring a lease, before submitting.
``worker.duplicate_submit``
    A worker re-sends a submit it already delivered (retry storm shape).
``live.transient``
    A transient ``sqlite3.OperationalError`` from the live backend.
``server.exec_error``
    The service's compiled/vectorized execution tier raises; the request
    must fall back to the interpreted tier, never serve wrong.
``server.slow``
    The service stalls inside request handling (drives deadline tests).
``server.disconnect``
    The client connection drops mid-stream.

Injection is *ambient*: production code calls :func:`fire(site)
<fire>`, which is a no-op (False) unless a plan was installed with
:func:`install` — or, for subprocess workers, via the :data:`ENV_VAR`
environment variable (:func:`install_from_env`), which
:func:`FaultPlan.to_env` round-trips.  Every check and every injection is
counted per site, so chaos benchmarks can assert faults actually happened
(a chaos run that injected nothing proves nothing).
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import threading
from typing import Dict, Mapping, Optional

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "InjectedFault",
    "InjectedConnectionError",
    "InjectedTimeout",
    "InjectedOperationalError",
    "InjectedCrash",
    "install",
    "uninstall",
    "current",
    "install_from_env",
    "fire",
    "active",
    "flip_bit",
    "tear_final_line",
]

#: Environment variable carrying a JSON-encoded plan into subprocesses.
ENV_VAR = "REPRO_FAULTS"

#: The known injection sites (documentation + validation; unknown sites
#: are still honoured so tests can invent private ones).
SITES = (
    "transport.connect",
    "transport.read_timeout",
    "transport.slow",
    "checkpoint.torn",
    "worker.crash",
    "worker.duplicate_submit",
    "live.transient",
    "server.exec_error",
    "server.slow",
    "server.disconnect",
)


class InjectedFault:
    """Marker mixin: this exception came from a :class:`FaultPlan`.

    Injected exceptions subclass the *real* exception the site would see
    (``ConnectionResetError``, ``TimeoutError``, …) so production handling
    paths are exercised unchanged; the mixin only lets diagnostics and
    transient-error classifiers tell injected faults apart.
    """


class InjectedConnectionError(InjectedFault, ConnectionResetError):
    """A dropped connection (the request may or may not have been sent)."""


class InjectedTimeout(InjectedFault, TimeoutError):
    """A read timeout after the request was already processed."""


class InjectedOperationalError(InjectedFault, sqlite3.OperationalError):
    """A transient live-backend error (the shape of ``database is locked``)."""


class InjectedCrash(InjectedFault, RuntimeError):
    """A process/tier death: worker crash, compiled-tier failure."""


class FaultPlan:
    """Deterministic per-site fault decisions.

    ``rates`` maps site name to injection probability in ``[0, 1]``;
    ``limits`` optionally caps how many times a site may inject (handy for
    "exactly one tier crash" tests).  Thread-safe; decisions at one site
    are a pure function of ``(seed, site, nth call at that site)``.
    """

    def __init__(
        self,
        seed: int,
        rates: Mapping[str, float],
        limits: Optional[Mapping[str, int]] = None,
    ):
        self.seed = int(seed)
        self.rates = {str(site): float(rate) for site, rate in rates.items()}
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1], got {rate}")
        self.limits = {str(site): int(cap) for site, cap in (limits or {}).items()}
        self._lock = threading.Lock()
        self._streams: Dict[str, random.Random] = {}
        self.checks: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}

    def _stream(self, site: str) -> random.Random:
        stream = self._streams.get(site)
        if stream is None:
            # A string seed goes through SHA-512 in CPython — stable across
            # processes and runs, unaffected by PYTHONHASHSEED.
            stream = random.Random(f"{self.seed}/{site}")
            self._streams[site] = stream
        return stream

    def fire(self, site: str) -> bool:
        """Should this call at ``site`` fail?  Counts the check either way."""
        with self._lock:
            self.checks[site] = self.checks.get(site, 0) + 1
            rate = self.rates.get(site, 0.0)
            if rate <= 0.0:
                return False
            # Draw before the cap check so the decision stream at a site
            # never depends on how many injections were allowed.
            hit = self._stream(site).random() < rate
            if not hit:
                return False
            cap = self.limits.get(site)
            done = self.injected.get(site, 0)
            if cap is not None and done >= cap:
                return False
            self.injected[site] = done + 1
            return True

    def counts(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "rates": dict(self.rates),
                "checks": dict(self.checks),
                "injected": dict(self.injected),
            }

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    # -- (de)serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {"seed": self.seed, "rates": dict(self.rates),
                "limits": dict(self.limits)}

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "FaultPlan":
        return cls(
            int(payload.get("seed", 0)),
            payload.get("rates") or {},
            payload.get("limits") or None,
        )

    def to_env(self) -> str:
        """The :data:`ENV_VAR` value that reinstalls this plan elsewhere."""
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        return cls.from_json(json.loads(value))


# -- the ambient plan ---------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Make ``plan`` the ambient plan; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def uninstall() -> None:
    install(None)


def current() -> Optional[FaultPlan]:
    return _ACTIVE


def install_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """Install the plan :data:`ENV_VAR` carries, if any (subprocess entry).

    Called by worker/serve entry points so ``REPRO_FAULTS='{"seed": …}'``
    reaches spawned processes without any argument plumbing.
    """
    value = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not value:
        return None
    plan = FaultPlan.from_env(value)
    install(plan)
    return plan


def fire(site: str) -> bool:
    """Ambient check: False unless an installed plan injects at ``site``."""
    plan = _ACTIVE
    return plan.fire(site) if plan is not None else False


class active:
    """``with faults.active(plan): …`` — scoped install, for tests."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = install(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        install(self._previous)


# -- file-corruption helpers ---------------------------------------------------
#
# Torn and bit-flipped checkpoint lines are injected on files, not call
# sites; these deterministic helpers are what the chaos bench and the
# corruption regression tests use.


def tear_final_line(path: str, keep_fraction: float = 0.5) -> int:
    """Truncate the file mid-way through its final non-empty line, as a
    kill mid-``write()`` would; returns the bytes removed."""
    with open(path, "rb") as handle:
        data = handle.read()
    stripped = data.rstrip(b"\n")
    cut = stripped.rfind(b"\n") + 1  # start of the final line
    line = stripped[cut:]
    keep = max(1, int(len(line) * keep_fraction))
    torn = stripped[: cut + keep]
    with open(path, "wb") as handle:
        handle.write(torn)
    return len(data) - len(torn)


def flip_bit(path: str, line_number: int, bit: int = 1) -> None:
    """Flip one bit inside 1-indexed ``line_number`` of the file.

    The flip lands in the middle of the line's payload (never the
    newline), producing exactly the corruption per-line CRCs exist to
    catch.
    """
    with open(path, "rb") as handle:
        lines = handle.readlines()
    index = line_number - 1
    line = bytearray(lines[index])
    target = max(0, (len(line.rstrip(b"\n")) // 2) - 1)
    line[target] ^= 1 << (bit % 8)
    lines[index] = bytes(line)
    with open(path, "wb") as handle:
        handle.writelines(lines)
