"""The live-sqlite campaign kind: spec plumbing, aggregation of classified
divergences, parallel determinism, and the CLI entry point."""

from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.campaigns.aggregate import Aggregator
from repro.campaigns.backends import (
    CODE_AGREE,
    CODE_CLASSIFIED,
    CODE_MISMATCH,
    LiveSqliteBackend,
)
from repro.cli import main

FIXTURE = str(Path(__file__).resolve().parent.parent / "fixtures" / "library.sql")


# -- spec ----------------------------------------------------------------------


def test_spec_roundtrips_through_json():
    spec = CampaignSpec(
        kind="live-sqlite", variant="oracle", rows=0, scenario=FIXTURE
    )
    assert CampaignSpec.from_json(spec.to_json()) == spec


def test_spec_label_names_the_variant():
    spec = CampaignSpec(kind="live-sqlite", scenario=FIXTURE)
    assert spec.label == "live-sqlite[postgres]"


def test_spec_requires_a_scenario_path():
    with pytest.raises(ValueError):
        CampaignSpec(kind="live-sqlite")


def test_spec_builds_a_live_backend():
    spec = CampaignSpec(kind="live-sqlite", scenario=FIXTURE, rows=0)
    backend = spec.build()
    assert isinstance(backend, LiveSqliteBackend)
    assert backend.label == "live-sqlite[postgres]"
    record = backend.run_trial(0)
    assert record["seed"] == 0
    assert record["code"] in (1, 2, 3, 4)


def test_spec_rows_caps_the_import_sample():
    spec = CampaignSpec(kind="live-sqlite", scenario=FIXTURE, rows=3)
    backend = spec.build()
    scenario = backend.runner.scenario
    assert all(
        len(scenario.database.table(name)) <= 3
        for name in scenario.schema.table_names
    )


# -- aggregation ---------------------------------------------------------------


def test_aggregator_counts_classified_records_per_class():
    agg = Aggregator("live-sqlite[postgres]", base_seed=0, trials=4)
    agg.add({"seed": 0, "code": CODE_AGREE})
    agg.add({"seed": 1, "code": CODE_CLASSIFIED, "class": "sqlite-no-bag-setop"})
    agg.add({"seed": 2, "code": CODE_CLASSIFIED, "class": "sqlite-no-bag-setop"})
    agg.add({"seed": 3, "code": CODE_CLASSIFIED, "class": "dialect-type-order"})
    result = agg.finalize(elapsed_s=0.0, jobs=1)
    assert result.classified == 3
    assert result.classified_by_class == {
        "sqlite-no-bag-setop": 2,
        "dialect-type-order": 1,
    }
    # Classified divergences are not mismatches and never fail a campaign.
    assert not result.mismatches
    assert "classified=3" in result.summary()
    assert result.to_json()["classified_by_class"] == result.classified_by_class


def test_classified_code_enters_the_outcome_digest():
    def digest(code):
        agg = Aggregator("x", base_seed=0, trials=1)
        record = {"seed": 0, "code": code}
        if code == CODE_MISMATCH:
            record["detail"] = "d"
        if code == CODE_CLASSIFIED:
            record["class"] = "sqlite-limit"
        agg.add(record)
        return agg.finalize(elapsed_s=0.0, jobs=1).outcome_digest

    assert digest(CODE_CLASSIFIED) != digest(CODE_AGREE)
    assert digest(CODE_CLASSIFIED) != digest(CODE_MISMATCH)


# -- execution -----------------------------------------------------------------


def test_live_campaign_parallel_digest_matches_serial():
    spec = CampaignSpec(kind="live-sqlite", scenario=FIXTURE, rows=0)
    serial = run_campaign(spec, trials=80, base_seed=0, jobs=1)
    parallel = run_campaign(spec, trials=80, base_seed=0, jobs=2)
    assert serial.outcome_digest == parallel.outcome_digest
    assert serial.classified_by_class == parallel.classified_by_class
    assert not serial.mismatches


# -- CLI -----------------------------------------------------------------------


def test_cli_differential_live_sqlite(capsys):
    code = main(
        ["differential", "--live-sqlite", FIXTURE, "--trials", "60"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "live-sqlite[postgres]" in out
    assert "mismatches=0" in out


def test_cli_live_sqlite_oracle_variant(capsys):
    code = main(
        [
            "differential",
            "--live-sqlite",
            FIXTURE,
            "--dialect",
            "oracle",
            "--trials",
            "40",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "live-sqlite[oracle]" in out
