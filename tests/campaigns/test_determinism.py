"""The campaign subsystem's central property: bit-identical results.

A trial is a pure function of its seed and the aggregate is
order-independent, so a campaign's report must be identical for any worker
count, any shard size, and any interrupt/resume history.  These tests pin
that contract (the satellite property tests of the campaign refactor).
"""

import pytest

from repro.campaigns import CampaignSpec, load_checkpoint, run_campaign

TRIALS = 60
SPEC = CampaignSpec(kind="validation", variant="postgres", rows=4)


def result_fingerprint(result):
    return (
        result.variant,
        result.trials,
        result.completed,
        result.agreements,
        result.error_agreements,
        result.mismatches,
        result.outcome_digest,
    )


def test_serial_and_parallel_campaigns_identical():
    serial = run_campaign(SPEC, trials=TRIALS, base_seed=2000, jobs=1)
    parallel = run_campaign(SPEC, trials=TRIALS, base_seed=2000, jobs=4)
    assert result_fingerprint(serial) == result_fingerprint(parallel)
    assert serial.completed == TRIALS


def test_shard_size_does_not_change_results():
    from repro.campaigns import executor

    serial = run_campaign(SPEC, trials=30, base_seed=77, jobs=1)
    original = executor.MAX_SHARD
    try:
        executor.MAX_SHARD = 7
        tiny_shards = run_campaign(SPEC, trials=30, base_seed=77, jobs=2)
    finally:
        executor.MAX_SHARD = original
    assert result_fingerprint(serial) == result_fingerprint(tiny_shards)


def test_resume_after_interrupt_matches_uninterrupted(tmp_path):
    """A killed campaign, resumed, aggregates to the uninterrupted result."""
    path = str(tmp_path / "campaign.jsonl")
    uninterrupted = run_campaign(SPEC, trials=TRIALS, base_seed=500, jobs=1)
    # Simulated interrupt: a first run covering only part of the seed range
    # writes its records and dies.
    run_campaign(SPEC, trials=25, base_seed=500, jobs=1, checkpoint=path)
    resumed = run_campaign(
        SPEC, trials=TRIALS, base_seed=500, jobs=2, checkpoint=path, resume=True
    )
    assert resumed.resumed_trials == 25
    assert result_fingerprint(resumed) == result_fingerprint(uninterrupted)
    # The checkpoint now covers every seed exactly once.
    _header, records = load_checkpoint(path)
    assert sorted(record["seed"] for record in records) == list(
        range(500, 500 + TRIALS)
    )


def test_resume_with_torn_final_line(tmp_path):
    """Records after a mid-write kill are skipped and re-run, not lost."""
    path = str(tmp_path / "campaign.jsonl")
    run_campaign(SPEC, trials=20, base_seed=0, jobs=1, checkpoint=path)
    with open(path) as handle:
        lines = handle.readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[:-1])
        handle.write(lines[-1][: len(lines[-1]) // 2])  # torn by the kill
    full = run_campaign(
        SPEC, trials=20, base_seed=0, jobs=1, checkpoint=path, resume=True
    )
    reference = run_campaign(SPEC, trials=20, base_seed=0, jobs=1)
    assert full.resumed_trials == 19  # header intact, one record torn
    assert result_fingerprint(full) == result_fingerprint(reference)


def test_resume_of_complete_campaign_runs_nothing(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    first = run_campaign(SPEC, trials=20, base_seed=0, jobs=1, checkpoint=path)
    again = run_campaign(
        SPEC, trials=20, base_seed=0, jobs=1, checkpoint=path, resume=True
    )
    assert again.resumed_trials == 20
    assert result_fingerprint(first) == result_fingerprint(again)


def test_differential_campaign_parallel_determinism():
    spec = CampaignSpec(kind="differential", rows=3)
    serial = run_campaign(spec, trials=12, base_seed=500, jobs=1)
    parallel = run_campaign(spec, trials=12, base_seed=500, jobs=2)
    assert result_fingerprint(serial) == result_fingerprint(parallel)
    assert serial.agreements == 12


def test_oracle_variant_error_agreements_survive_the_pipeline():
    """Both-error agreements (the paper's Oracle ambiguity case) are
    classified, checkpointed and aggregated distinctly from plain ones."""
    spec = CampaignSpec(kind="validation", variant="oracle", rows=3)
    result = run_campaign(spec, trials=150, base_seed=0, jobs=2)
    assert result.agreements == result.completed == 150
    assert result.error_agreements > 0


def test_progress_callback_reaches_total():
    seen = []
    run_campaign(
        SPEC,
        trials=20,
        base_seed=0,
        jobs=1,
        progress=lambda done, total: seen.append((done, total)),
    )
    assert seen[-1] == (20, 20)
    assert all(total == 20 for _done, total in seen)
