"""The engine's compile phase: scopes, positional resolution, star expansion."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import (
    AmbiguousReferenceError,
    CompileError,
    UnboundReferenceError,
)
from repro.core.values import FullName
from repro.engine.expressions import ColumnRef, LiteralExpr
from repro.engine.planner import Planner
from repro.sql import annotate
from repro.sql.ast import Predicate


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",)})


@pytest.fixture
def db(schema):
    return Database(schema, {"R": [(1, 2), (NULL, 4)], "S": [(1,)]})


def planner(schema, db, dialect="postgres"):
    return Planner(schema, db, dialect)


def test_labels_computed(schema, db):
    compiled = planner(schema, db).compile(annotate("SELECT R.B, R.A FROM R", schema))
    assert compiled.labels == ("B", "A")


def test_scan_converts_nulls_to_none(schema, db):
    compiled = planner(schema, db).compile(annotate("SELECT R.A FROM R", schema))
    rows = compiled.plan.rows(())
    assert (None,) in rows


def test_local_reference_depth_zero(schema, db):
    p = planner(schema, db)
    compiled = p.compile(annotate("SELECT R.B FROM R", schema))
    expr = compiled.plan.expressions[0]
    assert isinstance(expr, ColumnRef)
    assert expr.depth == 0 and expr.index == 1


def test_correlated_reference_depth_one(schema, db):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        schema,
    )
    # Compiles without error; depth handling is verified behaviourally.
    compiled = planner(schema, db).compile(q)
    rows = compiled.plan.rows(())
    assert rows == [(1,)]


def test_row_layout_concatenates_from_items(schema, db):
    q = annotate("SELECT S.A, R.B FROM R, S", schema)
    compiled = planner(schema, db).compile(q)
    exprs = compiled.plan.expressions
    # layout: R.A, R.B, S.A → S.A at index 2, R.B at index 1
    assert (exprs[0].depth, exprs[0].index) == (0, 2)
    assert (exprs[1].depth, exprs[1].index) == (0, 1)


def test_star_positional_in_postgres(schema, db):
    q = annotate("SELECT * FROM R, S", schema)
    compiled = planner(schema, db).compile(q)
    assert compiled.labels == ("A", "B", "A")
    assert [e.index for e in compiled.plan.expressions] == [0, 1, 2]


def test_star_by_name_in_oracle(schema, db):
    q = annotate("SELECT * FROM R, S", schema)
    compiled = planner(schema, db, "oracle").compile(q)
    assert compiled.labels == ("A", "B", "A")


def test_oracle_star_duplicate_rejected_at_compile(schema, db):
    q = annotate("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", schema)
    with pytest.raises(AmbiguousReferenceError):
        planner(schema, db, "oracle").compile(q)


def test_oracle_star_under_exists_is_constant(schema, db):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S)", schema
    )
    compiled = planner(schema, db, "oracle").compile(q)
    assert len(compiled.plan.child.child.rows(())) >= 0  # compiles and runs


def test_unbound_reference_at_compile_time(schema, db):
    from repro.sql.ast import FromItem, Select, SelectItem, TRUE_COND

    q = Select(
        (SelectItem(FullName("Z", "A"), "A"),), (FromItem("R", "R"),), TRUE_COND
    )
    with pytest.raises(UnboundReferenceError):
        planner(schema, db).compile(q)


def test_ambiguous_explicit_reference_both_dialects(schema, db):
    q = annotate("SELECT T.A AS X FROM (SELECT R.A, R.A FROM R) AS T", schema)
    for dialect in ("postgres", "oracle"):
        with pytest.raises(AmbiguousReferenceError):
            planner(schema, db, dialect).compile(q)


def test_literal_terms_compiled(schema, db):
    q = annotate("SELECT 7, NULL FROM R", schema)
    compiled = planner(schema, db).compile(q)
    exprs = compiled.plan.expressions
    assert isinstance(exprs[0], LiteralExpr) and exprs[0].value == 7
    assert isinstance(exprs[1], LiteralExpr) and exprs[1].value is None


def test_non_binary_predicate_rejected(schema, db):
    q = annotate("SELECT R.A FROM R", schema)
    bad = q.__class__(
        q.items, q.from_items, Predicate("odd", (FullName("R", "A"),))
    )
    with pytest.raises(CompileError):
        planner(schema, db).compile(bad)


def test_inner_scope_shadows_outer_in_engine(schema):
    """A subquery FROM with the same alias re-binds the name at depth 0."""
    db = Database(schema, {"R": [(1, 2)], "S": [(2,)]})
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT R2.A FROM S AS R2 WHERE R2.A = 2)",
        schema,
    )
    compiled = Planner(schema, db).compile(q)
    assert compiled.plan.rows(()) == [(1,)]


def test_from_subquery_sees_outer_not_sibling(schema):
    db = Database(schema, {"R": [(1, 2)], "S": [(1,)]})
    # sibling's alias X must not be visible inside the FROM subquery
    q = annotate(
        "SELECT X.A FROM R AS X, (SELECT S.A AS Z FROM S) AS U WHERE U.Z = X.A",
        schema,
    )
    compiled = Planner(schema, db).compile(q)
    assert compiled.plan.rows(()) == [(1,)]
