"""RA/SQL-RA AST invariants: purity, traversal, constructors."""

import pytest

from repro.algebra.ast import (
    Attr,
    Dedup,
    Empty,
    InExpr,
    Product,
    Projection,
    R_FALSE,
    R_TRUE,
    RAnd,
    Relation,
    Renaming,
    RNot,
    ROr,
    RPredicate,
    Selection,
    UnionOp,
    condition_is_pure,
    is_pure,
    rand_all,
    ror_all,
    walk_expressions,
)


def test_pure_expression():
    expr = Projection(Selection(Relation("R"), R_TRUE), ("A",))
    assert is_pure(expr)


def test_empty_condition_impure():
    expr = Selection(Relation("R"), Empty(Relation("S")))
    assert not is_pure(expr)
    assert not condition_is_pure(Empty(Relation("S")))


def test_in_condition_impure():
    assert not condition_is_pure(InExpr((1,), Relation("S")))


def test_impurity_through_connectives():
    cond = RAnd(R_TRUE, RNot(ROr(R_FALSE, Empty(Relation("S")))))
    assert not condition_is_pure(cond)


def test_nested_impurity_detected():
    inner = Selection(Relation("S"), InExpr((Attr("C"),), Relation("R")))
    outer = Selection(Relation("R"), Empty(inner))
    assert not is_pure(outer)
    # And purity of the part that wraps it but contains no extension:
    assert is_pure(Dedup(Relation("R")))


def test_walk_expressions_visits_condition_subexpressions():
    inner = Relation("S")
    expr = Selection(Relation("R"), Empty(inner))
    visited = list(walk_expressions(expr))
    assert inner in visited
    assert expr in visited
    assert Relation("R") in visited


def test_walk_expressions_binary():
    expr = UnionOp(Relation("R"), Product(Relation("S"), Relation("T")))
    names = [e.name for e in walk_expressions(expr) if isinstance(e, Relation)]
    assert sorted(names) == ["R", "S", "T"]


def test_rand_all_ror_all():
    assert rand_all([]) == R_TRUE
    assert ror_all([]) == R_FALSE
    a = RPredicate("=", (1, 1))
    b = RPredicate("=", (2, 2))
    assert rand_all([a, b]) == RAnd(a, b)
    assert ror_all([a, b]) == ROr(a, b)
    assert rand_all([a]) == a


def test_projection_requires_attributes():
    with pytest.raises(ValueError):
        Projection(Relation("R"), ())


def test_in_requires_terms():
    with pytest.raises(ValueError):
        InExpr((), Relation("R"))


def test_renaming_length_checked():
    with pytest.raises(ValueError):
        Renaming(Relation("R"), ("A",), ("X", "Y"))


def test_nodes_hashable_and_comparable():
    a = Selection(Relation("R"), RPredicate("=", (Attr("A"), 1)))
    b = Selection(Relation("R"), RPredicate("=", (Attr("A"), 1)))
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1
