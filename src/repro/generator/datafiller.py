"""Random database instances: the Datafiller substitute of Section 4.

The paper generated a database instance for each random query with the
Datafiller tool [12], over the fixed schema R1..R8 (Ri with i+1 attributes,
all of type int), capping each base table at 50 rows because the semantics
implementation computes Cartesian products and is not built for speed.

:func:`fill_database` reproduces that setup: every attribute is filled with
small random integers (a narrow domain, so equalities actually fire) and
NULLs at a configurable rate.  Row counts are drawn uniformly from
``0..max_rows``; including empty tables is important because several
semantic corner cases (EXISTS over empty products, IN over the empty table)
only show up there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.schema import Database, Schema
from ..core.values import NULL, Record

__all__ = ["DataFillerConfig", "fill_database", "PAPER_ROW_CAP"]

#: The paper's cap on generated base-table sizes.
PAPER_ROW_CAP = 50


@dataclass(frozen=True)
class DataFillerConfig:
    """Row-count, value-domain and null-rate knobs."""

    max_rows: int = PAPER_ROW_CAP
    min_rows: int = 0
    null_rate: float = 0.2
    min_value: int = 0
    max_value: int = 9

    def __post_init__(self) -> None:
        if self.min_rows < 0 or self.max_rows < self.min_rows:
            raise ValueError("need 0 <= min_rows <= max_rows")
        if not 0.0 <= self.null_rate <= 1.0:
            raise ValueError("null_rate must be in [0, 1]")


def fill_database(
    schema: Schema,
    rng: Optional[random.Random] = None,
    config: DataFillerConfig = DataFillerConfig(),
) -> Database:
    """Generate a random instance of ``schema``."""
    if rng is None:
        rng = random.Random()
    tables: Dict[str, List[Record]] = {}
    for name in schema.table_names:
        arity = schema.arity(name)
        row_count = rng.randint(config.min_rows, config.max_rows)
        rows: List[Record] = []
        for _ in range(row_count):
            rows.append(
                tuple(
                    NULL
                    if rng.random() < config.null_rate
                    else rng.randint(config.min_value, config.max_value)
                    for _ in range(arity)
                )
            )
        tables[name] = rows
    return Database(schema, tables)
