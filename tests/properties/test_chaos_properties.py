"""The chaos property battery: 300 seeded fault schedules against the
distributed campaign layer, checking the two invariants the whole design
hangs on.

1. **Digest invariance** — worker crashes, lease expiries, and duplicate
   submits may change *how* the campaign runs, but never *what* it
   computes: the merged ``outcome_digest`` is bit-identical to a
   fault-free fold of the same records.
2. **Faithful quarantine** — when a poison range exhausts its lease
   attempts, the campaign still terminates, and the quarantine report
   accounts for every unfinished seed exactly (no silent holes, no
   phantom completions).

Everything runs in-process (no HTTP): the Coordinator is driven directly
with cheap synthetic records, so 300 schedules stay well under a second
per hundred.
"""

import pytest

from repro.campaigns import Aggregator, CampaignSpec, Coordinator
from repro.faults import FaultPlan

SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)

TRIALS = 40
LEASE_TRIALS = 10
CHAOS_SEEDS = 300


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def record_for(seed):
    """A cheap, deterministic stand-in for a real trial record."""
    return {"seed": seed, "code": 1 if seed % 2 else 2}


def fault_free_digest():
    aggregator = Aggregator(SPEC.label, 0, TRIALS)
    for seed in range(TRIALS):
        aggregator.add(record_for(seed))
    return aggregator.finalize().outcome_digest


FAULT_FREE_DIGEST = fault_free_digest()


def run_chaotic_campaign(plan, clock, max_lease_attempts=1000):
    """Drive one campaign to completion under ``plan``'s fault schedule."""
    coordinator = Coordinator(
        SPEC,
        TRIALS,
        lease_trials=LEASE_TRIALS,
        lease_timeout_s=5.0,
        max_lease_attempts=max_lease_attempts,
        clock=clock,
    )
    safety = 0
    while not coordinator.done:
        safety += 1
        assert safety < 10_000, "campaign failed to terminate under faults"
        lease = coordinator.acquire("worker")
        if lease is None:
            # Everything issued but not finished: someone's lease must
            # expire before progress resumes.
            clock.advance(coordinator.lease_timeout_s + 1)
            coordinator.expire_stale()
            continue
        if plan.fire("worker.crash"):
            # The worker dies holding the lease; the range times out and
            # is re-issued to the next acquire.
            clock.advance(coordinator.lease_timeout_s + 1)
            coordinator.expire_stale()
            continue
        records = [record_for(seed) for seed in lease.seeds()]
        coordinator.submit(lease.lease_id, records, worker="worker")
        if plan.fire("worker.duplicate_submit"):
            # An at-least-once transport replays the whole batch.
            coordinator.submit(lease.lease_id, records, worker="worker")
    return coordinator


@pytest.mark.parametrize("block", range(0, CHAOS_SEEDS, 50))
def test_faulted_digest_matches_fault_free(block):
    """300 fault schedules, zero digest drift."""
    for chaos_seed in range(block, block + 50):
        plan = FaultPlan(
            chaos_seed,
            {"worker.crash": 0.2, "worker.duplicate_submit": 0.25},
        )
        clock = FakeClock()
        coordinator = run_chaotic_campaign(plan, clock)
        result = coordinator.result()
        assert result.completed == TRIALS, f"chaos seed {chaos_seed}"
        assert result.outcome_digest == FAULT_FREE_DIGEST, (
            f"chaos seed {chaos_seed}: digest drifted under faults"
        )
        assert coordinator.quarantined() == []


@pytest.mark.parametrize("chaos_seed", range(0, 300, 10))
def test_quarantine_accounts_for_every_unfinished_seed(chaos_seed):
    """A poison range quarantines; the report explains every missing seed."""
    plan = FaultPlan(chaos_seed, {"worker.crash": 0.15})
    clock = FakeClock()
    poison_lo = (chaos_seed % (TRIALS // LEASE_TRIALS)) * LEASE_TRIALS
    poison = (poison_lo, poison_lo + LEASE_TRIALS)
    coordinator = Coordinator(
        SPEC,
        TRIALS,
        lease_trials=LEASE_TRIALS,
        lease_timeout_s=5.0,
        max_lease_attempts=3,
        clock=clock,
    )
    safety = 0
    while not coordinator.done:
        safety += 1
        assert safety < 10_000, "campaign failed to terminate"
        lease = coordinator.acquire("worker")
        if lease is None:
            clock.advance(coordinator.lease_timeout_s + 1)
            coordinator.expire_stale()
            continue
        if (lease.lo, lease.hi) == poison or plan.fire("worker.crash"):
            clock.advance(coordinator.lease_timeout_s + 1)
            coordinator.expire_stale()
            continue
        coordinator.submit(
            lease.lease_id,
            [record_for(seed) for seed in lease.seeds()],
            worker="worker",
        )
    report = coordinator.quarantined()
    assert [(q["lo"], q["hi"]) for q in report] == [poison]
    assert report[0]["attempts"] == 3
    # Faithful accounting: quarantine pending + completed covers the
    # whole seed range, and the pending seeds really are unfolded.
    result = coordinator.result()
    assert report[0]["pending"] == TRIALS - result.completed
    for seed in range(*poison):
        assert coordinator.aggregator.code_at(seed) == 0
    for seed in range(TRIALS):
        if not (poison[0] <= seed < poison[1]):
            assert coordinator.aggregator.code_at(seed) != 0
