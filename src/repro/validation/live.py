"""Differential testing against a *live* DBMS: SQLite via the stdlib.

This is the paper's actual methodology pointed at a real engine: generate a
query, run it through the repository's implementations *and* through
``sqlite3``, and compare result bags.  Because SQLite's dialect is not the
paper's fragment, disagreement does not always mean a bug — the module's
job is to separate the three possible verdicts:

* **agree** — same bag of rows (3VL-aware: Python ``None`` ↔ ``NULL``);
* **classified divergence** — a *known, documented* dialect gap, reported
  with its class name (:data:`DIVERGENCE_CLASSES`) and counted separately;
* **mismatch** — an unclassified disagreement.  This is the signal the
  campaign exists to surface; CI gates on it being zero.

Known divergence classes
------------------------

``sqlite-no-bag-setop``
    SQLite has no ``INTERSECT ALL`` / ``EXCEPT ALL`` (bag set operations).
    Detected at translation time; the query never reaches SQLite.
``sqlite-no-from-column-aliases``
    SQLite rejects ``FROM (…) AS T(A, B)`` column aliasing (a construct the
    Figure 10 translation emits).  Also detected at translation time.
``dialect-ambiguity``
    Under the ``oracle`` variant the repository rejects ambiguous
    ``SELECT *`` output columns at compile time (as Oracle does); SQLite
    happily executes the query.
``dialect-type-order``
    The repository's ordered comparisons (``<`` etc.) reject int-vs-text
    operands as a compile-time type clash (as PostgreSQL does); SQLite
    orders values by storage class instead and returns rows.
``sqlite-limit``
    SQLite resource limits (expression-tree depth, parser stack, compound
    SELECT width) that the repository's evaluators do not share.

Comparison is by **bag**, not by column name: SQLite's ``description``
names follow its own aliasing rules and differ harmlessly from ℓ(Q).  Arity
still must match.  The repository's engine-vs-semantics comparison inside
the same trial keeps the full Section 4 criterion (names and order).
"""

from __future__ import annotations

import random
import sqlite3
import time
from collections import Counter
from typing import Dict, Iterable, Optional, Tuple

from .. import faults
from ..core.values import NULL, Null
from ..engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from ..ingest.generator import (
    ScenarioGenerator,
    ScenarioGeneratorConfig,
    config_for_scenario,
)
from ..ingest.scenario import Scenario
from ..semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from ..sql.ast import Query, Select, SetOp
from ..sql.printer import print_query
from ..sql.typecheck import check_query
from .compare import ERROR_AMBIGUOUS, ERROR_COMPILE, capture

__all__ = [
    "DIVERGENCE_CLASSES",
    "DialectGapError",
    "translate_query",
    "load_scenario",
    "classify_repro_error",
    "classify_sqlite_error",
    "LiveSqliteRunner",
]

DIVERGENCE_CLASSES = (
    "sqlite-no-bag-setop",
    "sqlite-no-from-column-aliases",
    "dialect-ambiguity",
    "dialect-type-order",
    "sqlite-limit",
)

#: Messages of SQLite resource-limit errors (class ``sqlite-limit``),
#: matched case-insensitively.
_SQLITE_LIMIT_MARKS = (
    "parser stack overflow",
    "expression tree is too large",
    "too many terms in compound select",
    "too many from clause terms",
)


class DialectGapError(Exception):
    """A query uses a construct SQLite cannot express; carries its class."""

    def __init__(self, divergence_class: str, message: str):
        super().__init__(message)
        self.divergence_class = divergence_class


# -- translation ---------------------------------------------------------------


def _scan_gaps(query: Query) -> None:
    if isinstance(query, SetOp):
        if query.all and query.op in ("INTERSECT", "EXCEPT"):
            raise DialectGapError(
                "sqlite-no-bag-setop",
                f"SQLite has no {query.op} ALL",
            )
        _scan_gaps(query.left)
        _scan_gaps(query.right)
        return
    assert isinstance(query, Select)
    for item in query.from_items:
        if item.column_aliases is not None:
            raise DialectGapError(
                "sqlite-no-from-column-aliases",
                f"SQLite rejects column aliases on FROM item {item.alias}",
            )
        if not item.is_base_table:
            _scan_gaps(item.table)
    _scan_condition_gaps(query.where)


def _scan_condition_gaps(condition) -> None:
    for attr in ("left", "right", "operand"):
        sub = getattr(condition, attr, None)
        if sub is not None and not isinstance(sub, (int, str)):
            _scan_condition_gaps(sub)
    sub_query = getattr(condition, "query", None)
    if sub_query is not None:
        _scan_gaps(sub_query)


def translate_query(query: Query) -> str:
    """SQLite SQL for a fully-annotated query of the validated fragment.

    The surface syntax is the ``postgres`` printing (SQLite understands
    ``EXCEPT``, not ``MINUS``); constructs SQLite cannot express raise
    :class:`DialectGapError` with their divergence class.
    """
    _scan_gaps(query)
    return print_query(query, "postgres")


# -- loading -------------------------------------------------------------------


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def load_scenario(conn: sqlite3.Connection, scenario: Scenario) -> None:
    """Create and fill the scenario's tables.

    Columns are declared **without** a type, giving them BLOB affinity: no
    coercion on insert, so SQLite stores exactly the ints and strings the
    repository's evaluators see and comparisons behave identically on both
    sides.
    """
    for name in scenario.schema.table_names:
        attrs = scenario.schema.attributes(name)
        conn.execute(
            f"CREATE TABLE {_quote(name)} "
            f"({', '.join(_quote(a) for a in attrs)})"
        )
        table = scenario.database.table(name)
        conn.executemany(
            f"INSERT INTO {_quote(name)} VALUES "
            f"({', '.join('?' for _ in attrs)})",
            (
                tuple(None if isinstance(v, Null) else v for v in record)
                for record in table.bag
            ),
        )


# -- classification ------------------------------------------------------------


def classify_repro_error(error: str, detail: str) -> Optional[str]:
    """The divergence class when the repository errors but SQLite runs."""
    if error == ERROR_AMBIGUOUS:
        return "dialect-ambiguity"
    if error == ERROR_COMPILE and "type clash" in detail:
        return "dialect-type-order"
    return None


#: Messages of *transient* SQLite errors, worth retrying: they come from
#: contention, not from the query, so a bounded retry either clears them
#: (restoring the fault-free outcome) or gives up with the error.
_SQLITE_TRANSIENT_MARKS = ("database is locked", "database table is locked")


def _is_transient(exc: sqlite3.OperationalError) -> bool:
    if isinstance(exc, faults.InjectedFault):
        return True
    message = str(exc).lower()
    return any(mark in message for mark in _SQLITE_TRANSIENT_MARKS)


def classify_sqlite_error(exc: sqlite3.Error) -> Optional[str]:
    """The divergence class when SQLite errors but the repository runs."""
    message = str(exc).lower()
    if any(mark in message for mark in _SQLITE_LIMIT_MARKS):
        return "sqlite-limit"
    return None


# -- bag comparison ------------------------------------------------------------


def _normalize(rows: Iterable[Tuple]) -> Counter:
    return Counter(
        tuple(NULL if value is None else value for value in row) for row in rows
    )


def bags_match(table, sqlite_rows) -> bool:
    """Same multiset of rows, after ``None`` → ``NULL`` normalization."""
    return table.bag.counts() == _normalize(sqlite_rows)


# -- the runner ----------------------------------------------------------------


class LiveSqliteRunner:
    """Per-trial comparator: repository engine (+semantics) vs live SQLite.

    ``variant`` selects the dialect pairing exactly as
    :class:`~repro.validation.runner.ValidationRunner` does.  When the
    scenario is small enough (``total_rows <= semantics_limit``) the formal
    semantics joins the comparison as a third side; above that the
    product-shaped evaluator is infeasible and the trial is engine-vs-SQLite
    only.
    """

    def __init__(
        self,
        scenario: Scenario,
        variant: str = "postgres",
        generator_config: Optional[ScenarioGeneratorConfig] = None,
        semantics_limit: int = 64,
        transient_retries: int = 2,
    ):
        if variant not in ("postgres", "oracle"):
            raise ValueError(f"unknown variant {variant!r}")
        self.scenario = scenario
        self.variant = variant
        self.transient_retries = max(0, int(transient_retries))
        self.generator_config = (
            generator_config
            if generator_config is not None
            else config_for_scenario(scenario)
        )
        if variant == "postgres":
            self.star_style = STAR_COMPOSITIONAL
            dialect = DIALECT_POSTGRES
        else:
            self.star_style = STAR_STANDARD
            dialect = DIALECT_ORACLE
        # Fresh query every trial: the plan cache can never hit (see the
        # identical setting in ValidationRunner).
        self.engine = Engine(scenario.schema, dialect, plan_cache_size=0)
        self.use_semantics = scenario.total_rows <= semantics_limit
        self.semantics = (
            SqlSemantics(scenario.schema, star_style=self.star_style)
            if self.use_semantics
            else None
        )
        self.conn = sqlite3.connect(":memory:")
        load_scenario(self.conn, self.scenario)
        self.label = f"live-sqlite[{variant}]"

    def close(self) -> None:
        self.conn.close()

    # -- trial ------------------------------------------------------------------

    def run_trial(self, seed: int) -> Dict[str, object]:
        from ..campaigns.backends import (
            CODE_AGREE,
            CODE_AGREE_BOTH_ERROR,
            CODE_CLASSIFIED,
            CODE_MISMATCH,
        )

        started = time.perf_counter()
        generator = ScenarioGenerator(
            self.scenario, self.generator_config, random.Random(seed)
        )
        query = generator.generate()

        def engine_side():
            check_query(query, self.scenario.schema, star_style=self.star_style)
            return self.engine.execute(query, self.scenario.database)

        engine_outcome = capture(engine_side)

        def record(code: int, **extra) -> Dict[str, object]:
            out: Dict[str, object] = {"seed": seed, "code": code}
            out.update(extra)
            out["ms"] = round((time.perf_counter() - started) * 1e3, 3)
            return out

        # Internal three-way leg first: our own implementations must agree
        # unconditionally — any gap here is a bug, never a dialect artifact.
        if self.semantics is not None:
            def semantics_side():
                check_query(
                    query, self.scenario.schema, star_style=self.star_style
                )
                return self.semantics.run(query, self.scenario.database)

            semantics_outcome = capture(semantics_side)
            if not semantics_outcome.agrees_with(engine_outcome):
                return record(
                    CODE_MISMATCH,
                    detail=(
                        "semantics vs engine disagree: "
                        f"{print_query(query)}"
                    ),
                )

        # SQLite leg.
        try:
            sql = translate_query(query)
        except DialectGapError as gap:
            return record(
                CODE_CLASSIFIED, **{"class": gap.divergence_class}
            )
        sqlite_rows = None
        sqlite_error: Optional[sqlite3.Error] = None
        # A transient OperationalError (the shape of "database is locked",
        # or an injected fault) is retried a bounded number of times: the
        # trial's outcome stays a pure function of its seed because a
        # retry that succeeds yields exactly the fault-free result, and a
        # *deterministic* error reproduces identically on every retry.
        for attempt in range(self.transient_retries + 1):
            sqlite_error = None
            try:
                if faults.fire("live.transient"):
                    raise faults.InjectedOperationalError(
                        "injected transient sqlite error"
                    )
                cursor = self.conn.execute(sql)
                sqlite_rows = cursor.fetchall()
                sqlite_arity = len(cursor.description)
                break
            except sqlite3.OperationalError as exc:
                sqlite_error = exc
                if attempt < self.transient_retries and _is_transient(exc):
                    continue
                break
            except sqlite3.Error as exc:
                sqlite_error = exc
                break

        if engine_outcome.is_error and sqlite_error is not None:
            return record(CODE_AGREE_BOTH_ERROR)
        if engine_outcome.is_error:
            divergence = classify_repro_error(
                engine_outcome.error, engine_outcome.detail
            )
            if divergence is not None:
                return record(CODE_CLASSIFIED, **{"class": divergence})
            return record(
                CODE_MISMATCH,
                detail=(
                    f"repro raised {engine_outcome.error} "
                    f"({engine_outcome.detail}) but SQLite returned "
                    f"{len(sqlite_rows)} row(s): {sql}"
                ),
            )
        if sqlite_error is not None:
            divergence = classify_sqlite_error(sqlite_error)
            if divergence is not None:
                return record(CODE_CLASSIFIED, **{"class": divergence})
            return record(
                CODE_MISMATCH,
                detail=(
                    f"SQLite raised {type(sqlite_error).__name__} "
                    f"({sqlite_error}) but repro returned "
                    f"{len(engine_outcome.table)} row(s): {sql}"
                ),
            )

        table = engine_outcome.table
        if table.arity != sqlite_arity:
            return record(
                CODE_MISMATCH,
                detail=(
                    f"arity differs: repro {table.arity} vs "
                    f"SQLite {sqlite_arity}: {sql}"
                ),
            )
        if not bags_match(table, sqlite_rows):
            return record(
                CODE_MISMATCH,
                detail=(
                    f"row bags differ ({len(table)} vs "
                    f"{len(sqlite_rows)} rows): {sql}"
                ),
            )
        return record(CODE_AGREE)
