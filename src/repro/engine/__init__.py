"""Independent reference engine (the PostgreSQL/Oracle stand-in of Section 4).

``Engine(schema, dialect)`` optimizes by default (pushdown, hash joins,
cached subquery probes) and executes plans through the closure-generating
compiler (:mod:`repro.engine.compile`).  Three ablation/alternative tiers
share the same plans and are digest-gated bit-identical:

* ``Engine(schema, dialect, optimize=False)`` — the paper's naive
  product-then-filter evaluation;
* ``Engine(schema, dialect, compiled=False)`` — the interpreted operator
  tree over optimized plans;
* ``Engine(schema, dialect, vectorized=True)`` — the columnar batch
  backend (:mod:`repro.engine.columnar`): operators exchange column
  vectors plus row-id selections, WHERE trees evaluate as paired 3VL
  (value, null) masks, and tuples materialize only at result emission.
"""

from .binding import bind_plan, reset_plan
from .columnar import compile_columnar
from .compile import compile_plan, compile_predicate
from .engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from .optimizer import optimize_plan
from .planner import CompiledQuery, Planner

__all__ = [
    "Engine",
    "Planner",
    "CompiledQuery",
    "optimize_plan",
    "compile_plan",
    "compile_predicate",
    "compile_columnar",
    "bind_plan",
    "reset_plan",
    "DIALECT_POSTGRES",
    "DIALECT_ORACLE",
]
