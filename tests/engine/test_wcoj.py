"""The third-generation optimizer: worst-case-optimal multiway joins
(``GenericJoin``), Selinger-style DP join ordering, and the closed
cardinality-feedback loop.

Covers operator selection (cyclic vs acyclic equality graphs), the
leapfrog enumeration itself (NULL handling, multi-column variables,
empty tries), both ablation knobs, build-side sharing of the tries
across executions, the columnar tier's deliberate stay-compiled
contract for the node, and the feedback loop's re-optimization of
cached plans — including the PR's acceptance demo: a cached plan whose
join order changes after the tables it was planned against reshape,
with bit-identical output before and after.
"""

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.engine.binding import bind_plan, iter_plan_nodes, unbind_plan
from repro.engine.operators import (
    CrossJoin,
    GenericJoin,
    HashJoin,
    StaticScan,
)
from repro.engine.optimizer import (
    DP_MAX_CHILDREN,
    _is_cyclic,
    estimate_rows,
    optimize_plan,
)
from repro.engine.planner import Planner
from repro.sql import annotate

SCHEMA = Schema(
    {"R": ("A", "B"), "S": ("A", "B"), "T": ("A", "B"), "U": ("A", "B")}
)

TRIANGLE = (
    "SELECT R.A, S.A, T.A FROM R, S, T "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = R.A"
)

CHAIN = "SELECT R.A, T.B FROM R, S, T WHERE R.B = S.A AND S.B = T.A"


def make_db(**tables):
    return Database(SCHEMA, {name: tables.get(name, []) for name in SCHEMA.table_names})


def triangle_db():
    return make_db(
        R=[(1, 10), (2, 20), (3, 10), (NULL, 10)],
        S=[(10, 100), (20, 100), (10, 200)],
        T=[(100, 1), (100, 2), (200, 9), (100, NULL)],
    )


def compiled(db, sql, dialect=DIALECT_POSTGRES):
    return Planner(SCHEMA, db, dialect).compile(annotate(sql, SCHEMA))


def walk(plan):
    for node, _pred in iter_plan_nodes(plan):
        if node is not None:
            yield node


# -- operator selection -------------------------------------------------------


def test_cyclic_from_selects_generic_join():
    plan = optimize_plan(compiled(triangle_db(), TRIANGLE).plan)
    joins = [node for node in walk(plan) if isinstance(node, GenericJoin)]
    assert len(joins) == 1
    assert len(joins[0].children) == 3
    # Three equivalence classes, each spanning two children.
    assert len(joins[0].variables) == 3
    assert all(len(var) == 2 for var in joins[0].variables)
    assert not any(isinstance(n, (HashJoin, CrossJoin)) for n in walk(plan))


def test_acyclic_chain_stays_binary():
    plan = optimize_plan(compiled(triangle_db(), CHAIN).plan)
    assert not any(isinstance(node, GenericJoin) for node in walk(plan))
    assert any(isinstance(node, HashJoin) for node in walk(plan))


def test_wcoj_knob_ablates_to_binary_joins():
    plan = optimize_plan(compiled(triangle_db(), TRIANGLE).plan, wcoj=False)
    assert not any(isinstance(node, GenericJoin) for node in walk(plan))
    assert any(isinstance(node, HashJoin) for node in walk(plan))


def test_parallel_edges_alone_are_not_a_cycle():
    # Two edges between the same pair of children collapse to one simple
    # edge — a composite-key binary hash join handles them.
    sql = (
        "SELECT R.A FROM R, S, T "
        "WHERE R.A = S.A AND R.B = S.B AND S.B = T.A"
    )
    plan = optimize_plan(compiled(triangle_db(), sql).plan)
    assert not any(isinstance(node, GenericJoin) for node in walk(plan))


def test_is_cyclic():
    assert _is_cyclic(3, [(0, 1), (1, 2), (2, 0)])
    assert not _is_cyclic(3, [(0, 1), (1, 2)])
    assert not _is_cyclic(4, [(0, 1), (1, 2), (2, 3)])
    assert _is_cyclic(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    # Parallel edges collapse; self-referential spans never arise (a
    # same-child equality stays a local filter, not a join edge).
    assert not _is_cyclic(2, [(0, 1), (0, 1)])


# -- the leapfrog enumeration -------------------------------------------------


def triangle_node(rows_r, rows_s, rows_t):
    # Variables in global column order: {R.B, S.A}, {S.B, T.A}, {R.A, T.B}.
    return GenericJoin(
        children=[
            StaticScan(rows_r, arity=2),
            StaticScan(rows_s, arity=2),
            StaticScan(rows_t, arity=2),
        ],
        variables=(
            ((0, 0), (2, 1)),  # R.A = T.B
            ((0, 1), (1, 0)),  # R.B = S.A
            ((1, 1), (2, 0)),  # S.B = T.A
        ),
    )


def test_generic_join_emits_concatenated_rows():
    node = triangle_node(
        [(1, 10)], [(10, 100)], [(100, 1)]
    )
    assert list(node.iter_rows(())) == [(1, 10, 10, 100, 100, 1)]


def test_generic_join_null_never_matches():
    # In engine-land SQL NULL is plain None (the binder converts the core
    # sentinel); a NULL variable column drops the row at trie build.
    node = triangle_node(
        [(1, 10), (None, 10), (1, None)],
        [(10, 100), (None, 100)],
        [(100, 1), (100, None), (None, 1)],
    )
    assert list(node.iter_rows(())) == [(1, 10, 10, 100, 100, 1)]


def test_generic_join_respects_typed_keys():
    # "1" and 1 are different keys, exactly as compare("=") treats them.
    node = triangle_node([("1", 10)], [(10, 100)], [(100, 1)])
    assert list(node.iter_rows(())) == []
    node = triangle_node([("1", 10)], [(10, 100)], [(100, "1")])
    assert list(node.iter_rows(())) == [("1", 10, 10, 100, 100, "1")]


def test_generic_join_duplicates_multiply():
    node = triangle_node(
        [(1, 10), (1, 10)], [(10, 100)], [(100, 1), (100, 1)]
    )
    assert len(list(node.iter_rows(()))) == 4


def test_generic_join_empty_child_short_circuits():
    node = triangle_node([(1, 10)], [], [(100, 1)])
    assert list(node.iter_rows(())) == []


def test_generic_join_multi_column_variable():
    # One child binds a variable with two local columns: rows where they
    # disagree (or are NULL) can never satisfy the class and are dropped
    # at trie build.
    node = GenericJoin(
        children=[StaticScan([(1, 1), (2, 3), (NULL, NULL)], arity=2),
                  StaticScan([(1,), (2,), (3,)], arity=1)],
        variables=(((0, 0), (0, 1), (1, 0)),),
    )
    assert list(node.iter_rows(())) == [(1, 1, 1)]


def test_generic_join_rebind_resets_tries():
    db1 = triangle_db()
    db2 = make_db(R=[], S=[], T=[])
    query = annotate(TRIANGLE, SCHEMA)
    engine = Engine(SCHEMA, DIALECT_POSTGRES, build_cache_size=0)
    first = engine.execute(query, db1)
    assert not first.is_empty()
    assert engine.execute(query, db2).is_empty()
    assert engine.execute(query, db1).same_as(first)


# -- DP join ordering ---------------------------------------------------------


def test_dp_reorders_adversarial_chain():
    # An acyclic chain whose FROM order puts the big pair first; the DP
    # must order the selective 2-row T early instead.
    db = make_db(
        R=[(i, i % 5) for i in range(40)],
        S=[(i % 5, i % 7) for i in range(40)],
        T=[(0, 1), (2, 3)],
    )
    sql = "SELECT R.A FROM R, S, T WHERE R.B = S.A AND S.B = T.A"
    plan = optimize_plan(compiled(db, sql).plan)
    assert plan._cost_sensitive
    fast = Engine(SCHEMA, DIALECT_POSTGRES).execute(annotate(sql, SCHEMA), db)
    naive = Engine(SCHEMA, DIALECT_POSTGRES, optimize=False).execute(
        annotate(sql, SCHEMA), db
    )
    assert fast.same_as(naive)


def test_dp_knob_falls_back_to_greedy():
    db = triangle_db()
    plan = optimize_plan(compiled(db, CHAIN).plan, dp_join_order=False)
    assert plan._cost_sensitive
    assert any(isinstance(node, HashJoin) for node in walk(plan))


def test_dp_cap_is_sane():
    # 2^n subset DP: the cap bounds planning time, greedy takes over above.
    assert 4 <= DP_MAX_CHILDREN <= 16


def test_estimate_rows_generic_join():
    node = triangle_node([(1, 10)] * 8, [(10, 100)] * 8, [(100, 1)] * 8)
    est = estimate_rows(node)
    # Product of children shrunk by one selectivity factor per equated pair.
    assert 0 < est < 8 * 8 * 8


# -- execution tiers and build-side sharing -----------------------------------


@pytest.mark.parametrize("dialect", (DIALECT_POSTGRES, DIALECT_ORACLE))
def test_all_tiers_agree_on_cyclic_queries(dialect):
    db = triangle_db()
    query = annotate(TRIANGLE, SCHEMA)
    expected = Engine(SCHEMA, dialect, optimize=False).execute(query, db)
    for kwargs in ({}, {"compiled": False}, {"vectorized": True}):
        got = Engine(SCHEMA, dialect, **kwargs).execute(query, db)
        assert got.same_as(expected), kwargs


def test_columnar_tier_routes_generic_join_through_fallback():
    """The documented stay-compiled contract: lowering a GenericJoin plan
    to a batch program executes the node's own row-wise enumeration (and
    thus shares its ``_tries`` state with every other tier)."""
    from repro.engine import compile_columnar

    db = triangle_db()
    plan = optimize_plan(compiled(db, TRIANGLE).plan)
    node = next(n for n in walk(plan) if isinstance(n, GenericJoin))
    bind_plan(plan, db)
    rows = sorted(compile_columnar(plan)(()))
    assert rows == sorted(plan.iter_rows(()))
    # The batch program populated the same memoized tries the row-wise
    # tiers use — proof it ran through the node, not a parallel lowering.
    assert node._tries is not None
    unbind_plan(plan)
    assert node._tries is None


def test_build_sides_shared_across_executions():
    """Repeated executions over equal table contents: the GenericJoin's
    tries are harvested into the build-side cache and restored instead of
    rebuilt (hits appear from the third run — the cache follows the
    established miss-harvest-hit protocol of the HashJoin carriers)."""
    query = annotate(TRIANGLE, SCHEMA)
    engine = Engine(SCHEMA, DIALECT_POSTGRES)
    first = engine.execute(query, triangle_db())
    for _ in range(2):
        assert engine.execute(query, triangle_db()).same_as(first)
    info = engine.build_cache_info()
    assert info["hits"] >= 1 and info["misses"] >= 1


# -- the cardinality-feedback loop --------------------------------------------


def test_feedback_reorders_cached_plan_bit_identically():
    """The acceptance demo: a cached plan planned against one data shape
    is re-optimized — different join order — when the tables reshape, and
    both orders produce identical rows."""
    query = annotate(CHAIN, SCHEMA)
    engine = Engine(SCHEMA, DIALECT_POSTGRES)
    naive = Engine(SCHEMA, DIALECT_POSTGRES, optimize=False)

    def db(nr, ns, nt):
        return make_db(
            R=[(i, i % 7) for i in range(nr)],
            S=[(i % 7, i % 5) for i in range(ns)],
            T=[(i % 5, i) for i in range(nt)],
        )

    skew_t = db(300, 300, 3)
    skew_r = db(3, 300, 300)

    def plan_shape():
        (compiled_query,) = engine._plan_cache.values()
        return repr(compiled_query.plan)

    first = engine.execute(query, skew_t)
    shape_t = plan_shape()
    assert engine.execute(query, skew_t).same_as(first)  # cache hit, no drift
    assert engine.cache_info()["reoptimizations"] == 0
    reshaped = engine.execute(query, skew_r)
    shape_r = plan_shape()
    assert engine.cache_info()["reoptimizations"] == 1
    assert shape_t != shape_r, "the reshape must change the join order"
    assert first.same_as(naive.execute(query, skew_t))
    assert reshaped.same_as(naive.execute(query, skew_r))


def test_feedback_is_seeded_at_bind_time():
    """Satellite: table cardinalities are observed *before* the first
    plan, so even a fresh engine's first execution orders joins from the
    real sizes — no DEFAULT_TABLE_ROWS fallback, no unbind needed."""
    engine = Engine(SCHEMA, DIALECT_POSTGRES)
    engine.execute(annotate("SELECT R.A FROM R", SCHEMA), triangle_db())
    observed = engine.cache_info()["observed_rows"]
    # Every schema table is seeded, not just the scanned one.
    assert observed == {"R": 4, "S": 3, "T": 4, "U": 0}


def test_reoptimization_not_triggered_without_drift():
    query = annotate(CHAIN, SCHEMA)
    engine = Engine(SCHEMA, DIALECT_POSTGRES)
    db = triangle_db()
    engine.execute(query, db)
    engine.execute(query, db)
    engine.execute(query, db)
    info = engine.cache_info()
    assert info["hits"] == 2
    assert info["reoptimizations"] == 0
