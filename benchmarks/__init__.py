"""Benchmark suite package (package form lets benches share conftest helpers)."""
