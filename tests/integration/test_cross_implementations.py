"""Cross-implementation agreement on random inputs: the repository's own
quadruple-check.  For each random query the following must agree (whenever
applicable): the formal semantics, the reference engine, the RA translation,
and the two-valued translations."""

import random

import pytest

from repro.algebra import RASemantics, desugar, is_pure, sql_to_ra, to_sqlra
from repro.core import validation_schema
from repro.core.errors import ReproError
from repro.generator import (
    DM_CONFIG,
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.semantics import SqlSemantics, TwoValuedTranslator
from repro.sql import check_query
from repro.validation import ValidationRunner

SCHEMA = validation_schema(5)
DATA = DataFillerConfig(max_rows=4)


@pytest.mark.parametrize("variant", ["postgres", "oracle"])
@pytest.mark.parametrize("base_seed", [0, 5000])
def test_semantics_vs_engine(variant, base_seed):
    runner = ValidationRunner(variant=variant, data_config=DATA)
    report = runner.run(trials=30, base_seed=base_seed)
    assert report.agreements == report.trials, [
        runner.explain(m) for m in report.mismatches
    ]


@pytest.mark.parametrize("seed", range(20))
def test_semantics_vs_full_ra_pipeline(seed):
    rng = random.Random(seed)
    query = QueryGenerator(SCHEMA, DM_CONFIG, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    expected = SqlSemantics(SCHEMA).run(query, db)
    ra = RASemantics(SCHEMA)
    sqlra = to_sqlra(query, SCHEMA)
    assert ra.evaluate(sqlra, db).same_as(expected)
    pure = desugar(sqlra, SCHEMA)
    assert is_pure(pure)
    assert ra.evaluate(pure, db).same_as(expected)


@pytest.mark.parametrize("seed", range(20))
def test_all_four_implementations_agree_on_dm_queries(seed):
    """Formal semantics = engine = SQL-RA = pure RA on one input."""
    rng = random.Random(seed + 100)
    query = QueryGenerator(SCHEMA, DM_CONFIG, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    from repro.engine import Engine

    reference = SqlSemantics(SCHEMA).run(query, db)
    assert Engine(SCHEMA, "postgres").execute(query, db).same_as(reference)
    assert Engine(SCHEMA, "oracle").execute(query, db).same_as(reference)
    assert RASemantics(SCHEMA).evaluate(sql_to_ra(query, SCHEMA), db).same_as(reference)


@pytest.mark.parametrize("mode", ["conflating", "syntactic"])
def test_two_valued_translation_vs_engine(mode):
    """⟦Q⟧ is computed by the *engine*, the translated Q′ by the 2VL
    semantics — agreement crosses both implementations and Theorem 2."""
    from repro.engine import Engine

    engine = Engine(SCHEMA, "postgres")
    matched = 0
    for seed in range(25):
        rng = random.Random(seed + 999)
        query = QueryGenerator(SCHEMA, PAPER_CONFIG, rng).generate()
        db = fill_database(SCHEMA, rng, DATA)
        try:
            check_query(query, SCHEMA, star_style="standard")
        except ReproError:
            continue
        expected = engine.execute(query, db)
        translator = TwoValuedTranslator(SCHEMA, mode)
        translated = translator.translate_query(query)
        got = SqlSemantics(SCHEMA, logic=translator.logic).run(translated, db)
        assert got.same_as(expected)
        matched += 1
    assert matched > 10  # the skip branch must not dominate
