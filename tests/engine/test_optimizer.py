"""The plan-rewrite optimizer: structure and semantics of the rewrites."""

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.engine.expressions import ColumnRef, ComparePred, IsNullPred
from repro.engine.operators import (
    CachedSubplan,
    CrossJoin,
    ExistsProbe,
    FilterOp,
    HashJoin,
    InPred,
    ProjectOp,
    SemiJoinProbe,
    StaticScan,
    typed_key,
)
from repro.engine.optimizer import optimize_plan
from repro.engine.planner import Planner
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",), "T": ("C", "D")})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {
            "R": [(1, 2), (NULL, 4), (3, 2)],
            "S": [(1,), (3,), (NULL,)],
            "T": [(2, 1), (2, NULL), (5, 3)],
        },
    )


def compiled(schema, db, sql, dialect=DIALECT_POSTGRES):
    return Planner(schema, db, dialect).compile(annotate(sql, schema))


def both_ways(schema, db, sql, dialect=DIALECT_POSTGRES):
    fast = Engine(schema, dialect).execute(annotate(sql, schema), db)
    naive = Engine(schema, dialect, optimize=False).execute(annotate(sql, schema), db)
    return fast, naive


# -- structural expectations -------------------------------------------------


def test_equality_conjunct_becomes_hash_join(schema, db):
    c = compiled(schema, db, "SELECT R.A FROM R, S WHERE R.A = S.A")
    plan = optimize_plan(c.plan)
    assert isinstance(plan, ProjectOp)
    assert isinstance(plan.child, HashJoin)
    assert plan.child.left_keys == (0,) and plan.child.right_keys == (0,)


def test_single_table_conjunct_pushed_below_join(schema, db):
    c = compiled(schema, db, "SELECT R.A FROM R, T WHERE R.B = 2 AND T.C = 5")
    plan = optimize_plan(c.plan)
    # No equality across children: a cross join of two filtered scans.
    join = plan.child
    assert isinstance(join, CrossJoin)
    left, right = join.children
    assert isinstance(left, FilterOp) and isinstance(left.child, StaticScan)
    assert isinstance(right, FilterOp) and isinstance(right.child, StaticScan)
    # The pushed T-filter is re-indexed to the child's local layout.
    pred = right.predicate
    assert isinstance(pred, ComparePred)
    assert isinstance(pred.left, ColumnRef) and pred.left.index == 0


def test_closed_exists_becomes_cached_probe(schema, db):
    c = compiled(schema, db, "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S)")
    plan = optimize_plan(c.plan)
    probe = plan.child.predicate
    assert isinstance(probe, ExistsProbe) and probe.closed


def test_correlated_exists_probe_not_closed(schema, db):
    c = compiled(
        schema, db, "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)"
    )
    plan = optimize_plan(c.plan)
    probe = plan.child.predicate
    assert isinstance(probe, ExistsProbe) and not probe.closed


def test_closed_in_becomes_semi_join_probe(schema, db):
    c = compiled(schema, db, "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)")
    plan = optimize_plan(c.plan)
    probe = plan.child.predicate
    assert isinstance(probe, SemiJoinProbe)


def test_closed_from_subquery_cached_inside_correlated_exists(schema, db):
    c = compiled(
        schema,
        db,
        "SELECT R.A FROM R WHERE EXISTS "
        "(SELECT S.A FROM S, (SELECT T.C AS C FROM T) AS U "
        "WHERE S.A = R.A AND U.C = 2)",
    )
    plan = optimize_plan(c.plan)
    probe = plan.child.predicate
    # The EXISTS is correlated, but its closed FROM-subquery is materialized
    # once instead of once per probing row.
    assert not probe.closed
    cached = [
        node
        for node in _walk(probe.subplan)
        if isinstance(node, CachedSubplan)
    ]
    assert cached


def _walk(plan):
    yield plan
    for attr in ("child", "left", "right"):
        node = getattr(plan, attr, None)
        if node is not None:
            yield from _walk(node)
    for node in getattr(plan, "children", ()):
        yield from _walk(node)


def test_correlated_in_stays_in_pred(schema, db):
    c = compiled(
        schema,
        db,
        "SELECT R.A FROM R WHERE R.B IN (SELECT T.C FROM T WHERE T.D = R.A)",
    )
    plan = optimize_plan(c.plan)
    assert isinstance(plan.child.predicate, InPred)


def test_opaque_predicates_survive_untouched(schema, db):
    marker = lambda row, outers: True  # noqa: E731 - deliberately opaque
    plan = FilterOp(StaticScan([(1,)], arity=1), marker)
    optimized = optimize_plan(plan)
    assert isinstance(optimized, FilterOp) and optimized.predicate is marker


# -- semantics of the new operators ------------------------------------------


def test_typed_key_rejects_nulls_and_type_confusion():
    assert typed_key((1, "x")) == ((False, 1), (True, "x"))
    assert typed_key((1, None)) is None
    assert typed_key((1,)) != typed_key(("1",))


def test_hash_join_null_keys_never_match():
    left = StaticScan([(1,), (None,)], arity=1)
    right = StaticScan([(1,), (None,)], arity=1)
    join = HashJoin(left, right, (0,), (0,))
    assert join.rows(()) == [(1, 1)]


def test_hash_join_multiplicities():
    left = StaticScan([(1,), (1,)], arity=1)
    right = StaticScan([(1, 7), (1, 8)], arity=2)
    join = HashJoin(left, right, (0,), (0,))
    assert sorted(join.rows(())) == [(1, 1, 7), (1, 1, 7), (1, 1, 8), (1, 1, 8)]


def test_cached_subplan_materializes_once():
    calls = []

    class Spy(StaticScan):
        def rows(self, outers):
            calls.append(1)
            return super().rows(outers)

    cached = CachedSubplan(Spy([(1,)], arity=1))
    assert cached.rows(()) == [(1,)]
    assert cached.rows(()) == [(1,)]
    assert len(calls) == 1


def test_semi_join_probe_three_valued_null_handling(schema, db):
    # NOT IN against a set containing NULL is never satisfied (3VL).
    fast, naive = both_ways(
        schema, db, "SELECT R.B FROM R WHERE R.B NOT IN (SELECT S.A FROM S)"
    )
    assert fast.same_as(naive)
    assert fast.is_empty()


def test_semi_join_probe_null_probe_value(schema, db):
    fast, naive = both_ways(
        schema, db, "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)"
    )
    assert fast.same_as(naive)
    assert sorted(fast.bag) == [(1,), (3,)]


# -- end-to-end equivalence on targeted shapes --------------------------------

QUERIES = [
    "SELECT R.A FROM R, S WHERE R.A = S.A",
    "SELECT R.A, T.D FROM R, T WHERE R.B = T.C AND T.D IS NULL",
    "SELECT R.A FROM R, S, T WHERE R.A = S.A AND R.B = T.C",
    "SELECT R.A FROM R, T WHERE R.A < T.C AND T.C = 2",
    "SELECT DISTINCT R.B FROM R, S WHERE R.A = S.A OR R.B = 2",
    "SELECT R.A FROM R WHERE EXISTS (SELECT T.C FROM T WHERE T.C = R.B)",
    "SELECT R.A FROM R WHERE R.A NOT IN (SELECT T.D FROM T)",
    "SELECT S.A FROM S WHERE EXISTS (SELECT * FROM R, T WHERE R.A = T.D AND R.A = S.A)",
    "SELECT R.A FROM R, (SELECT S.A AS X FROM S) AS U WHERE R.A = U.X",
    "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S) AND R.B = 2",
]


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("dialect", [DIALECT_POSTGRES, DIALECT_ORACLE])
def test_optimized_equals_naive(schema, db, sql, dialect):
    fast, naive = both_ways(schema, db, sql, dialect)
    assert fast.same_as(naive)
