"""Physical operators of the reference engine: a tiny iterator model.

Each operator produces a list of rows given the stack of outer rows (needed
because any operator may sit inside a correlated subquery and reference
enclosing rows through compiled :class:`~repro.engine.expressions.ColumnRef`
expressions).  Multisets are handled with :class:`collections.Counter`, a
representation intentionally different from :class:`repro.core.bag.Bag`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .expressions import OuterStack, Row, RowExpr

__all__ = [
    "PlanNode",
    "StaticScan",
    "CrossJoin",
    "FilterOp",
    "ProjectOp",
    "DistinctOp",
    "SetOpNode",
]


class PlanNode:
    """Base class of all physical operators."""

    def rows(self, outers: OuterStack) -> List[Row]:
        raise NotImplementedError


@dataclass
class StaticScan(PlanNode):
    """Scan of a materialized base table (rows captured at plan bind time)."""

    data: List[Row]

    def rows(self, outers: OuterStack) -> List[Row]:
        return self.data


@dataclass
class CrossJoin(PlanNode):
    """Cartesian product of one or more children, concatenating rows."""

    children: List[PlanNode]

    def rows(self, outers: OuterStack) -> List[Row]:
        result: List[Row] = [()]
        for child in self.children:
            child_rows = child.rows(outers)
            result = [left + right for left in result for right in child_rows]
            if not result:
                return []
        return result


@dataclass
class FilterOp(PlanNode):
    """Keeps the rows for which the predicate returns True (not None/False)."""

    child: PlanNode
    predicate: Callable[[Row, OuterStack], Optional[bool]]

    def rows(self, outers: OuterStack) -> List[Row]:
        return [
            row
            for row in self.child.rows(outers)
            if self.predicate(row, outers) is True
        ]


@dataclass
class ProjectOp(PlanNode):
    """Evaluates a list of output expressions per input row."""

    child: PlanNode
    expressions: Sequence[RowExpr]

    def rows(self, outers: OuterStack) -> List[Row]:
        return [
            tuple(expr(row, outers) for expr in self.expressions)
            for row in self.child.rows(outers)
        ]


@dataclass
class DistinctOp(PlanNode):
    """Removes duplicates, keeping first-seen order."""

    child: PlanNode

    def rows(self, outers: OuterStack) -> List[Row]:
        seen = set()
        result: List[Row] = []
        for row in self.child.rows(outers):
            if row not in seen:
                seen.add(row)
                result.append(row)
        return result


@dataclass
class SetOpNode(PlanNode):
    """UNION / INTERSECT / EXCEPT with and without ALL, via Counters."""

    op: str
    all: bool
    left: PlanNode
    right: PlanNode

    def rows(self, outers: OuterStack) -> List[Row]:
        left_rows = self.left.rows(outers)
        right_rows = self.right.rows(outers)
        left_counts = Counter(left_rows)
        right_counts = Counter(right_rows)
        result: Counter = Counter()
        if self.op == "UNION":
            result = left_counts + right_counts
            if not self.all:
                result = Counter(dict.fromkeys(result, 1))
        elif self.op == "INTERSECT":
            result = left_counts & right_counts
            if not self.all:
                result = Counter(dict.fromkeys(result, 1))
        elif self.op == "EXCEPT":
            if self.all:
                result = left_counts - right_counts
            else:
                dedup_left = Counter(dict.fromkeys(left_counts, 1))
                result = dedup_left - right_counts
        else:  # pragma: no cover - guarded at compile time
            raise ValueError(f"unknown set operation {self.op}")
        return list(result.elements())
