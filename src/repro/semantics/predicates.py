"""The collection P of predicates on base types (Section 2).

The basic SQL fragment is parameterized by a set P of predicates; equality is
always available, and other predicates may be type-specific.  This module
provides a :class:`PredicateRegistry` with the built-in comparisons
``=, <>, <, <=, >, >=`` and SQL's ``LIKE`` for strings, plus registration of
user predicates of any arity.

Predicate functions receive *non-null constants only*: the null-handling
rules (unknown, or false under the two-valued semantics) are applied by the
evaluator before the function is consulted, exactly as in Figure 6 where
``P(t1, …, tk)`` is only meaningfully evaluated when no argument is NULL.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Sequence, Tuple

from ..core.errors import CompileError
from ..core.values import Constant

__all__ = ["PredicateRegistry", "default_registry", "sql_like", "is_total_builtin"]


def _same_type(a: Constant, b: Constant) -> None:
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(
            f"type clash in comparison: {a!r} vs {b!r} (queries are assumed "
            f"to have been type-checked)"
        )


def _eq(a: Constant, b: Constant) -> bool:
    return type(a) is type(b) and a == b or (
        not isinstance(a, str) and not isinstance(b, str) and a == b
    )


def _ne(a: Constant, b: Constant) -> bool:
    return not _eq(a, b)


def _lt(a: Constant, b: Constant) -> bool:
    _same_type(a, b)
    return a < b


def _le(a: Constant, b: Constant) -> bool:
    _same_type(a, b)
    return a <= b


def _gt(a: Constant, b: Constant) -> bool:
    _same_type(a, b)
    return a > b


def _ge(a: Constant, b: Constant) -> bool:
    _same_type(a, b)
    return a >= b


def sql_like(value: Constant, pattern: Constant) -> bool:
    """SQL's LIKE: ``%`` matches any sequence, ``_`` any single character."""
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise CompileError("LIKE is defined on strings only")
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


#: The built-in predicates that are total: no argument values can make them
#: raise (the ordered comparisons and LIKE signal type clashes, these never do).
_TOTAL_BUILTINS = {"=": _eq, "<>": _ne}


class PredicateRegistry:
    """A mapping from predicate names to (arity, Python function) pairs.

    ``version`` counts mutations; analyses that depend on what a name is
    bound to (e.g. the evaluator's hoisting analysis, which asks
    :func:`is_total_builtin`) cache it to detect staleness.
    """

    def __init__(self) -> None:
        self._predicates: Dict[str, Tuple[int, Callable[..., bool]]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every (re-)registration."""
        return self._version

    def register(self, name: str, arity: int, fn: Callable[..., bool]) -> None:
        if arity < 1:
            raise ValueError("predicates have arity >= 1")
        self._predicates[name] = (arity, fn)
        self._version += 1

    def __contains__(self, name: str) -> bool:
        return name in self._predicates

    def arity(self, name: str) -> int:
        self._require(name)
        return self._predicates[name][0]

    def holds(self, name: str, args: Sequence[Constant]) -> bool:
        """Apply predicate ``name`` to non-null constants."""
        arity, fn = self._require(name)
        if len(args) != arity:
            raise CompileError(
                f"predicate {name} has arity {arity}, applied to {len(args)} arguments"
            )
        return bool(fn(*args))

    def _require(self, name: str) -> Tuple[int, Callable[..., bool]]:
        try:
            return self._predicates[name]
        except KeyError:
            raise CompileError(f"unknown predicate: {name}") from None


def is_total_builtin(registry: PredicateRegistry, name: str) -> bool:
    """Whether ``name`` is bound to a built-in *total* binary predicate.

    The evaluator's interleaved FROM/WHERE fast path may only hoist
    conjuncts that provably cannot raise; ``=`` and ``<>`` are total (they
    never signal a type clash), but only when the registry still maps them
    to the functions of this module — a user registration voids the claim.
    """
    entry = registry._predicates.get(name)
    return entry is not None and entry == (2, _TOTAL_BUILTINS.get(name))


def default_registry() -> PredicateRegistry:
    """The built-in P: the six comparisons and LIKE."""
    registry = PredicateRegistry()
    registry.register("=", 2, _eq)
    registry.register("<>", 2, _ne)
    registry.register("<", 2, _lt)
    registry.register("<=", 2, _le)
    registry.register(">", 2, _gt)
    registry.register(">=", 2, _ge)
    registry.register("LIKE", 2, sql_like)
    return registry
