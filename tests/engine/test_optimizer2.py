"""The second-generation optimizer: join ordering, hash set operations,
filter sinking through projections, and correlated FROM-subquery memos."""

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.engine.operators import (
    CachedSubplan,
    CrossJoin,
    FilterOp,
    HashJoin,
    HashSetOp,
    MemoSubplan,
    ProjectOp,
    RemapOp,
    SetOpNode,
    StaticScan,
)
from repro.engine.optimizer import estimate_rows, optimize_plan
from repro.engine.planner import Planner
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"BIG": ("A", "B"), "BIG2": ("A", "B"), "TINY": ("A", "B")})


@pytest.fixture
def db(schema):
    big = [(i % 4, i) for i in range(30)]
    big2 = [(i % 3, i + 1) for i in range(30)]
    tiny = [(1, 2), (2, 0), (NULL, 1)]
    return Database(schema, {"BIG": big, "BIG2": big2, "TINY": tiny})


def compiled(schema, db, sql, dialect=DIALECT_POSTGRES):
    return Planner(schema, db, dialect).compile(annotate(sql, schema))


def both_ways(schema, db, sql, dialect=DIALECT_POSTGRES, **options):
    fast = Engine(schema, dialect, optimizer_options=options or None).execute(
        annotate(sql, schema), db
    )
    naive = Engine(schema, dialect, optimize=False).execute(annotate(sql, schema), db)
    return fast, naive


def walk(plan):
    """Every plan node, descending into predicate subplans too."""
    from repro.engine.binding import iter_plan_nodes

    for node, _pred in iter_plan_nodes(plan):
        if node is not None:
            yield node


# -- join ordering ------------------------------------------------------------


ADVERSARIAL = (
    "SELECT BIG.B FROM BIG, BIG2, TINY "
    "WHERE TINY.A = BIG.A AND TINY.B = BIG2.A"
)


def test_adversarial_from_order_is_reordered(schema, db):
    plan = optimize_plan(compiled(schema, db, ADVERSARIAL).plan)
    remaps = [node for node in walk(plan) if isinstance(node, RemapOp)]
    assert remaps, "expected a RemapOp above the reordered join tree"
    # The reordered tree joins through hash joins, never a cross product.
    assert not any(isinstance(node, CrossJoin) for node in walk(plan))
    joins = [node for node in walk(plan) if isinstance(node, HashJoin)]
    assert len(joins) == 2


def test_reordering_is_ablatable(schema, db):
    plan = optimize_plan(compiled(schema, db, ADVERSARIAL).plan, reorder_joins=False)
    assert not any(isinstance(node, RemapOp) for node in walk(plan))
    # FROM order: BIG x BIG2 has no usable edge, so a cross join remains.
    assert any(isinstance(node, CrossJoin) for node in walk(plan))


def test_good_from_order_keeps_remap_free_plan(schema, db):
    sql = (
        "SELECT TINY.B FROM TINY, BIG, BIG2 "
        "WHERE TINY.A = BIG.A AND TINY.B = BIG2.A"
    )
    plan = optimize_plan(compiled(schema, db, sql).plan)
    assert not any(isinstance(node, RemapOp) for node in walk(plan))


def test_reordered_join_rows_match_naive(schema, db):
    fast, naive = both_ways(schema, db, ADVERSARIAL)
    assert fast.same_as(naive)
    assert not fast.is_empty()


def test_reordered_join_with_correlated_probe(schema, db):
    # The EXISTS probe references the full FROM row; it must still see the
    # original column layout above the remap.
    sql = (
        "SELECT BIG.B FROM BIG, BIG2, TINY "
        "WHERE TINY.A = BIG.A AND TINY.B = BIG2.A "
        "AND EXISTS (SELECT TINY.A FROM TINY WHERE TINY.A = BIG2.B)"
    )
    for dialect in (DIALECT_POSTGRES, DIALECT_ORACLE):
        fast, naive = both_ways(schema, db, sql, dialect)
        assert fast.same_as(naive)


def test_remap_op_restores_layout():
    scan = StaticScan([(1, 2, 3)], arity=3)
    assert RemapOp(scan, (2, 0, 1)).rows(()) == [(3, 1, 2)]
    assert RemapOp(scan, (2, 0, 1)).width() == 3


def test_estimate_rows_uses_bound_sizes(schema, db):
    c = compiled(schema, db, "SELECT BIG.A FROM BIG")
    # ProjectOp over a 30-row StaticScan.
    assert estimate_rows(c.plan) == 30.0
    filtered = compiled(schema, db, "SELECT TINY.A FROM TINY WHERE TINY.A = 1")
    assert estimate_rows(optimize_plan(filtered.plan)) < 3.0


# -- hash set operations ------------------------------------------------------


def test_setop_becomes_hash_setop(schema, db):
    c = compiled(schema, db, "SELECT BIG.A FROM BIG UNION SELECT BIG2.A FROM BIG2")
    assert isinstance(optimize_plan(c.plan), HashSetOp)
    assert isinstance(
        optimize_plan(c.plan, hash_setops=False), SetOpNode
    )


@pytest.mark.parametrize("op", ["UNION", "INTERSECT", "EXCEPT"])
@pytest.mark.parametrize("all_", [False, True])
def test_hash_setop_matches_counted_reference(op, all_):
    left = StaticScan([(1,), (1,), (2,), (None,), (None,), (3,)], arity=1)
    right = StaticScan([(1,), (None,), (4,), (4,)], arity=1)
    hashed = HashSetOp(op, all_, left, right)
    counted = SetOpNode(op, all_, left, right)
    assert sorted(hashed.rows(()), key=repr) == sorted(counted.rows(()), key=repr)


def test_hash_setop_streams_left_side():
    class Exploding(StaticScan):
        def iter_rows(self, outers):
            yield (1,)
            raise AssertionError("streaming consumer must stop at one row")

    union = HashSetOp(
        "UNION", True, Exploding([], arity=1), StaticScan([(2,)], arity=1)
    )
    assert next(union.iter_rows(())) == (1,)


# -- filter sinking and FROM-subquery memos -----------------------------------


def test_filter_sinks_through_projection_into_cached_subquery(schema, db):
    sql = (
        "SELECT BIG.A FROM BIG, (SELECT TINY.A AS X FROM TINY) AS U "
        "WHERE U.X = 1 AND BIG.B = 2"
    )
    plan = optimize_plan(compiled(schema, db, sql).plan)
    cached = [node for node in walk(plan) if isinstance(node, CachedSubplan)]
    assert cached
    # The U.X = 1 filter moved inside the materialization, below the
    # subquery's projection.
    inner = cached[0].child
    assert isinstance(inner, ProjectOp)
    assert isinstance(inner.child, FilterOp)
    fast, naive = both_ways(schema, db, sql)
    assert fast.same_as(naive)


def test_correlated_from_subquery_is_memoized(schema, db):
    sql = (
        "SELECT BIG.A FROM BIG WHERE EXISTS "
        "(SELECT U.Y FROM (SELECT TINY.B AS Y FROM TINY WHERE TINY.A = BIG.A) AS U)"
    )
    plan = optimize_plan(compiled(schema, db, sql).plan)
    memos = [node for node in walk(plan) if isinstance(node, MemoSubplan)]
    assert memos, "correlated FROM-subquery should be wrapped in MemoSubplan"
    fast, naive = both_ways(schema, db, sql)
    assert fast.same_as(naive)


def test_memo_subplan_evaluates_once_per_binding():
    calls = []

    class Spy(StaticScan):
        def rows(self, outers):
            calls.append(outers)
            return super().rows(outers)

    memo = MemoSubplan(Spy([(1,)], arity=1), ((1, 0),))
    outer_a, outer_b = (7, 0), (8, 0)
    memo.rows((outer_a,))
    memo.rows((outer_a,))
    memo.rows(((7, 99),))  # same binding value at (1, 0): replayed
    assert len(calls) == 1
    memo.rows((outer_b,))
    assert len(calls) == 2


# -- end-to-end equivalence on targeted shapes --------------------------------

QUERIES = [
    ADVERSARIAL,
    "SELECT BIG.A FROM BIG, BIG2, TINY WHERE TINY.A = BIG.A AND BIG.B = BIG2.B",
    "SELECT BIG.B, TINY.A FROM BIG, TINY WHERE TINY.B = BIG.A AND TINY.A IS NULL",
    "SELECT BIG.A FROM BIG UNION ALL SELECT BIG2.A FROM BIG2",
    "SELECT DISTINCT BIG.A FROM BIG INTERSECT SELECT TINY.A FROM TINY",
    "SELECT BIG.A, BIG.B FROM BIG EXCEPT SELECT BIG2.A, BIG2.B FROM BIG2",
    "SELECT TINY.A FROM TINY WHERE EXISTS "
    "(SELECT BIG.A FROM BIG WHERE BIG.A = TINY.A "
    "UNION ALL SELECT BIG2.A FROM BIG2 WHERE BIG2.A = TINY.B)",
    "SELECT BIG.A FROM BIG, (SELECT TINY.A AS X, TINY.B AS Y FROM TINY) AS U "
    "WHERE U.X = BIG.A AND U.Y = 2",
]


@pytest.mark.parametrize("sql", QUERIES)
@pytest.mark.parametrize("dialect", [DIALECT_POSTGRES, DIALECT_ORACLE])
def test_second_gen_optimizer_equals_naive(schema, db, sql, dialect):
    fast, naive = both_ways(schema, db, sql, dialect)
    assert fast.same_as(naive)


@pytest.mark.parametrize(
    "options",
    [{"reorder_joins": False}, {"hash_setops": False}],
    ids=["no-reorder", "no-hash-setops"],
)
@pytest.mark.parametrize("sql", QUERIES)
def test_ablated_optimizer_equals_naive(schema, db, sql, options):
    fast, naive = both_ways(schema, db, sql, **options)
    assert fast.same_as(naive)
