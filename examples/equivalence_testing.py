"""Testing query rewritings with the formal semantics.

The paper's central motivation: "a natural language specification ... does
not lend itself to proper formal reasoning, which is necessary to derive
language equivalences and optimization rules".  With an executable
semantics, a claimed rewriting can be checked on thousands of random
databases — the lightweight cousin of the Cosette prover the paper cites.

This script checks three candidate rewritings:

1. the textbook NOT IN → NOT EXISTS translation (wrong under NULLs),
2. pushing DISTINCT below a selection (correct),
3. replacing INTERSECT ALL by a join-like IN filter (wrong under bags).

Run:  python examples/equivalence_testing.py
"""

from repro.applications import check_equivalence
from repro.core import NULL, Database, Schema

schema = Schema({"R": ("A",), "S": ("A",)})

# A seed database with NULLs in strategic places (the paper's Example 1).
example1 = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})

CANDIDATES = [
    (
        "NOT IN  ≟  NOT EXISTS (Example 1's wrong rewriting)",
        "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
        "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS "
        "(SELECT * FROM S WHERE S.A = R.A)",
    ),
    (
        "σ over DISTINCT  ≟  DISTINCT over σ (a correct rule)",
        "SELECT DISTINCT U.A FROM (SELECT R.A FROM R WHERE R.A > 3) AS U",
        "SELECT U.A FROM (SELECT DISTINCT R.A FROM R) AS U WHERE U.A > 3",
    ),
    (
        "INTERSECT ALL  ≟  IN-filter (ignores multiplicities)",
        "SELECT R.A FROM R INTERSECT ALL SELECT S.A FROM S",
        "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)",
    ),
]

for title, left, right in CANDIDATES:
    print(f"\n=== {title}")
    print(f"  left : {left}")
    print(f"  right: {right}")
    report = check_equivalence(
        left, right, schema, trials=500, extra_databases=[example1]
    )
    print(f"  -> {report.describe()}")
    if report.counterexample is not None:
        r_rows = sorted(report.counterexample.table("R").bag, key=repr)
        s_rows = sorted(report.counterexample.table("S").bag, key=repr)
        print(f"     counterexample: R = {r_rows}, S = {s_rows}")

print(
    "\nTwo of the three 'obvious' rewritings are refuted with concrete\n"
    "counterexamples; only the DISTINCT/selection commutation survives."
)
