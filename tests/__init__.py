"""Test-suite package root."""
