"""Experiment PERF (engineering): throughput of the main components.

The paper notes its implementation "is not for performance" (it computes
Cartesian products); these microbenchmarks document the cost of each
pipeline stage so regressions are visible.  pytest-benchmark measures:

* random query generation,
* parsing + printing round trips,
* formal-semantics evaluation,
* reference-engine execution,
* the full Theorem 1 translation (to SQL-RA + desugaring).
"""

import random

import pytest

from repro.algebra import desugar, to_sqlra
from repro.core import validation_schema
from repro.engine import Engine
from repro.generator import (
    DM_CONFIG,
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.semantics import STAR_COMPOSITIONAL, SqlSemantics
from repro.sql import parse_query, print_query

SCHEMA = validation_schema()


def make_query(seed, config=PAPER_CONFIG):
    return QueryGenerator(SCHEMA, config, random.Random(seed)).generate()


def make_db(seed, rows=5):
    return fill_database(SCHEMA, random.Random(seed), DataFillerConfig(max_rows=rows))


def test_bench_query_generation(benchmark):
    generator = QueryGenerator(SCHEMA)
    counter = iter(range(10_000_000))

    def generate():
        return generator.generate(seed=next(counter))

    benchmark(generate)


def test_bench_parse_print_roundtrip(benchmark):
    texts = [print_query(make_query(seed)) for seed in range(50)]

    def roundtrip():
        for text in texts:
            print_query(parse_query(text))

    benchmark(roundtrip)


def test_bench_semantics_evaluation(benchmark):
    sem = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
    pairs = [(make_query(seed), make_db(seed)) for seed in range(20)]

    def evaluate():
        for query, db in pairs:
            try:
                sem.run(query, db)
            except Exception:
                pass

    benchmark(evaluate)


def test_bench_engine_execution(benchmark):
    engine = Engine(SCHEMA, "postgres")
    pairs = [(make_query(seed), make_db(seed)) for seed in range(20)]

    def execute():
        for query, db in pairs:
            try:
                engine.execute(query, db)
            except Exception:
                pass

    benchmark(execute)


def test_bench_theorem1_translation(benchmark):
    queries = [make_query(seed, DM_CONFIG) for seed in range(10)]

    def translate():
        for query in queries:
            desugar(to_sqlra(query, SCHEMA), SCHEMA)

    benchmark(translate)
