"""Signatures ℓ(E) and the well-definedness side conditions of Section 5.

The paper requires:

* ``E1 × E2`` well-defined only if ℓ(E1) and ℓ(E2) are disjoint;
* ``E1 op E2`` for op ∈ {∪, ∩, −} only if ℓ(E1) = ℓ(E2);
* ``π_β(E)`` only if β consists of elements of ℓ(E) without repetitions;
* ``ρ_{β→β′}(E)`` only if β = ℓ(E) and β′ is repetition-free of equal length.

A consequence (proved by induction and relied upon everywhere) is that the
signature of every well-defined expression is repetition-free, so the row
environments η^ā_{ℓ(E)} are always well defined.
"""

from __future__ import annotations

from typing import Tuple

from ..core.errors import IllFormedExpressionError
from ..core.schema import Schema
from ..core.values import Name
from .ast import (
    Dedup,
    DifferenceOp,
    IntersectionOp,
    Product,
    Projection,
    RAExpr,
    Relation,
    Renaming,
    Selection,
    UnionOp,
)

__all__ = ["signature"]


def signature(expr: RAExpr, schema: Schema) -> Tuple[Name, ...]:
    """ℓ(E), raising :class:`IllFormedExpressionError` on violations."""
    if isinstance(expr, Relation):
        return schema.attributes(expr.name)
    if isinstance(expr, Projection):
        source = signature(expr.source, schema)
        missing = [a for a in expr.attributes if a not in source]
        if missing:
            raise IllFormedExpressionError(
                f"projection over {missing} not in signature {source}"
            )
        if len(set(expr.attributes)) != len(expr.attributes):
            raise IllFormedExpressionError(
                f"projection list has repetitions: {expr.attributes}"
            )
        return expr.attributes
    if isinstance(expr, Selection):
        return signature(expr.source, schema)
    if isinstance(expr, Product):
        left = signature(expr.left, schema)
        right = signature(expr.right, schema)
        overlap = set(left) & set(right)
        if overlap:
            raise IllFormedExpressionError(
                f"product of expressions with overlapping signatures: {sorted(overlap)}"
            )
        return left + right
    if isinstance(expr, (UnionOp, IntersectionOp, DifferenceOp)):
        left = signature(expr.left, schema)
        right = signature(expr.right, schema)
        if left != right:
            raise IllFormedExpressionError(
                f"set operation on different signatures: {left} vs {right}"
            )
        return left
    if isinstance(expr, Renaming):
        source = signature(expr.source, schema)
        if expr.old != source:
            raise IllFormedExpressionError(
                f"renaming source list {expr.old} does not match signature {source}"
            )
        if len(set(expr.new)) != len(expr.new):
            raise IllFormedExpressionError(
                f"renaming target list has repetitions: {expr.new}"
            )
        return expr.new
    if isinstance(expr, Dedup):
        return signature(expr.source, schema)
    raise TypeError(f"not an RA expression: {expr!r}")
