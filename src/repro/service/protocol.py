"""Wire protocol pieces of the query service: parameters and row framing.

Prepared-statement parameters
-----------------------------

The SQL fragment's grammar has no placeholder token, and the service must
not fork the parser — the parsed AST is the oracle-checked surface every
other layer consumes.  Instead, placeholders ride *through* the existing
pipeline as sentinel string literals:

1. At prepare time, :func:`expand_placeholders` rewrites ``$1``-style
   markers (outside string literals) into single-quoted sentinel literals
   containing a NUL byte no legitimate query can contain, and the result
   is parsed and annotated **once**.
2. At execute time, :func:`bind_parameters` rebuilds the frozen AST with
   each sentinel replaced by the bound value (int, string, or NULL for
   JSON ``null``) — a cheap structural walk, no re-parse, no re-annotate.

The bound AST is a frozen dataclass tree, so it keys the engine's plan
cache directly: re-executing a statement with the same parameter values
reuses its compiled plan, and distinct values get their own plan (a
"custom plan per binding" — literal values stay visible to the optimizer
and the compiled tier's constant folding, which a mutate-in-place
substitution would silently break).

Row framing
-----------

Results stream as newline-delimited JSON objects inside a chunked HTTP
response: a ``{"labels": …}`` header object, ``{"rows": …}`` batches, and
a final ``{"done": true, "row_count": n}`` trailer.  NULL crosses the wire
as JSON ``null`` in both directions (:func:`row_to_json` /
:func:`rows_from_json`).
"""

from __future__ import annotations

import dataclasses
import re
import sys
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.values import NULL, Null
from ..sql import ast

__all__ = [
    "ProtocolError",
    "expand_placeholders",
    "bind_parameters",
    "json_to_term",
    "row_to_json",
    "rows_from_json",
    "ast_bytes",
]

#: Sentinel literal for parameter ``k``; NUL can appear in no legitimate
#: query text (``expand_placeholders`` rejects it), so no user literal can
#: collide with a placeholder.
_SENTINEL = "\x00param:{k}\x00"

_SENTINEL_RE = re.compile("\x00param:(\\d+)\x00")

_PLACEHOLDER_RE = re.compile(r"\$(\d+)")


class ProtocolError(ValueError):
    """A malformed request: bad placeholders, bad parameter values."""


def expand_placeholders(sql: str) -> Tuple[str, int]:
    """Rewrite ``$k`` markers into sentinel string literals.

    Returns ``(rewritten SQL, parameter count)``.  Markers inside single-
    quoted string literals are left alone (they are data).  Parameter
    numbers must cover ``1..n`` exactly — a gap means the statement can
    never be executed, so it is rejected at prepare time, where the error
    is actionable.
    """
    if "\x00" in sql:
        raise ProtocolError("NUL character in statement text")
    out: List[str] = []
    numbers = set()
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            # Copy the string literal verbatim, honouring '' escapes.
            out.append(ch)
            i += 1
            while i < n:
                out.append(sql[i])
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        out.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
        elif ch == "$":
            match = _PLACEHOLDER_RE.match(sql, i)
            if match is None:
                raise ProtocolError(
                    f"stray '$' at offset {i}: placeholders are $1, $2, …"
                )
            k = int(match.group(1))
            if k < 1:
                raise ProtocolError("placeholder numbers start at $1")
            numbers.add(k)
            out.append("'" + _SENTINEL.format(k=k) + "'")
            i = match.end()
        else:
            out.append(ch)
            i += 1
    if numbers and sorted(numbers) != list(range(1, max(numbers) + 1)):
        missing = sorted(set(range(1, max(numbers) + 1)) - numbers)
        raise ProtocolError(
            f"placeholders must be numbered 1..n without gaps; missing "
            f"${', $'.join(map(str, missing))}"
        )
    return "".join(out), len(numbers)


def json_to_term(value) -> object:
    """A JSON parameter value as an AST term: int, str, or NULL for null."""
    if value is None:
        return NULL
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ProtocolError(
            f"unsupported parameter value {value!r}: the fragment's terms "
            "are integers, strings and null"
        )
    return value


def _bind_term(term, values: Dict[str, object]):
    if isinstance(term, str):
        match = _SENTINEL_RE.fullmatch(term)
        if match is not None:
            return values[match.group(1)]
    return term


def bind_parameters(query: ast.Query, params: List[object], count: int) -> ast.Query:
    """The annotated template with every sentinel replaced by its value.

    ``params`` are raw JSON values positionally bound to ``$1..$count``;
    a count mismatch is a :class:`ProtocolError`.
    """
    if len(params) != count:
        raise ProtocolError(
            f"statement takes {count} parameter(s), got {len(params)}"
        )
    if count == 0:
        return query
    values = {str(k + 1): json_to_term(v) for k, v in enumerate(params)}
    return _rebuild(query, values)


def _rebuild(node, values: Dict[str, object]):
    """Structurally rebuild a frozen AST with sentinels bound.

    Generic over the node kinds: frozen dataclasses are reconstructed
    field-wise, tuples element-wise, and terms (plain values) go through
    :func:`_bind_term`.  Untouched subtrees are returned as-is, so shared
    structure survives and equal bindings produce equal (hashable) ASTs.
    """
    if isinstance(node, str):
        return _bind_term(node, values)
    if isinstance(node, tuple):
        return tuple(_rebuild(item, values) for item in node)
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        changed = False
        fields = {}
        for field in dataclasses.fields(node):
            old = getattr(node, field.name)
            new = _rebuild(old, values)
            fields[field.name] = new
            changed = changed or new is not old
        if not changed:
            return node
        return type(node)(**fields)
    return node


def row_to_json(row) -> list:
    """One result record as a JSON array (NULL -> null)."""
    return [None if isinstance(v, Null) else v for v in row]


def rows_from_json(rows: Iterable[list]) -> List[tuple]:
    """Served JSON rows back into records (null -> NULL) for comparison."""
    return [tuple(NULL if v is None else v for v in row) for row in rows]


def ast_bytes(node, _depth: int = 0) -> int:
    """Estimated footprint of an AST tree (statement byte accounting).

    Recursive ``sys.getsizeof`` over frozen dataclasses and tuples; like
    :func:`repro.engine.binding.estimate_bytes` it double-counts shared
    structure, the safe direction for a budget.
    """
    size = sys.getsizeof(node, 64)
    if _depth >= 32:
        return size
    if isinstance(node, tuple):
        for item in node:
            size += ast_bytes(item, _depth + 1)
    elif dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field in dataclasses.fields(node):
            size += ast_bytes(getattr(node, field.name), _depth + 1)
    return size
