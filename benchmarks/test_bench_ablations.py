"""Ablation benches: the design choices of the semantics, measured.

Three decisions in the paper's semantics look innocuous but are
load-bearing.  Each ablation replaces the paper's rule with the "obvious"
alternative and measures how often results change on random inputs:

* **A1 — the EXCEPT rule.**  Figure 7 defines Q1 EXCEPT Q2 = ε(⟦Q1⟧) − ⟦Q2⟧.
  The plausible alternative ε(⟦Q1 EXCEPT ALL Q2⟧) differs whenever a row's
  left multiplicity exceeds its right multiplicity which is ≥ 1.
* **A2 — three-valued IN.**  Evaluating queries with a two-valued
  (f/u-conflating) logic *without* the Figure 10 rewriting changes results
  precisely on queries where u escapes through NOT/NOT IN — quantifying why
  the translation is needed.
* **A3 — star styles.**  The standard and compositional variants agree on
  every query that compiles under both (they only diverge through
  ambiguity errors) — the reason the paper can validate the same core
  semantics against both systems.
"""

import random
import time

from repro.core import validation_schema
from repro.core.errors import ReproError
from repro.engine import Engine
from repro.generator import (
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.validation.compare import capture
from repro.semantics import (
    STAR_COMPOSITIONAL,
    STAR_STANDARD,
    SqlSemantics,
)
from repro.sql import check_query
from repro.sql.ast import Select, SetOp
from repro.validation.report import format_table

from .conftest import print_banner, trials

SCHEMA = validation_schema(5)
DATA = DataFillerConfig(max_rows=5)


def _has_set_difference(query):
    if isinstance(query, SetOp):
        if query.op == "EXCEPT" and not query.all:
            return True
        return _has_set_difference(query.left) or _has_set_difference(query.right)
    if isinstance(query, Select):
        return any(
            not item.is_base_table and _has_set_difference(item.table)
            for item in query.from_items
        )
    return False


class _AblatedExceptSemantics(SqlSemantics):
    """The 'wrong' EXCEPT reading: ε(⟦Q1 EXCEPT ALL Q2⟧) instead of
    Figure 7's ε(⟦Q1⟧) − ⟦Q2⟧."""

    def _eval_setop(self, query, db, env):
        if query.op == "EXCEPT" and not query.all:
            left = self.evaluate(query.left, db, env, exists_context=False)
            right = self.evaluate(query.right, db, env, exists_context=False)
            bag = left.bag.difference(right.bag).distinct_bag()
            from repro.core.table import Table

            return Table(left.columns, bag)
        return super()._eval_setop(query, db, env)


def run_ablations():
    count = trials(400)
    sem_std = SqlSemantics(SCHEMA, star_style=STAR_STANDARD)
    sem_comp = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
    sem_2v = SqlSemantics(SCHEMA, logic="2vl-conflating")
    sem_ablated_except = _AblatedExceptSemantics(SCHEMA, star_style=STAR_STANDARD)

    except_applicable = except_diff = 0
    logic_tested = logic_diff = 0
    star_tested = star_diff = 0

    for seed in range(count):
        rng = random.Random(seed)
        query = QueryGenerator(SCHEMA, PAPER_CONFIG, rng).generate()
        db = fill_database(SCHEMA, rng, DATA)
        try:
            check_query(query, SCHEMA, star_style="standard")
        except ReproError:
            continue
        reference = sem_std.run(query, db)

        # A1: the EXCEPT rule
        if _has_set_difference(query):
            except_applicable += 1
            if not sem_ablated_except.run(query, db).bag == reference.bag:
                except_diff += 1

        # A2: naive two-valued evaluation without the Figure 10 rewriting
        logic_tested += 1
        if not sem_2v.run(query, db).same_as(reference):
            logic_diff += 1

        # A3: star styles on queries that compile under both
        star_tested += 1
        if not sem_comp.run(query, db).same_as(reference):
            star_diff += 1

    return {
        "A1": (except_applicable, except_diff),
        "A2": (logic_tested, logic_diff),
        "A3": (star_tested, star_diff),
    }


def test_bench_ablations(benchmark):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    print_banner("Ablations — load-bearing design choices of the semantics")
    rows = [
        (
            "A1: EXCEPT = ε(Q1)−Q2  vs  ε(Q1 EXCEPT ALL Q2)",
            results["A1"][0],
            results["A1"][1],
        ),
        (
            "A2: 3VL  vs  naive 2VL (no Fig. 10 rewriting)",
            results["A2"][0],
            results["A2"][1],
        ),
        (
            "A3: standard  vs  compositional star (both compile)",
            results["A3"][0],
            results["A3"][1],
        ),
    ]
    print(format_table(("ablation", "applicable trials", "results changed"), rows))
    # A2 must show the naive conflation is NOT equivalent (3VL matters):
    assert results["A2"][1] > 0
    # A3 must show the variants agree whenever both compile:
    assert results["A3"][1] == 0
    # A1 is data-dependent; on queries actually containing EXCEPT the two
    # readings coincide unless right-side duplicates collide — report only.
    assert results["A1"][0] >= 0


def test_bench_ablation_optimizer(benchmark):
    """A4 — the engine optimizer ablation.

    Runs the same random workload through ``Engine(optimize=True)`` and
    ``Engine(optimize=False)`` at the paper's 50-row table cap: the two must
    agree on every outcome (table or error class), and the wall-clock ratio
    quantifies what pushdown + hash joins + cached subquery probes buy.
    """

    def run_ablation():
        count = trials(20)
        optimized = Engine(SCHEMA, "postgres")
        naive = Engine(SCHEMA, "postgres", optimize=False)
        data = DataFillerConfig(max_rows=50)
        table_diffs = outcome_diffs = 0
        elapsed = {"optimized": 0.0, "naive": 0.0}
        for seed in range(count):
            rng = random.Random(seed)
            query = QueryGenerator(SCHEMA, PAPER_CONFIG, rng).generate()
            db = fill_database(SCHEMA, rng, data)
            start = time.perf_counter()
            fast = capture(lambda: optimized.execute(query, db))
            elapsed["optimized"] += time.perf_counter() - start
            start = time.perf_counter()
            slow = capture(lambda: naive.execute(query, db))
            elapsed["naive"] += time.perf_counter() - start
            if not fast.is_error and not slow.is_error:
                if not fast.agrees_with(slow):
                    table_diffs += 1
            elif fast.error != slow.error:
                outcome_diffs += 1
        return count, table_diffs, outcome_diffs, elapsed

    count, table_diffs, outcome_diffs, elapsed = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print_banner("Ablation A4 — plan optimizer on vs off (50-row tables)")
    ratio = elapsed["naive"] / elapsed["optimized"] if elapsed["optimized"] else 0.0
    print(
        format_table(
            ("engine", "trials", "results changed", "seconds"),
            [
                ("optimize=True", count, "-", f"{elapsed['optimized']:.3f}"),
                ("optimize=False", count, table_diffs, f"{elapsed['naive']:.3f}"),
            ],
        )
    )
    print(f"speedup: {ratio:.2f}x")
    # The optimizer's hard guarantee: identical tables whenever both paths
    # produce one (conjunction reordering cannot change results).
    assert table_diffs == 0
    # Error *classes* also coincide here, but only because the generated
    # workload is type-checked over int-only data, so the data-dependent
    # runtime errors whose surfacing order the optimizer may legitimately
    # change (see repro.engine.optimizer's docstring) are unreachable.
    assert outcome_diffs == 0
