"""The parameter sets param(E) and param(θ, A) of Section 5.

An SQL-RA expression may refer to names bound by an enclosing selection (the
analogue of a correlated subquery).  ``param(E)`` is the set of such free
names; an SQL-RA *query* is an expression with ``param(E) = ∅``, evaluated
under the empty environment.

The definitions follow the paper's mutual recursion verbatim::

    param(R)              = ∅
    param(E1 op E2)       = param(E1) ∪ param(E2)
    param(π_α(E))         = param(E)
    param(σ_θ(E))         = param(θ, {A | A ∈ ℓ(E)})
    param(P(t1,…,tk), A)  = names({t1, …, tk}) − A
    param(θ1 conn θ2, A)  = param(θ1, A) ∪ param(θ2, A)
    param(¬θ, A)          = param(θ, A)
    param(empty(E), A)    = param(E) − A
    param(t̄ ∈ E, A)       = (names(t̄) ∪ param(E)) − A

(with the natural extensions for ρ, ε, null/const, TRUE/FALSE).

Note the subtlety in ``param(σ_θ(E))``: parameters of nested expressions
inside θ are shielded by ℓ(E), because the selection's row environment binds
those names.
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.schema import Schema
from ..core.values import Name
from .ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    RACondition,
    RAExpr,
    RAnd,
    Relation,
    Renaming,
    RFalse,
    RNot,
    ROr,
    RPredicate,
    RTrue,
    Selection,
    UnionOp,
)
from .typecheck import signature

__all__ = ["params", "condition_params", "term_names"]


def term_names(terms) -> FrozenSet[Name]:
    """names(t̄): the terms that are attribute references."""
    return frozenset(t.name for t in terms if isinstance(t, Attr))


def params(expr: RAExpr, schema: Schema) -> FrozenSet[Name]:
    """param(E): the free (parameter) names of an SQL-RA expression."""
    if isinstance(expr, Relation):
        return frozenset()
    if isinstance(expr, (Projection, Dedup, Renaming)):
        return params(expr.source, schema)
    if isinstance(expr, Selection):
        bound = frozenset(signature(expr.source, schema))
        return params(expr.source, schema) | condition_params(
            expr.condition, bound, schema
        )
    if isinstance(expr, (Product, UnionOp, IntersectionOp, DifferenceOp)):
        return params(expr.left, schema) | params(expr.right, schema)
    raise TypeError(f"not an RA expression: {expr!r}")


def condition_params(
    condition: RACondition, bound: FrozenSet[Name], schema: Schema
) -> FrozenSet[Name]:
    """param(θ, A) for a condition θ with respect to bound names A."""
    if isinstance(condition, (RTrue, RFalse)):
        return frozenset()
    if isinstance(condition, RPredicate):
        return term_names(condition.args) - bound
    if isinstance(condition, (NullTest, ConstTest)):
        return term_names((condition.term,)) - bound
    if isinstance(condition, (RAnd, ROr)):
        return condition_params(condition.left, bound, schema) | condition_params(
            condition.right, bound, schema
        )
    if isinstance(condition, RNot):
        return condition_params(condition.operand, bound, schema)
    if isinstance(condition, Empty):
        return params(condition.source, schema) - bound
    if isinstance(condition, InExpr):
        return (term_names(condition.terms) | params(condition.source, schema)) - bound
    raise TypeError(f"not an RA condition: {condition!r}")
