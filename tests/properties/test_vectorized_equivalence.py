"""Differential property tests for columnar (vectorized) execution.

The paper's methodology, aimed at the batch backend: on ≥500 random
query/database pairs per dialect variant — the second-generation
set-op/subquery-tilted generator mix — the vectorized engine
(``vectorized=True``), the closure-compiled engine (the default), the
interpreted engine (``compiled=False``) and the naive interpreted engine
(``optimize=False, compiled=False``) must produce the same bag (columns,
rows, multiplicities) or the same error class.  Batch execution is a
pure lowering of the same physical plan, so like the closure compiler it
has *no* error-order latitude: outcomes must match even where plans
raise — the fused filters and optimistic kernels fall back to an exact
per-row replay precisely to keep this property.

A hot-plan-cache battery then re-runs a prefix of the workload through
one vectorized engine twice more (plan cache and build-side cache hot,
so every plan executes through batch programs compiled at plan time and
build sides restored from the content-keyed cache) and demands
bit-identical outcomes.
"""

import random
from dataclasses import replace

import pytest

from repro.core import validation_schema
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.generator import (
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.validation.compare import capture

SCHEMA = validation_schema()
TRIALS = 500
DATA = DataFillerConfig(max_rows=5)

#: PAPER_CONFIG tilted toward the constructs the batch backend lowers
#: specially: set operations, multi-table FROMs, correlated subqueries
#: (probes stay row-wise inside batch filters).
VECTORIZED_MIX = replace(
    PAPER_CONFIG,
    setop_probability=0.45,
    from_subquery_probability=0.35,
    where_subquery_probability=0.35,
    correlation_probability=0.5,
)

DIALECTS = [DIALECT_POSTGRES, DIALECT_ORACLE]


def _pair(seed):
    rng = random.Random(seed)
    query = QueryGenerator(SCHEMA, VECTORIZED_MIX, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    return query, db


@pytest.mark.parametrize("dialect", DIALECTS)
def test_vectorized_coincides_with_every_row_wise_tier(dialect):
    engines = {
        "vectorized": Engine(SCHEMA, dialect, vectorized=True),
        "compiled": Engine(SCHEMA, dialect),
        "interpreted": Engine(SCHEMA, dialect, compiled=False),
        "naive": Engine(SCHEMA, dialect, optimize=False, compiled=False),
    }
    failures = []
    for seed in range(TRIALS):
        query, db = _pair(seed)
        outcomes = {
            name: capture(lambda e=engine: e.execute(query, db))
            for name, engine in engines.items()
        }
        baseline = outcomes["interpreted"]
        for name, outcome in outcomes.items():
            # Same error class and same bag: the generated workload is
            # type-checked over int-only data, so no data-dependent runtime
            # error order is in play and full error equality must hold.
            if outcome.error != baseline.error or not outcome.agrees_with(baseline):
                failures.append(f"seed {seed}: {name} differs from interpreted")
    assert not failures, "; ".join(failures[:5])


@pytest.mark.parametrize("dialect", DIALECTS)
def test_hot_plan_cache_vectorized_outcomes_are_bit_identical(dialect):
    """Passes 2 and 3 execute nothing but cached batch programs (pass 2
    also harvests build sides pass 3 restores); outcomes must match the
    cold pass exactly."""
    engine = Engine(SCHEMA, dialect, vectorized=True)
    pairs = [_pair(seed) for seed in range(40)]
    cold = [capture(lambda: engine.execute(q, db)) for q, db in pairs]
    [capture(lambda: engine.execute(q, db)) for q, db in pairs]
    hot = [capture(lambda: engine.execute(q, db)) for q, db in pairs]
    assert engine.cache_info()["hits"] >= 2 * len(pairs)
    assert engine.build_cache_info()["hits"] > 0
    for seed, (a, b) in enumerate(zip(cold, hot)):
        assert a.error == b.error and a.agrees_with(b), f"seed {seed} changed"
