"""The shared authenticated JSON/HTTP transport: auth, chunked bodies,
retry-with-backoff semantics."""

import io
import json
import urllib.error

import pytest

from repro.service.transport import (
    AUTH_HEADER,
    JsonHttpServer,
    JsonRequestHandler,
    auth_headers,
    check_secret,
    http_json,
    read_chunked,
)


# -- pure helpers -------------------------------------------------------------


def test_auth_headers_and_check_secret():
    assert auth_headers(None) == {}
    assert auth_headers("s") == {AUTH_HEADER: "s"}
    # No configured secret: everything passes, including absence.
    assert check_secret(None, None)
    assert check_secret("anything", None)
    # Configured secret: exact match only.
    assert check_secret("s3", "s3")
    assert not check_secret("wrong", "s3")
    assert not check_secret(None, "s3")
    assert not check_secret("", "s3")


def test_read_chunked_with_extensions_and_trailers():
    wire = b"4;ext=1\r\nWiki\r\n5\r\npedia\r\n0\r\nX-Trailer: t\r\n\r\n"
    assert read_chunked(io.BytesIO(wire)) == b"Wikipedia"


def test_read_chunked_empty_body():
    assert read_chunked(io.BytesIO(b"0\r\n\r\n")) == b""


# -- server round trips -------------------------------------------------------


class EchoHandler(JsonRequestHandler):
    def do_GET(self):
        if not self._authorized():
            return
        self._send({"path": self.path})

    def do_POST(self):
        if not self._authorized():
            return
        payload = self._read_json()
        if payload.get("boom"):
            self._send({"error": "boom"}, 409)
            return
        self._send({"echo": payload})


def test_json_server_round_trip_and_chunked_submit():
    with JsonHttpServer(EchoHandler) as server:
        assert http_json(f"{server.url}/x") == {"path": "/x"}
        payload = {"rows": list(range(100))}
        assert http_json(server.url, payload) == {"echo": payload}
        # Chunked request bodies decode identically.
        assert http_json(server.url, payload, chunked=True) == {"echo": payload}


def test_secret_enforced_and_constant_time_path():
    with JsonHttpServer(EchoHandler, secret="hunter2") as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(f"{server.url}/x")
        assert err.value.code == 401
        assert http_json(f"{server.url}/x", secret="hunter2") == {"path": "/x"}


def test_http_error_is_not_retried():
    """A 4xx/5xx is an answer: it must surface immediately, not burn the
    retry budget (a retried 409 would mask checkpoint conflicts)."""
    with JsonHttpServer(EchoHandler) as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            http_json(server.url, {"boom": True}, retries=5, backoff_s=60.0)
        assert err.value.code == 409
        body = json.loads(err.value.read().decode())
        assert body == {"error": "boom"}


def test_connection_failure_retries_until_server_appears():
    """The restart-survival contract: connection-level failures retry with
    backoff, so a client outlives a server bounce."""
    # Reserve a port, then close the server: first attempts are refused.
    server = JsonHttpServer(EchoHandler)
    url = server.url
    port = int(url.rsplit(":", 1)[1])
    server._httpd.server_close()

    import threading
    import time

    def bring_up():
        time.sleep(0.3)
        revived = JsonHttpServer(EchoHandler, port=port)
        revived.start()
        time.sleep(2.0)
        revived.stop()

    thread = threading.Thread(target=bring_up, daemon=True)
    thread.start()
    reply = http_json(f"{url}/x", retries=6, backoff_s=0.2)
    assert reply == {"path": "/x"}
    thread.join()


def test_connection_failure_exhausts_retries():
    server = JsonHttpServer(EchoHandler)
    url = server.url
    server._httpd.server_close()
    with pytest.raises(OSError):
        http_json(f"{url}/x", retries=1, backoff_s=0.01)
