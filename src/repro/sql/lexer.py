"""Tokenizer for the basic SQL fragment.

Produces a stream of :class:`Token` objects with 1-based line/column
positions for error reporting.  Keywords are case-insensitive and normalized
to upper case; identifiers preserve case (optionally double-quoted to escape
keywords); strings use single quotes with ``''`` escaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..core.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AS",
        "AND",
        "OR",
        "NOT",
        "TRUE",
        "FALSE",
        "NULL",
        "IS",
        "IN",
        "EXISTS",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "MINUS",
        "ALL",
        "LIKE",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*")


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token: kind is KEYWORD, IDENT, INT, STRING, SYMBOL or EOF."""

    kind: str
    value: str
    line: int
    column: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on illegal characters."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        column = i - line_start + 1
        if ch == "-" and text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            value, i = _read_string(text, i, line, column)
            yield Token("STRING", value, line, column)
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise ParseError("unterminated quoted identifier", line, column)
            yield Token("IDENT", text[i + 1 : end], line, column)
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            yield Token("INT", text[i:j], line, column)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, line, column)
            else:
                yield Token("IDENT", word, line, column)
            i = j
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                value = "<>" if symbol == "!=" else symbol
                yield Token("SYMBOL", value, line, column)
                i += len(symbol)
                break
        else:
            raise ParseError(f"illegal character {ch!r}", line, column)
    yield Token("EOF", "", line, n - line_start + 1)


def _read_string(text: str, start: int, line: int, column: int) -> tuple[str, int]:
    parts: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ParseError("unterminated string literal", line, column)
