"""The formal semantics of basic SQL: Figures 4–7 of the paper, executable.

The central object is :class:`SqlSemantics`, the semantic function ⟦·⟧.  It
evaluates

* **terms** under an environment η (Figure 4);
* **conditions** under a database and η, to a 3VL truth value (Figure 6);
* **queries** under a database, η, and the Boolean switch x (Figures 5 and 7).

The Boolean switch x implements the paper's treatment of the non-compositional
``SELECT *``: x is 1 exactly for the outermost query nested inside an EXISTS
condition, in which case ``*`` is replaced by an arbitrary constant; with
x = 0, ``*`` expands to the full names ℓ(τ:β) of the local FROM clause (and
referencing a *repeated* full name raises
:class:`~repro.core.errors.AmbiguousReferenceError` — the behaviour of
Example 2).

Two star styles are supported (Section 4's "adjustments"):

* ``standard`` — the Figures 4–7 semantics above (this is also the
  Oracle-adjusted variant; Oracle's syntactic quirk, MINUS, lives in the
  parser/printer, not here);
* ``compositional`` — PostgreSQL's choice: ``SELECT *`` returns the FROM
  product rows unchanged in every context, and the switch x is ignored.

The logic (3VL, or either two-valued interpretation of Section 6) is a
pluggable strategy; see :mod:`repro.semantics.logic`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.bag import Bag
from ..core.env import EMPTY_ENV, Environment
from ..core.errors import ArityMismatchError, CompileError, DuplicateAliasError
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.truth import FALSE, TRUE, UNKNOWN, Truth, conj_all
from ..core.values import NULL, FullName, Name, Null, Record, Term, Value
from ..sql.ast import (
    And,
    Condition,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SetOp,
    TrueCond,
)
from ..sql.labels import from_labels, query_labels, scope_full_names
from .logic import Logic, THREE_VALUED, get_logic
from .predicates import PredicateRegistry, default_registry

__all__ = ["SqlSemantics", "STAR_STANDARD", "STAR_COMPOSITIONAL"]

STAR_STANDARD = "standard"
STAR_COMPOSITIONAL = "compositional"


class SqlSemantics:
    """The semantic function ⟦·⟧ of Figures 4–7.

    Parameters
    ----------
    schema:
        The database schema, needed to compute ℓ(R) for base tables.
    star_style:
        ``"standard"`` for the paper's Figures 4–7 (with the Boolean switch),
        ``"compositional"`` for the PostgreSQL adjustment of Section 4.
    logic:
        A :class:`~repro.semantics.logic.Logic` instance or its name;
        defaults to SQL's three-valued logic.
    predicates:
        The collection P; defaults to the comparisons and LIKE.
    exists_constant, exists_label:
        The "arbitrary c ∈ C and N ∈ N" used when ``SELECT *`` occurs
        directly under EXISTS in the standard style.
    """

    def __init__(
        self,
        schema: Schema,
        star_style: str = STAR_STANDARD,
        logic: Logic | str = THREE_VALUED,
        predicates: Optional[PredicateRegistry] = None,
        exists_constant: Value = 1,
        exists_label: Name = "C",
    ):
        if star_style not in (STAR_STANDARD, STAR_COMPOSITIONAL):
            raise ValueError(f"unknown star style: {star_style!r}")
        self.schema = schema
        self.star_style = star_style
        self.logic = get_logic(logic) if isinstance(logic, str) else logic
        self.predicates = predicates if predicates is not None else default_registry()
        self.exists_constant = exists_constant
        self.exists_label = exists_label

    # ------------------------------------------------------------------
    # Terms (Figure 4)
    # ------------------------------------------------------------------

    def eval_term(self, term: Term, env: Environment) -> Value:
        """⟦t⟧η: a full name denotes η(A); constants and NULL denote themselves."""
        if isinstance(term, FullName):
            return env.lookup(term)
        if isinstance(term, Null):
            return NULL
        return term

    def eval_terms(self, terms: Tuple[Term, ...], env: Environment) -> Record:
        """⟦(t1, …, tn)⟧η = (⟦t1⟧η, …, ⟦tn⟧η)."""
        return tuple(self.eval_term(term, env) for term in terms)

    # ------------------------------------------------------------------
    # Queries (Figures 5 and 7)
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: Query,
        db: Database,
        env: Environment = EMPTY_ENV,
        exists_context: bool = False,
    ) -> Table:
        """⟦Q⟧_{D,η,x}; for a top-level query, ⟦Q⟧_D = ⟦Q⟧_{D,∅,0}."""
        if isinstance(query, Select):
            return self._eval_select(query, db, env, exists_context)
        if isinstance(query, SetOp):
            return self._eval_setop(query, db, env)
        raise TypeError(f"not a query: {query!r}")

    def _eval_from(
        self, from_items: Tuple[FromItem, ...], db: Database, env: Environment
    ) -> Bag:
        """⟦τ:β⟧_{D,η,x} = ⟦T1⟧_{D,η,0} × ⋯ × ⟦Tk⟧_{D,η,0}."""
        seen_aliases = set()
        for item in from_items:
            if item.alias in seen_aliases:
                raise DuplicateAliasError(
                    f"alias {item.alias} used twice in the same FROM clause"
                )
            seen_aliases.add(item.alias)
        product: Optional[Bag] = None
        for item in from_items:
            if item.is_base_table:
                bag = db.table(item.table).bag
            else:
                bag = self.evaluate(item.table, db, env, exists_context=False).bag
            product = bag if product is None else product.product(bag)
        if product is None:
            raise CompileError("a FROM clause must reference at least one table")
        return product

    def _from_where(
        self, query: Select, db: Database, env: Environment
    ) -> list[tuple[Record, int, Environment]]:
        """The ⟦FROM τ:β WHERE θ⟧ rule: rows of the product that satisfy θ.

        Returns (record, multiplicity, revised environment η′) triples, where
        η′ = η ⊕r̄ ℓ(τ:β) is the environment against which the SELECT list is
        subsequently evaluated.
        """
        scope = scope_full_names(query.from_items, self.schema)
        product = self._eval_from(query.from_items, db, env)
        survivors: list[tuple[Record, int, Environment]] = []
        for record, count in product.counts().items():
            revised = env.update(record, scope)
            if self.eval_condition(query.where, db, revised).is_true:
                survivors.append((record, count, revised))
        return survivors

    def _eval_select(
        self, query: Select, db: Database, env: Environment, exists_context: bool
    ) -> Table:
        if query.is_star:
            table = self._eval_select_star(query, db, env, exists_context)
        else:
            survivors = self._from_where(query, db, env)
            labels = tuple(item.alias for item in query.items)
            terms = tuple(item.term for item in query.items)
            counts: dict[Record, int] = {}
            for _record, count, revised in survivors:
                out = self.eval_terms(terms, revised)
                counts[out] = counts.get(out, 0) + count
            table = Table(labels, Bag.from_counts(counts))
        if query.distinct:
            table = table.distinct()
        return table

    def _eval_select_star(
        self, query: Select, db: Database, env: Environment, exists_context: bool
    ) -> Table:
        if self.star_style == STAR_COMPOSITIONAL:
            # PostgreSQL's rule: ⟦SELECT * FROM τ:β WHERE θ⟧ = ⟦FROM τ:β WHERE θ⟧.
            labels = from_labels(query.from_items, self.schema)
            survivors = self._from_where(query, db, env)
            counts: dict[Record, int] = {}
            for record, count, _revised in survivors:
                counts[record] = counts.get(record, 0) + count
            return Table(labels, Bag.from_counts(counts))
        if exists_context:
            # x = 1: ⟦SELECT * …⟧_{D,η,1} = ⟦SELECT c AS N …⟧_{D,η,1}.
            survivors = self._from_where(query, db, env)
            counts: dict[Record, int] = {}
            for _record, count, _revised in survivors:
                out = (self.exists_constant,)
                counts[out] = counts.get(out, 0) + count
            return Table((self.exists_label,), Bag.from_counts(counts))
        # x = 0: ⟦SELECT * …⟧_{D,η,0} = ⟦SELECT ℓ(τ:β) : ℓ(τ) …⟧_{D,η,0}.
        scope = scope_full_names(query.from_items, self.schema)
        labels = from_labels(query.from_items, self.schema)
        survivors = self._from_where(query, db, env)
        counts: dict[Record, int] = {}
        for _record, count, revised in survivors:
            out = self.eval_terms(scope, revised)
            counts[out] = counts.get(out, 0) + count
        return Table(labels, Bag.from_counts(counts))

    def _eval_setop(self, query: SetOp, db: Database, env: Environment) -> Table:
        """Figure 7: set and bag flavours of UNION, INTERSECT, EXCEPT."""
        left = self.evaluate(query.left, db, env, exists_context=False)
        right = self.evaluate(query.right, db, env, exists_context=False)
        if left.arity != right.arity:
            raise ArityMismatchError(
                f"{query.op} combines tables of arity {left.arity} and {right.arity}"
            )
        labels = left.columns  # ℓ(Q1 op Q2) = ℓ(Q1)
        if query.op == "UNION":
            bag = left.bag.union(right.bag)
            if not query.all:
                bag = bag.distinct_bag()
        elif query.op == "INTERSECT":
            bag = left.bag.intersection(right.bag)
            if not query.all:
                bag = bag.distinct_bag()
        else:  # EXCEPT
            if query.all:
                bag = left.bag.difference(right.bag)
            else:
                # ⟦Q1 EXCEPT Q2⟧ = ε(⟦Q1⟧) − ⟦Q2⟧ (not ε of the ALL version!)
                bag = left.bag.distinct_bag().difference(right.bag)
        return Table(labels, bag)

    # ------------------------------------------------------------------
    # Conditions (Figure 6)
    # ------------------------------------------------------------------

    def eval_condition(
        self, condition: Condition, db: Database, env: Environment
    ) -> Truth:
        """⟦θ⟧_{D,η} ∈ {t, f, u}."""
        if isinstance(condition, TrueCond):
            return TRUE
        if isinstance(condition, FalseCond):
            return FALSE
        if isinstance(condition, Predicate):
            values = self.eval_terms(condition.args, env)
            return self.logic.predicate(self.predicates, condition.name, values)
        if isinstance(condition, IsNull):
            value = self.eval_term(condition.term, env)
            result = Truth.from_bool(value is NULL)
            return ~result if condition.negated else result
        if isinstance(condition, InQuery):
            result = self._eval_in(condition, db, env)
            return ~result if condition.negated else result
        if isinstance(condition, Exists):
            table = self.evaluate(condition.query, db, env, exists_context=True)
            return Truth.from_bool(not table.is_empty())
        if isinstance(condition, And):
            left = self.eval_condition(condition.left, db, env)
            if left is FALSE:
                return FALSE
            return left & self.eval_condition(condition.right, db, env)
        if isinstance(condition, Or):
            left = self.eval_condition(condition.left, db, env)
            if left is TRUE:
                return TRUE
            return left | self.eval_condition(condition.right, db, env)
        if isinstance(condition, Not):
            return ~self.eval_condition(condition.operand, db, env)
        raise TypeError(f"not a condition: {condition!r}")

    def _eval_in(self, condition: InQuery, db: Database, env: Environment) -> Truth:
        """⟦t̄ IN Q⟧: the disjunction of ⟦t̄ = r̄⟧ over the rows r̄ of Q."""
        table = self.evaluate(condition.query, db, env, exists_context=False)
        if table.arity != len(condition.terms):
            raise ArityMismatchError(
                f"IN compares {len(condition.terms)} term(s) against a query of "
                f"arity {table.arity}"
            )
        values = self.eval_terms(condition.terms, env)
        result = FALSE
        for row in table.bag.distinct():
            comparison = conj_all(
                self.logic.equal(a, b) for a, b in zip(values, row)
            )
            result = result | comparison
            if result is TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run(self, query: Query, db: Database) -> Table:
        """⟦Q⟧_D for a parameter-free query: ⟦Q⟧_{D,∅,0}."""
        return self.evaluate(query, db, EMPTY_ENV, exists_context=False)

    def output_labels(self, query: Query) -> Tuple[Name, ...]:
        """ℓ(Q) for this semantics' schema."""
        return query_labels(query, self.schema)
