"""Tokenizer for the basic SQL fragment."""

import pytest

from repro.core.errors import ParseError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)][:-1]  # drop EOF


def test_keywords_case_insensitive():
    assert kinds("select Select SELECT") == [("KEYWORD", "SELECT")] * 3


def test_identifiers_preserve_case():
    assert kinds("Foo bar") == [("IDENT", "Foo"), ("IDENT", "bar")]


def test_integers():
    assert kinds("0 42 007") == [("INT", "0"), ("INT", "42"), ("INT", "007")]


def test_strings_with_escaped_quote():
    assert kinds("'it''s'") == [("STRING", "it's")]


def test_empty_string_literal():
    assert kinds("''") == [("STRING", "")]


def test_unterminated_string():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_quoted_identifier_escapes_keywords():
    assert kinds('"select"') == [("IDENT", "select")]


def test_unterminated_quoted_identifier():
    with pytest.raises(ParseError):
        tokenize('"oops')


def test_symbols():
    assert kinds("<= >= <> = < > ( ) , . *") == [
        ("SYMBOL", s)
        for s in ["<=", ">=", "<>", "=", "<", ">", "(", ")", ",", ".", "*"]
    ]


def test_bang_equals_normalized():
    assert kinds("a != b")[1] == ("SYMBOL", "<>")


def test_line_comments_skipped():
    assert kinds("a -- comment\n b") == [("IDENT", "a"), ("IDENT", "b")]


def test_illegal_character():
    with pytest.raises(ParseError):
        tokenize("a $ b")


def test_positions():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_eof_token_present():
    assert tokenize("")[-1].kind == "EOF"


def test_token_matches():
    token = Token("KEYWORD", "SELECT", 1, 1)
    assert token.matches("KEYWORD")
    assert token.matches("KEYWORD", "SELECT")
    assert not token.matches("KEYWORD", "FROM")
    assert not token.matches("IDENT")


def test_underscore_identifier():
    assert kinds("_x a_b") == [("IDENT", "_x"), ("IDENT", "a_b")]
