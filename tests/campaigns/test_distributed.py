"""The distributed coordinator/worker layer, both transports.

The acceptance bar: a campaign split across ≥3 workers, merged by the
coordinator, produces an ``outcome_digest`` bit-identical to the same
campaign run serially on one machine — including after killing a worker
mid-shard and re-issuing its lease.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaigns import (
    CampaignSpec,
    CheckpointConflict,
    Coordinator,
    CoordinatorServer,
    FileCoordinator,
    load_journal,
    partition_leases,
    run_campaign,
    work_command,
    work_remote,
)

SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)
TRIALS = 45


@pytest.fixture(scope="module")
def serial_digest():
    return run_campaign(SPEC, trials=TRIALS, base_seed=0, jobs=1).outcome_digest


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def run_lease_offline(lease):
    """Exactly what ``repro work --seed-range`` does for a lease."""
    return run_campaign(
        SPEC,
        trials=lease.trials,
        base_seed=lease.lo,
        jobs=1,
        checkpoint=lease.checkpoint,
        resume=True,
    )


# -- partitioning -------------------------------------------------------------


def test_partition_covers_the_range_contiguously():
    ranges = partition_leases(100, 45, parts=4)
    assert ranges[0][0] == 100 and ranges[-1][1] == 145
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo
    assert partition_leases(0, 45, lease_trials=10) == [
        (0, 10), (10, 20), (20, 30), (30, 40), (40, 45),
    ]
    assert partition_leases(0, 0, parts=3) == []


# -- in-memory coordinator ----------------------------------------------------


def test_coordinator_lease_loop_matches_serial(serial_digest):
    coordinator = Coordinator(SPEC, TRIALS, lease_trials=10)
    backend = SPEC.build()
    leases = 0
    while (lease := coordinator.acquire("solo")) is not None:
        records = [backend.run_trial(seed) for seed in lease.seeds()]
        outcome = coordinator.submit(lease.lease_id, records, worker="solo")
        assert outcome["accepted"] == lease.trials
        leases += 1
    assert leases == 5
    assert coordinator.done
    result = coordinator.result()
    assert result.outcome_digest == serial_digest
    assert result.completed == TRIALS


def test_coordinator_timeout_reissue_and_late_submit_dedupes(serial_digest):
    clock = FakeClock()
    coordinator = Coordinator(
        SPEC, TRIALS, lease_trials=TRIALS, lease_timeout_s=10, clock=clock
    )
    dead = coordinator.acquire("dead")
    assert coordinator.acquire("live") is None  # whole range is leased out
    clock.advance(11)
    reissued = coordinator.acquire("live")  # expiry recycles the dead range
    assert (reissued.lo, reissued.hi) == (dead.lo, dead.hi)
    backend = SPEC.build()
    records = [backend.run_trial(seed) for seed in reissued.seeds()]
    coordinator.submit(reissued.lease_id, records, worker="live")
    # The presumed-dead worker resurfaces with the identical records.
    late = coordinator.submit(dead.lease_id, records, worker="dead")
    assert late["accepted"] == 0
    assert late["duplicates"] == len(records)
    assert coordinator.result().outcome_digest == serial_digest


def test_coordinator_conflicting_submission_raises():
    coordinator = Coordinator(SPEC, 5, lease_trials=5)
    lease = coordinator.acquire("w")
    coordinator.submit(lease.lease_id, [{"seed": 0, "code": 1}])
    with pytest.raises(CheckpointConflict):
        coordinator.submit("late", [{"seed": 0, "code": 3}])


def test_coordinator_catches_conflict_within_one_batch():
    """A batch that contradicts itself must raise, not silently pick a side
    (checks and adds are interleaved, like the file merge)."""
    coordinator = Coordinator(SPEC, 5, lease_trials=5)
    with pytest.raises(CheckpointConflict):
        coordinator.submit(
            "corrupt", [{"seed": 0, "code": 1}, {"seed": 0, "code": 3}]
        )
    # The valid prefix stayed folded; the seed is not re-runnable garbage.
    assert coordinator.aggregator.code_at(0) == 1


def test_coordinator_checkpoint_resume(tmp_path, serial_digest):
    """A crashed coordinator resumes from its own merged checkpoint."""
    path = str(tmp_path / "merged.jsonl")
    first = Coordinator(SPEC, TRIALS, lease_trials=15, checkpoint=path)
    backend = SPEC.build()
    lease = first.acquire("w")
    first.submit(lease.lease_id, [backend.run_trial(s) for s in lease.seeds()])
    first.close()  # dies with 15 of 45 trials recorded

    second = Coordinator(
        SPEC, TRIALS, lease_trials=15, checkpoint=path, resume=True
    )
    assert second.resumed_trials == 15
    while (lease := second.acquire("w2")) is not None:
        second.submit(lease.lease_id, [backend.run_trial(s) for s in lease.seeds()])
    result = second.result()
    second.close()
    assert result.outcome_digest == serial_digest


def test_coordinator_rejects_foreign_checkpoint(tmp_path):
    path = str(tmp_path / "merged.jsonl")
    other = Coordinator(
        CampaignSpec(kind="validation", variant="oracle", rows=3),
        5,
        checkpoint=path,
    )
    other.close()
    with pytest.raises(ValueError):
        Coordinator(SPEC, 5, checkpoint=path, resume=True)


# -- file-based coordination --------------------------------------------------


def test_three_file_workers_merge_bit_identical(tmp_path, serial_digest):
    coordinator = FileCoordinator(
        SPEC, TRIALS, workers=["w1", "w2", "w3"], out_dir=str(tmp_path / "d")
    )
    leases = coordinator.active_leases()
    assert len(leases) == 3
    assert {lease.worker for lease in leases} == {"w1", "w2", "w3"}
    for lease in leases:
        run_lease_offline(lease)
    assert coordinator.poll()["done"]
    merged = coordinator.merge(merged_path=str(tmp_path / "m.jsonl"))
    coordinator.close()
    assert merged.outcome_digest == serial_digest
    assert merged.completed == TRIALS


def test_killed_worker_reissued_lease_still_bit_identical(
    tmp_path, serial_digest
):
    """The acceptance-bar scenario: a worker dies mid-shard, its lease times
    out, the re-issued lease completes, and the merge (partial file
    included) is still bit-identical to the serial run."""
    clock = FakeClock()
    coordinator = FileCoordinator(
        SPEC,
        TRIALS,
        workers=["w1", "w2", "w3"],
        out_dir=str(tmp_path / "d"),
        lease_timeout_s=30,
        clock=clock,
    )
    doomed, *healthy = coordinator.active_leases()
    # The doomed worker records only half its range, then is killed.
    run_campaign(
        SPEC,
        trials=doomed.trials // 2,
        base_seed=doomed.lo,
        jobs=1,
        checkpoint=doomed.checkpoint,
    )
    for lease in healthy:
        run_lease_offline(lease)
    assert not coordinator.poll()["done"]

    clock.advance(31)
    replacements = coordinator.reissue_stale()
    assert len(replacements) == 1
    replacement = replacements[0]
    assert (replacement.lo, replacement.hi) == (doomed.lo, doomed.hi)
    assert replacement.attempt == 2
    assert replacement.checkpoint != doomed.checkpoint
    run_lease_offline(replacement)
    assert coordinator.poll()["done"]

    merged = coordinator.merge()
    assert merged.outcome_digest == serial_digest
    assert merged.duplicates == doomed.trials // 2  # partial file overlap

    header, events = load_journal(coordinator.journal_path)
    coordinator.close()
    assert header["schema"] == "campaign-leases/v1"
    kinds = [event["event"] for event in events]
    assert kinds.count("issue") == 4  # 3 originals + 1 re-issue
    assert kinds.count("expire") == 1


def test_file_coordinator_journal_resume(tmp_path, serial_digest):
    out = str(tmp_path / "d")
    first = FileCoordinator(SPEC, TRIALS, workers=["w1", "w2"], out_dir=out)
    original_ids = [lease.lease_id for lease in first.active_leases()]
    run_lease_offline(first.active_leases()[0])
    first.close()  # the coordinator dies

    second = FileCoordinator(SPEC, TRIALS, workers=["w1", "w2"], out_dir=out)
    # Replay keeps the original assignments instead of double-issuing.
    assert [lease.lease_id for lease in second.active_leases()] == original_ids
    assert second.poll()["completed"] == 1
    for lease in second.active_leases():
        run_lease_offline(lease)
    assert second.poll()["done"]
    merged = second.merge()
    second.close()
    assert merged.outcome_digest == serial_digest


def test_file_coordinator_rejects_mismatched_journal(tmp_path):
    out = str(tmp_path / "d")
    FileCoordinator(SPEC, 30, out_dir=out).close()
    with pytest.raises(ValueError, match="mismatch"):
        FileCoordinator(SPEC, 60, out_dir=out)


def test_work_command_argv(tmp_path):
    coordinator = FileCoordinator(
        CampaignSpec(kind="differential", rows=4, tables=3),
        10,
        workers=["a"],
        out_dir=str(tmp_path / "d"),
        python="py",
    )
    (lease,) = coordinator.active_leases()
    argv = work_command(coordinator.spec, lease, python="py")
    coordinator.close()
    assert argv[:4] == ["py", "-m", "repro", "work"]
    assert argv[argv.index("--seed-range") + 1] == "0:10"
    assert argv[argv.index("--kind") + 1] == "differential"
    assert argv[argv.index("--tables") + 1] == "3"
    assert argv[-1] == "--resume"


def test_plan_sh_lists_every_active_lease(tmp_path):
    coordinator = FileCoordinator(
        SPEC, 30, workers=["w1", "w2", "w3"], out_dir=str(tmp_path / "d")
    )
    plan_path = coordinator.write_plan()
    coordinator.close()
    plan = open(plan_path).read()
    assert plan.count(" -m repro work ") == 3
    assert plan.rstrip().endswith("wait")


# -- HTTP transport -----------------------------------------------------------


def test_http_workers_match_serial(serial_digest):
    coordinator = Coordinator(SPEC, TRIALS, lease_trials=9)
    summaries = []
    with CoordinatorServer(coordinator) as server:
        def drain(name):
            summaries.append(
                work_remote(server.url, worker=name, poll_s=0.02)
            )

        threads = [
            threading.Thread(target=drain, args=(f"t{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    assert coordinator.done
    assert sum(summary["trials"] for summary in summaries) == TRIALS
    result = coordinator.result()
    assert result.outcome_digest == serial_digest
    assert result.jobs == 3  # every worker touched the coordinator


def test_http_worker_with_local_jobs_matches_serial(serial_digest):
    """``repro work --coordinator URL --jobs N``: each lease runs through
    run_campaign(jobs=N) and the records come back from the worker's local
    checkpoint — seed-purity keeps the digest bit-identical."""
    coordinator = Coordinator(SPEC, TRIALS, lease_trials=15)
    with CoordinatorServer(coordinator) as server:
        summary = work_remote(server.url, worker="multi", poll_s=0.02, jobs=2)
    assert coordinator.done
    assert summary["trials"] == TRIALS
    assert summary["leases"] == 3
    result = coordinator.result()
    assert result.outcome_digest == serial_digest
    assert result.completed == TRIALS


def test_http_status_and_unknown_paths():
    coordinator = Coordinator(SPEC, 5, lease_trials=5)
    with CoordinatorServer(coordinator) as server:
        with urllib.request.urlopen(f"{server.url}/status", timeout=10) as resp:
            status = json.loads(resp.read().decode())
        assert status["trials"] == 5 and status["done"] is False
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=10)
        assert excinfo.value.code == 404


def test_http_conflict_is_a_409():
    coordinator = Coordinator(SPEC, 5, lease_trials=5)
    with CoordinatorServer(coordinator) as server:
        coordinator.submit("seeded", [{"seed": 0, "code": 1}])
        body = json.dumps(
            {"lease": "x", "records": [{"seed": 0, "code": 3}]}
        ).encode()
        request = urllib.request.Request(
            f"{server.url}/submit",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 409


def test_http_secret_via_shared_transport(serial_digest):
    """Coordinator + worker over the shared authenticated transport: no
    secret -> 401, right secret -> bit-identical digest (chunked submits
    included)."""
    coordinator = Coordinator(SPEC, TRIALS, lease_trials=15)
    with CoordinatorServer(coordinator, secret="campaign-key") as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/status", timeout=10)
        assert excinfo.value.code == 401
        summary = work_remote(
            server.url,
            worker="sec",
            poll_s=0.02,
            secret="campaign-key",
            chunked=True,
        )
    assert coordinator.done
    assert summary["trials"] == TRIALS
    assert coordinator.result().outcome_digest == serial_digest


def test_worker_retries_survive_coordinator_restart(serial_digest):
    """`repro work --coordinator URL --retries N` outlives a coordinator
    bounce: the HTTP front end goes away mid-campaign and comes back on the
    same port, and the worker's backoff loop re-acquires leases instead of
    dying.  The merged digest stays bit-identical to serial."""
    coordinator = Coordinator(SPEC, TRIALS, lease_trials=5)
    first = CoordinatorServer(coordinator).start()
    port = int(first.url.rsplit(":", 1)[1])
    url = first.url

    summary = {}

    def drain():
        summary.update(
            work_remote(
                url,
                worker="survivor",
                poll_s=0.02,
                timeout_s=10.0,
                retries=8,
                backoff_s=0.1,
            )
        )

    worker = threading.Thread(target=drain)
    worker.start()
    # Let the worker make progress, then bounce the HTTP front end.
    import time

    time.sleep(0.4)
    first.stop()
    time.sleep(0.4)
    second = CoordinatorServer(coordinator, port=port).start()
    try:
        worker.join(timeout=120)
        assert not worker.is_alive()
    finally:
        second.stop()
    assert "note" not in summary, summary
    assert coordinator.done
    assert summary["trials"] == TRIALS
    assert coordinator.result().outcome_digest == serial_digest


def test_worker_without_retries_stops_cleanly_when_unreachable():
    coordinator = Coordinator(SPEC, 5, lease_trials=5)
    server = CoordinatorServer(coordinator).start()
    url = server.url
    server.stop()
    summary = work_remote(url, worker="orphan", poll_s=0.02, timeout_s=2.0)
    assert summary["trials"] == 0
    assert "unreachable" in summary["note"]


def test_lease_target_sizes_leases_from_checkpoint_percentiles(tmp_path):
    """Resuming with --lease-target-s sizes leases from the checkpoint's
    observed per-trial wall times: lease_trials ~= target / p50."""
    checkpoint = str(tmp_path / "campaign.jsonl")
    run_campaign(SPEC, trials=10, base_seed=0, jobs=1, checkpoint=checkpoint)

    resumed = Coordinator(
        SPEC,
        trials=100,
        checkpoint=checkpoint,
        resume=True,
        lease_target_s=5.0,
    )
    p50 = resumed.aggregator.timing_percentiles()["p50"]
    assert p50 > 0
    assert resumed.lease_trials_used == max(1, int(5.0 * 1000.0 / p50))

    # Without timings (fresh campaign) the default sizing still applies.
    fresh = Coordinator(SPEC, trials=100, lease_target_s=5.0)
    assert fresh.lease_trials_used == 100
    # An explicit lease_trials always wins over the target.
    explicit = Coordinator(
        SPEC,
        trials=100,
        lease_trials=7,
        checkpoint=checkpoint,
        resume=True,
        lease_target_s=5.0,
    )
    assert explicit.lease_trials_used == 7
