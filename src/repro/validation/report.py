"""Text reports for validation campaigns and equivalence experiments."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .runner import CampaignReport

__all__ = ["format_table", "format_campaigns"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table (used by the benchmark harness)."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [line, "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |", line]
    for row in materialized:
        out.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    out.append(line)
    return "\n".join(out)


def format_campaigns(reports: Iterable[CampaignReport]) -> str:
    """One row per campaign: the Section 4 headline numbers."""
    rows = [
        (
            report.variant,
            report.trials,
            report.agreements,
            report.error_agreements,
            len(report.mismatches),
            f"{report.agreement_rate:.4%}",
        )
        for report in reports
    ]
    return format_table(
        ("variant", "trials", "agree", "both-error", "mismatch", "rate"), rows
    )
