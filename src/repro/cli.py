"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``          evaluate a SQL query on a database described by a JSON file
``translate``    print the relational-algebra translation of a query (Thm 1)
``two-valued``   print the Figure 10 two-valued rewriting of a query (Thm 2)
``validate``     run a Section 4 validation campaign (semantics vs engine)
``differential`` run the n-way differential campaign (all implementations)
``report``       render an existing campaign checkpoint (no re-running)
``generate``     print random queries from the Section 4 generator

The two campaign commands run on the unified subsystem of
:mod:`repro.campaigns`: ``--jobs N`` shards the seed range over N worker
processes (results are bit-identical to a serial run at any N),
``--checkpoint FILE`` streams one JSONL record per trial so progress is
durable, and ``--resume`` restarts a killed campaign where it left off.
The paper-scale Section 4 experiment is::

    python -m repro validate --variants postgres --trials 100000 \\
        --jobs 8 --checkpoint pg.jsonl --resume

(with two variants, per-variant checkpoints get the variant name appended:
``pg.postgres.jsonl`` / ``pg.oracle.jsonl``).  Campaign commands exit
non-zero when any trial disagrees.

The database JSON format is::

    {
      "schema": {"R": ["A"], "S": ["A"]},
      "tables": {"R": [[1], [null]], "S": [[null]]}
    }

JSON ``null`` becomes SQL NULL.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Optional, Sequence

from .algebra import desugar, to_sqlra
from .algebra.printer import print_expression_tree
from .core.schema import Database, Schema
from .core.values import NULL
from .generator.config import PAPER_CONFIG
from .generator.queries import QueryGenerator
from .semantics.evaluator import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from .semantics.two_valued import TwoValuedTranslator
from .sql.annotate import annotate
from .sql.printer import print_query
from .validation.report import format_campaigns

__all__ = ["main", "load_database"]


def load_database(path: str) -> Database:
    """Load a schema + instance from the JSON format described above."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = Schema({name: tuple(attrs) for name, attrs in payload["schema"].items()})
    tables = {
        name: [
            tuple(NULL if value is None else value for value in row) for row in rows
        ]
        for name, rows in payload.get("tables", {}).items()
    }
    return Database(schema, tables)


def _cmd_run(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    star = STAR_COMPOSITIONAL if args.dialect == "postgres" else STAR_STANDARD
    semantics = SqlSemantics(schema, star_style=star)
    print(f"-- annotated: {print_query(query)}")
    print(semantics.run(query, db).pretty(max_rows=args.max_rows))
    return 0


def _cmd_translate(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    sqlra = to_sqlra(query, schema)
    if args.pure:
        expression = desugar(sqlra, schema)
        print("-- pure relational algebra (Theorem 1 / Proposition 2):")
    else:
        expression = sqlra
        print("-- SQL-RA (Figure 9):")
    print(print_expression_tree(expression))
    return 0


def _cmd_two_valued(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    translator = TwoValuedTranslator(schema, args.equality)
    translated = translator.translate_query(query)
    print(f"-- Q′ with ⟦Q⟧ = ⟦Q′⟧2v (equality: {args.equality}):")
    print(print_query(translated))
    return 0


def _campaign_checkpoint(path: Optional[str], suffix: Optional[str]) -> Optional[str]:
    """Derive a per-campaign checkpoint path (``pg.jsonl`` + ``postgres`` →
    ``pg.postgres.jsonl``) when one file would be shared by several runs."""
    if path is None or suffix is None:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}.{suffix}{ext or '.jsonl'}"


def _run_campaign_cmd(spec, args, checkpoint_suffix: Optional[str] = None):
    from .campaigns import run_campaign

    try:
        return run_campaign(
            spec,
            trials=args.trials,
            base_seed=args.seed,
            jobs=args.jobs,
            checkpoint=_campaign_checkpoint(args.checkpoint, checkpoint_suffix),
            resume=args.resume,
        )
    except ValueError as exc:
        # Misuse (resume without checkpoint, checkpoint/spec mismatch, ...):
        # a clean diagnostic, not a traceback.
        raise SystemExit(f"repro: {exc}")


def _cmd_validate(args) -> int:
    from .campaigns import CampaignSpec

    results = []
    failed = False
    multi = len(args.variants) > 1
    for variant in args.variants:
        spec = CampaignSpec(kind="validation", variant=variant, rows=args.rows)
        result = _run_campaign_cmd(
            spec, args, checkpoint_suffix=variant if multi else None
        )
        results.append(result)
        for mismatch in result.mismatches[: args.show_mismatches]:
            print(mismatch["detail"], file=sys.stderr)
        print(
            f"-- {variant}: {result.trials_per_sec:.0f} trials/s "
            f"(jobs={result.jobs}, digest={result.outcome_digest[:12]})",
            file=sys.stderr,
        )
        failed = failed or bool(result.mismatches)
    print(format_campaigns(results))
    return 1 if failed else 0


def _cmd_differential(args) -> int:
    from .campaigns import CampaignSpec

    spec = CampaignSpec(kind="differential", rows=args.rows, tables=args.tables)
    result = _run_campaign_cmd(spec, args)
    for mismatch in result.mismatches[: args.show_disagreements]:
        print(f"seed {mismatch['seed']}: {mismatch['detail']}", file=sys.stderr)
    print(result.summary())
    return 1 if result.mismatches else 0


def _cmd_report(args) -> int:
    """Render a ``campaign-checkpoint/v1`` file: pure aggregation, no trials."""
    from .campaigns import CODE_AGREE, CODE_AGREE_BOTH_ERROR, summarize_checkpoint

    try:
        header, aggregator = summarize_checkpoint(args.checkpoint)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    result = aggregator.finalize()
    pending = aggregator.trials - aggregator.completed
    plain_agreements = result.agreements - result.error_agreements
    print(f"checkpoint: {args.checkpoint}  ({header.get('schema')})")
    print(f"spec: {json.dumps(header.get('spec', {}), sort_keys=True)}")
    print(
        f"seeds: [{aggregator.base_seed}, "
        f"{aggregator.base_seed + aggregator.trials}) — "
        f"{aggregator.completed} recorded, {pending} pending, "
        f"{result.duplicates} duplicate record(s) skipped"
    )
    print(
        f"outcomes: {plain_agreements} agree, "
        f"{result.error_agreements} agree-both-error, "
        f"{len(result.mismatches)} mismatch "
        f"(rate {result.agreement_rate:.4%})"
    )
    if result.timing_ms:
        print(
            f"latency: p50={result.timing_ms['p50']:.2f}ms "
            f"p95={result.timing_ms['p95']:.2f}ms "
            f"p99={result.timing_ms['p99']:.2f}ms"
        )
    print(f"outcome_digest: {result.outcome_digest}")
    for mismatch in result.mismatches[: args.show_mismatches]:
        detail = mismatch.get("detail") or "(no detail recorded)"
        print(f"seed {mismatch['seed']}: {detail}", file=sys.stderr)
    return 1 if result.mismatches else 0


def _cmd_generate(args) -> int:
    from .core.schema import validation_schema

    generator = QueryGenerator(
        validation_schema(), PAPER_CONFIG, random.Random(args.seed)
    )
    for i in range(args.count):
        print(print_query(generator.generate(seed=args.seed + i), args.dialect) + ";")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable formal semantics of basic SQL (VLDB 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a query under the formal semantics")
    run.add_argument("query")
    run.add_argument("--database", "-d", required=True, help="JSON database file")
    run.add_argument(
        "--dialect", choices=("standard", "postgres"), default="standard"
    )
    run.add_argument("--max-rows", type=int, default=50)
    run.set_defaults(func=_cmd_run)

    translate = sub.add_parser(
        "translate", help="translate a data manipulation query to algebra"
    )
    translate.add_argument("query")
    translate.add_argument("--database", "-d", required=True)
    translate.add_argument(
        "--pure", action="store_true", help="desugar SQL-RA into pure RA"
    )
    translate.set_defaults(func=_cmd_translate)

    twov = sub.add_parser(
        "two-valued", help="print the Figure 10 two-valued rewriting"
    )
    twov.add_argument("query")
    twov.add_argument("--database", "-d", required=True)
    twov.add_argument(
        "--equality", choices=("conflating", "syntactic"), default="conflating"
    )
    twov.set_defaults(func=_cmd_two_valued)

    def add_campaign_args(cmd) -> None:
        cmd.add_argument("--trials", type=int, default=200)
        cmd.add_argument("--rows", type=int, default=6)
        cmd.add_argument("--seed", type=int, default=0, help="base seed")
        cmd.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (results identical at any value)",
        )
        cmd.add_argument(
            "--checkpoint", default=None, metavar="FILE",
            help="stream per-trial JSONL records to FILE",
        )
        cmd.add_argument(
            "--resume", action="store_true",
            help="fold a previous checkpoint in and run only missing seeds",
        )

    validate = sub.add_parser("validate", help="run a validation campaign")
    add_campaign_args(validate)
    validate.add_argument(
        "--variants", nargs="+", choices=("postgres", "oracle"),
        default=["postgres", "oracle"],
    )
    validate.add_argument("--show-mismatches", type=int, default=5)
    validate.set_defaults(func=_cmd_validate)

    differential = sub.add_parser(
        "differential",
        help="run the n-way differential campaign (all implementations)",
    )
    add_campaign_args(differential)
    differential.add_argument(
        "--tables", type=int, default=None,
        help="size of the R1..Rn validation schema (default: runner default)",
    )
    differential.add_argument("--show-disagreements", type=int, default=5)
    differential.set_defaults(func=_cmd_differential)

    report = sub.add_parser(
        "report",
        help="render an existing campaign checkpoint without re-running",
    )
    report.add_argument("checkpoint", help="campaign-checkpoint/v1 JSONL file")
    report.add_argument("--show-mismatches", type=int, default=5)
    report.set_defaults(func=_cmd_report)

    generate = sub.add_parser("generate", help="print random queries")
    generate.add_argument("--count", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--dialect", choices=("standard", "postgres", "oracle"), default="standard"
    )
    generate.set_defaults(func=_cmd_generate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
