"""Watching the semantics work: a rule-by-rule derivation trace.

The paper closes by advocating its formal semantics as "a useful tool for
both users and implementers in understanding the behavior of SQL queries".
`TracingSemantics` makes each rule application visible: which block was
evaluated, under which environment η, yielding which table or truth value.

The traced query is Example 1's Q1 — the NOT IN query that surprisingly
returns the empty table.  The trace shows *why*: for every row of R, the
membership test against S = {NULL} evaluates to u (never f), so NOT IN is
never t.

Run:  python examples/derivation_trace.py
"""

from repro import Database, NULL, Schema, annotate
from repro.semantics import TracingSemantics, format_trace

schema = Schema({"R": ("A",), "S": ("A",)})
db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})

query = annotate(
    "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", schema
)

semantics = TracingSemantics(schema)
result = semantics.run(query, db)

print("Derivation of Q1 on R = {1, NULL}, S = {NULL}:")
print()
print(format_trace(semantics.trace))
print()
print(f"Final result: {sorted(result.bag, key=repr)}  (the empty table)")
print()
print(
    "Reading the trace: the WHERE condition is evaluated once per row of R\n"
    "with the row's bindings in η.  Both applications of ⟦R.A NOT IN …⟧\n"
    "come out u (1 = NULL is unknown; NULL = NULL is unknown), and rows are\n"
    "kept only when the condition is t — hence the empty answer."
)
