"""Compiled (closure-generating) execution for the reference engine.

The interpreted executor pays Python virtual dispatch on every row: a
``FilterOp`` calls ``PredNode.__call__`` per row, which recurses through
``AndPred``/``OrPred``/``ComparePred`` frames, each of which calls its
operand expressions, which call :func:`~repro.engine.expressions.compare`,
which looks the operator up in a dict — six-plus call frames to decide one
conjunction.  At campaign scale that interpretation overhead, not the
algorithms, bounds throughput.

This module lowers an (optimized or naive) physical plan into nested
Python closures once, so executions pay none of that dispatch:

* :func:`compile_predicate` turns a whole ``PredNode`` tree into **one
  generated Python function** ``(row, outers) -> truth``: the
  ``ComparePred`` / ``IsNullPred`` / ``AndPred`` / ``OrPred`` / ``NotPred``
  structure is emitted as straight-line source (3VL short-circuits become
  ``if`` statements, comparisons become calls to specialized total
  helpers, column references become ``r[i]`` subscripts) and compiled in a
  single call frame.  Constant subtrees are folded away exactly — only
  rewrites that cannot change error behaviour are applied (total
  comparisons over literals, short-circuit absorption).  Generated code
  objects are cached by source text, so structurally repeating predicates
  — the normal case for generated campaign queries — compile in
  microseconds.
* :func:`compile_plan` turns every operator into a closure-based
  ``iter_rows`` that captures its children's compiled iterators directly:
  scans iterate their bound lists, a projection of plain columns becomes a
  C-level ``map(itemgetter(...), child)``, ``Filter``+``Project`` pairs
  fuse into one generator frame, and the stateful operators
  (``HashJoin``, ``CachedSubplan``, ``MemoSubplan``, the subquery probes)
  compile to closures that *share state with the original plan nodes* —
  they read and write the same ``_table`` / ``_cache`` / ``_memo`` /
  ``_keys`` attributes the interpreted path uses.

That state sharing is the bind/unbind contract: a compiled plan is
executed via its closure tree, but :func:`repro.engine.binding.bind_plan`
/ :func:`~repro.engine.binding.unbind_plan` still walk the *plan node*
tree — installing scan rows, clearing per-execution memos, and harvesting
/ restoring build-side structures through the
:class:`~repro.engine.binding.BuildSideCache` — and the closures observe
whatever those walks install.  Cached compiled plans therefore pin no
database rows, and cross-trial build-side sharing works unchanged.

Compiled execution is bit-identical to interpretation by construction:
evaluation order, 3VL short-circuits, streaming/early-termination points,
materialization order and raised errors are preserved exactly (verified by
``tests/properties/test_compiled_equivalence.py`` and the digest-equality
gate of ``scripts/bench.py --stages engine_compiled,engine_interpreted``).
``Engine(compiled=False)`` keeps the interpreted path as the ablation
baseline.

The columnar tier (:mod:`repro.engine.columnar`) builds on this module:
it reuses the constant folder, the source-keyed code cache, the compiled
subquery probes (row-wise by design, preserving early termination) and
:func:`_iter_fn` as its per-subtree fallback, so the two lowerings can
never drift apart on the semantics they share.
"""

from __future__ import annotations

from collections import Counter
from itertools import product as _iter_product
from operator import itemgetter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import CompileError
from .expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    IsNullPred,
    LiteralExpr,
    NotPred,
    OrPred,
    OuterStack,
    Row,
    RowExpr,
    not3,
)
from .expressions import COMPARE_FUNCS as _COMPARE_FUNCS
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    ExistsPred,
    ExistsProbe,
    FilterOp,
    GenericJoin,
    HashJoin,
    HashSetOp,
    InPred,
    MemoSubplan,
    PlanNode,
    ProjectOp,
    RemapOp,
    SemiJoinProbe,
    SetOpNode,
    StaticScan,
    TableScan,
    _in_fold,
    typed_key,
)

__all__ = ["compile_plan", "compile_predicate", "IterFn", "RowsFn"]

#: A compiled operator: outer-row stack in, row iterator out.
IterFn = Callable[[OuterStack], Iterator[Row]]

#: A compiled materializer: outer-row stack in, row sequence out (mirrors
#: ``PlanNode.rows``, including its list-aliasing behaviour for scans and
#: cached subplans).
RowsFn = Callable[[OuterStack], Sequence[Row]]


# -- comparison helpers -------------------------------------------------------
#
# One specialized function per operator, replacing the interpreted chain
# ``ComparePred.__call__ -> compare -> COMPARE_FUNCS[op] -> _ordered``.
# NULL propagation and error behaviour (message included) match
# :func:`repro.engine.expressions.compare` exactly.

_LIKE_FUNC = _COMPARE_FUNCS["LIKE"]


def _eq(a, b):
    if a is None or b is None:
        return None
    return a == b and isinstance(a, str) == isinstance(b, str)


def _ne(a, b):
    if a is None or b is None:
        return None
    return not (a == b and isinstance(a, str) == isinstance(b, str))


def _lt(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(f"type clash in comparison: {a!r} < {b!r}")
    return a < b


def _le(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(f"type clash in comparison: {a!r} <= {b!r}")
    return a <= b


def _gt(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(f"type clash in comparison: {a!r} > {b!r}")
    return a > b


def _ge(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, str) != isinstance(b, str):
        raise CompileError(f"type clash in comparison: {a!r} >= {b!r}")
    return a >= b


def _like(a, b):
    if a is None or b is None:
        return None
    return _LIKE_FUNC(a, b)


#: Comparison operator -> generated helper name.
_OP_HELPERS = {
    "=": "_eq",
    "<>": "_ne",
    "<": "_lt",
    "<=": "_le",
    ">": "_gt",
    ">=": "_ge",
    "LIKE": "_like",
}

#: Total comparisons: can never raise, so literal operands fold exactly.
_TOTAL_OPS = ("=", "<>")

#: The globals every generated function starts from.
_BASE_NAMESPACE = {
    "_eq": _eq,
    "_ne": _ne,
    "_lt": _lt,
    "_le": _le,
    "_gt": _gt,
    "_ge": _ge,
    "_like": _like,
    "__builtins__": {"isinstance": isinstance, "str": str, "tuple": tuple},
}

#: Generated source -> code object.  Sources embed column indices and
#: literals but name captured objects positionally (``_c0``, ``_c1``, …),
#: so structurally identical predicates share one compilation regardless of
#: which subquery objects they capture — campaign query generators repeat
#: structures constantly, making this cache the reason per-trial
#: compilation stays in the microsecond range.
_CODE_CACHE: Dict[str, object] = {}

#: Safety valve: generated sources are tiny, but literals are embedded, so
#: an adversarial workload could mint unbounded variants.
_CODE_CACHE_MAX = 8192


def _compiled_code(source: str):
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        code = _CODE_CACHE[source] = compile(source, "<repro-compiled>", "exec")
    return code


def _assemble(name: str, source: str, captured: Dict[str, object]):
    namespace = dict(_BASE_NAMESPACE)
    namespace.update(captured)
    exec(_compiled_code(source), namespace)
    return namespace[name]


class _Emitter:
    """Accumulates generated source lines plus captured runtime objects."""

    def __init__(self):
        self.lines: List[str] = []
        self.captured: Dict[str, object] = {}
        self._capture_ids: Dict[int, str] = {}
        self._temps = 0

    def temp(self) -> str:
        self._temps += 1
        return f"t{self._temps}"

    def capture(self, obj) -> str:
        name = self._capture_ids.get(id(obj))
        if name is None:
            name = f"_c{len(self.captured)}"
            self.captured[name] = obj
            self._capture_ids[id(obj)] = name
        return name

    def emit(self, depth: int, line: str) -> None:
        self.lines.append("    " * (depth + 1) + line)


def _literal_source(value) -> Optional[str]:
    """Source text for an embeddable constant, or None to capture it."""
    if value is None or isinstance(value, (bool, int, str, float)):
        return repr(value)
    return None


def _expr_source(emitter: _Emitter, expr: RowExpr) -> str:
    """An expression string over ``r`` (row) and ``o`` (outer stack)."""
    if isinstance(expr, ColumnRef):
        if expr.depth == 0:
            return f"r[{expr.index}]"
        return f"o[-{expr.depth}][{expr.index}]"
    if isinstance(expr, LiteralExpr):
        text = _literal_source(expr.value)
        if text is not None:
            return text
    return f"{emitter.capture(expr)}(r, o)"


# -- constant folding ---------------------------------------------------------


def _fold_predicate(pred):
    """Exact constant folding: only rewrites that cannot change results
    *or error behaviour* are applied.

    Total comparisons (``=`` / ``<>``) over two literals and ``IS NULL``
    over a literal evaluate at compile time; 3VL connectives absorb
    constants only along the interpreted short-circuit order (a left
    ``FALSE`` kills an AND before its right side would ever run, so the
    right side may be dropped; a right-side constant may only be dropped
    when the identity is exact for every left value, e.g. ``AND TRUE``).
    Ordered comparisons and LIKE can raise on type clashes, so they are
    never folded.
    """
    if isinstance(pred, ComparePred):
        if (
            pred.op in _TOTAL_OPS
            and isinstance(pred.left, LiteralExpr)
            and isinstance(pred.right, LiteralExpr)
        ):
            a, b = pred.left.value, pred.right.value
            if a is None or b is None:
                return ConstPred(None)
            return ConstPred(_eq(a, b) if pred.op == "=" else _ne(a, b))
        return pred
    if isinstance(pred, IsNullPred):
        if isinstance(pred.expr, LiteralExpr):
            is_null = pred.expr.value is None
            return ConstPred(is_null is not pred.negated)
        return pred
    if isinstance(pred, AndPred):
        left = _fold_predicate(pred.left)
        right = _fold_predicate(pred.right)
        if isinstance(left, ConstPred):
            if left.value is False:
                return ConstPred(False)
            if left.value is True:
                return right
            # left is UNKNOWN: and3(None, b) is False iff b is False,
            # else None — still needs the right side (which may raise).
            if isinstance(right, ConstPred):
                return ConstPred(False if right.value is False else None)
        if isinstance(right, ConstPred) and right.value is True:
            return left  # and3(a, True) == a for every a
        if left is pred.left and right is pred.right:
            return pred
        return AndPred(left, right)
    if isinstance(pred, OrPred):
        left = _fold_predicate(pred.left)
        right = _fold_predicate(pred.right)
        if isinstance(left, ConstPred):
            if left.value is True:
                return ConstPred(True)
            if left.value is False:
                return right  # or3(False, b) == b for every b
            if isinstance(right, ConstPred):
                return ConstPred(True if right.value is True else None)
        if isinstance(right, ConstPred) and right.value is False:
            return left  # or3(a, False) == a for every a
        if left is pred.left and right is pred.right:
            return pred
        return OrPred(left, right)
    if isinstance(pred, NotPred):
        operand = _fold_predicate(pred.operand)
        if isinstance(operand, ConstPred):
            return ConstPred(not3(operand.value))
        if operand is pred.operand:
            return pred
        return NotPred(operand)
    return pred


# -- predicate code generation ------------------------------------------------


def _generate_predicate(emitter: _Emitter, pred, depth: int) -> str:
    """Emit statements computing ``pred``; returns the result variable."""
    target = emitter.temp()
    if isinstance(pred, ConstPred):
        emitter.emit(depth, f"{target} = {pred.value!r}")
        return target
    if isinstance(pred, ComparePred) and pred.op in _OP_HELPERS:
        left = _expr_source(emitter, pred.left)
        right = _expr_source(emitter, pred.right)
        emitter.emit(depth, f"{target} = {_OP_HELPERS[pred.op]}({left}, {right})")
        return target
    if isinstance(pred, IsNullPred):
        op = "is not" if pred.negated else "is"
        expr = _expr_source(emitter, pred.expr)
        emitter.emit(depth, f"{target} = ({expr} {op} None)")
        return target
    if isinstance(pred, AndPred):
        left = _generate_predicate(emitter, pred.left, depth)
        emitter.emit(depth, f"if {left} is False:")
        emitter.emit(depth + 1, f"{target} = False")
        emitter.emit(depth, "else:")
        right = _generate_predicate(emitter, pred.right, depth + 1)
        emitter.emit(
            depth + 1,
            f"{target} = False if {right} is False else "
            f"(None if ({left} is None or {right} is None) else True)",
        )
        return target
    if isinstance(pred, OrPred):
        left = _generate_predicate(emitter, pred.left, depth)
        emitter.emit(depth, f"if {left} is True:")
        emitter.emit(depth + 1, f"{target} = True")
        emitter.emit(depth, "else:")
        right = _generate_predicate(emitter, pred.right, depth + 1)
        emitter.emit(
            depth + 1,
            f"{target} = True if {right} is True else "
            f"(None if ({left} is None or {right} is None) else False)",
        )
        return target
    if isinstance(pred, NotPred):
        operand = _generate_predicate(emitter, pred.operand, depth)
        emitter.emit(
            depth, f"{target} = (None if {operand} is None else not {operand})"
        )
        return target
    # Subquery probes and opaque callables: captured as compiled closures.
    emitter.emit(depth, f"{target} = {emitter.capture(_compile_subpred(pred))}(r, o)")
    return target


def compile_predicate(pred):
    """Compile a predicate tree into one generated function (or a
    :class:`~repro.engine.expressions.ConstPred` when it folds away).

    The returned object is a ``(row, outers) -> Optional[bool]`` callable
    either way; callers that can specialize on a constant verdict (e.g.
    dropping a ``WHERE TRUE`` filter) check for ``ConstPred``.
    """
    folded = _fold_predicate(pred)
    if isinstance(folded, ConstPred):
        return folded
    emitter = _Emitter()
    result = _generate_predicate(emitter, folded, 0)
    source = "def _pred(r, o):\n" + "\n".join(emitter.lines) + (
        f"\n    return {result}\n"
    )
    return _assemble("_pred", source, emitter.captured)


# -- row (projection / probe-value) compilation -------------------------------


def _column_indices(exprs: Sequence[RowExpr]) -> Optional[Tuple[int, ...]]:
    """The depth-0 indices when every expression is a current-row column."""
    indices = []
    for expr in exprs:
        if not (isinstance(expr, ColumnRef) and expr.depth == 0):
            return None
        indices.append(expr.index)
    return tuple(indices)


def compile_row(exprs: Sequence[RowExpr]) -> Callable[[Row, OuterStack], Row]:
    """One generated function building the output tuple of a projection
    (or the probe values of an IN predicate) in a single call frame."""
    emitter = _Emitter()
    parts = [_expr_source(emitter, expr) for expr in exprs]
    body = ", ".join(parts) + ("," if len(parts) == 1 else "")
    source = f"def _row(r, o):\n    return ({body})\n"
    return _assemble("_row", source, emitter.captured)


# -- subquery predicates ------------------------------------------------------
#
# Each compiled probe captures the *original* predicate object and keeps all
# mutable state (`_known`, `_memo`, `_keys`, …) on it, so the binding
# layer's reset/harvest/restore walks govern compiled execution unchanged.


def _compile_subpred(pred):
    if isinstance(pred, ExistsProbe):
        return _compile_exists_probe(pred)
    if isinstance(pred, ExistsPred):
        return _compile_exists_pred(pred)
    if isinstance(pred, SemiJoinProbe):
        return _compile_semi_join_probe(pred)
    if isinstance(pred, InPred):
        return _compile_in_pred(pred)
    return pred  # opaque callable: invoked as-is


def _compile_exists_pred(pred: ExistsPred):
    sub_rows = _rows_fn(pred.subplan)

    def exists_naive(r, o):
        return bool(sub_rows(o + (r,)))

    return exists_naive


def _compile_exists_probe(pred: ExistsProbe):
    sub_iter = _iter_fn(pred.subplan)

    def probe(r, o):
        for _ in sub_iter(o + (r,)):
            return True
        return False

    if pred.closed:

        def exists_closed(r, o):
            known = pred._known
            if known is None:
                known = pred._known = probe(r, o)
            return known

        return exists_closed
    refs = pred._refs
    if refs is None:
        return probe

    def exists_memo(r, o):
        memo = pred._memo
        key = tuple(r[i] if d == 0 else o[-d][i] for d, i in refs)
        result = memo.get(key)
        if result is None:
            result = memo[key] = probe(r, o)
        return result

    return exists_memo


def _compile_in_pred(pred: InPred):
    sub_rows = _rows_fn(pred.subplan)
    values_fn = compile_row(pred.exprs)
    negated = pred.negated
    refs = pred._refs

    if refs is None:

        def rows_for(r, o):
            return sub_rows(o + (r,))

    else:

        def rows_for(r, o):
            memo = pred._memo
            key = tuple(r[i] if d == 0 else o[-d][i] for d, i in refs)
            rows = memo.get(key)
            if rows is None:
                rows = memo[key] = list(dict.fromkeys(sub_rows(o + (r,))))
            return rows

    def in_pred(r, o):
        result = _in_fold(values_fn(r, o), rows_for(r, o))
        if negated:
            return None if result is None else not result
        return result

    return in_pred


def _compile_semi_join_probe(pred: SemiJoinProbe):
    sub_rows = _rows_fn(pred.subplan)
    values_fn = compile_row(pred.exprs)
    negated = pred.negated

    def semi_join(r, o):
        if pred._rows is None:
            distinct = list(dict.fromkeys(sub_rows(())))
            keys = []
            null_rows = []
            for sub_row in distinct:
                key = typed_key(sub_row)
                if key is None:
                    null_rows.append(sub_row)
                else:
                    keys.append(key)
            pred._rows = distinct
            pred._keys = frozenset(keys)
            pred._null_rows = null_rows
        values = values_fn(r, o)
        key = typed_key(values)
        if key is not None:
            if key in pred._keys:
                result = True
            else:
                result = None if pred._maybe_null_match(values) else False
        else:
            result = _in_fold(values, pred._rows)
        if negated:
            return None if result is None else not result
        return result

    return semi_join


# -- operator compilation -----------------------------------------------------


def _key_fn(indices: Tuple[int, ...]):
    """A specialized :func:`~repro.engine.operators.typed_key` over fixed
    row positions (NULL anywhere makes the key unusable)."""
    if len(indices) == 1:
        (index,) = indices

        def key1(row):
            value = row[index]
            if value is None:
                return None
            return ((isinstance(value, str), value),)

        return key1

    def keyn(row):
        key = []
        for index in indices:
            value = row[index]
            if value is None:
                return None
            key.append((isinstance(value, str), value))
        return tuple(key)

    return keyn


def _drained(child_iter: IterFn) -> IterFn:
    """A filter whose predicate folded to FALSE/UNKNOWN: yields nothing,
    but still drains the child so data-dependent errors surface exactly as
    the interpreted ``FilterOp`` (which iterates its child regardless)."""

    def drain(outers):
        for _row in child_iter(outers):
            pass
        return
        yield  # pragma: no cover - makes this a generator function

    return drain


def _split_filter(node: PlanNode):
    """Peel a FilterOp for fusion: (child, predicate | ConstPred | None)."""
    if isinstance(node, FilterOp):
        return node.child, compile_predicate(node.predicate)
    return node, None


def _compile_filter(node: FilterOp) -> IterFn:
    child_iter = _iter_fn(node.child)
    pred = compile_predicate(node.predicate)
    if isinstance(pred, ConstPred):
        if pred.value is True:
            return child_iter
        return _drained(child_iter)

    def filter_iter(outers):
        p = pred
        for row in child_iter(outers):
            if p(row, outers) is True:
                yield row

    return filter_iter


def _compile_project(node: ProjectOp) -> IterFn:
    child, pred = _split_filter(node.child)
    if isinstance(pred, ConstPred):
        if pred.value is True:
            pred = None
        else:
            return _drained(_iter_fn(child))
    child_iter = _iter_fn(child)
    indices = _column_indices(node.expressions)
    if pred is None:
        if indices is not None and len(indices) > 1:
            getter = itemgetter(*indices)
            return lambda outers: map(getter, child_iter(outers))
        row_fn = compile_row(node.expressions)

        def project_iter(outers):
            build = row_fn
            for row in child_iter(outers):
                yield build(row, outers)

        return project_iter
    row_fn = compile_row(node.expressions)

    def filter_project_iter(outers):
        p = pred
        build = row_fn
        for row in child_iter(outers):
            if p(row, outers) is True:
                yield build(row, outers)

    return filter_project_iter


def _compile_distinct(node: DistinctOp) -> IterFn:
    child_iter = _iter_fn(node.child)

    def distinct_iter(outers):
        seen = set()
        add = seen.add
        for row in child_iter(outers):
            if row not in seen:
                add(row)
                yield row

    return distinct_iter


def _compile_remap(node: RemapOp) -> IterFn:
    child_iter = _iter_fn(node.child)
    mapping = node.mapping
    if len(mapping) > 1:
        getter = itemgetter(*mapping)
        return lambda outers: map(getter, child_iter(outers))
    (index,) = mapping

    def remap1(outers):
        for row in child_iter(outers):
            yield (row[index],)

    return remap1


def _product_rows(materialized: List[Sequence[Row]]) -> Iterator[Row]:
    for combo in _iter_product(*materialized):
        row = combo[0]
        for part in combo[1:]:
            row = row + part
        yield row


def _compile_cross_join(node: CrossJoin) -> IterFn:
    children_rows = [_rows_fn(child) for child in node.children]

    def cross_iter(outers):
        # Children materialize in order with an early empty-out, exactly
        # like the interpreted CrossJoin: a later child is never touched
        # once an earlier one came up empty.
        materialized = []
        for rows_fn in children_rows:
            rows = rows_fn(outers)
            if not rows:
                return iter(())
            materialized.append(rows)
        if len(materialized) == 2:
            left, right = materialized
            return (x + y for x in left for y in right)
        return _product_rows(materialized)

    return cross_iter


def _compile_hash_join(node: HashJoin) -> IterFn:
    left_iter = _iter_fn(node.left)
    right_iter = _iter_fn(node.right)
    left_key = _key_fn(node.left_keys)
    right_key = _key_fn(node.right_keys)

    def build(outers):
        table: dict = {}
        setdefault = table.setdefault
        for row in right_iter(outers):
            key = right_key(row)
            if key is None:
                continue
            setdefault(key, []).append(row)
        return table

    def build_table(outers):
        if node._closed_build is None:
            node._closed_build = node.right.free_refs() == frozenset()
        if not node._closed_build:
            return build(outers)
        table = node._table
        if table is None:
            table = node._table = build(outers)
        return table

    def probe(table, outers):
        get = table.get
        key_of = left_key
        for row in left_iter(outers):
            key = key_of(row)
            if key is None:
                continue
            for match in get(key, ()):
                yield row + match

    def hash_join_iter(outers):
        table = build_table(outers)
        if not table:
            return iter(())
        return probe(table, outers)

    return hash_join_iter


def _compile_generic_join(node: GenericJoin) -> IterFn:
    """Native lowering of the worst-case-optimal join: children materialize
    through their compiled ``rows`` functions, while trie construction and
    leapfrog enumeration reuse the node's own (already loop-shaped) methods
    — and the tries live on the node (``_tries`` / ``_closed_build``), so
    the binding layer's reset/harvest/restore walks govern compiled
    execution unchanged, exactly like the hash-join build side."""
    children_rows = [_rows_fn(child) for child in node.children]

    def build(outers):
        return node._build_tries([rows_fn(outers) for rows_fn in children_rows])

    def build_tries(outers):
        if node._closed_build is None:
            node._closed_build = node.free_refs() == frozenset()
        if not node._closed_build:
            return build(outers)
        tries = node._tries
        if tries is None:
            tries = node._tries = build(outers)
        return tries

    def generic_join_iter(outers):
        tries = build_tries(outers)
        if any(not trie for trie in tries):
            return iter(())
        return node._solve(0, list(tries))

    return generic_join_iter


def _compile_hash_setop(node: HashSetOp) -> IterFn:
    left_iter = _iter_fn(node.left)
    right_iter = _iter_fn(node.right)
    if node.op == "UNION":
        if node.all:

            def union_all(outers):
                yield from left_iter(outers)
                yield from right_iter(outers)

            return union_all

        def union_distinct(outers):
            seen = set()
            add = seen.add
            for side in (left_iter, right_iter):
                for row in side(outers):
                    if row not in seen:
                        add(row)
                        yield row

        return union_distinct
    if node.op == "INTERSECT":
        if node.all:

            def intersect_all(outers):
                remaining = Counter(right_iter(outers))
                for row in left_iter(outers):
                    if remaining[row] > 0:
                        remaining[row] -= 1
                        yield row

            return intersect_all

        def intersect_distinct(outers):
            right_rows = set(right_iter(outers))
            emitted = set()
            for row in left_iter(outers):
                if row in right_rows and row not in emitted:
                    emitted.add(row)
                    yield row

        return intersect_distinct
    if node.op == "EXCEPT":
        if node.all:

            def except_all(outers):
                right_counts = Counter(right_iter(outers))
                for row in left_iter(outers):
                    if right_counts[row] > 0:
                        right_counts[row] -= 1
                    else:
                        yield row

            return except_all

        def except_distinct(outers):
            right_counts = Counter(right_iter(outers))
            emitted = set()
            for row in left_iter(outers):
                if right_counts[row] == 0 and row not in emitted:
                    emitted.add(row)
                    yield row

        return except_distinct
    raise ValueError(f"unknown set operation {node.op}")  # pragma: no cover


def _compile_setop_counted(node: SetOpNode) -> IterFn:
    """The naive counted-multiset set operation (``optimize=False`` plans):
    compiled children, same count-both-sides-and-re-expand algorithm."""
    left_iter = _iter_fn(node.left)
    right_iter = _iter_fn(node.right)
    op, all_ = node.op, node.all

    def setop_iter(outers):
        left_counts = Counter(left_iter(outers))
        right_counts = Counter(right_iter(outers))
        if op == "UNION":
            result = left_counts + right_counts
            if not all_:
                result = Counter(dict.fromkeys(result, 1))
        elif op == "INTERSECT":
            result = left_counts & right_counts
            if not all_:
                result = Counter(dict.fromkeys(result, 1))
        elif op == "EXCEPT":
            if all_:
                result = left_counts - right_counts
            else:
                result = Counter(dict.fromkeys(left_counts, 1)) - right_counts
        else:  # pragma: no cover - guarded at compile time
            raise ValueError(f"unknown set operation {op}")
        return iter(result.elements())

    return setop_iter


# -- materializers ------------------------------------------------------------


def _rows_fn(node: PlanNode) -> RowsFn:
    """Compiled equivalent of ``node.rows``: same results, same aliasing
    (scans and cached subplans hand out their stored lists; everything
    else materializes a fresh list from the compiled iterator)."""
    if isinstance(node, TableScan):

        def scan_rows(outers):
            data = node.data
            if data is None:
                raise RuntimeError(
                    f"TableScan({node.table!r}) executed without a bound "
                    f"database (see repro.engine.binding.bind_plan)"
                )
            return data

        return scan_rows
    if isinstance(node, StaticScan):
        data = node.data
        return lambda outers: data
    if isinstance(node, CachedSubplan):
        child_rows = _rows_fn(node.child)

        def cached_rows(outers):
            rows = node._cache
            if rows is None:
                # The child is closed, so the outer stack is irrelevant.
                rows = node._cache = child_rows(())
            return rows

        return cached_rows
    if isinstance(node, MemoSubplan):
        child_rows = _rows_fn(node.child)
        memo_refs = node.memo_refs

        def memo_rows(outers):
            memo = node._memo
            key = tuple(outers[-d][i] for d, i in memo_refs)
            rows = memo.get(key)
            if rows is None:
                rows = memo[key] = child_rows(outers)
            return rows

        return memo_rows
    iter_fn = _iter_fn(node)
    return lambda outers: list(iter_fn(outers))


# -- dispatcher ---------------------------------------------------------------


def _iter_fn(node: PlanNode) -> IterFn:
    if isinstance(node, (TableScan, StaticScan)):
        rows_fn = _rows_fn(node)
        return lambda outers: iter(rows_fn(outers))
    if isinstance(node, ProjectOp):
        return _compile_project(node)
    if isinstance(node, FilterOp):
        return _compile_filter(node)
    if isinstance(node, HashJoin):
        return _compile_hash_join(node)
    if isinstance(node, GenericJoin):
        return _compile_generic_join(node)
    if isinstance(node, CrossJoin):
        return _compile_cross_join(node)
    if isinstance(node, DistinctOp):
        return _compile_distinct(node)
    if isinstance(node, RemapOp):
        return _compile_remap(node)
    if isinstance(node, HashSetOp):
        return _compile_hash_setop(node)
    if isinstance(node, SetOpNode):
        return _compile_setop_counted(node)
    if isinstance(node, (CachedSubplan, MemoSubplan)):
        rows_fn = _rows_fn(node)
        return lambda outers: iter(rows_fn(outers))
    # Unknown node (an extension or a test double): fall back to its own
    # interpreted iteration so compilation degrades instead of failing.
    return node.iter_rows


def compile_plan(plan: PlanNode) -> IterFn:
    """Lower a physical plan into its compiled closure tree.

    The result is a drop-in replacement for ``plan.iter_rows`` — call it
    with the outer-row stack (``()`` at the top level).  The plan node
    tree stays the carrier of all mutable execution state, so
    :func:`~repro.engine.binding.bind_plan` /
    :func:`~repro.engine.binding.unbind_plan` round-trip compiled plans
    exactly as interpreted ones: compile once, bind/execute/unbind many.
    """
    return _iter_fn(plan)
