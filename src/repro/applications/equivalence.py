"""Randomized query-equivalence testing: an application of the semantics.

The paper's motivation for a formal semantics is to "derive language
equivalences and optimization rules" — and its Example 1 shows a textbook
rewriting (NOT IN → NOT EXISTS) that is wrong under nulls.  With an
executable semantics, candidate equivalences can be *tested*: evaluate both
queries under the formal semantics on many random databases and look for a
counterexample (the lightweight cousin of provers like Cosette [8], which
the paper cites as follow-on work).

:func:`check_equivalence` returns an :class:`EquivalenceReport` containing
either a counterexample database (queries NOT equivalent — a definitive
answer) or the number of witnesses tried (evidence, not proof, of
equivalence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..core.schema import Database, Schema
from ..core.table import Table
from ..generator.datafiller import DataFillerConfig, fill_database
from ..semantics.evaluator import SqlSemantics
from ..sql.annotate import annotate
from ..sql.ast import Query

__all__ = ["EquivalenceReport", "check_equivalence", "find_counterexample"]


@dataclass(frozen=True)
class EquivalenceReport:
    """The outcome of a randomized equivalence check."""

    equivalent_so_far: bool
    trials: int
    counterexample: Optional[Database] = None
    left_result: Optional[Table] = None
    right_result: Optional[Table] = None

    def describe(self) -> str:
        if self.equivalent_so_far:
            return (
                f"no counterexample in {self.trials} random databases "
                f"(evidence of equivalence, not a proof)"
            )
        left = sorted(self.left_result.bag, key=repr)
        right = sorted(self.right_result.bag, key=repr)
        return (
            f"NOT equivalent: counterexample found after {self.trials} "
            f"trial(s); left returns {left}, right returns {right}"
        )


def _as_query(query: Union[str, Query], schema: Schema) -> Query:
    if isinstance(query, str):
        return annotate(query, schema)
    return query


def check_equivalence(
    left: Union[str, Query],
    right: Union[str, Query],
    schema: Schema,
    trials: int = 200,
    seed: int = 0,
    semantics: Optional[SqlSemantics] = None,
    data_config: Optional[DataFillerConfig] = None,
    extra_databases: Sequence[Database] = (),
) -> EquivalenceReport:
    """Test two queries for equivalence on random databases.

    Any databases in ``extra_databases`` are tried first (useful for known
    tricky instances, e.g. ones with NULLs in strategic places); then
    ``trials`` random instances are generated.  Returns on the first
    counterexample.
    """
    left_query = _as_query(left, schema)
    right_query = _as_query(right, schema)
    sem = semantics if semantics is not None else SqlSemantics(schema)
    config = (
        data_config
        if data_config is not None
        else DataFillerConfig(max_rows=5, null_rate=0.25)
    )
    rng = random.Random(seed)
    tried = 0
    for db in extra_databases:
        tried += 1
        outcome = _compare_once(sem, left_query, right_query, db)
        if outcome is not None:
            return EquivalenceReport(False, tried, db, *outcome)
    for _ in range(trials):
        tried += 1
        db = fill_database(schema, rng, config)
        outcome = _compare_once(sem, left_query, right_query, db)
        if outcome is not None:
            return EquivalenceReport(False, tried, db, *outcome)
    return EquivalenceReport(True, tried)


def _compare_once(sem, left_query, right_query, db):
    left_result = sem.run(left_query, db)
    right_result = sem.run(right_query, db)
    if not left_result.same_as(right_result):
        return left_result, right_result
    return None


def find_counterexample(
    left: Union[str, Query],
    right: Union[str, Query],
    schema: Schema,
    trials: int = 200,
    seed: int = 0,
    **kwargs,
) -> Optional[Database]:
    """Convenience wrapper: the counterexample database, or None."""
    report = check_equivalence(left, right, schema, trials, seed, **kwargs)
    return report.counterexample


def shrink_counterexample(
    left: Union[str, Query],
    right: Union[str, Query],
    schema: Schema,
    db: Database,
    semantics: Optional[SqlSemantics] = None,
) -> Database:
    """Minimize a counterexample database by greedy row deletion.

    Repeatedly removes single rows as long as the two queries still
    disagree, producing a locally minimal witness: deleting any one
    remaining row makes the queries agree.  Small witnesses make the
    failure of a rewriting legible (the shrunk Example 1 counterexample is
    typically R = {NULL} or R = {c}, S = {NULL}).
    """
    left_query = _as_query(left, schema)
    right_query = _as_query(right, schema)
    sem = semantics if semantics is not None else SqlSemantics(schema)

    def disagrees(candidate: Database) -> bool:
        return _compare_once(sem, left_query, right_query, candidate) is not None

    if not disagrees(db):
        raise ValueError("the given database is not a counterexample")

    current = {
        name: list(db.table(name).bag) for name in schema.table_names
    }
    changed = True
    while changed:
        changed = False
        for name in schema.table_names:
            rows = current[name]
            index = 0
            while index < len(rows):
                candidate_rows = rows[:index] + rows[index + 1 :]
                candidate = Database(schema, {**current, name: candidate_rows})
                if disagrees(candidate):
                    rows[:] = candidate_rows
                    changed = True
                else:
                    index += 1
    return Database(schema, current)
