"""Transient-SQLite-error handling in the live comparator.

An injected ``sqlite3.OperationalError`` that *looks* transient ("database
is locked") must be retried away without changing the trial's record; one
that outlives the retry budget must still produce a clean, classifiable
record — never a crash out of ``run_trial``.
"""

from pathlib import Path

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.ingest import import_scenario
from repro.validation.live import LiveSqliteRunner

FIXTURE = str(Path(__file__).resolve().parent.parent / "fixtures" / "library.sql")


@pytest.fixture(scope="module")
def scenario():
    return import_scenario(FIXTURE)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    yield
    faults.uninstall()


def strip_ms(record):
    return {k: v for k, v in record.items() if k != "ms"}


def test_transient_error_is_retried_to_the_fault_free_record(scenario):
    runner = LiveSqliteRunner(scenario)
    try:
        baseline = strip_ms(runner.run_trial(7))
        with faults.active(
            FaultPlan(0, {"live.transient": 1.0}, {"live.transient": 1})
        ) as plan:
            faulted = strip_ms(runner.run_trial(7))
        assert plan.injected.get("live.transient") == 1
        assert faulted == baseline
    finally:
        runner.close()


def test_exhausted_retries_still_yield_a_clean_record(scenario):
    runner = LiveSqliteRunner(scenario, transient_retries=1)
    try:
        # Every attempt fails: the error surfaces as a normal sqlite-side
        # outcome (classified or mismatch), never an exception.
        with faults.active(FaultPlan(0, {"live.transient": 1.0})):
            record = runner.run_trial(7)
        assert record["seed"] == 7
        assert record["code"] in (2, 3, 4)
    finally:
        runner.close()


def test_zero_retries_disables_the_retry_loop(scenario):
    runner = LiveSqliteRunner(scenario, transient_retries=0)
    try:
        with faults.active(
            FaultPlan(0, {"live.transient": 1.0}, {"live.transient": 1})
        ) as plan:
            record = runner.run_trial(7)
        # One injection, no retry: the single attempt ate the fault.
        assert plan.injected.get("live.transient") == 1
        assert record["code"] in (2, 3, 4)
    finally:
        runner.close()
