"""Differential property tests for multiway joins and DP join ordering.

The paper's methodology, aimed at the third-generation optimizer: on
≥500 random query/database pairs per dialect variant — a generator mix
tilted toward multi-table FROMs whose WHERE conjunctions form join
graphs — the default engine (worst-case-optimal ``GenericJoin`` on
cyclic graphs + Selinger-style DP ordering on acyclic ones), each
single ablation (``wcoj=False``, ``dp_join_order=False``), the double
ablation, and the naive product engine must produce the same bag
(columns, rows, multiplicities) or the same error class.  Join
ordering and the multiway operator are pure physical-plan choices, so
they have *no* semantic latitude: outcomes must match even where plans
raise.

A hand-built cyclic battery then drives the ``GenericJoin`` path
directly — triangles, 4-cycles, self-join cycles, NULL-heavy data,
residual non-equality predicates — where the random mix would only hit
it occasionally.  Finally a hot-plan-cache battery executes the cyclic
workload through one engine across *reshaped* databases (small tables
grown 100x between passes, tripping the cardinality-feedback
re-optimization) and demands bit-identical outcomes before and after
the re-planning.
"""

import random
from dataclasses import replace

import pytest

from repro.core import NULL, Database, Schema, validation_schema
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.generator import (
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.validation.compare import capture

SCHEMA = validation_schema()
TRIALS = 500
DATA = DataFillerConfig(max_rows=5)

#: PAPER_CONFIG tilted toward plain multi-table FROMs with big WHERE
#: conjunctions: equality chains between tables are what the DP orders,
#: and the occasional cycle is what selects the multiway join.
JOIN_MIX = replace(
    PAPER_CONFIG,
    setop_probability=0.1,
    from_subquery_probability=0.1,
    where_subquery_probability=0.15,
    constant_probability=0.3,
)

DIALECTS = [DIALECT_POSTGRES, DIALECT_ORACLE]

#: Every optimizer configuration under test, vs the naive oracle.
ABLATIONS = {
    "default": {},
    "no_wcoj": {"wcoj": False},
    "no_dp": {"dp_join_order": False},
    "no_wcoj_no_dp": {"wcoj": False, "dp_join_order": False},
}


def make_engines(schema, dialect):
    engines = {
        name: Engine(schema, dialect, optimizer_options=dict(options))
        for name, options in ABLATIONS.items()
    }
    engines["naive"] = Engine(schema, dialect, optimize=False)
    return engines


def run_battery(engines, pairs):
    failures = []
    for label, query, db in pairs:
        outcomes = {
            name: capture(lambda e=engine: e.execute(query, db))
            for name, engine in engines.items()
        }
        baseline = outcomes["naive"]
        for name, outcome in outcomes.items():
            # Same error class and same bag: the workloads are type-checked
            # over int-only data, so no data-dependent runtime error order
            # is in play and full error equality must hold.
            if outcome.error != baseline.error or not outcome.agrees_with(baseline):
                failures.append(f"{label}: {name} differs from naive")
    assert not failures, "; ".join(failures[:5])


def _pair(seed):
    rng = random.Random(seed)
    query = QueryGenerator(SCHEMA, JOIN_MIX, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    return query, db


@pytest.mark.parametrize("dialect", DIALECTS)
def test_optimizer_ablations_coincide_on_random_workload(dialect):
    engines = make_engines(SCHEMA, dialect)
    run_battery(
        engines, ((f"seed {s}", *_pair(s)) for s in range(TRIALS))
    )


# -- the cyclic battery --------------------------------------------------------

CYCLIC_SCHEMA = Schema(
    {"R": ("A", "B"), "S": ("A", "B"), "T": ("A", "B"), "U": ("A", "B")}
)

CYCLIC_SQL = (
    # The triangle, bare and with residual predicates the multiway
    # operator must stage above the intersection.
    "SELECT R.A, S.A, T.A FROM R, S, T "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = R.A",
    "SELECT R.A FROM R, S, T "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = R.A AND R.A < S.B",
    "SELECT DISTINCT T.B FROM R, S, T "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = R.A AND NOT (S.A = 3)",
    # The 4-cycle, and a 4-clique-ish overlay (extra chord → multi-column
    # variables and parallel edges collapsing onto one class).
    "SELECT R.A, T.A FROM R, S, T, U "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = U.A AND U.B = R.A",
    "SELECT R.A FROM R, S, T, U "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = U.A AND U.B = R.A "
    "AND R.A = T.A",
    # A self-join cycle: the same table twice under different aliases.
    "SELECT X.A, Y.B FROM R AS X, R AS Y, S "
    "WHERE X.B = Y.A AND Y.B = S.A AND S.B = X.A",
    # Cycle + chain tail: only the cyclic core goes multiway; the tail
    # hangs off the equality graph.
    "SELECT R.A, U.B FROM R, S, T, U "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = R.A AND T.B = U.A",
    # Same-table multi-column variable: both of R's columns in one class.
    "SELECT R.A FROM R, S, T "
    "WHERE R.A = R.B AND R.B = S.A AND S.B = T.A AND T.B = R.A",
)

#: Acyclic chains: these take the Selinger-DP path (cost-sensitive, so
#: they are what the cardinality-feedback loop re-orders), not the
#: multiway operator.
CHAIN_SQL = (
    "SELECT R.A, T.B FROM R, S, T WHERE R.B = S.A AND S.B = T.A",
    "SELECT R.A FROM R, S, T, U "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = U.A",
)


def cyclic_db(seed, rows=6, domain=4, null_rate=0.2):
    """Tiny, collision- and NULL-heavy instances: every trie path is
    exercised, including NULL-dropping at build and empty intersections."""
    rng = random.Random(seed)

    def cell():
        return NULL if rng.random() < null_rate else rng.randrange(domain)

    def table():
        return [(cell(), cell()) for _ in range(rng.randrange(rows + 1))]

    return Database(
        CYCLIC_SCHEMA, {name: table() for name in CYCLIC_SCHEMA.table_names}
    )


@pytest.mark.parametrize("dialect", DIALECTS)
def test_optimizer_ablations_coincide_on_cyclic_workload(dialect):
    from repro.sql import annotate

    engines = make_engines(CYCLIC_SCHEMA, dialect)
    queries = [
        annotate(sql, CYCLIC_SCHEMA) for sql in CYCLIC_SQL + CHAIN_SQL
    ]
    run_battery(
        engines,
        (
            (f"query {q} db {s}", query, cyclic_db(s))
            for s in range(40)
            for q, query in enumerate(queries)
        ),
    )


@pytest.mark.parametrize("dialect", DIALECTS)
def test_hot_plan_cache_bit_identical_across_feedback_reordering(dialect):
    """Pass 1 plans against small tables; pass 2 rebinds the same cached
    plans against 100x-grown tables, tripping the drift-based
    re-optimization; pass 3 re-runs pass 2's databases hot.  Every pass
    must agree bit-identically with a fresh per-database engine."""
    from repro.sql import annotate

    engine = Engine(CYCLIC_SCHEMA, dialect)
    queries = [
        annotate(sql, CYCLIC_SCHEMA) for sql in CYCLIC_SQL + CHAIN_SQL
    ]
    small = [cyclic_db(s, rows=4) for s in range(3)]
    big = [cyclic_db(100 + s, rows=400, domain=40) for s in range(3)]
    outcomes = {}
    for label, dbs in (("small", small), ("big", big), ("hot", big)):
        outcomes[label] = [
            capture(lambda: engine.execute(query, db))
            for db in dbs
            for query in queries
        ]
    info = engine.cache_info()
    assert info["hits"] >= 2 * len(big) * len(queries)
    # The 100x growth must actually trip the feedback loop at least once.
    assert info["reoptimizations"] > 0
    fresh = {
        label: [
            capture(lambda e=Engine(CYCLIC_SCHEMA, dialect): e.execute(query, db))
            for db in dbs
            for query in queries
        ]
        for label, dbs in (("small", small), ("big", big))
    }
    fresh["hot"] = fresh["big"]
    for label in outcomes:
        for i, (a, b) in enumerate(zip(outcomes[label], fresh[label])):
            assert a.error == b.error and a.agrees_with(b), f"{label} #{i} changed"
