#!/usr/bin/env python
"""Standalone throughput benchmarks: engine stages + campaign throughput.

Runs the pipeline-stage workloads of ``benchmarks/test_bench_throughput.py``
without pytest and writes machine-readable JSON so the performance
trajectory is tracked across PRs::

    PYTHONPATH=src python scripts/bench.py [--rounds N] [--stages a,b,...]

Engine stages (written to ``BENCH_engine.json``)
------------------------------------------------
* ``query_generation``      — one random query (PAPER_CONFIG)
* ``parse_print_roundtrip`` — parse+print of 50 pregenerated query texts
* ``semantics_eval``        — formal semantics, interleaved fast path
* ``semantics_eval_naive``  — formal semantics, ``fast_from=False``
* ``engine_optimized``      — reference engine, default optimizer
* ``engine_naive``          — reference engine, ``optimize=False``
* ``engine_repeat_cached``  — 10 queries x 15 databases, plan cache on
  (prepared-statement-style reuse; hit/miss counters are recorded)
* ``engine_repeat_uncached``— same workload, ``plan_cache_size=0``
* ``theorem1_translation``  — SQL → SQL-RA → pure RA desugaring

Campaign stage (written to ``BENCH_campaign.json``)
---------------------------------------------------
``campaign`` runs a Section 4 validation campaign serially and with
``--campaign-jobs`` worker processes on the unified subsystem
(:mod:`repro.campaigns`) and records trials/sec for both, the parallel
speedup, and that the two outcome digests are identical.  On a
single-core container the speedup is ~1x by construction; the point of the
record is the trajectory on real hardware.

``--stages`` selects a comma-separated subset (default: every stage), so
CI can run the cheap stages only, e.g.::

    python scripts/bench.py --stages query_generation,campaign \\
        --campaign-trials 200 --rounds 1

The engine stages run at the paper's 50-row table cap (the scale the naive
implementation could not handle); the semantics stages run at 5 rows, as the
oracle is intentionally product-shaped.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import statistics
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT))

# The workloads are the ones the pytest benchmark suite defines, imported so
# BENCH_engine.json always measures exactly what the benches measure.
from benchmarks.test_bench_throughput import (  # noqa: E402
    SCHEMA,
    engine_pairs,
    make_db,
    make_query,
    run_workload,
)
from repro.algebra import desugar, to_sqlra  # noqa: E402
from repro.campaigns import CampaignSpec, run_campaign  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.generator import DM_CONFIG, QueryGenerator  # noqa: E402
from repro.semantics import STAR_COMPOSITIONAL, SqlSemantics  # noqa: E402
from repro.sql import parse_query, print_query  # noqa: E402

CAMPAIGN_STAGE = "campaign"


def run_semantics(semantics, pairs):
    for query, db in pairs:
        try:
            semantics.run(query, db)
        except Exception:
            pass


def median_ns(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        fn()
        times.append(time.perf_counter_ns() - start)
    return int(statistics.median(times))


#: Engine-stage names, in run order (``campaign`` is handled separately).
ENGINE_STAGES = (
    "query_generation",
    "parse_print_roundtrip",
    "semantics_eval",
    "semantics_eval_naive",
    "engine_optimized",
    "engine_naive",
    "engine_repeat_cached",
    "engine_repeat_uncached",
    "theorem1_translation",
)


def build_stages(selected, cached_engine, uncached_engine):
    """Stage-name → workload thunks, building only the inputs ``selected``
    stages need (pregenerating the 50-row engine pairs costs seconds, which
    a --stages run selecting cheap stages should not pay)."""

    def need(*names):
        return any(name in selected for name in names)

    stages = {}
    if need("query_generation"):
        gen = QueryGenerator(SCHEMA)
        counter = iter(range(10_000_000))
        stages["query_generation"] = lambda: gen.generate(seed=next(counter))
    if need("parse_print_roundtrip"):
        texts = [print_query(make_query(seed)) for seed in range(50)]
        stages["parse_print_roundtrip"] = lambda: [
            print_query(parse_query(text)) for text in texts
        ]
    if need("semantics_eval", "semantics_eval_naive"):
        small_pairs = [(make_query(s), make_db(s)) for s in range(20)]
        sem_fast = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
        sem_naive = SqlSemantics(
            SCHEMA, star_style=STAR_COMPOSITIONAL, fast_from=False
        )
        stages["semantics_eval"] = lambda: run_semantics(sem_fast, small_pairs)
        stages["semantics_eval_naive"] = lambda: run_semantics(
            sem_naive, small_pairs
        )
    if need("engine_optimized", "engine_naive"):
        paper_pairs = engine_pairs()
        stages["engine_optimized"] = lambda: run_workload(
            Engine(SCHEMA, "postgres"), paper_pairs
        )
        stages["engine_naive"] = lambda: run_workload(
            Engine(SCHEMA, "postgres", optimize=False), paper_pairs
        )
    if need("engine_repeat_cached", "engine_repeat_uncached"):
        # Plan-cache workload: few queries, many databases — the shape of
        # the trial campaigns and the equivalence checker, where
        # re-planning is pure waste.
        repeat_queries = [make_query(seed) for seed in range(10)]
        repeat_pairs = [
            (query, make_db(1000 + d))
            for d in range(15)
            for query in repeat_queries
        ]
        stages["engine_repeat_cached"] = lambda: run_workload(
            cached_engine, repeat_pairs
        )
        stages["engine_repeat_uncached"] = lambda: run_workload(
            uncached_engine, repeat_pairs
        )
    if need("theorem1_translation"):
        dm_queries = [make_query(seed, DM_CONFIG) for seed in range(10)]
        stages["theorem1_translation"] = lambda: [
            desugar(to_sqlra(query, SCHEMA), SCHEMA) for query in dm_queries
        ]
    return stages


def bench_campaign(trials: int, jobs: int, rows: int, out_path: str) -> dict:
    """Serial vs N-worker throughput of one validation campaign."""
    spec = CampaignSpec(kind="validation", variant="postgres", rows=rows)
    print(f"campaign: {trials} trials, postgres variant, serial ...")
    serial = run_campaign(spec, trials=trials, base_seed=0, jobs=1)
    print(f"  serial   {serial.trials_per_sec:10.1f} trials/s")
    print(f"campaign: same seed range, jobs={jobs} ...")
    parallel = run_campaign(spec, trials=trials, base_seed=0, jobs=jobs)
    print(f"  jobs={jobs}   {parallel.trials_per_sec:10.1f} trials/s")
    speedup = (
        parallel.trials_per_sec / serial.trials_per_sec
        if serial.trials_per_sec
        else 0.0
    )
    doc = {
        "schema": "bench-campaign/v1",
        "variant": "postgres",
        "trials": trials,
        "rows": rows,
        "cpu_count": multiprocessing.cpu_count(),
        "serial": {
            "elapsed_s": round(serial.elapsed_s, 3),
            "trials_per_sec": round(serial.trials_per_sec, 1),
        },
        "parallel": {
            "jobs": jobs,
            "elapsed_s": round(parallel.elapsed_s, 3),
            "trials_per_sec": round(parallel.trials_per_sec, 1),
        },
        "speedup": round(speedup, 3),
        "digest_match": serial.outcome_digest == parallel.outcome_digest,
        "outcome_digest": serial.outcome_digest,
        "agreements": serial.agreements,
        "mismatches": len(serial.mismatches),
    }
    Path(out_path).write_text(json.dumps(doc, indent=2) + "\n")
    print(
        f"campaign speedup: {speedup:.2f}x on {jobs} workers "
        f"({multiprocessing.cpu_count()} CPU(s) visible), "
        f"digests {'match' if doc['digest_match'] else 'DIFFER'} -> {out_path}"
    )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5, help="rounds per stage")
    parser.add_argument(
        "--stages",
        default=None,
        help="comma-separated subset of stages to run (default: all; "
        "'campaign' selects the campaign-throughput stage)",
    )
    parser.add_argument(
        "--campaign-trials", type=int, default=1500,
        help="trials for the campaign stage",
    )
    parser.add_argument(
        "--campaign-jobs", type=int, default=4,
        help="worker processes for the parallel campaign leg",
    )
    parser.add_argument(
        "--campaign-rows", type=int, default=6,
        help="row cap for campaign trial databases",
    )
    parser.add_argument(
        "--out",
        default=str(_ROOT / "BENCH_engine.json"),
        help="engine-stage output JSON path",
    )
    parser.add_argument(
        "--campaign-out",
        default=str(_ROOT / "BENCH_campaign.json"),
        help="campaign-stage output JSON path",
    )
    args = parser.parse_args(argv)

    known = set(ENGINE_STAGES) | {CAMPAIGN_STAGE}
    if args.stages is None:
        selected = list(ENGINE_STAGES) + [CAMPAIGN_STAGE]
    else:
        selected = [name.strip() for name in args.stages.split(",") if name.strip()]
        unknown = [name for name in selected if name not in known]
        if unknown:
            parser.error(
                f"unknown stage(s) {', '.join(unknown)}; "
                f"choose from {', '.join(sorted(known))}"
            )

    cached_engine = Engine(SCHEMA, "postgres")
    uncached_engine = Engine(SCHEMA, "postgres", plan_cache_size=0)
    stages = build_stages(set(selected), cached_engine, uncached_engine)

    results = {}
    for name in selected:
        if name == CAMPAIGN_STAGE:
            continue
        fn = stages[name]
        fn()  # warm-up (also populates any lazy caches outside the timing)
        results[name] = median_ns(fn, args.rounds)
        print(f"{name:24s} {results[name] / 1e6:12.3f} ms (median of {args.rounds})")

    if results:
        results_doc = {
            "schema": "bench-engine/v1",
            "rounds": args.rounds,
            "median_ns": results,
        }
        if "engine_naive" in results and "engine_optimized" in results:
            speedup = results["engine_naive"] / results["engine_optimized"]
            results_doc["engine_speedup"] = round(speedup, 3)
            print(f"\nengine optimizer speedup: {speedup:.2f}x")
        if "engine_repeat_cached" in results:
            results_doc["plan_cache"] = cached_engine.cache_info()
            if "engine_repeat_uncached" in results:
                results_doc["plan_cache_speedup"] = round(
                    results["engine_repeat_uncached"]
                    / results["engine_repeat_cached"],
                    3,
                )
                print(
                    f"plan cache speedup (10 queries x 15 dbs): "
                    f"{results_doc['plan_cache_speedup']:.2f}x "
                    f"{cached_engine.cache_info()}"
                )
        Path(args.out).write_text(json.dumps(results_doc, indent=2) + "\n")
        print(f"engine stages -> {args.out}")

    if CAMPAIGN_STAGE in selected:
        bench_campaign(
            args.campaign_trials,
            args.campaign_jobs,
            args.campaign_rows,
            args.campaign_out,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
