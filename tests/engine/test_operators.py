"""Physical operators of the reference engine."""

from repro.engine.expressions import ColumnRef, LiteralExpr, and3, compare, not3, or3
from repro.engine.operators import (
    CrossJoin,
    DistinctOp,
    FilterOp,
    ProjectOp,
    SetOpNode,
    StaticScan,
)


def scan(*rows):
    return StaticScan(list(rows))


def test_static_scan():
    assert scan((1,), (2,)).rows(()) == [(1,), (2,)]


def test_cross_join_concatenates():
    node = CrossJoin([scan((1,), (2,)), scan(("a",), ("b",))])
    assert sorted(node.rows(())) == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]


def test_cross_join_empty_child_short_circuits():
    node = CrossJoin([scan((1,)), scan()])
    assert node.rows(()) == []


def test_cross_join_single_child():
    node = CrossJoin([scan((1,))])
    assert node.rows(()) == [(1,)]


def test_filter_keeps_only_true():
    """None (unknown) is discarded exactly like False."""
    node = FilterOp(
        scan((1,), (None,), (3,)),
        lambda row, outers: None if row[0] is None else row[0] > 1,
    )
    assert node.rows(()) == [(3,)]


def test_project_evaluates_expressions():
    node = ProjectOp(scan((1, 2)), [ColumnRef(0, 1), LiteralExpr(9)])
    assert node.rows(()) == [(2, 9)]


def test_distinct_keeps_first_seen_order():
    node = DistinctOp(scan((2,), (1,), (2,), (1,)))
    assert node.rows(()) == [(2,), (1,)]


def test_distinct_treats_none_as_value():
    node = DistinctOp(scan((None,), (None,)))
    assert node.rows(()) == [(None,)]


class TestSetOps:
    left = scan((1,), (1,), (2,))
    right = scan((1,), (3,))

    def rows(self, op, all_flag, left=None, right=None):
        node = SetOpNode(op, all_flag, left or self.left, right or self.right)
        return sorted(node.rows(()), key=repr)

    def test_union_all(self):
        assert self.rows("UNION", True) == [(1,), (1,), (1,), (2,), (3,)]

    def test_union_distinct(self):
        assert self.rows("UNION", False) == [(1,), (2,), (3,)]

    def test_intersect_all(self):
        assert self.rows("INTERSECT", True) == [(1,)]

    def test_intersect_distinct(self):
        assert self.rows("INTERSECT", False) == [(1,)]

    def test_except_all(self):
        assert self.rows("EXCEPT", True) == [(1,), (2,)]

    def test_except_distinct_dedups_left_only(self):
        # ε(left) − right, right NOT deduped.
        left = scan((1,), (1,), (2,))
        right = scan((2,), (2,))
        node = SetOpNode("EXCEPT", False, left, right)
        assert sorted(node.rows(())) == [(1,)]

    def test_nulls_match_in_set_ops(self):
        left = scan((None,), (1,))
        right = scan((None,),)
        node = SetOpNode("EXCEPT", False, left, right)
        assert node.rows(()) == [(1,)]


class TestThreeValuedHelpers:
    def test_and3(self):
        assert and3(True, True) is True
        assert and3(True, None) is None
        assert and3(False, None) is False
        assert and3(None, None) is None

    def test_or3(self):
        assert or3(False, False) is False
        assert or3(False, None) is None
        assert or3(True, None) is True

    def test_not3(self):
        assert not3(True) is False
        assert not3(False) is True
        assert not3(None) is None

    def test_compare_null_propagation(self):
        assert compare("=", None, 1) is None
        assert compare("<", 1, None) is None
        assert compare("=", 2, 2) is True
        assert compare("<>", 2, 2) is False

    def test_compare_cross_type_equality(self):
        assert compare("=", 1, "1") is False
        assert compare("<>", 1, "1") is True

    def test_like(self):
        assert compare("LIKE", "hello", "h%") is True
        assert compare("LIKE", "hello", "x%") is False


def test_column_ref_depths():
    ref0 = ColumnRef(0, 1)
    ref1 = ColumnRef(1, 0)
    ref2 = ColumnRef(2, 0)
    outers = ((10,), (20,))
    assert ref0((5, 6), outers) == 6
    assert ref1((5, 6), outers) == 20  # innermost outer row
    assert ref2((5, 6), outers) == 10
