"""Values, NULL, names and terms (Section 2's data model)."""

import pickle

import pytest

from repro.core.values import (
    NULL,
    FullName,
    Null,
    is_value,
    syntactically_equal,
)


def test_null_is_singleton():
    assert Null() is NULL
    assert pickle.loads(pickle.dumps(NULL)) is NULL


def test_null_syntactic_equality():
    """NULL equals NULL *syntactically* (Definition 2) — the equality used by
    bags and set operations, not the 3VL comparison."""
    assert NULL == NULL
    assert NULL == Null()
    assert NULL != 0
    assert NULL != "NULL"


def test_null_repr_and_hash():
    assert repr(NULL) == "NULL"
    assert hash(NULL) == hash(Null())


def test_full_name_str():
    assert str(FullName("R", "A")) == "R.A"


def test_full_name_parse():
    assert FullName.parse("S.B") == FullName("S", "B")


@pytest.mark.parametrize("bad", ["", "R", "R.", ".A"])
def test_full_name_parse_rejects(bad):
    with pytest.raises(ValueError):
        FullName.parse(bad)


def test_full_name_equality_and_hash():
    assert FullName("R", "A") == FullName("R", "A")
    assert FullName("R", "A") != FullName("R", "B")
    assert len({FullName("R", "A"), FullName("R", "A")}) == 1


def test_is_value():
    assert is_value(3)
    assert is_value("x")
    assert is_value(NULL)
    assert not is_value(True)  # booleans are not SQL data values here
    assert not is_value(3.5)
    assert not is_value(FullName("R", "A"))


def test_syntactically_equal():
    assert syntactically_equal(NULL, NULL)
    assert syntactically_equal(1, 1)
    assert not syntactically_equal(1, NULL)
    assert not syntactically_equal(1, 2)
