"""Counterexample shrinking for the equivalence tester."""

import pytest

from repro.applications import (
    check_equivalence,
    find_counterexample,
    shrink_counterexample,
)
from repro.core import NULL, Database, Schema
from repro.semantics import SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A",)})


NOT_IN = "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)"
EXCEPT = "SELECT DISTINCT R.A FROM R EXCEPT SELECT S.A FROM S"
NOT_EXISTS = (
    "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS "
    "(SELECT * FROM S WHERE S.A = R.A)"
)


def still_disagrees(schema, db, left, right):
    sem = SqlSemantics(schema)
    return not sem.run(annotate(left, schema), db).same_as(
        sem.run(annotate(right, schema), db)
    )


def test_shrunk_database_still_a_counterexample(schema):
    db = find_counterexample(NOT_IN, EXCEPT, schema, trials=500)
    assert db is not None
    small = shrink_counterexample(NOT_IN, EXCEPT, schema, db)
    assert still_disagrees(schema, small, NOT_IN, EXCEPT)


def test_shrunk_database_is_locally_minimal(schema):
    db = find_counterexample(NOT_IN, EXCEPT, schema, trials=500)
    small = shrink_counterexample(NOT_IN, EXCEPT, schema, db)
    # Removing ANY single remaining row makes the queries agree.
    for name in schema.table_names:
        rows = list(small.table(name).bag)
        for i in range(len(rows)):
            candidate_rows = rows[:i] + rows[i + 1 :]
            tables = {
                other: list(small.table(other).bag) for other in schema.table_names
            }
            tables[name] = candidate_rows
            candidate = Database(schema, tables)
            assert not still_disagrees(schema, candidate, NOT_IN, EXCEPT)


def test_shrunk_size_not_larger(schema):
    db = find_counterexample(NOT_IN, NOT_EXISTS, schema, trials=500)
    small = shrink_counterexample(NOT_IN, NOT_EXISTS, schema, db)
    for name in schema.table_names:
        assert len(small.table(name)) <= len(db.table(name))


def test_shrink_example1_database(schema):
    """Example 1's database shrinks to a 2-row witness (R needs just one
    non-matching value, S just its NULL)."""
    example1 = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    small = shrink_counterexample(NOT_IN, EXCEPT, schema, example1)
    total_rows = sum(len(small.table(n)) for n in schema.table_names)
    assert total_rows == 2
    assert still_disagrees(schema, small, NOT_IN, EXCEPT)


def test_shrink_rejects_non_counterexample(schema):
    agreeing = Database(schema, {"R": [(1,)], "S": [(2,)]})
    # NOT IN and EXCEPT agree here ({1} both), so shrinking must refuse.
    assert not still_disagrees(schema, agreeing, NOT_IN, EXCEPT)
    with pytest.raises(ValueError):
        shrink_counterexample(NOT_IN, EXCEPT, schema, agreeing)
