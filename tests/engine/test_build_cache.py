"""Cross-execution build-side sharing: hits on repeated content, automatic
invalidation on rebind, LRU bounds, and the no-row-pinning guarantee."""

import sys

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import Engine
from repro.engine.binding import BuildSideCache, iter_plan_nodes
from repro.engine.operators import TableScan
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",), "T": ("C", "D")})


CONTENT = {
    "R": [(1, 2), (NULL, 4), (3, 2), (3, 5)],
    "S": [(1,), (3,), (NULL,)],
    "T": [(2, 1), (2, NULL), (5, 3)],
}

JOIN_SQL = "SELECT R.A FROM R, S WHERE R.A = S.A"
PROBE_SQL = "SELECT R.A FROM R WHERE R.B IN (SELECT T.C FROM T)"
CORRELATED_SQL = (
    "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)"
)


def make_db(schema, content=CONTENT):
    return Database(schema, {name: list(rows) for name, rows in content.items()})


# -- the cache itself ---------------------------------------------------------


def test_cache_lru_and_counters():
    cache = BuildSideCache(maxsize=2)
    miss = cache.lookup(("a",))
    assert miss is not cache.lookup(("a",)) or True  # sentinel, not None
    cache.store(("a",), 1)
    cache.store(("b",), 2)
    assert cache.lookup(("a",)) == 1
    cache.store(("c",), 3)  # evicts ("b",): ("a",) was freshened
    assert cache.evictions == 1
    assert cache.lookup(("a",)) == 1
    assert len(cache) == 2
    info = cache.info()
    assert info["size"] == 2 and info["maxsize"] == 2
    cache.clear()
    assert len(cache) == 0


def test_cache_round_trips_falsy_values():
    cache = BuildSideCache()
    cache.store(("k",), False)  # a closed EXISTS that found nothing
    assert cache.lookup(("k",)) is False


# -- sharing through the engine -----------------------------------------------


@pytest.mark.parametrize("sql", [JOIN_SQL, PROBE_SQL, CORRELATED_SQL])
def test_repeated_content_hits_and_agrees(schema, sql):
    engine = Engine(schema)
    naive = Engine(schema, optimize=False)
    query = annotate(sql, schema)
    first = engine.execute(query, make_db(schema))
    # Sharing engages from the second bind (a once-executed plan can never
    # hit), so the second run misses-and-harvests and the third run hits.
    second = engine.execute(query, make_db(schema))
    assert engine.build_cache_info()["hits"] == 0
    assert engine.build_cache_info()["misses"] > 0
    third = engine.execute(query, make_db(schema))
    assert engine.build_cache_info()["hits"] > 0
    assert first.same_as(second) and second.same_as(third)
    assert third.same_as(naive.execute(query, make_db(schema)))


def test_rebind_to_different_content_invalidates(schema):
    """Different table contents must miss: stale probe sets would lie."""
    engine = Engine(schema)
    query = annotate(PROBE_SQL, schema)
    changed = dict(CONTENT, T=[(99, 1)])  # R.B IN (SELECT T.C ...) flips
    engine.execute(query, make_db(schema))
    engine.execute(query, make_db(schema))  # harvested under CONTENT's key
    hits_before = engine.build_cache_info()["hits"]
    result = engine.execute(query, make_db(schema, changed))
    assert engine.build_cache_info()["hits"] == hits_before  # pure misses
    naive = Engine(schema, optimize=False).execute(query, make_db(schema, changed))
    assert result.same_as(naive)
    # And back: the original content is still cached.
    engine.execute(query, make_db(schema))
    assert engine.build_cache_info()["hits"] > hits_before


def test_correlated_memo_survives_cache_round_trip(schema):
    """Per-binding memo dicts are shared objects; the reset between
    executions must re-bind fresh dicts, never clear the cached one."""
    engine = Engine(schema)
    query = annotate(CORRELATED_SQL, schema)
    reference = None
    for _ in range(3):
        result = engine.execute(query, make_db(schema))
        if reference is None:
            reference = result
        assert result.same_as(reference)
    assert engine.build_cache_info()["hits"] > 0


def test_disabled_build_cache(schema):
    engine = Engine(schema, build_cache_size=0)
    query = annotate(JOIN_SQL, schema)
    first = engine.execute(query, make_db(schema))
    second = engine.execute(query, make_db(schema))
    assert first.same_as(second)
    assert engine.build_cache_info() == {
        "hits": 0, "misses": 0, "cross_hits": 0, "evictions": 0,
        "size": 0, "entries": 0, "bytes": 0, "maxsize": 0, "max_bytes": 0,
    }


def test_clear_build_cache(schema):
    engine = Engine(schema)
    query = annotate(JOIN_SQL, schema)
    engine.execute(query, make_db(schema))
    engine.clear_build_cache()
    assert engine.build_cache_info()["size"] == 0
    engine.execute(query, make_db(schema))  # still correct after clearing
    assert engine.build_cache_info()["misses"] > 0


# -- cross-query sharing -------------------------------------------------------


def test_cross_query_sharing_between_different_statements(schema):
    """Two different queries embedding the same subquery over the same table
    contents share one build side — the key is the normalized subplan text
    plus content, not plan identity."""
    engine = Engine(schema)
    left = annotate(PROBE_SQL, schema)
    # Different outer query, identical IN-subquery: same probe set.
    right = annotate(
        "SELECT R.B FROM R WHERE R.B IN (SELECT T.C FROM T)", schema
    )
    for _ in range(2):  # populate under `left` (engages from second bind)
        engine.execute(left, make_db(schema))
    cross_before = engine.build_cache_info()["cross_hits"]
    result = engine.execute(right, make_db(schema))
    info = engine.build_cache_info()
    assert info["cross_hits"] > cross_before
    naive = Engine(schema, optimize=False).execute(right, make_db(schema))
    assert result.same_as(naive)


def test_cross_query_hashjoin_build_side_shared(schema):
    """Different probe sides against the same build side share the hash
    table: the signature keys only the build (right) subtree and keys."""
    engine = Engine(schema)
    a = annotate(JOIN_SQL, schema)
    b = annotate("SELECT R.B FROM R, S WHERE R.A = S.A", schema)
    for _ in range(2):
        engine.execute(a, make_db(schema))
    cross_before = engine.build_cache_info()["cross_hits"]
    result = engine.execute(b, make_db(schema))
    assert engine.build_cache_info()["cross_hits"] > cross_before
    naive = Engine(schema, optimize=False).execute(b, make_db(schema))
    assert result.same_as(naive)


def test_cross_query_same_text_different_plan_objects(schema):
    """Two engines' worth of isolation is not required *within* one engine:
    re-annotating the same SQL yields a distinct AST object but the same
    structural plan, which still shares."""
    engine = Engine(schema)
    for _ in range(2):
        engine.execute(annotate(PROBE_SQL, schema), make_db(schema))
    hits_before = engine.build_cache_info()["hits"]
    engine.execute(annotate(PROBE_SQL, schema), make_db(schema))
    assert engine.build_cache_info()["hits"] > hits_before


def test_sharing_engages_first_bind_on_warm_cache(schema):
    """A brand-new statement against a warm cache participates from its
    first execution — the service's steady-state case."""
    engine = Engine(schema)
    for _ in range(2):
        engine.execute(annotate(JOIN_SQL, schema), make_db(schema))
    assert len(engine._build_cache) > 0
    fresh = annotate("SELECT S.A FROM S, R WHERE S.A = R.A", schema)
    misses_before = engine.build_cache_info()["misses"]
    hits_before = engine.build_cache_info()["hits"]
    engine.execute(fresh, make_db(schema))
    info = engine.build_cache_info()
    # First bind did bookkeeping: either it hit a shared entry or at least
    # recorded misses for its own carriers.
    assert info["hits"] > hits_before or info["misses"] > misses_before


# -- byte budgets --------------------------------------------------------------


def test_build_cache_byte_budget_enforced():
    cache = BuildSideCache(maxsize=100, max_bytes=4096)
    big = [tuple(range(20))] * 40
    for i in range(10):
        cache.store((f"k{i}",), list(big))
        assert cache.bytes <= 4096
    assert cache.evictions > 0
    info = cache.info()
    assert info["bytes"] == cache.bytes and info["max_bytes"] == 4096


def test_engine_build_cache_byte_budget(schema):
    engine = Engine(schema, build_cache_bytes=1)  # nothing fits
    query = annotate(JOIN_SQL, schema)
    for _ in range(3):
        engine.execute(query, make_db(schema))
    info = engine.build_cache_info()
    assert info["bytes"] <= 1
    assert info["entries"] == 0
    assert info["evictions"] > 0


def test_engine_plan_cache_byte_budget(schema):
    budget = 4096
    engine = Engine(schema, plan_cache_bytes=budget)
    db = make_db(schema)
    for i in range(50):
        engine.execute(annotate(f"SELECT R.A FROM R WHERE R.A = {i}", schema), db)
    info = engine.cache_info()
    assert info["bytes"] <= budget
    assert info["entries"] < 50
    assert info["evictions"] > 0
    # Unbudgeted engines still report sizes.
    plain = Engine(schema)
    plain.execute(annotate(JOIN_SQL, schema), db)
    assert plain.cache_info()["entries"] == 1
    assert plain.cache_info()["bytes"] > 0


# -- no pinning ---------------------------------------------------------------


def test_cached_plans_pin_no_database_rows(schema):
    """After execute, cached plans are unbound and neither the plan cache
    nor the build-side cache keeps the Database object alive."""
    engine = Engine(schema)
    query = annotate(PROBE_SQL, schema)
    db = make_db(schema)
    engine.execute(query, db)
    for compiled in engine._plan_cache.values():
        for node, _pred in iter_plan_nodes(compiled.plan):
            if isinstance(node, TableScan):
                assert node.data is None
    # No cache holds a reference to the Database itself (entries are copies
    # made at bind time): executing must not change its reference count.
    before = sys.getrefcount(db)
    engine.execute(query, db)
    assert sys.getrefcount(db) == before


def test_plans_unbound_even_with_sharing_hits(schema):
    engine = Engine(schema)
    query = annotate(JOIN_SQL, schema)
    engine.execute(query, make_db(schema))
    engine.execute(query, make_db(schema))
    engine.execute(query, make_db(schema))  # third run restores from cache
    assert engine.build_cache_info()["hits"] > 0
    for compiled in engine._plan_cache.values():
        for node, _pred in iter_plan_nodes(compiled.plan):
            if isinstance(node, TableScan):
                assert node.data is None
