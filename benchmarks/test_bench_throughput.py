"""Experiment PERF (engineering): throughput of the main components.

The paper notes its implementation "is not for performance" (it computes
Cartesian products); these microbenchmarks document the cost of each
pipeline stage so regressions are visible.  pytest-benchmark measures:

* random query generation,
* parsing + printing round trips,
* formal-semantics evaluation,
* reference-engine execution — optimized (the default engine: pushdown,
  hash joins, cached subquery probes) and naive (``optimize=False``,
  product-then-filter), at the paper's 50-row table cap; the seed repo
  benchmarked 5-row tables only because the naive engine could not handle
  the paper's own scale,
* columnar batch execution (``vectorized=True``) against the row-wise
  closure tier on a selection-heavy workload, paired at the 50-row cap
  and at 5,000 rows (``scripts/bench.py --rows``),
* worst-case-optimal multiway joins (``GenericJoin``) against the
  ``wcoj=False`` ablation (DP-ordered binary hash joins) on cyclic
  triangle/4-cycle workloads, paired at the same two scales,
* the full Theorem 1 translation (to SQL-RA + desugaring).

``scripts/bench.py`` runs the same workloads standalone and writes
``BENCH_engine.json`` so the numbers are machine-readable across PRs.
"""

import random

import pytest

from repro.algebra import desugar, to_sqlra
from repro.core import Database, Schema, validation_schema
from repro.engine import Engine
from repro.generator import (
    DM_CONFIG,
    DataFillerConfig,
    PAPER_CONFIG,
    PAPER_ROW_CAP,
    QueryGenerator,
    fill_database,
)
from repro.semantics import STAR_COMPOSITIONAL, SqlSemantics
from repro.sql import annotate, parse_query, print_query

SCHEMA = validation_schema()


def make_query(seed, config=PAPER_CONFIG):
    return QueryGenerator(SCHEMA, config, random.Random(seed)).generate()


def make_db(seed, rows=5):
    return fill_database(SCHEMA, random.Random(seed), DataFillerConfig(max_rows=rows))


# -- second-generation optimizer workloads ------------------------------------
#
# Hand-built adversarial inputs for the cost-based join ordering and the
# hash set operations: two big tables and one small one, with queries whose
# *syntactic* FROM order is the worst one (SMALL last, so a left-deep
# FROM-order plan cross-products BIGA x BIGB before the selective joins).

ADVERSARIAL_SCHEMA = Schema(
    {"BIGA": ("A", "B"), "BIGB": ("A", "B"), "SMALL": ("A", "B")}
)

JOIN_ORDER_SQL = (
    "SELECT BIGA.B FROM BIGA, BIGB, SMALL "
    "WHERE SMALL.A = BIGA.A AND SMALL.B = BIGB.A",
    "SELECT BIGA.B, BIGB.B FROM BIGA, BIGB, SMALL "
    "WHERE SMALL.A = BIGA.A AND SMALL.B = BIGB.A AND BIGA.B < BIGB.B",
    "SELECT SMALL.A FROM BIGA, BIGB, SMALL "
    "WHERE SMALL.A = BIGA.A AND BIGA.B = BIGB.B AND SMALL.B = 1",
)

SETOP_SQL = (
    "SELECT BIGA.A FROM BIGA UNION SELECT BIGB.A FROM BIGB",
    "SELECT BIGA.A, BIGA.B FROM BIGA UNION ALL SELECT BIGB.A, BIGB.B FROM BIGB",
    "SELECT BIGA.A, BIGA.B FROM BIGA INTERSECT SELECT BIGB.A, BIGB.B FROM BIGB",
    "SELECT BIGA.A, BIGA.B FROM BIGA EXCEPT SELECT BIGB.A, BIGB.B FROM BIGB",
    # Set operations under EXISTS: streaming stops at the first row, the
    # counted-multiset ablation materializes both sides per probe binding.
    "SELECT SMALL.A FROM SMALL WHERE EXISTS "
    "(SELECT BIGA.A FROM BIGA UNION ALL SELECT BIGB.A FROM BIGB)",
    "SELECT SMALL.A FROM SMALL WHERE EXISTS "
    "(SELECT BIGA.A FROM BIGA WHERE BIGA.A = SMALL.A "
    "UNION ALL SELECT BIGB.A FROM BIGB WHERE BIGB.A = SMALL.B)",
    "SELECT SMALL.A, SMALL.B FROM SMALL WHERE EXISTS "
    "(SELECT BIGA.B FROM BIGA WHERE BIGA.A = SMALL.A "
    "UNION SELECT BIGB.B FROM BIGB WHERE BIGB.B = SMALL.B)",
)


def adversarial_db(seed, big_rows=60, small_rows=3, domain=8):
    """One instance of the adversarial schema: two big tables, one tiny."""
    rng = random.Random(seed)

    def rows(n):
        return [(rng.randrange(domain), rng.randrange(domain)) for _ in range(n)]

    return Database(
        ADVERSARIAL_SCHEMA,
        {"BIGA": rows(big_rows), "BIGB": rows(big_rows), "SMALL": rows(small_rows)},
    )


# -- columnar execution workload ----------------------------------------------
#
# Selection-heavy queries over tables whose size is a *parameter*: the
# columnar tier's fused filters win per scanned row, so the paired
# engine_vectorized / engine_rowwise stages run both at the paper's 50-row
# cap (where batch overheads roughly wash out) and at 5,000 rows (where
# the ≥3x batch win shows).  Outputs are kept selective on purpose —
# emission re-materializes row tuples at identical cost in every tier, so
# output-heavy queries would measure the shared boundary, not the filter.
# The literals are sized for the 5,000-value domain; at smaller ``rows``
# the filters simply select more of the table.

VEC_SCHEMA = Schema({"R": ("A", "B", "C"), "S": ("A", "B"), "T": ("A", "B")})

VEC_SQL = (
    "SELECT R.A FROM R WHERE R.B < R.C AND R.A < 250",
    "SELECT R.A, R.B FROM R WHERE R.C >= 4800 AND R.B < R.A",
    "SELECT R.A FROM R WHERE (R.A < R.B OR R.B < R.C) AND NOT (R.A = R.C) "
    "AND R.A < 250",
    "SELECT DISTINCT R.B FROM R WHERE R.B < 200 AND R.C > R.A",
    "SELECT T.A, R.C FROM R, T WHERE R.A = T.A AND T.B < R.B AND R.C < 250",
    "SELECT S.B FROM S WHERE S.A < 100 AND S.B >= S.A",
    "SELECT R.B FROM R WHERE R.A IS NOT NULL AND R.B < 150",
    "SELECT R.A FROM R WHERE R.A < 250 EXCEPT SELECT S.A FROM S WHERE S.B < 250",
)


def vec_db(seed, rows):
    """One instance of the columnar workload schema: ~5% NULL cells, values
    drawn from a domain that scales with the table size."""
    rng = random.Random(seed)
    domain = max(rows, 2)

    def cell():
        return None if rng.random() < 0.05 else rng.randrange(domain)

    def make(n, arity):
        return [tuple(cell() for _ in range(arity)) for _ in range(n)]

    return Database(
        VEC_SCHEMA,
        {
            "R": make(rows, 3),
            "S": make(rows, 2),
            "T": make(max(rows // 8, 1), 2),
        },
    )


def vectorized_pairs(rows=50, databases=2):
    """The columnar-execution workload: every query on every database."""
    queries = [annotate(sql, VEC_SCHEMA) for sql in VEC_SQL]
    return [
        (query, vec_db(seed, rows)) for seed in range(databases) for query in queries
    ]


# -- worst-case-optimal join workload ------------------------------------------
#
# Cyclic equality graphs — the triangle and the 4-cycle — on skewed data
# built so that *every* binary join order is bad: each table has ``hub``
# rows pointing at a hot value, so whichever pair of relations a binary
# plan joins first produces a hub x hub intermediate that the third
# relation then filters away almost entirely.  The multiway GenericJoin
# intersects per-attribute tries instead and never materializes that
# intermediate.  A handful of genuine cycles (unique values, so the trie
# paths are cheap) keep the outputs non-empty for the digest gates.

WCOJ_SCHEMA = Schema(
    {"R": ("A", "B"), "S": ("A", "B"), "T": ("A", "B"), "U": ("A", "B")}
)

WCOJ_TRIANGLE_SQL = (
    "SELECT R.A, S.A, T.A FROM R, S, T "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = R.A"
)

WCOJ_SQUARE_SQL = (
    "SELECT R.A, T.A FROM R, S, T, U "
    "WHERE R.B = S.A AND S.B = T.A AND T.B = U.A AND U.B = R.A"
)


def wcoj_db(seed, rows):
    """One instance of the cyclic-join workload: ``rows`` rows per table,
    an eighth of them incident to each hot hub value."""
    rng = random.Random(seed)
    hub = max(rows // 8, 2)
    junk = iter(range(10_000_000 + seed * 1_000_000, 20_000_000))
    genuine = 8

    def block(a, b, n):
        return [
            (a if a is not None else next(junk),
             b if b is not None else next(junk))
            for _ in range(max(n, 0))
        ]

    # One hot hub value per join attribute: R.A=1, S.A=2, T.A=3, U.A=4.
    # Every edge of both cycles is hot on *both* endpoints (``hub`` rows
    # each side), so whichever pair of relations a binary plan joins
    # first materializes a hub x hub intermediate; T feeds two outgoing
    # edges (T.B = R.A closes the triangle, T.B = U.A continues the
    # 4-cycle), so it carries a hot block for each.
    tables = {
        "R": block(1, None, hub) + block(None, 2, hub),
        "S": block(2, None, hub) + block(None, 3, hub),
        "T": block(3, None, hub) + block(None, 1, hub) + block(None, 4, hub),
        "U": block(4, None, hub) + block(None, 1, hub),
    }
    # A few genuine triangles and squares (fresh unique values, so they
    # survive the trie intersection cheaply) keep the outputs — and the
    # digests the gates compare — non-empty.
    for _ in range(genuine):
        r, s, t = (next(junk) for _ in range(3))
        tables["R"].append((r, s))
        tables["S"].append((s, t))
        tables["T"].append((t, r))  # closes the triangle: T.B = R.A
        tables["U"].append((next(junk), next(junk)))  # keep table sizes equal
    for _ in range(genuine):
        r, s, t, u = (next(junk) for _ in range(4))
        tables["R"].append((r, s))
        tables["S"].append((s, t))
        tables["T"].append((t, u))
        tables["U"].append((u, r))  # closes the 4-cycle: U.B = R.A
    for data in tables.values():
        data += block(None, None, rows - len(data))
        rng.shuffle(data)
    return Database(WCOJ_SCHEMA, tables)


def wcoj_pairs(rows=50, databases=2):
    """The cyclic-join workload: triangle + 4-cycle on every database."""
    queries = [
        annotate(WCOJ_TRIANGLE_SQL, WCOJ_SCHEMA),
        annotate(WCOJ_SQUARE_SQL, WCOJ_SCHEMA),
    ]
    return [
        (query, wcoj_db(seed, rows)) for seed in range(databases) for query in queries
    ]


def join_order_pairs(databases=4, big_rows=60):
    """The adversarial-FROM-order workload: every query on every database."""
    queries = [annotate(sql, ADVERSARIAL_SCHEMA) for sql in JOIN_ORDER_SQL]
    return [
        (query, adversarial_db(seed, big_rows=big_rows))
        for seed in range(databases)
        for query in queries
    ]


def setop_pairs(databases=4, big_rows=400, small_rows=12):
    """The set-operation workload: big inputs, EXISTS-probed set ops."""
    queries = [annotate(sql, ADVERSARIAL_SCHEMA) for sql in SETOP_SQL]
    return [
        (query, adversarial_db(seed, big_rows=big_rows, small_rows=small_rows))
        for seed in range(databases)
        for query in queries
    ]


def test_bench_query_generation(benchmark):
    generator = QueryGenerator(SCHEMA)
    counter = iter(range(10_000_000))

    def generate():
        return generator.generate(seed=next(counter))

    benchmark(generate)


def test_bench_parse_print_roundtrip(benchmark):
    texts = [print_query(make_query(seed)) for seed in range(50)]

    def roundtrip():
        for text in texts:
            print_query(parse_query(text))

    benchmark(roundtrip)


def test_bench_semantics_evaluation(benchmark):
    sem = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
    pairs = [(make_query(seed), make_db(seed)) for seed in range(20)]

    def evaluate():
        for query, db in pairs:
            try:
                sem.run(query, db)
            except Exception:
                pass

    benchmark(evaluate)


def engine_pairs():
    """The engine-execution workload, at the paper's 50-row table cap."""
    return [(make_query(seed), make_db(seed, rows=PAPER_ROW_CAP)) for seed in range(20)]


def run_workload(engine, pairs):
    for query, db in pairs:
        try:
            engine.execute(query, db)
        except Exception:
            pass


def test_bench_engine_execution(benchmark):
    engine = Engine(SCHEMA, "postgres")
    pairs = engine_pairs()
    benchmark(run_workload, engine, pairs)


def test_bench_engine_execution_naive(benchmark):
    """The optimize=False ablation: the paper's product-then-filter engine."""
    engine = Engine(SCHEMA, "postgres", optimize=False)
    pairs = engine_pairs()
    benchmark.pedantic(run_workload, args=(engine, pairs), rounds=3, iterations=1)


def test_bench_engine_compiled(benchmark):
    """Closure-compiled execution (the default engine), plan cache hot:
    plans compile once at cache admission and execute many times."""
    engine = Engine(SCHEMA, "postgres")
    pairs = engine_pairs()
    run_workload(engine, pairs)  # admit + compile every plan up front
    benchmark(run_workload, engine, pairs)


def test_bench_engine_interpreted(benchmark):
    """Ablation: ``compiled=False`` — the same optimized plans executed
    through the interpreted operator tree (per-row virtual dispatch)."""
    engine = Engine(SCHEMA, "postgres", compiled=False)
    pairs = engine_pairs()
    run_workload(engine, pairs)
    benchmark(run_workload, engine, pairs)


@pytest.mark.parametrize("rows", (PAPER_ROW_CAP, 5000))
def test_bench_engine_vectorized(benchmark, rows):
    """Columnar batch execution on the selection-heavy workload, plan
    cache hot, at the paper's row cap and at 5,000 rows."""
    engine = Engine(VEC_SCHEMA, "postgres", vectorized=True)
    pairs = vectorized_pairs(rows=rows)
    run_workload(engine, pairs)  # admit + batch-compile every plan up front
    benchmark(run_workload, engine, pairs)


@pytest.mark.parametrize("rows", (PAPER_ROW_CAP, 5000))
def test_bench_engine_rowwise(benchmark, rows):
    """Ablation: the same workload through the closure-compiled row-wise
    tier (the default engine) — the engine_vectorized comparison leg."""
    engine = Engine(VEC_SCHEMA, "postgres")
    pairs = vectorized_pairs(rows=rows)
    run_workload(engine, pairs)
    benchmark(run_workload, engine, pairs)


# The ablation engines run with build_cache_size=0: these stages measure the
# *operators* (ordering, streaming), and cross-execution build-side sharing
# would otherwise absorb exactly the work being compared on the repeated
# (query, database) pairs of a timing loop.  Sharing has its own stage in
# scripts/bench.py (engine_repeat_shared vs engine_repeat_unshared).


def test_bench_join_order(benchmark):
    """Cost-based join ordering on the adversarial FROM-order workload."""
    engine = Engine(ADVERSARIAL_SCHEMA, "postgres", build_cache_size=0)
    pairs = join_order_pairs()
    benchmark(run_workload, engine, pairs)


def test_bench_join_order_from_order(benchmark):
    """Ablation: the same workload locked to syntactic FROM order."""
    engine = Engine(
        ADVERSARIAL_SCHEMA,
        "postgres",
        build_cache_size=0,
        optimizer_options={"reorder_joins": False},
    )
    pairs = join_order_pairs()
    benchmark(run_workload, engine, pairs)


def test_bench_setops(benchmark):
    """Streaming hash set operations on big UNION/INTERSECT/EXCEPT inputs."""
    engine = Engine(ADVERSARIAL_SCHEMA, "postgres", build_cache_size=0)
    pairs = setop_pairs()
    benchmark(run_workload, engine, pairs)


def test_bench_setops_counted(benchmark):
    """Ablation: the counted-multiset SetOpNode on the same workload."""
    engine = Engine(
        ADVERSARIAL_SCHEMA,
        "postgres",
        build_cache_size=0,
        optimizer_options={"hash_setops": False},
    )
    pairs = setop_pairs()
    benchmark(run_workload, engine, pairs)


@pytest.mark.parametrize("rows", (PAPER_ROW_CAP, 5000))
def test_bench_engine_wcoj(benchmark, rows):
    """Worst-case-optimal multiway joins on the cyclic workload, plan
    cache hot, at the paper's row cap and at 5,000 rows."""
    engine = Engine(WCOJ_SCHEMA, "postgres")
    pairs = wcoj_pairs(rows=rows)
    run_workload(engine, pairs)  # admit + compile every plan up front
    benchmark(run_workload, engine, pairs)


@pytest.mark.parametrize("rows", (PAPER_ROW_CAP, 5000))
def test_bench_engine_binary(benchmark, rows):
    """Ablation: the same cyclic workload with ``wcoj=False`` — DP-ordered
    binary hash joins, which must materialize a hub x hub intermediate."""
    engine = Engine(
        WCOJ_SCHEMA, "postgres", optimizer_options={"wcoj": False}
    )
    pairs = wcoj_pairs(rows=rows)
    run_workload(engine, pairs)
    benchmark(run_workload, engine, pairs)


def test_bench_theorem1_translation(benchmark):
    queries = [make_query(seed, DM_CONFIG) for seed in range(10)]

    def translate():
        for query in queries:
            desugar(to_sqlra(query, SCHEMA), SCHEMA)

    benchmark(translate)
