"""The service's graceful-degradation ladder under injected faults.

Rungs, in order of severity: execution-tier fallback (compiled tier dies
→ retry interpreted, never serve wrong), per-request deadlines (started
streams abort with an error trailer), overload admission (429 +
Retry-After), per-tenant circuit breaker (503 + Retry-After), and the
SIGTERM drain (in-flight streams finish or abort cleanly — never
truncated mid-chunk).
"""

import asyncio
import json
import socket
import time

import pytest

from repro import faults
from repro.core import NULL, Database, Schema
from repro.faults import FaultPlan
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceError,
    ServiceThread,
)

SCHEMA_JSON = {"R": ["A", "B"]}
TABLES_JSON = {"R": [[i, i * 10] for i in range(1, 9)]}


def make_db(rows=None):
    schema = Schema({"R": ("A", "B")})
    tables = {"R": rows or [(i, i * 10) for i in range(1, 9)]}
    return Database(schema, tables)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    yield
    faults.uninstall()


def query_rows(url, sql="SELECT R.A FROM R", **client_kw):
    async def go():
        async with ServiceClient(url, **client_kw) as client:
            result = await client.query(sql)
            return sorted(map(tuple, result.rows))

    return run(go())


EXPECTED = sorted((i,) for i in range(1, 9))


# -- execution-tier fallback ---------------------------------------------------


def test_tier_fallback_serves_the_same_rows():
    service = QueryService()
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        with faults.active(FaultPlan(0, {"server.exec_error": 1.0},
                                     {"server.exec_error": 1})):
            assert query_rows(thread.url) == EXPECTED
        assert service.tier_fallbacks == 1
        assert service.internal_errors == 0
        # No faults: the fallback counter stays put.
        assert query_rows(thread.url) == EXPECTED
        assert service.tier_fallbacks == 1


def test_both_tiers_failing_is_a_clean_500_never_wrong_rows():
    service = QueryService()
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        with faults.active(FaultPlan(0, {"server.exec_error": 1.0})):
            with pytest.raises(ServiceError) as excinfo:
                query_rows(thread.url)
        assert excinfo.value.status == 500
        assert "injected" in excinfo.value.message
        assert service.tier_fallbacks == 1  # it tried the interpreted tier


def test_fallback_counts_surface_in_stats():
    service = QueryService()
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        plan = FaultPlan(0, {"server.exec_error": 1.0}, {"server.exec_error": 1})
        with faults.active(plan):
            query_rows(thread.url)

            async def go():
                async with ServiceClient(thread.url) as client:
                    return await client.stats()

            stats = run(go())
        degradation = stats["degradation"]
        assert degradation["tier_fallbacks"] == 1
        assert degradation["draining"] is False
        assert stats["faults"]["injected"]["server.exec_error"] == 1


# -- deadlines -----------------------------------------------------------------


def test_deadline_rejects_a_slow_request_with_503():
    service = QueryService(request_deadline_s=0.05)
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        # server.slow sleeps 0.25s before execution: past the deadline.
        with faults.active(FaultPlan(0, {"server.slow": 1.0}, {"server.slow": 1})):
            with pytest.raises(ServiceError) as excinfo:
                query_rows(thread.url)
        assert excinfo.value.status == 503
        assert service.deadline_timeouts == 1
        # The service recovered: the next request is served normally.
        assert query_rows(thread.url) == EXPECTED


# -- overload admission --------------------------------------------------------


def test_admission_cap_sheds_with_429():
    service = QueryService(max_inflight=0)  # everything is "excess"
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        with pytest.raises(ServiceError) as excinfo:
            query_rows(thread.url)
        assert excinfo.value.status == 429
        assert service.overload_rejections == 1


def test_retry_after_header_on_429():
    service = QueryService(max_inflight=0)
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        status, headers, sock, _rest = raw_request(thread.url, "GET", "/health")
        sock.close()
        assert status == 429
        assert headers.get("retry-after") == "1"


# -- circuit breaker -----------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_trips_after_threshold_and_half_opens():
    clock = FakeClock()
    service = QueryService(breaker_threshold=2, breaker_reset_s=30.0, clock=clock)
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        with faults.active(FaultPlan(0, {"server.exec_error": 1.0})):
            for _ in range(2):  # two hard failures trip the breaker
                with pytest.raises(ServiceError):
                    query_rows(thread.url)
            with pytest.raises(ServiceError) as excinfo:
                query_rows(thread.url)
            assert excinfo.value.status == 503
            assert "circuit open" in excinfo.value.message
        assert service.breaker_rejections == 1
        # Other tenants are unaffected: breakers are per tenant.
        async def other_tenant():
            async with ServiceClient(thread.url, tenant="other") as client:
                await client.load(SCHEMA_JSON, TABLES_JSON)
                return await client.query("SELECT R.A FROM R")

        assert run(other_tenant()).row_count == 8
        # Past the reset window the breaker half-opens; a clean probe
        # closes it for good.
        clock.now = 31.0
        assert query_rows(thread.url) == EXPECTED
        assert query_rows(thread.url) == EXPECTED
        breakers = service._breakers["public"]
        assert breakers.failures == 0 and breakers.trips == 1


# -- stream integrity under faults --------------------------------------------


def test_injected_mid_stream_disconnect_drops_the_connection():
    """The client must see a hard drop (never a short-but-parsing result)."""
    service = QueryService(batch_rows=1)
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        with faults.active(FaultPlan(0, {"server.disconnect": 1.0},
                                     {"server.disconnect": 1})):
            with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
                query_rows(thread.url)
        # The stream bookkeeping unwound.
        assert service.streams_in_flight == 0
        # And the service still works.
        assert query_rows(thread.url) == EXPECTED


# -- graceful drain ------------------------------------------------------------


def raw_request(url, method, path, body=b"", timeout=10.0, rcvbuf=None):
    """One request on a raw socket; returns (status, headers, sock, rest)
    with the connection left open for manual body reads."""
    host, port = url.replace("http://", "").split(":")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    if rcvbuf is not None:
        # A tiny receive buffer shrinks the TCP window, so a reader that
        # stops reading backs the server up after a few hundred KB instead
        # of letting kernel buffers swallow the whole stream.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    sock.settimeout(timeout)
    sock.connect((host, int(port)))
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body
    sock.sendall(head)
    data = b""
    while b"\r\n\r\n" not in data:
        data += sock.recv(4096)
    head_part, rest = data.split(b"\r\n\r\n", 1)
    lines = head_part.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, sock, rest


def read_chunked_lines(sock, pending):
    """Drain a chunked NDJSON response to EOF; returns the decoded lines."""
    data = pending
    sock.settimeout(10.0)
    while True:
        try:
            chunk = sock.recv(65536)
        except (ConnectionError, OSError):
            break
        if not chunk:
            break
        data += chunk
    body = b""
    rest = data
    while rest:
        size_line, _sep, rest = rest.partition(b"\r\n")
        if not size_line:
            continue
        size = int(size_line.split(b";", 1)[0], 16)
        if size == 0:
            break
        body += rest[:size]
        rest = rest[size + 2:]  # skip chunk CRLF
    return [json.loads(line) for line in body.split(b"\n") if line.strip()]


def test_drain_aborts_a_slow_reader_with_an_error_trailer():
    """SIGTERM drain vs a reader that never reads: the stream must end
    with the abort trailer at a batch boundary — complete chunks, a
    parseable error line, never mid-chunk truncation."""
    rows = [(i, "x" * 800) for i in range(20000)]  # ~16 MB on the wire
    service = QueryService(batch_rows=8, buffer_bytes=2048, drain_grace_s=0.2)
    service.install_database(make_db(rows))
    with ServiceThread(service) as thread:
        payload = json.dumps({"sql": "SELECT R.B FROM R"}).encode()
        status, _headers, sock, rest = raw_request(
            thread.url, "POST", "/query", payload, rcvbuf=4096
        )
        assert status == 200
        # Let the server fill the bounded buffer and suspend in drain().
        deadline = time.time() + 10
        while service.streams_in_flight == 0 and time.time() < deadline:
            time.sleep(0.01)
        assert service.streams_in_flight == 1
        thread.shutdown(drain_s=0.2)
        lines = read_chunked_lines(sock, rest)
        sock.close()
    assert lines, "the stream carried no complete lines at all"
    trailer = lines[-1]
    assert trailer.get("aborted") is True
    assert "shutting down" in trailer["error"]
    # Every line before the trailer is a complete, well-formed record.
    assert lines[0].get("labels") == ["B"]
    for line in lines[1:-1]:
        assert "rows" in line
    assert service.aborted_streams == 1


def test_drain_lets_short_streams_finish():
    service = QueryService(drain_grace_s=5.0)
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        assert query_rows(thread.url) == EXPECTED
        thread.shutdown(drain_s=5.0)
        # Post-drain: new requests on a fresh connection are refused (the
        # listener is closed), and the service reports draining.
        with pytest.raises((ConnectionError, OSError)):
            query_rows(thread.url)
        assert service._draining


def test_draining_rejects_new_requests_on_open_connections():
    """During the drain window an already-open connection gets a clean
    503 + Retry-After instead of a hangup mid-request."""
    service = QueryService()
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        async def go():
            async with ServiceClient(thread.url) as client:
                await client.health()  # connection established + proven
                service._draining = True  # the drain window is open
                with pytest.raises(ServiceError) as excinfo:
                    await client.health()
                return excinfo.value.status

        assert run(go()) == 503
