"""Decorrelation of every expression form under a context (Proposition 2).

The desugarer's context mechanism (K × R products, ⋈ˢ joins on context
columns, per-context set operations) must be exact for *each* operator that
can occur inside a correlated empty(·)/∈ sub-expression.  These tests build
one correlated expression per operator and check the desugared pure RA
against direct SQL-RA evaluation."""

import pytest

from repro.algebra.ast import (
    Attr,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    Product,
    Projection,
    RAnd,
    Relation,
    Renaming,
    RNot,
    RPredicate,
    Selection,
    UnionOp,
    is_pure,
)
from repro.algebra.desugar import desugar
from repro.algebra.semantics import RASemantics
from repro.core import NULL, Database, Schema


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("C",), "T": ("D",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {
            "R": [(1, 2), (1, 2), (2, 3), (NULL, 2), (3, NULL)],
            "S": [(1,), (2,), (NULL,), (2,)],
            "T": [(2,), (3,)],
        },
    )


@pytest.fixture
def ra(schema):
    return RASemantics(schema)


def check(expr, ra, schema, db):
    pure = desugar(expr, schema)
    assert is_pure(pure)
    expected = ra.evaluate(expr, db)
    got = ra.evaluate(pure, db)
    assert got.same_as(expected), (
        f"expected {sorted(expected.bag, key=repr)}, "
        f"got {sorted(got.bag, key=repr)}"
    )
    return pure


def correlated(inner_on_c):
    """σ over R with an Empty atom whose source references R's column A."""
    return Selection(Relation("R"), RNot(Empty(inner_on_c)))


def eq_param(column, param="A"):
    return RPredicate("=", (Attr(column), Attr(param)))


def test_correlated_selection(ra, schema, db):
    check(correlated(Selection(Relation("S"), eq_param("C"))), ra, schema, db)


def test_correlated_projection(ra, schema, db):
    inner = Projection(Selection(Relation("S"), eq_param("C")), ("C",))
    check(correlated(inner), ra, schema, db)


def test_correlated_dedup(ra, schema, db):
    inner = Dedup(Selection(Relation("S"), eq_param("C")))
    check(correlated(inner), ra, schema, db)


def test_correlated_renaming(ra, schema, db):
    inner = Renaming(Selection(Relation("S"), eq_param("C")), ("C",), ("Z",))
    check(correlated(inner), ra, schema, db)


def test_correlated_product(ra, schema, db):
    """Both product sides reference the parameter: the context join must
    align the two sides on the same binding."""
    left = Selection(Relation("S"), eq_param("C"))
    right = Renaming(
        Selection(Relation("T"), RPredicate("<", (Attr("D"), Attr("A")))),
        ("D",),
        ("D2",),
    )
    check(correlated(Product(left, right)), ra, schema, db)


def test_correlated_union(ra, schema, db):
    left = Selection(Relation("S"), eq_param("C"))
    right = Renaming(Selection(Relation("T"), eq_param("D")), ("D",), ("C",))
    check(correlated(UnionOp(left, right)), ra, schema, db)


def test_correlated_intersection(ra, schema, db):
    left = Selection(Relation("S"), eq_param("C"))
    right = Renaming(
        Selection(Relation("T"), RPredicate("<=", (Attr("D"), Attr("A")))),
        ("D",),
        ("C",),
    )
    check(correlated(IntersectionOp(left, right)), ra, schema, db)


def test_correlated_difference(ra, schema, db):
    """Per-context difference: for each binding of A the difference must be
    computed within that binding's group only."""
    left = Selection(Relation("S"), RPredicate("<=", (Attr("C"), Attr("A"))))
    right = Renaming(Selection(Relation("T"), eq_param("D")), ("D",), ("C",))
    check(correlated(DifferenceOp(left, right)), ra, schema, db)


def test_correlated_in_source(ra, schema, db):
    """An ∈ whose source is itself correlated."""
    inner = Selection(Relation("S"), RPredicate("<", (Attr("C"), Attr("B"))))
    expr = Selection(Relation("R"), InExpr((Attr("A"),), inner))
    check(expr, ra, schema, db)


def test_null_parameter_bindings_decorrelate(ra, schema, db):
    """Context rows can carry NULL parameter values; the ⋈ˢ machinery must
    match them syntactically."""
    inner = Selection(Relation("S"), RAnd(eq_param("C"), eq_param("C", "A")))
    expr = Selection(Relation("R"), Empty(inner))
    pure = check(expr, ra, schema, db)
    # Sanity: the NULL-A rows of R have empty inner (NULL = NULL is u, not t),
    # so they must survive the Empty selection.
    got = ra.evaluate(pure, db)
    assert got.multiplicity((NULL, 2)) == 1


def test_multiplicities_preserved_through_context(ra, schema, db):
    """R's duplicate row (1,2) must keep multiplicity 2 on both branches."""
    inner = Selection(Relation("S"), eq_param("C"))
    expr = correlated(inner)
    pure = desugar(expr, schema)
    got = ra.evaluate(pure, db)
    assert got.multiplicity((1, 2)) == 2


def test_two_empties_sharing_a_parameter(ra, schema, db):
    one = Selection(Relation("S"), eq_param("C"))
    two = Selection(Relation("T"), eq_param("D"))
    expr = Selection(Relation("R"), RAnd(RNot(Empty(one)), Empty(two)))
    check(expr, ra, schema, db)


def test_deeply_nested_context_extension(ra, schema, db):
    """empty(F) where F's own condition has an empty atom referencing both
    F's columns and the outermost parameters."""
    innermost = Selection(
        Relation("T"),
        RAnd(eq_param("D", "C"), RPredicate("<", (Attr("D"), Attr("B")))),
    )
    middle = Selection(Relation("S"), RNot(Empty(innermost)))
    expr = Selection(Relation("R"), RNot(Empty(middle)))
    check(expr, ra, schema, db)
