#!/usr/bin/env python
"""Standalone throughput benchmark: naive vs optimized engine (and oracle).

Runs the pipeline-stage workloads of ``benchmarks/test_bench_throughput.py``
without pytest and writes ``BENCH_engine.json`` — median nanoseconds per
stage plus the optimizer speedup — so the performance trajectory is
machine-readable across PRs::

    PYTHONPATH=src python scripts/bench.py [--rounds N] [--out FILE]

Stages
------
* ``query_generation``     — one random query (PAPER_CONFIG)
* ``parse_print_roundtrip``— parse+print of 50 pregenerated query texts
* ``semantics_eval``       — formal semantics, interleaved fast path
* ``semantics_eval_naive`` — formal semantics, ``fast_from=False``
* ``engine_optimized``     — reference engine, default optimizer
* ``engine_naive``         — reference engine, ``optimize=False``
* ``theorem1_translation`` — SQL → SQL-RA → pure RA desugaring

The engine stages run at the paper's 50-row table cap (the scale the naive
implementation could not handle); the semantics stages run at 5 rows, as the
oracle is intentionally product-shaped.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT))

# The workloads are the ones the pytest benchmark suite defines, imported so
# BENCH_engine.json always measures exactly what the benches measure.
from benchmarks.test_bench_throughput import (  # noqa: E402
    SCHEMA,
    engine_pairs,
    make_db,
    make_query,
    run_workload,
)
from repro.algebra import desugar, to_sqlra  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.generator import DM_CONFIG, QueryGenerator  # noqa: E402
from repro.semantics import STAR_COMPOSITIONAL, SqlSemantics  # noqa: E402
from repro.sql import parse_query, print_query  # noqa: E402


def run_semantics(semantics, pairs):
    for query, db in pairs:
        try:
            semantics.run(query, db)
        except Exception:
            pass


def median_ns(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        fn()
        times.append(time.perf_counter_ns() - start)
    return int(statistics.median(times))


def build_stages():
    gen = QueryGenerator(SCHEMA)
    counter = iter(range(10_000_000))
    texts = [print_query(make_query(seed)) for seed in range(50)]
    small_pairs = [(make_query(s), make_db(s)) for s in range(20)]
    paper_pairs = engine_pairs()
    dm_queries = [make_query(seed, DM_CONFIG) for seed in range(10)]
    sem_fast = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
    sem_naive = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL, fast_from=False)
    return {
        "query_generation": lambda: gen.generate(seed=next(counter)),
        "parse_print_roundtrip": lambda: [
            print_query(parse_query(text)) for text in texts
        ],
        "semantics_eval": lambda: run_semantics(sem_fast, small_pairs),
        "semantics_eval_naive": lambda: run_semantics(sem_naive, small_pairs),
        "engine_optimized": lambda: run_workload(
            Engine(SCHEMA, "postgres"), paper_pairs
        ),
        "engine_naive": lambda: run_workload(
            Engine(SCHEMA, "postgres", optimize=False), paper_pairs
        ),
        "theorem1_translation": lambda: [
            desugar(to_sqlra(query, SCHEMA), SCHEMA) for query in dm_queries
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5, help="rounds per stage")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    results = {}
    for name, fn in build_stages().items():
        fn()  # warm-up (also populates any lazy caches outside the timing)
        results[name] = median_ns(fn, args.rounds)
        print(f"{name:24s} {results[name] / 1e6:12.3f} ms (median of {args.rounds})")

    speedup = results["engine_naive"] / results["engine_optimized"]
    results_doc = {
        "schema": "bench-engine/v1",
        "rounds": args.rounds,
        "median_ns": results,
        "engine_speedup": round(speedup, 3),
    }
    Path(args.out).write_text(json.dumps(results_doc, indent=2) + "\n")
    print(f"\nengine optimizer speedup: {speedup:.2f}x -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
