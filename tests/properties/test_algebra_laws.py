"""Property-based RA equivalence laws under bag semantics and 3VL.

Classical RA identities do not all survive bags and nulls; these tests pin
down which do.  Each law is checked by evaluating both sides on random
databases (seed-driven), with conditions drawn from a small pool that
includes null-sensitive atoms."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.ast import (
    Attr,
    Dedup,
    DifferenceOp,
    IntersectionOp,
    Product,
    Projection,
    RAnd,
    Relation,
    RNot,
    ROr,
    RPredicate,
    NullTest,
    Selection,
    UnionOp,
)
from repro.algebra.semantics import RASemantics
from repro.core import Schema
from repro.generator import DataFillerConfig, fill_database

SCHEMA = Schema({"R": ("A", "B"), "S": ("C", "D")})
RA = RASemantics(SCHEMA)

CONDITIONS_R = [
    RPredicate("=", (Attr("A"), Attr("B"))),
    RPredicate("<", (Attr("A"), 5)),
    NullTest(Attr("A")),
    RNot(RPredicate("=", (Attr("B"), 3))),
    RAnd(RPredicate(">", (Attr("A"), 1)), NullTest(Attr("B"))),
]

seeds = st.integers(min_value=0, max_value=5_000)
cond_pairs = st.tuples(
    st.sampled_from(CONDITIONS_R), st.sampled_from(CONDITIONS_R)
)


def db_for(seed):
    return fill_database(
        SCHEMA, random.Random(seed), DataFillerConfig(max_rows=6, null_rate=0.3)
    )


def same(seed, left, right):
    db = db_for(seed)
    return RA.evaluate(left, db).bag == RA.evaluate(right, db).bag


@given(seeds, cond_pairs)
@settings(max_examples=60, deadline=None)
def test_selection_cascade(seed, conds):
    """σ_{θ1∧θ2}(E) = σ_θ1(σ_θ2(E)) — valid even under 3VL, because a
    conjunction is t iff both conjuncts are t."""
    theta1, theta2 = conds
    r = Relation("R")
    assert same(
        seed,
        Selection(r, RAnd(theta1, theta2)),
        Selection(Selection(r, theta2), theta1),
    )


@given(seeds, cond_pairs)
@settings(max_examples=60, deadline=None)
def test_selection_commute(seed, conds):
    theta1, theta2 = conds
    r = Relation("R")
    assert same(
        seed,
        Selection(Selection(r, theta2), theta1),
        Selection(Selection(r, theta1), theta2),
    )


@given(seeds, cond_pairs)
@settings(max_examples=60, deadline=None)
def test_disjunctive_selection_is_not_union(seed, conds):
    """σ_{θ1∨θ2}(E) vs σ_θ1(E) ∪ σ_θ2(E): NOT a law under bags (double
    counting) — but the left is always dominated by the right."""
    theta1, theta2 = conds
    r = Relation("R")
    db = db_for(seed)
    left = RA.evaluate(Selection(r, ROr(theta1, theta2)), db).bag
    right = RA.evaluate(
        UnionOp(Selection(r, theta1), Selection(r, theta2)), db
    ).bag
    for record in left.distinct():
        assert left.multiplicity(record) <= right.multiplicity(record)


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_dedup_distributes_over_product(seed):
    """ε(E1 × E2) = ε(E1) × ε(E2)."""
    assert same(
        seed,
        Dedup(Product(Relation("R"), Relation("S"))),
        Product(Dedup(Relation("R")), Dedup(Relation("S"))),
    )


@given(seeds, st.sampled_from(CONDITIONS_R))
@settings(max_examples=40, deadline=None)
def test_dedup_commutes_with_selection(seed, theta):
    assert same(
        seed,
        Dedup(Selection(Relation("R"), theta)),
        Selection(Dedup(Relation("R")), theta),
    )


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_projection_does_not_commute_with_dedup(seed):
    """ε(π(E)) ≠ π(ε(E)) in general under bags — dominance holds instead."""
    db = db_for(seed)
    left = RA.evaluate(Dedup(Projection(Relation("R"), ("A",))), db).bag
    right = RA.evaluate(Projection(Dedup(Relation("R")), ("A",)), db).bag
    for record in left.distinct():
        assert left.multiplicity(record) <= right.multiplicity(record)
    assert set(left.distinct()) == set(right.distinct())


@given(seeds, st.sampled_from(CONDITIONS_R))
@settings(max_examples=40, deadline=None)
def test_selection_distributes_over_union(seed, theta):
    r = Relation("R")
    assert same(
        seed,
        Selection(UnionOp(r, r), theta),
        UnionOp(Selection(r, theta), Selection(r, theta)),
    )


@given(seeds, st.sampled_from(CONDITIONS_R))
@settings(max_examples=40, deadline=None)
def test_selection_distributes_over_difference(seed, theta):
    """σ_θ(E1 − E2) = σ_θ(E1) − σ_θ(E2) holds under bags (the condition
    depends only on the row)."""
    r = Relation("R")
    double = UnionOp(r, r)
    assert same(
        seed,
        Selection(DifferenceOp(double, r), theta),
        DifferenceOp(Selection(double, theta), Selection(r, theta)),
    )


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_intersection_via_difference_at_expression_level(seed):
    r = Relation("R")
    double = UnionOp(r, r)
    assert same(
        seed,
        IntersectionOp(double, r),
        DifferenceOp(double, DifferenceOp(double, r)),
    )


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_projection_merges(seed):
    """π_A(π_{A,B}(E)) = π_A(E)."""
    assert same(
        seed,
        Projection(Projection(Relation("R"), ("A", "B")), ("A",)),
        Projection(Relation("R"), ("A",)),
    )
