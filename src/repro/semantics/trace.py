"""Derivation tracing: watch the semantics evaluate, rule by rule.

The paper argues its semantics "could be a useful tool for both users and
implementers in understanding the behavior of SQL queries".  This module
makes that concrete: :class:`TracingSemantics` is a drop-in
:class:`~repro.semantics.evaluator.SqlSemantics` that records every
application of a Figure 4–7 rule — which query/condition was evaluated,
under which environment, producing what — as a tree of
:class:`TraceNode` s that can be rendered with :func:`format_trace`.

Example::

    sem = TracingSemantics(schema)
    result = sem.run(query, db)
    print(format_trace(sem.trace))

The tracer is intended for small inputs (every rule application is
recorded); it is a debugging/teaching aid, not an execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.env import Environment
from ..core.schema import Database
from ..core.table import Table
from ..core.truth import Truth
from ..sql.ast import Condition, Query
from ..sql.printer import print_condition, print_query
from .evaluator import SqlSemantics

__all__ = ["TracingSemantics", "TraceNode", "format_trace"]


@dataclass
class TraceNode:
    """One rule application: a query or condition evaluation."""

    kind: str  # "query" | "condition"
    description: str
    environment: str
    result: str = ""
    children: List["TraceNode"] = field(default_factory=list)


def _env_text(env: Environment) -> str:
    names = env.bound_names()
    if not names:
        return "∅"
    return ", ".join(f"{name}={env.lookup(name)!r}" for name in names)


class TracingSemantics(SqlSemantics):
    """An ⟦·⟧ evaluator that records its derivation tree.

    The most recent top-level derivation is available as :attr:`trace`
    after each :meth:`run` / :meth:`evaluate` / :meth:`eval_condition`
    call issued from outside.
    """

    def __init__(self, *args, max_result_rows: int = 6, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace: Optional[TraceNode] = None
        self._stack: List[TraceNode] = []
        self.max_result_rows = max_result_rows

    # -- recording helpers ---------------------------------------------------

    def _enter(self, node: TraceNode) -> None:
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.trace = node
        self._stack.append(node)

    def _exit(self) -> None:
        self._stack.pop()

    def _render_table(self, table: Table) -> str:
        rows = sorted(table.bag, key=repr)
        shown = ", ".join(str(r) for r in rows[: self.max_result_rows])
        suffix = ", …" if len(rows) > self.max_result_rows else ""
        columns = ", ".join(str(c) for c in table.columns)
        return f"[{columns}] {{{shown}{suffix}}}"

    # -- traced entry points ------------------------------------------------------

    def evaluate(
        self,
        query: Query,
        db: Database,
        env: Environment = Environment(),
        exists_context: bool = False,
    ) -> Table:
        switch = 1 if exists_context else 0
        node = TraceNode(
            kind="query",
            description=f"⟦{print_query(query)}⟧ (x={switch})",
            environment=_env_text(env),
        )
        self._enter(node)
        try:
            table = super().evaluate(query, db, env, exists_context)
        except Exception as exc:
            node.result = f"error: {type(exc).__name__}: {exc}"
            self._exit()
            raise
        node.result = self._render_table(table)
        self._exit()
        return table

    def eval_condition(
        self, condition: Condition, db: Database, env: Environment
    ) -> Truth:
        node = TraceNode(
            kind="condition",
            description=f"⟦{print_condition(condition)}⟧",
            environment=_env_text(env),
        )
        self._enter(node)
        try:
            value = super().eval_condition(condition, db, env)
        except Exception as exc:
            node.result = f"error: {type(exc).__name__}: {exc}"
            self._exit()
            raise
        node.result = value.name
        self._exit()
        return value


def format_trace(node: Optional[TraceNode], indent: str = "", _top: bool = True) -> str:
    """Render a derivation tree as indented text."""
    if node is None:
        return "(no trace recorded)"
    env_part = f"   η: {node.environment}" if node.environment != "∅" else ""
    line = f"{indent}{node.description}{env_part}"
    result = f"{indent}  = {node.result}"
    parts = [line]
    for child in node.children:
        parts.append(format_trace(child, indent + "    ", _top=False))
    parts.append(result)
    return "\n".join(parts)
