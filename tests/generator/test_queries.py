"""The random query generator: determinism, parameter bounds, validity."""

import random

import pytest

from repro.algebra.translate import is_data_manipulation
from repro.core import validation_schema
from repro.core.errors import AmbiguousReferenceError, ReproError
from repro.generator import DM_CONFIG, GeneratorConfig, PAPER_CONFIG, QueryGenerator
from repro.sql import check_query
from repro.sql.ast import Exists, InQuery, Not, Or, And, Select, SetOp


def count_tables(query):
    """Base tables mentioned (counting repetitions), including subqueries."""
    if isinstance(query, SetOp):
        return count_tables(query.left) + count_tables(query.right)
    total = 0
    for item in query.from_items:
        if item.is_base_table:
            total += 1
        else:
            total += count_tables(item.table)
    total += _count_condition_tables(query.where)
    return total


def _count_condition_tables(condition):
    if isinstance(condition, (InQuery, Exists)):
        return count_tables(condition.query)
    if isinstance(condition, (And, Or)):
        return _count_condition_tables(condition.left) + _count_condition_tables(
            condition.right
        )
    if isinstance(condition, Not):
        return _count_condition_tables(condition.operand)
    return 0


def nesting_depth(query):
    if isinstance(query, SetOp):
        return max(nesting_depth(query.left), nesting_depth(query.right))
    depth = 0
    for item in query.from_items:
        if not item.is_base_table:
            depth = max(depth, 1 + nesting_depth(item.table))
    depth = max(depth, _condition_depth(query.where))
    return depth


def _condition_depth(condition):
    if isinstance(condition, (InQuery, Exists)):
        return 1 + nesting_depth(condition.query)
    if isinstance(condition, (And, Or)):
        return max(_condition_depth(condition.left), _condition_depth(condition.right))
    if isinstance(condition, Not):
        return _condition_depth(condition.operand)
    return 0


@pytest.fixture
def schema():
    return validation_schema()


def test_deterministic_given_seed(schema):
    a = QueryGenerator(schema, PAPER_CONFIG, random.Random(7)).generate()
    b = QueryGenerator(schema, PAPER_CONFIG, random.Random(7)).generate()
    assert a == b


def test_generate_with_seed_argument(schema):
    generator = QueryGenerator(schema)
    assert generator.generate(seed=3) == generator.generate(seed=3)


def test_different_seeds_differ_somewhere(schema):
    generator = QueryGenerator(schema)
    queries = {generator.generate(seed=s) for s in range(20)}
    assert len(queries) > 10


@pytest.mark.parametrize("seed", range(60))
def test_table_budget_respected(schema, seed):
    """The `tables` parameter caps base-table mentions, incl. subqueries."""
    query = QueryGenerator(schema).generate(seed=seed)
    assert 1 <= count_tables(query) <= PAPER_CONFIG.tables


@pytest.mark.parametrize("seed", range(60))
def test_nesting_bound_respected(schema, seed):
    query = QueryGenerator(schema).generate(seed=seed)
    assert nesting_depth(query) <= PAPER_CONFIG.nest


@pytest.mark.parametrize("seed", range(60))
def test_generated_queries_compile_compositionally(schema, seed):
    """Every generated query passes the PostgreSQL-style static checks."""
    query = QueryGenerator(schema).generate(seed=seed)
    check_query(query, schema, star_style="compositional")


@pytest.mark.parametrize("seed", range(60))
def test_dm_mode_generates_data_manipulation_queries(schema, seed):
    generator = QueryGenerator(schema, DM_CONFIG, random.Random(seed))
    query = generator.generate()
    assert is_data_manipulation(query, schema)
    check_query(query, schema, star_style="standard")


def test_standard_ambiguity_occurs_sometimes(schema):
    """With duplicate outputs + SELECT *, some queries must trip the
    standard-style ambiguity check (the Oracle error class of Section 4)."""
    ambiguous = 0
    for seed in range(400):
        query = QueryGenerator(schema).generate(seed=seed)
        try:
            check_query(query, schema, star_style="standard")
        except AmbiguousReferenceError:
            ambiguous += 1
        except ReproError:
            pass
    assert ambiguous > 0


def test_features_all_exercised(schema):
    """Across many seeds the generator uses stars, set ops, IN, EXISTS,
    DISTINCT and correlation."""
    saw = {"star": 0, "setop": 0, "in": 0, "exists": 0, "distinct": 0}

    def walk(query):
        if isinstance(query, SetOp):
            saw["setop"] += 1
            walk(query.left)
            walk(query.right)
            return
        if query.is_star:
            saw["star"] += 1
        if query.distinct:
            saw["distinct"] += 1
        for item in query.from_items:
            if not item.is_base_table:
                walk(item.table)
        stack = [query.where]
        while stack:
            c = stack.pop()
            if isinstance(c, InQuery):
                saw["in"] += 1
                walk(c.query)
            elif isinstance(c, Exists):
                saw["exists"] += 1
                walk(c.query)
            elif isinstance(c, (And, Or)):
                stack.extend((c.left, c.right))
            elif isinstance(c, Not):
                stack.append(c.operand)

    generator = QueryGenerator(schema)
    for seed in range(200):
        walk(generator.generate(seed=seed))
    assert all(count > 0 for count in saw.values()), saw


def test_custom_config_small_queries(schema):
    config = GeneratorConfig(tables=1, nest=0, attr=1, cond=2)
    for seed in range(30):
        query = QueryGenerator(schema, config).generate(seed=seed)
        assert count_tables(query) == 1
        assert nesting_depth(query) == 0


def test_for_data_manipulation_config():
    config = PAPER_CONFIG.for_data_manipulation()
    assert config.data_manipulation_only
    assert config.star_probability == 0.0
    assert config.duplicate_output_probability == 0.0
