"""Columnar (vectorized) execution: the engine's fourth tier.

The compiled tier (:mod:`repro.engine.compile`) removed interpreter
dispatch but still moves one Python tuple per row through a chain of
generator frames.  This module amortizes that remaining per-row cost the
way production engines do: operators exchange **batches** — a list of
column vectors plus a selection of row ids — and materialize tuples only
at result emission.  Per-element work then happens inside C-speed list
comprehensions, ``zip`` transpositions and ``map`` gathers instead of
per-row Python frames.

Batch protocol
--------------

A batch is ``(cols, sel)``:

* ``cols`` — one ``list`` per output column, all aligned to a common
  *base* index space (usually the rows of a scan or the compacted output
  of a join);
* ``sel`` — the live row ids into that base, in output order.  A
  ``range`` always means "the whole base, untouched"; filters narrow it
  to a plain list without copying any column data.

``_gather(col, sel)`` compacts a column to the selection (and is a no-op
for ``range`` selections), ``_materialize`` rebuilds row tuples at the
edges (result emission, hash keys that need rows, subquery caches).

3VL null masks
--------------

A WHERE tree is batch-compiled into one generated mask function per
filter: every comparison produces a **paired (value, null) mask** — two
bool lists, ``v[i]`` "the predicate is TRUE here" and ``u[i]`` "the
predicate is UNKNOWN here" (never both) — and the Kleene connectives
combine whole masks:

* ``AND``: ``v = p∧q``, ``u = (x∨y) ∧ (p∨x) ∧ (q∨y)``
* ``OR``:  ``v = p∨q``, ``u = (x∨y) ∧ ¬p ∧ ¬q``
* ``NOT``: ``v = ¬(p∨x)``, ``u`` unchanged

(with ``p,q`` the operand value masks and ``x,y`` their null masks).
The filter keeps the row ids whose ``v`` entry is truthy — exactly the
interpreted ``predicate(row) is True`` rule.

Error exactness
---------------

Columnwise evaluation reorders work, and ordered comparisons (``<``,
``<=``, ``>``, ``>=``) and ``LIKE`` raise on type clashes, so an error
could surface in a different place than the interpreted row-at-a-time
order.  Three rules keep outcomes bit-identical:

* **Optimistic kernels + exact replay** — the raising kernels simply
  evaluate; a type clash anywhere in the batch aborts the generated
  function (`TypeError` from Python's own mixed-type ordering, or the
  engine's ``CompileError`` from LIKE and probe subqueries), and the
  filter re-evaluates the whole predicate per row (in selection order,
  via the closure compiler) — the interpreted behaviour exactly,
  including short-circuits that may suppress the error altogether.  The
  replay is sound even mid-mask because all cross-row state (probe
  memos, EXISTS early-termination booleans) is a pure cache: replaying
  recomputes identical values.  The clash-free common case pays no
  checking cost.
* **Demand masks** — a single probe segment (EXISTS / IN / opaque
  callables, which keep their row-wise compiled closures and early
  termination) only evaluates on rows the Kleene short-circuit order
  demands (AND right demand = left not-FALSE; OR right demand = left
  not-TRUE); undemanded positions get a ``(False, False)`` placeholder,
  which the connective formulas provably mask out.
* **Per-row mode** — predicates with two or more probe segments (whose
  relative evaluation order is row-interleaved) or any shape this module
  cannot vectorize are evaluated per row from the start.

State and caching contract
--------------------------

Plans keep their ``PredNode`` trees and operator state untouched — the
columnar program is a side-car closure over the same nodes, exactly like
the compiled tier — so :func:`~repro.engine.binding.bind_plan` /
:func:`~repro.engine.binding.unbind_plan`, the row-pinning guarantees
and the content-keyed :class:`~repro.engine.binding.BuildSideCache` work
unchanged.  ``TableScan`` columns are converted once per bind (memoized
against the bound list's identity; the binding layer clears the memo on
unbind so cached plans pin no rows).  Subquery caches (``CachedSubplan``
/ ``MemoSubplan``) store plain row tuples, the same values the row-wise
tiers store, so harvested entries stay tier-portable; hash-join build
sides store ``(compacted right columns, key -> row ids)`` — a different
shape than the row-wise tier, but private to the node/cache of the one
engine that built them, and valid across cache restores because an
identical content key implies identical bound row order.

Unknown plan nodes (and the ``hash_setops=False`` ablation's
``SetOpNode``) degrade to the compiled row-wise tier per subtree rather
than failing, mirroring :func:`repro.engine.compile.compile_plan`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import CompileError
from .compile import (
    _column_indices,
    _compile_subpred,
    _compiled_code,
    _fold_predicate,
    _iter_fn,
    _literal_source,
    compile_predicate,
)
from .expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    IsNullPred,
    LiteralExpr,
    NotPred,
    OrPred,
    COMPARE_FUNCS,
    OuterStack,
    Row,
)
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    FilterOp,
    GenericJoin,
    HashJoin,
    HashSetOp,
    MemoSubplan,
    PlanNode,
    ProjectOp,
    RemapOp,
    StaticScan,
    TableScan,
)

__all__ = ["compile_columnar"]

#: A batch: column vectors over a base index space + the live selection.
Batch = Tuple[List[list], Sequence[int]]

#: A compiled batch operator: outer-row stack in, batch out.
BatchFn = Callable[[OuterStack], Batch]

_LIKE_FUNC = COMPARE_FUNCS["LIKE"]


class _ColumnarFallback(Exception):
    """A mask kernel hit a potential runtime error (a type clash the
    row-wise tier reports as :class:`~repro.core.errors.CompileError`): the
    filter must replay its predicate per row to surface — or, when the
    offending row would never have been evaluated — suppress it exactly."""


# -- batch helpers ------------------------------------------------------------


def _gather(col: list, sel: Sequence[int]) -> list:
    """``col`` compacted to ``sel`` (``range`` selections are whole-base)."""
    if type(sel) is range:
        return col
    return list(map(col.__getitem__, sel))


def _materialize(cols: List[list], sel: Sequence[int]) -> List[Row]:
    """Row tuples of a batch, in selection order."""
    if not cols:
        return [()] * len(sel)
    return list(zip(*[_gather(col, sel) for col in cols]))


def _columns_of(rows: Sequence[Row], width: int) -> List[list]:
    """Row tuples transposed into ``width`` column vectors."""
    if rows:
        return list(map(list, zip(*rows)))
    return [[] for _ in range(width)]


def _empty(width: int) -> Batch:
    return [[] for _ in range(width)], range(0)


# -- mask kernels -------------------------------------------------------------
#
# One function per (operator, operand shape, mask demand).  ``_vv`` takes
# two gathered columns, ``_vs`` a column and a scalar (a literal or an
# outer-row value, possibly None at runtime); the ``_v`` suffix marks the
# value-only variants the demand-driven codegen picks when nothing above
# the comparison reads its UNKNOWN mask (the common case — a filter keeps
# TRUE rows, and AND/OR value masks are functions of the operand value
# masks alone).  Value/None semantics match
# :func:`repro.engine.expressions.compare` exactly; the equality kernels
# drop its ``isinstance`` type tag because over the engine's value domain
# (int/str/None) Python equality can never hold across the str boundary.
# The raising operators run *optimistically*: on a type clash the ordered
# kernels raise a plain ``TypeError`` (Python's own ``int < str``, raised
# for exactly the operand pairs whose str-ness differs) and the LIKE
# kernels the row-wise tier's ``CompileError`` — either aborts the whole
# mask, which the filter then replays per row for the exact interpreted
# error (or its exact suppression, if the clashing row was behind a
# short-circuit).  The clash-free common case pays no checking cost.


def _bcast(value, n: int) -> Tuple[list, list]:
    return [value is True] * n, [value is None] * n


def _eq_vv(x, y):
    return (
        [a is not None and b is not None and a == b for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _ne_vv(x, y):
    return (
        [a is not None and b is not None and a != b for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _eq_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    return [a is not None and a == s for a in x], [a is None for a in x]


def _ne_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    return [a is not None and a != s for a in x], [a is None for a in x]


def _lt_vv(x, y):
    return (
        [a is not None and b is not None and a < b for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _le_vv(x, y):
    return (
        [a is not None and b is not None and a <= b for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _gt_vv(x, y):
    return (
        [a is not None and b is not None and a > b for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _ge_vv(x, y):
    return (
        [a is not None and b is not None and a >= b for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _lt_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    return [a is not None and a < s for a in x], [a is None for a in x]


def _le_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    return [a is not None and a <= s for a in x], [a is None for a in x]


def _gt_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    return [a is not None and a > s for a in x], [a is None for a in x]


def _ge_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    return [a is not None and a >= s for a in x], [a is None for a in x]


def _like_vv(x, y):
    like = _LIKE_FUNC
    return (
        [a is not None and b is not None and like(a, b) for a, b in zip(x, y)],
        [a is None or b is None for a, b in zip(x, y)],
    )


def _like_vs(x, s):
    if s is None:
        return _bcast(None, len(x))
    like = _LIKE_FUNC
    return [a is not None and like(a, s) for a in x], [a is None for a in x]


def _like_sv(s, y):
    if s is None:
        return _bcast(None, len(y))
    like = _LIKE_FUNC
    return [b is not None and like(s, b) for b in y], [b is None for b in y]


# Value-only variants: one list comprehension instead of two.


def _eq_vv_v(x, y):
    return [a is not None and b is not None and a == b for a, b in zip(x, y)]


def _ne_vv_v(x, y):
    return [a is not None and b is not None and a != b for a, b in zip(x, y)]


def _eq_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    return [a is not None and a == s for a in x]


def _ne_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    return [a is not None and a != s for a in x]


def _lt_vv_v(x, y):
    return [a is not None and b is not None and a < b for a, b in zip(x, y)]


def _le_vv_v(x, y):
    return [a is not None and b is not None and a <= b for a, b in zip(x, y)]


def _gt_vv_v(x, y):
    return [a is not None and b is not None and a > b for a, b in zip(x, y)]


def _ge_vv_v(x, y):
    return [a is not None and b is not None and a >= b for a, b in zip(x, y)]


def _lt_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    return [a is not None and a < s for a in x]


def _le_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    return [a is not None and a <= s for a in x]


def _gt_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    return [a is not None and a > s for a in x]


def _ge_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    return [a is not None and a >= s for a in x]


def _like_vv_v(x, y):
    like = _LIKE_FUNC
    return [a is not None and b is not None and like(a, b) for a, b in zip(x, y)]


def _like_vs_v(x, s):
    if s is None:
        return [False] * len(x)
    like = _LIKE_FUNC
    return [a is not None and like(a, s) for a in x]


def _like_sv_v(s, y):
    if s is None:
        return [False] * len(y)
    like = _LIKE_FUNC
    return [b is not None and like(s, b) for b in y]


#: Errors that abort a mask and send the filter to the per-row replay:
#: Python's own mixed-type ordering error plus the engine's comparison
#: error.  Anything the replay re-raises is exactly the interpreted error.
_FALLBACK_ERRORS = (TypeError, CompileError)


# -- Kleene mask combination --------------------------------------------------


def _and_m(va, ua, vb, ub):
    return (
        [p and q for p, q in zip(va, vb)],
        [
            (x or y) and (p or x) and (q or y)
            for p, x, q, y in zip(va, ua, vb, ub)
        ],
    )


def _or_m(va, ua, vb, ub):
    return (
        [p or q for p, q in zip(va, vb)],
        [
            (x or y) and not p and not q
            for p, x, q, y in zip(va, ua, vb, ub)
        ],
    )


def _not_m(v, u):
    return [not (p or x) for p, x in zip(v, u)], u


# Value-only connectives (Kleene TRUE is a function of the operand value
# masks alone; NOT is the exception and always demands its operand's
# UNKNOWN mask, handled in the codegen).


def _and_v(va, vb):
    return [p and q for p, q in zip(va, vb)]


def _or_v(va, vb):
    return [p or q for p, q in zip(va, vb)]


def _demand_and(d, v, u):
    """Rows an AND's right side must evaluate on: left not FALSE."""
    if d is None:
        return [p or x for p, x in zip(v, u)]
    return [dd and (p or x) for dd, p, x in zip(d, v, u)]


def _demand_or(d, v, u):
    """Rows an OR's right side must evaluate on: left not TRUE."""
    if d is None:
        return [not p for p in v]
    return [dd and not p for dd, p in zip(d, v)]


def _probe_mask(probe, rows, o, d):
    """Row-wise probe (EXISTS/IN/opaque) over the demanded selection, in
    selection order — preserving subquery early termination and memo
    behaviour; undemanded positions get the (False, False) placeholder."""
    v: list = []
    u: list = []
    append_v = v.append
    append_u = u.append
    if d is None:
        for r in rows:
            t = probe(r, o)
            append_v(t is True)
            append_u(t is None)
    else:
        for r, dd in zip(rows, d):
            if dd:
                t = probe(r, o)
                append_v(t is True)
                append_u(t is None)
            else:
                append_v(False)
                append_u(False)
    return v, u


#: Globals of every generated mask function.
_MASK_NAMESPACE = {
    "_gather": _gather,
    "_bcast": _bcast,
    "_eq_vv": _eq_vv,
    "_ne_vv": _ne_vv,
    "_eq_vs": _eq_vs,
    "_ne_vs": _ne_vs,
    "_lt_vv": _lt_vv,
    "_le_vv": _le_vv,
    "_gt_vv": _gt_vv,
    "_ge_vv": _ge_vv,
    "_lt_vs": _lt_vs,
    "_le_vs": _le_vs,
    "_gt_vs": _gt_vs,
    "_ge_vs": _ge_vs,
    "_like_vv": _like_vv,
    "_like_vs": _like_vs,
    "_like_sv": _like_sv,
    "_eq_vv_v": _eq_vv_v,
    "_ne_vv_v": _ne_vv_v,
    "_eq_vs_v": _eq_vs_v,
    "_ne_vs_v": _ne_vs_v,
    "_lt_vv_v": _lt_vv_v,
    "_le_vv_v": _le_vv_v,
    "_gt_vv_v": _gt_vv_v,
    "_ge_vv_v": _ge_vv_v,
    "_lt_vs_v": _lt_vs_v,
    "_le_vs_v": _le_vs_v,
    "_gt_vs_v": _gt_vs_v,
    "_ge_vs_v": _ge_vs_v,
    "_like_vv_v": _like_vv_v,
    "_like_vs_v": _like_vs_v,
    "_like_sv_v": _like_sv_v,
    "_and_m": _and_m,
    "_or_m": _or_m,
    "_not_m": _not_m,
    "_and_v": _and_v,
    "_or_v": _or_v,
    "_demand_and": _demand_and,
    "_demand_or": _demand_or,
    "_probe_mask": _probe_mask,
    "_LF": _LIKE_FUNC,
    "_FALLBACK_ERRORS": _FALLBACK_ERRORS,
    "_ColumnarFallback": _ColumnarFallback,
    "__builtins__": {"len": len, "zip": zip},
}

#: (operator, left shape, right shape) -> kernel; ``flip`` swaps the
#: operands first (``s < col`` is ``col > s``; equality is symmetric).
#: The codegen appends ``_v`` to the kernel name when only the value mask
#: is demanded.
_CMP_KERNELS = {
    ("=", "vv"): ("_eq_vv", False),
    ("=", "vs"): ("_eq_vs", False),
    ("=", "sv"): ("_eq_vs", True),
    ("<>", "vv"): ("_ne_vv", False),
    ("<>", "vs"): ("_ne_vs", False),
    ("<>", "sv"): ("_ne_vs", True),
    ("<", "vv"): ("_lt_vv", False),
    ("<", "vs"): ("_lt_vs", False),
    ("<", "sv"): ("_gt_vs", True),
    ("<=", "vv"): ("_le_vv", False),
    ("<=", "vs"): ("_le_vs", False),
    ("<=", "sv"): ("_ge_vs", True),
    (">", "vv"): ("_gt_vv", False),
    (">", "vs"): ("_gt_vs", False),
    (">", "sv"): ("_lt_vs", True),
    (">=", "vv"): ("_ge_vv", False),
    (">=", "vs"): ("_ge_vs", False),
    (">=", "sv"): ("_le_vs", True),
    ("LIKE", "vv"): ("_like_vv", False),
    ("LIKE", "vs"): ("_like_vs", False),
    ("LIKE", "sv"): ("_like_sv", False),
}

# -- fused filter code generation ---------------------------------------------
#
# Probe-free predicate trees compile into a *single* list comprehension
# that produces the new selection directly — one pass over the zipped
# operand columns, no intermediate mask lists:
#
#     [i for i, c1, c2 in zip(sel, g1, g2)
#        if c1 is not None and c2 is not None and c1 < c2 and c0 == 7]
#
# The generated expression is evaluation-congruent with the row-wise
# tier, so a type clash raises on exactly the executions the interpreted
# order raises on (the fallback replay then reproduces the exact error):
#
# * NOT is pushed to the leaves first — De Morgan is exact in Kleene 3VL,
#   and a negated comparison is just the complementary operator over the
#   same operands (same raise set); the AND/OR swap flips which truth
#   value short-circuits, matching the negated left operand exactly.
# * OR lowers to Python ``or`` over the operand TRUE-expressions: Python
#   skips the right side exactly when it is True — the rows where the
#   row-wise OR skips its right operand.
# * AND lowers to Python ``and``, which *under*-evaluates: the row-wise
#   AND evaluates its right side on left-UNKNOWN rows too (it must
#   distinguish FALSE from UNKNOWN).  When the right subtree contains
#   raising operators, the codegen appends an error-probe term
#   ``or (U_L and (R or True) and False)`` — value-neutral, but it
#   touches the right subtree on exactly the left-UNKNOWN rows.  The
#   UNKNOWN-expressions are ordered so their embedded value
#   subexpressions only run where the row-wise trace ran them.


class _Unvectorizable(Exception):
    """The predicate tree has a shape this module evaluates per row."""


#: Negating a comparison swaps it for the complementary operator over the
#: same operands: same UNKNOWN set (NULL operands), same raise set.
_NEG_OP = {"=": "<>", "<>": "=", "<": ">=", ">=": "<", "<=": ">", ">": "<="}

#: Operators whose evaluation can raise on a type clash.
_RAISING_OPS = frozenset(("<", "<=", ">", ">=", "LIKE"))

#: op -> comparison body over operand sources ``x`` and ``y``; NULL
#: guards are prepended per *nullable* operand (columns and outer-row
#: scalars — literals are known at codegen time and need none).
#: Equality drops the row-wise isinstance tag, redundant over the int/str
#: value domain, and guards only one operand: ``x == y`` is False against
#: a single None and never raises, so a guard is needed just for the
#: both-None case.
_FUSE_BODY = {
    "=": "{x} == {y}",
    "<>": "{x} != {y}",
    "<": "{x} < {y}",
    "<=": "{x} <= {y}",
    ">": "{x} > {y}",
    ">=": "{x} >= {y}",
    "LIKE": "_LF({x}, {y})",
    "NOT LIKE": "not _LF({x}, {y})",
}

#: Expression size cap: past this the duplication inside UNKNOWN
#: expressions stops paying for itself; the kernel path takes over.
_FUSE_CAP = 4000


class _FuseEmitter:
    """Operand bookkeeping for one fused filter comprehension."""

    def __init__(self):
        self.columns: Dict[int, str] = {}
        self.prelude: List[str] = []
        self._scalars: Dict[str, str] = {}

    def column(self, index: int) -> str:
        name = self.columns.get(index)
        if name is None:
            name = self.columns[index] = f"c{index}"
        return name

    def scalar(self, source: str) -> str:
        name = self._scalars.get(source)
        if name is None:
            name = f"s{len(self._scalars)}"
            self._scalars[source] = name
            self.prelude.append(f"{name} = {source}")
        return name


def _fuse_operand(emitter: _FuseEmitter, expr) -> Tuple[str, bool]:
    """``(source, nullable)`` for an operand expression.

    Literals are known at codegen time, so they are never *nullable* in
    the guard-emission sense: a ``LiteralExpr(None)`` operand folds the
    whole comparison at its use site instead of being guarded per row."""
    if isinstance(expr, ColumnRef):
        if expr.depth == 0:
            return emitter.column(expr.index), True
        return emitter.scalar(f"o[-{expr.depth}][{expr.index}]"), True
    if isinstance(expr, LiteralExpr):
        text = _literal_source(expr.value)
        if text is not None:
            return text, False
    raise _Unvectorizable


def _fuse(emitter: _FuseEmitter, pred, neg: bool) -> Tuple[str, str, bool]:
    """``(v_expr, u_expr, has_raising)`` for ``pred`` (negated if ``neg``).

    ``v_expr`` is the TRUE-expression; ``u_expr`` the UNKNOWN-expression,
    ordered so that any embedded value subexpression evaluates only where
    the row-wise trace evaluated it (see the section comment)."""
    if isinstance(pred, NotPred):
        return _fuse(emitter, pred.operand, not neg)
    if isinstance(pred, ConstPred):
        value = pred.value if not neg else (None if pred.value is None else not pred.value)
        return repr(value is True), repr(value is None), False
    if isinstance(pred, IsNullPred):
        wants_null = pred.negated == neg
        if isinstance(pred.expr, LiteralExpr):
            return repr((pred.expr.value is None) == wants_null), "False", False
        operand, _ = _fuse_operand(emitter, pred.expr)
        test = "is" if wants_null else "is not"
        return f"({operand} {test} None)", "False", False
    if isinstance(pred, ComparePred):
        op = pred.op
        if neg:
            op = _NEG_OP.get(op, "NOT LIKE" if op == "LIKE" else None)
            if op is None:
                raise _Unvectorizable
        body = _FUSE_BODY.get(op)
        if body is None:
            raise _Unvectorizable
        if (isinstance(pred.left, LiteralExpr) and pred.left.value is None) or (
            isinstance(pred.right, LiteralExpr) and pred.right.value is None
        ):
            # A NULL literal operand makes the comparison UNKNOWN on every
            # row before any type check runs — fold it (never raises).
            return "False", "True", False
        x, xn = _fuse_operand(emitter, pred.left)
        y, yn = _fuse_operand(emitter, pred.right)
        # NULL guards per nullable operand; equality guards only one —
        # ``x == y`` is already False against a single None and never
        # raises, so the guard exists just for the both-None case.
        if op == "=":
            guards = [f"{x} is not None"] if xn and yn else []
        else:
            guards = [f"{s} is not None" for s, n in ((x, xn), (y, yn)) if n]
        terms = guards + [body.format(x=x, y=y)]
        v = f"({' and '.join(terms)})" if len(terms) > 1 else terms[0]
        nulls = [f"{s} is None" for s, n in ((x, xn), (y, yn)) if n]
        u = f"({' or '.join(nulls)})" if nulls else "False"
        return v, u, pred.op in _RAISING_OPS or op in _RAISING_OPS
    if isinstance(pred, (AndPred, OrPred)):
        is_and = isinstance(pred, AndPred) != neg  # De Morgan under neg
        lv, lu, lraise = _fuse(emitter, pred.left, neg)
        rv, ru, rraise = _fuse(emitter, pred.right, neg)
        if is_and:
            v = f"({lv} and {rv})"
            if rraise:
                # Error-probe: the row-wise AND touches its right side on
                # left-UNKNOWN rows; value-neutral, raise-faithful.
                v = f"({v} or ({lu} and ({rv} or True) and False))"
            # u(AND) = (p∨x) ∧ (q∨y) ∧ (x∨y), ordered left-first so the
            # right side only runs where the row-wise trace ran it.
            u = f"(({lv} or {lu}) and ({rv} or {ru}) and ({lu} or {ru}))"
        else:
            v = f"({lv} or {rv})"
            # u(OR) = ¬p ∧ ¬q ∧ (x∨y), same ordering discipline.
            u = f"(not {lv} and not {rv} and ({lu} or {ru}))"
        if len(v) + len(u) > _FUSE_CAP:
            raise _Unvectorizable
        return v, u, lraise or rraise
    raise _Unvectorizable  # probes never reach here (_probe_segments gate)


def _compile_fused(pred):
    """The generated ``(C, sel, o) -> new sel`` single-pass filter for a
    probe-free predicate tree, or None for shapes it cannot fuse."""
    emitter = _FuseEmitter()
    try:
        v, _u, _raising = _fuse(emitter, pred, False)
    except _Unvectorizable:
        return None
    indices = sorted(emitter.columns)
    if indices:
        loop_vars = ", ".join(emitter.columns[i] for i in indices)
        gathers = ", ".join(f"_gather(C[{i}], sel)" for i in indices)
        comp = f"[i for i, {loop_vars} in zip(sel, {gathers}) if {v}]"
    else:
        # All-scalar predicate: still evaluated once per selected row, so
        # scalar type clashes raise per row (and not at all when empty) —
        # exactly the interpreted behaviour.
        comp = f"[i for i in sel if {v}]"
    lines = ["def _fsel(C, sel, o):"]
    lines.extend("    " + line for line in emitter.prelude)
    lines.append("    try:")
    lines.append(f"        return {comp}")
    lines.append("    except _FALLBACK_ERRORS:")
    lines.append("        raise _ColumnarFallback")
    source = "\n".join(lines) + "\n"
    namespace = dict(_MASK_NAMESPACE)
    exec(_compiled_code(source), namespace)
    return namespace["_fsel"]


# -- mask code generation -----------------------------------------------------


class _MaskEmitter:
    """Accumulates the generated mask function: hoisted prelude lines
    (gathers, scalar loads) + mask body lines + captures."""

    def __init__(self):
        self.prelude: List[str] = []
        self.body: List[str] = []
        self.captured: Dict[str, object] = {}
        self._gathers: Dict[int, str] = {}
        self._scalars: Dict[str, str] = {}
        self._temps = 0

    def temp(self) -> int:
        self._temps += 1
        return self._temps

    def capture(self, obj) -> str:
        name = f"_c{len(self.captured)}"
        self.captured[name] = obj
        return name

    def gather(self, index: int) -> str:
        name = self._gathers.get(index)
        if name is None:
            name = f"g{index}"
            self._gathers[index] = name
            self.prelude.append(f"{name} = _gather(C[{index}], sel)")
        return name

    def scalar(self, source: str) -> str:
        name = self._scalars.get(source)
        if name is None:
            name = f"s{len(self._scalars)}"
            self._scalars[source] = name
            self.prelude.append(f"{name} = {source}")
        return name


def _probe_segments(pred) -> int:
    """Count of row-wise segments (probes and opaque callables)."""
    if isinstance(pred, (AndPred, OrPred)):
        return _probe_segments(pred.left) + _probe_segments(pred.right)
    if isinstance(pred, NotPred):
        return _probe_segments(pred.operand)
    if isinstance(pred, (ConstPred, ComparePred, IsNullPred)):
        return 0
    return 1


def _operand(emitter: _MaskEmitter, expr) -> Tuple[str, str]:
    """``('v', gathered column var)`` or ``('s', scalar source)``."""
    if isinstance(expr, ColumnRef):
        if expr.depth == 0:
            return "v", emitter.gather(expr.index)
        return "s", emitter.scalar(f"o[-{expr.depth}][{expr.index}]")
    if isinstance(expr, LiteralExpr):
        text = _literal_source(expr.value)
        if text is not None:
            return "s", text
    raise _Unvectorizable


def _gen_mask(
    emitter: _MaskEmitter, pred, demand: Optional[str], need_u: bool
) -> Tuple[str, Optional[str]]:
    """Emit statements computing ``pred``'s masks; returns their variable
    names (the UNKNOWN name is None when ``need_u`` is False and the node
    can skip it).  ``demand`` names the demand vector reaching any probe
    inside ``pred`` (None: every selected row is demanded).  ``need_u``
    is the demand-driven half of the codegen: a filter consumes only the
    value mask, and AND/OR value masks are functions of the operand value
    masks alone, so UNKNOWN masks are only materialized under NOT, under a
    connective whose own UNKNOWN mask is demanded, or left of a probe-
    carrying AND (whose demand vector is "left not FALSE")."""
    t = emitter.temp()
    v, u = f"v{t}", f"u{t}"
    if isinstance(pred, ConstPred):
        if need_u:
            emitter.body.append(f"{v}, {u} = _bcast({pred.value!r}, n)")
            return v, u
        emitter.body.append(f"{v} = [{pred.value is True!r}] * n")
        return v, None
    if isinstance(pred, ComparePred):
        left_kind, left = _operand(emitter, pred.left)
        right_kind, right = _operand(emitter, pred.right)
        shape = left_kind + right_kind
        if shape == "ss":
            # A raising comparison over two scalars would have to raise per
            # evaluated row (and not at all over an empty selection) — only
            # the per-row path can reproduce that.
            raise _Unvectorizable
        kernel_flip = _CMP_KERNELS.get((pred.op, shape))
        if kernel_flip is None:
            raise _Unvectorizable
        kernel, flip = kernel_flip
        if flip:
            left, right = right, left
        if need_u:
            emitter.body.append(f"{v}, {u} = {kernel}({left}, {right})")
            return v, u
        emitter.body.append(f"{v} = {kernel}_v({left}, {right})")
        return v, None
    if isinstance(pred, IsNullPred):
        kind, operand = _operand(emitter, pred.expr)
        test = "is not" if pred.negated else "is"
        if kind == "s":
            emitter.body.append(f"{v} = [{operand} {test} None] * n")
        else:
            emitter.body.append(f"{v} = [a {test} None for a in {operand}]")
        if not need_u:
            return v, None
        emitter.body.append(f"{u} = [False] * n")
        return v, u
    if isinstance(pred, (AndPred, OrPred)):
        is_and = isinstance(pred, AndPred)
        probe_right = bool(_probe_segments(pred.right))
        # The AND demand vector ("left not FALSE") reads the left UNKNOWN
        # mask; the OR demand vector ("left not TRUE") only its value mask.
        vl, ul = _gen_mask(
            emitter, pred.left, demand, need_u or (probe_right and is_and)
        )
        if probe_right:
            d2 = f"d{emitter.temp()}"
            maker = "_demand_and" if is_and else "_demand_or"
            emitter.body.append(
                f"{d2} = {maker}({demand or 'None'}, {vl}, {ul})"
            )
            vr, ur = _gen_mask(emitter, pred.right, d2, need_u)
        else:
            vr, ur = _gen_mask(emitter, pred.right, demand, need_u)
        combiner = "_and" if is_and else "_or"
        if need_u:
            emitter.body.append(
                f"{v}, {u} = {combiner}_m({vl}, {ul}, {vr}, {ur})"
            )
            return v, u
        emitter.body.append(f"{v} = {combiner}_v({vl}, {vr})")
        return v, None
    if isinstance(pred, NotPred):
        # NOT TRUE demands the operand's UNKNOWN mask: v = ¬(p ∨ x).
        vo, uo = _gen_mask(emitter, pred.operand, demand, True)
        if need_u:
            emitter.body.append(f"{v}, {u} = _not_m({vo}, {uo})")
            return v, u
        emitter.body.append(
            f"{v} = [not (p or x) for p, x in zip({vo}, {uo})]"
        )
        return v, None
    # A probe (EXISTS/IN/semi-join) or opaque callable: row-wise closure
    # from the compiled tier, over the demanded rows only.  Both masks
    # fall out of the same per-row pass, so demand does not split them.
    probe = emitter.capture(_compile_subpred(pred))
    emitter.body.append(
        f"{v}, {u} = _probe_mask({probe}, rows(), o, {demand or 'None'})"
    )
    return v, u


def _compile_mask(pred):
    """The generated ``(C, sel, o, rows) -> v`` value-mask function for a
    vectorizable predicate tree, or None for per-row shapes."""
    if _probe_segments(pred) > 1:
        # Multiple probes interleave per row in the interpreted order;
        # evaluating one whole column before the next could move an error.
        return None
    emitter = _MaskEmitter()
    try:
        v, _u = _gen_mask(emitter, pred, None, False)
    except _Unvectorizable:
        return None
    # The body runs optimistically under one except clause: any kernel or
    # probe error that the row-wise order might place (or suppress)
    # differently aborts the mask, and the filter replays per row.
    lines = ["def _mask(C, sel, o, rows):", "    n = len(sel)"]
    lines.extend("    " + line for line in emitter.prelude)
    lines.append("    try:")
    lines.extend("        " + line for line in emitter.body)
    lines.append(f"        return {v}")
    lines.append("    except _FALLBACK_ERRORS:")
    lines.append("        raise _ColumnarFallback")
    source = "\n".join(lines) + "\n"
    namespace = dict(_MASK_NAMESPACE)
    namespace.update(emitter.captured)
    exec(_compiled_code(source), namespace)
    return namespace["_mask"]


# -- batch operators ----------------------------------------------------------


def _scan_batch(node: TableScan) -> BatchFn:
    def scan(outers):
        data = node.data
        if data is None:
            raise RuntimeError(
                f"TableScan({node.table!r}) executed without a bound "
                f"database (see repro.engine.binding.bind_plan)"
            )
        cached = node._columns
        if cached is not None and cached[0] is data:
            cols = cached[1]
        else:
            # Convert once per bind: the memo holds (source rows, columns)
            # and is checked against the bound list's identity, so a rebind
            # (fresh list) reconverts and unbind_plan clears the memo.
            cols = _columns_of(data, node.arity)
            node._columns = (data, cols)
        return cols, range(len(data))

    return scan


def _static_batch(node: StaticScan) -> BatchFn:
    width = node.width()
    if width is None:
        return _fallback_batch(node)
    cols = _columns_of(node.data, width)
    sel = range(len(node.data))
    return lambda outers: (cols, sel)


def _filter_batch(node: FilterOp) -> BatchFn:
    child = _batch_fn(node.child)
    folded = _fold_predicate(node.predicate)
    if isinstance(folded, ConstPred):
        if folded.value is True:
            return child

        def drained(outers):
            # The interpreted FilterOp iterates its child even when no row
            # can pass; computing the child batch surfaces the same errors.
            cols, _sel = child(outers)
            return cols, []

        return drained

    state = {"row_pred": None}

    def rowwise(cols, sel, outers):
        # Exact interpreted behaviour, one row at a time in selection
        # order, through the (bit-identical) closure-compiled predicate.
        row_pred = state["row_pred"]
        if row_pred is None:
            row_pred = state["row_pred"] = compile_predicate(node.predicate)
        rows = _materialize(cols, sel)
        return [i for i, r in zip(sel, rows) if row_pred(r, outers) is True]

    if not _probe_segments(folded):
        fused = _compile_fused(folded)
        if fused is not None:

            def filter_fused(outers):
                cols, sel = child(outers)
                if not sel:
                    return cols, sel
                try:
                    return cols, fused(cols, sel, outers)
                except _ColumnarFallback:
                    return cols, rowwise(cols, sel, outers)

            return filter_fused

    mask_fn = _compile_mask(folded)
    if mask_fn is None:

        def filter_rowwise(outers):
            cols, sel = child(outers)
            if not sel:
                return cols, sel
            return cols, rowwise(cols, sel, outers)

        return filter_rowwise

    def filter_batch(outers):
        cols, sel = child(outers)
        if not sel:
            return cols, sel
        memo: list = []

        def rows():
            if not memo:
                memo.append(_materialize(cols, sel))
            return memo[0]

        try:
            v = mask_fn(cols, sel, outers, rows)
        except _ColumnarFallback:
            return cols, rowwise(cols, sel, outers)
        return cols, [i for i, keep in zip(sel, v) if keep]

    return filter_batch


def _project_batch(node: ProjectOp) -> BatchFn:
    child = _batch_fn(node.child)
    indices = _column_indices(node.expressions)
    if indices is not None:

        def project_cols(outers):
            cols, sel = child(outers)
            return [cols[i] for i in indices], sel

        return project_cols
    builders = []
    for expr in node.expressions:
        if isinstance(expr, ColumnRef) and expr.depth == 0:
            builders.append(("col", expr.index))
        elif isinstance(expr, LiteralExpr):
            builders.append(("lit", expr.value))
        elif isinstance(expr, ColumnRef):
            builders.append(("outer", (expr.depth, expr.index)))
        else:
            return _fallback_batch(node)

    def project_mixed(outers):
        cols, sel = child(outers)
        base = len(cols[0]) if cols else 0
        out = []
        for kind, arg in builders:
            if kind == "col":
                out.append(cols[arg])
            elif kind == "lit":
                out.append([arg] * base)
            else:
                depth, index = arg
                out.append([outers[-depth][index]] * base)
        return out, sel

    return project_mixed


def _distinct_batch(node: DistinctOp) -> BatchFn:
    child = _batch_fn(node.child)

    def distinct_batch(outers):
        cols, sel = child(outers)
        rows = list(dict.fromkeys(_materialize(cols, sel)))
        return _columns_of(rows, len(cols)), range(len(rows))

    return distinct_batch


def _remap_batch(node: RemapOp) -> BatchFn:
    child = _batch_fn(node.child)
    mapping = node.mapping

    def remap_batch(outers):
        # A pure column permutation: free, vs. per-row tuple rebuilding.
        cols, sel = child(outers)
        return [cols[j] for j in mapping], sel

    return remap_batch


def _cross_join_batch(node: CrossJoin) -> BatchFn:
    widths = [child.width() for child in node.children]
    if any(w is None for w in widths):
        return _fallback_batch(node)
    children = [_batch_fn(child) for child in node.children]
    total = sum(widths)

    def cross_batch(outers):
        parts = []
        counts = []
        for fn in children:
            cols, sel = fn(outers)
            if not sel:
                # Early empty-out, exactly like the interpreted CrossJoin:
                # later children are never touched.
                return _empty(total)
            parts.append([_gather(col, sel) for col in cols])
            counts.append(len(sel))
        # Row counts come from the selections, not ``len(cols[0])``: a
        # zero-width child (no columns) still contributes its row count.
        out = parts[0]
        rows = counts[0]
        for part, rn in zip(parts[1:], counts[1:]):
            repeat = range(rn)
            # Left-major product order: repeat each left element rn times,
            # tile the right part ln times.
            out = [[v for v in col for _ in repeat] for col in out]
            out += [col * rows for col in part]
            rows *= rn
        return out, range(rows)

    return cross_batch


def _typed_ids_key(values) -> Optional[tuple]:
    key = []
    for value in values:
        if value is None:
            return None
        key.append((isinstance(value, str), value))
    return tuple(key)


def _hash_join_batch(node: HashJoin) -> BatchFn:
    lw = node.left.width()
    rw = node.right.width()
    if lw is None or rw is None:
        return _fallback_batch(node)
    left_fn = _batch_fn(node.left)
    right_fn = _batch_fn(node.right)
    left_keys = node.left_keys
    right_keys = node.right_keys
    single = len(right_keys) == 1

    def build(outers):
        cols, sel = right_fn(outers)
        rcols = [_gather(col, sel) for col in cols]
        table: dict = {}
        setdefault = table.setdefault
        if single:
            for j, a in enumerate(rcols[right_keys[0]]):
                if a is not None:
                    setdefault(((isinstance(a, str), a),), []).append(j)
        else:
            key_cols = [rcols[k] for k in right_keys]
            for j, values in enumerate(zip(*key_cols)):
                key = _typed_ids_key(values)
                if key is not None:
                    setdefault(key, []).append(j)
        return rcols, table

    def build_table(outers):
        if node._closed_build is None:
            node._closed_build = node.right.free_refs() == frozenset()
        if not node._closed_build:
            return build(outers)
        built = node._table
        if built is None:
            built = node._table = build(outers)
        return built

    def hash_join_batch(outers):
        rcols, table = build_table(outers)
        if not table:
            # No keyed right rows: the left side is never evaluated (the
            # row-wise tiers short out identically).
            return _empty(lw + rw)
        lcols, lsel = left_fn(outers)
        lids: list = []
        rids: list = []
        get = table.get
        if single:
            kc = lcols[left_keys[0]]
            for i in lsel:
                a = kc[i]
                if a is None:
                    continue
                ids = get(((isinstance(a, str), a),))
                if ids:
                    lids += [i] * len(ids)
                    rids += ids
        else:
            key_cols = [lcols[k] for k in left_keys]
            for i in lsel:
                key = _typed_ids_key([col[i] for col in key_cols])
                if key is None:
                    continue
                ids = get(key)
                if ids:
                    lids += [i] * len(ids)
                    rids += ids
        out = [_gather(col, lids) for col in lcols]
        out += [_gather(col, rids) for col in rcols]
        return out, range(len(lids))

    return hash_join_batch


def _hash_setop_batch(node: HashSetOp) -> BatchFn:
    width = node.width()
    if width is None:
        return _fallback_batch(node)
    left_fn = _batch_fn(node.left)
    right_fn = _batch_fn(node.right)
    op, all_ = node.op, node.all
    if op == "UNION":
        if all_:

            def union_all(outers):
                lcols, lsel = left_fn(outers)
                rcols, rsel = right_fn(outers)
                out = [
                    _gather(a, lsel) + _gather(b, rsel)
                    for a, b in zip(lcols, rcols)
                ]
                return out, range(len(lsel) + len(rsel))

            return union_all

        def union_distinct(outers):
            lcols, lsel = left_fn(outers)
            rcols, rsel = right_fn(outers)
            rows = list(
                dict.fromkeys(
                    _materialize(lcols, lsel) + _materialize(rcols, rsel)
                )
            )
            return _columns_of(rows, width), range(len(rows))

        return union_distinct
    # INTERSECT / EXCEPT evaluate the right side first (its counts gate
    # the left rows), exactly like the row-wise tiers; output rows come
    # from the left batch, so they stay a selection over it.
    if op == "INTERSECT":
        if all_:

            def intersect_all(outers):
                rcols, rsel = right_fn(outers)
                remaining = Counter(_materialize(rcols, rsel))
                lcols, lsel = left_fn(outers)
                keep = []
                for i, row in zip(lsel, _materialize(lcols, lsel)):
                    if remaining[row] > 0:
                        remaining[row] -= 1
                        keep.append(i)
                return lcols, keep

            return intersect_all

        def intersect_distinct(outers):
            rcols, rsel = right_fn(outers)
            right_rows = set(_materialize(rcols, rsel))
            lcols, lsel = left_fn(outers)
            emitted = set()
            keep = []
            for i, row in zip(lsel, _materialize(lcols, lsel)):
                if row in right_rows and row not in emitted:
                    emitted.add(row)
                    keep.append(i)
            return lcols, keep

        return intersect_distinct
    if op == "EXCEPT":
        if all_:

            def except_all(outers):
                rcols, rsel = right_fn(outers)
                right_counts = Counter(_materialize(rcols, rsel))
                lcols, lsel = left_fn(outers)
                keep = []
                for i, row in zip(lsel, _materialize(lcols, lsel)):
                    if right_counts[row] > 0:
                        right_counts[row] -= 1
                    else:
                        keep.append(i)
                return lcols, keep

            return except_all

        def except_distinct(outers):
            rcols, rsel = right_fn(outers)
            right_counts = Counter(_materialize(rcols, rsel))
            lcols, lsel = left_fn(outers)
            emitted = set()
            keep = []
            for i, row in zip(lsel, _materialize(lcols, lsel)):
                if right_counts[row] == 0 and row not in emitted:
                    emitted.add(row)
                    keep.append(i)
            return lcols, keep

        return except_distinct
    raise ValueError(f"unknown set operation {op}")  # pragma: no cover


def _cached_batch(node: CachedSubplan) -> BatchFn:
    width = node.width()
    if width is None:
        return _fallback_batch(node)
    child = _batch_fn(node.child)

    def cached_batch(outers):
        rows = node._cache
        if rows is None:
            # Plain row tuples, the same values the row-wise tiers cache:
            # harvested build-side entries stay tier-portable.
            rows = node._cache = _materialize(*child(()))
        return _columns_of(rows, width), range(len(rows))

    return cached_batch


def _memo_batch(node: MemoSubplan) -> BatchFn:
    width = node.width()
    if width is None:
        return _fallback_batch(node)
    child = _batch_fn(node.child)
    memo_refs = node.memo_refs

    def memo_batch(outers):
        memo = node._memo
        key = tuple(outers[-d][i] for d, i in memo_refs)
        rows = memo.get(key)
        if rows is None:
            rows = memo[key] = _materialize(*child(outers))
        return _columns_of(rows, width), range(len(rows))

    return memo_batch


def _fallback_batch(node: PlanNode) -> BatchFn:
    """Unknown or width-less nodes run through the compiled row-wise tier
    for the whole subtree — vectorization degrades, never fails."""
    row_iter = _iter_fn(node)
    width = node.width()

    def fallback_batch(outers):
        rows = list(row_iter(outers))
        w = width
        if w is None:
            w = len(rows[0]) if rows else 0
        return _columns_of(rows, w), range(len(rows))

    return fallback_batch


# -- dispatcher ---------------------------------------------------------------


def _batch_fn(node: PlanNode) -> BatchFn:
    if isinstance(node, TableScan):
        return _scan_batch(node)
    if isinstance(node, StaticScan):
        return _static_batch(node)
    if isinstance(node, ProjectOp):
        return _project_batch(node)
    if isinstance(node, FilterOp):
        return _filter_batch(node)
    if isinstance(node, HashJoin):
        return _hash_join_batch(node)
    if isinstance(node, CrossJoin):
        return _cross_join_batch(node)
    if isinstance(node, DistinctOp):
        return _distinct_batch(node)
    if isinstance(node, RemapOp):
        return _remap_batch(node)
    if isinstance(node, HashSetOp):
        return _hash_setop_batch(node)
    if isinstance(node, CachedSubplan):
        return _cached_batch(node)
    if isinstance(node, MemoSubplan):
        return _memo_batch(node)
    if isinstance(node, GenericJoin):
        # Deliberate stay-compiled contract: the worst-case-optimal join is
        # trie intersection, a hash-probe-per-key shape with nothing to
        # vectorize (no per-row predicate masks, no columnar scans inside),
        # so the subtree runs through the compiled row-wise tier via the
        # fallback — which also shares the node's ``_tries`` state, keeping
        # bind/unbind and build-side sharing identical across tiers
        # (asserted by tests/engine/test_wcoj.py).
        return _fallback_batch(node)
    # SetOpNode (the hash_setops=False ablation), extensions, test doubles.
    return _fallback_batch(node)


def compile_columnar(plan: PlanNode):
    """Lower a physical plan into its columnar batch program.

    The result is a drop-in replacement for ``plan.iter_rows`` — call it
    with the outer-row stack (``()`` at the top level) and it returns an
    iterator of result rows, materialized from the final batch in one
    transposition.  All mutable execution state stays on the plan nodes,
    so :func:`~repro.engine.binding.bind_plan` /
    :func:`~repro.engine.binding.unbind_plan` round-trip columnar plans
    exactly as interpreted and compiled ones.
    """
    batch = _batch_fn(plan)

    def run(outers):
        cols, sel = batch(outers)
        return iter(_materialize(cols, sel))

    return run
