"""The engine facade: compile + execute, with boundary conversions.

:class:`Engine` plays the role of the real RDBMS in the Section 4
experiment: it takes the same annotated query and database as the formal
semantics and produces a :class:`~repro.core.table.Table`, converting its
internal ``None`` nulls back to :data:`~repro.core.values.NULL` only at the
output boundary.
"""

from __future__ import annotations

from ..core.bag import Bag
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.values import NULL
from ..sql.ast import Query
from .planner import DIALECT_ORACLE, DIALECT_POSTGRES, Planner

__all__ = ["Engine", "DIALECT_POSTGRES", "DIALECT_ORACLE"]


class Engine:
    """An independent executor for basic SQL, in two dialect flavours."""

    def __init__(self, schema: Schema, dialect: str = DIALECT_POSTGRES):
        self.schema = schema
        self.dialect = dialect

    def execute(self, query: Query, db: Database) -> Table:
        """Compile and run ``query`` on ``db``.

        Compile-time errors (unknown tables, arity mismatches, ambiguous
        references) are raised before any row is produced, matching the
        behaviour of the real systems the engine stands in for.
        """
        planner = Planner(self.schema, db, self.dialect)
        compiled = planner.compile(query)
        rows = compiled.plan.rows(())
        records = (
            tuple(NULL if v is None else v for v in row) for row in rows
        )
        return Table(compiled.labels, Bag(records))
