"""Theorem 2: translating between three-valued and two-valued SQL.

Section 6 of the paper shows that SQL's three-valued logic adds no
expressive power: for every basic SQL query Q there are queries Q′ and Q″
with ``⟦Q⟧_D = ⟦Q′⟧2v_D`` and ``⟦Q⟧2v_D = ⟦Q″⟧_D`` on all databases, under
either two-valued interpretation of equality:

* ``conflating`` — every predicate (including ``=``) is false when an
  argument is NULL (f and u conflated);
* ``syntactic`` — ``=`` is Definition 2's syntactic equality
  (``NULL = NULL`` is true), other predicates conflate.

:class:`TwoValuedTranslator` implements the Figure 10 translations
θ ↦ θᵗ / θᶠ and the induced query translation Q ↦ Q′ (replace every WHERE
condition by its t-translation).  The f-translation of IN uses the construct
``Q′ AS N(A1, …, An)`` with fresh names, modelled by
:attr:`repro.sql.ast.FromItem.column_aliases`.

:func:`to_three_valued` is the (easy) converse direction: guard every atom
with IS NOT NULL checks so it becomes two-valued under 3VL evaluation.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.schema import Schema
from ..core.values import FullName, Name, Term
from ..sql.ast import (
    And,
    Condition,
    Exists,
    FALSE_COND,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
    TrueCond,
    conjunction,
    disjunction,
)
from ..sql.labels import query_labels
from .logic import TWO_VALUED_CONFLATING, TWO_VALUED_SYNTACTIC, Logic

__all__ = ["TwoValuedTranslator", "to_three_valued", "EQUALITY_MODES"]

EQUALITY_MODES = ("conflating", "syntactic")


class _NameSupply:
    """Fresh SQL names avoiding everything used in a query and its schema."""

    def __init__(self, used: Set[Name]):
        self._used = set(used)
        self._counter = 0

    def fresh(self, prefix: str) -> Name:
        while True:
            self._counter += 1
            candidate = f"{prefix}{self._counter}"
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate


def _collect_names(query: Query, schema: Schema) -> Set[Name]:
    names: Set[Name] = set()
    for table in schema.table_names:
        names.add(table)
        names.update(schema.attributes(table))
    stack: List[object] = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, SetOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, Select):
            if not node.is_star:
                for item in node.items:
                    names.add(item.alias)
                    if isinstance(item.term, FullName):
                        names.update((item.term.qualifier, item.term.attribute))
            for item in node.from_items:
                names.add(item.alias)
                if item.column_aliases:
                    names.update(item.column_aliases)
                if not item.is_base_table:
                    stack.append(item.table)
            stack.append(node.where)
        elif isinstance(node, (InQuery, Exists)):
            stack.append(node.query)
        elif isinstance(node, (And, Or)):
            stack.extend((node.left, node.right))
        elif isinstance(node, Not):
            stack.append(node.operand)
    return names


def _not_null(term: Term) -> Condition:
    return IsNull(term, negated=True)


def _is_null(term: Term) -> Condition:
    return IsNull(term, negated=False)


class TwoValuedTranslator:
    """Figure 10: Q ↦ Q′ with ⟦Q⟧ = ⟦Q′⟧2v, for either equality mode."""

    def __init__(self, schema: Schema, equality: str = "conflating"):
        if equality not in EQUALITY_MODES:
            raise ValueError(
                f"unknown equality mode {equality!r}; expected one of {EQUALITY_MODES}"
            )
        self.schema = schema
        self.equality = equality
        self._supply: _NameSupply | None = None

    @property
    def logic(self) -> Logic:
        """The logic under which the translated query must be evaluated."""
        if self.equality == "conflating":
            return TWO_VALUED_CONFLATING
        return TWO_VALUED_SYNTACTIC

    # -- queries ------------------------------------------------------------

    def translate_query(self, query: Query) -> Query:
        """Q ↦ Q′: replace every WHERE condition θ by θᵗ, inductively."""
        self._supply = _NameSupply(_collect_names(query, self.schema))
        return self._query(query)

    def _query(self, query: Query) -> Query:
        if isinstance(query, SetOp):
            return SetOp(query.op, self._query(query.left), self._query(query.right), all=query.all)
        assert isinstance(query, Select)
        from_items = tuple(
            item
            if item.is_base_table
            else FromItem(self._query(item.table), item.alias, item.column_aliases)
            for item in query.from_items
        )
        return Select(
            query.items, from_items, self.translate_t(query.where), distinct=query.distinct
        )

    # -- conditions: θ ↦ θᵗ and θ ↦ θᶠ ---------------------------------------

    def translate_t(self, condition: Condition) -> Condition:
        """θᵗ: true under ⟦·⟧2v exactly where θ is t under ⟦·⟧ (Figure 10)."""
        if isinstance(condition, TrueCond):
            return TRUE_COND
        if isinstance(condition, FalseCond):
            return FALSE_COND
        if isinstance(condition, Predicate):
            if self.equality == "syntactic" and condition.name == "=":
                # (t1 = t2)ᵗ = (t1 = t2) AND (t1, t2) IS NOT NULL
                return conjunction(
                    [condition, *[_not_null(t) for t in condition.args]]
                )
            return condition
        if isinstance(condition, IsNull):
            return condition
        if isinstance(condition, Exists):
            return Exists(self._query(condition.query))
        if isinstance(condition, InQuery):
            if condition.negated:
                return self.translate_f(
                    InQuery(condition.terms, condition.query, negated=False)
                )
            return self._in_t(condition)
        if isinstance(condition, And):
            return And(self.translate_t(condition.left), self.translate_t(condition.right))
        if isinstance(condition, Or):
            return Or(self.translate_t(condition.left), self.translate_t(condition.right))
        if isinstance(condition, Not):
            return self.translate_f(condition.operand)
        raise TypeError(f"not a condition: {condition!r}")

    def translate_f(self, condition: Condition) -> Condition:
        """θᶠ: true under ⟦·⟧2v exactly where θ is f under ⟦·⟧ (Figure 10)."""
        if isinstance(condition, TrueCond):
            return FALSE_COND
        if isinstance(condition, FalseCond):
            return TRUE_COND
        if isinstance(condition, Predicate):
            if self.equality == "syntactic" and condition.name == "=":
                return conjunction(
                    [Not(condition), *[_not_null(t) for t in condition.args]]
                )
            # P(t̄)ᶠ = NOT P(t̄) AND t̄ IS NOT NULL
            return conjunction(
                [Not(condition), *[_not_null(t) for t in condition.args]]
            )
        if isinstance(condition, IsNull):
            return IsNull(condition.term, negated=not condition.negated)
        if isinstance(condition, Exists):
            return Not(Exists(self._query(condition.query)))
        if isinstance(condition, InQuery):
            if condition.negated:
                return self.translate_t(
                    InQuery(condition.terms, condition.query, negated=False)
                )
            return self._in_f(condition)
        if isinstance(condition, And):
            return Or(self.translate_f(condition.left), self.translate_f(condition.right))
        if isinstance(condition, Or):
            return And(self.translate_f(condition.left), self.translate_f(condition.right))
        if isinstance(condition, Not):
            return self.translate_t(condition.operand)
        raise TypeError(f"not a condition: {condition!r}")

    # -- IN translations -------------------------------------------------------

    def _fresh_wrap(self, inner: Query, arity: int) -> Tuple[FromItem, Name, Tuple[Name, ...]]:
        """Build ``Q′ AS N(A1, …, An)`` with fresh, distinct names."""
        if self._supply is None:
            # translate_t/f used standalone on a condition: base freshness on
            # the schema plus the wrapped subquery.
            self._supply = _NameSupply(_collect_names(inner, self.schema))
        table_alias = self._supply.fresh("V")
        column_names = tuple(self._supply.fresh("W") for _ in range(arity))
        return (
            FromItem(inner, table_alias, column_names),
            table_alias,
            column_names,
        )

    def _in_t(self, condition: InQuery) -> Condition:
        inner = self._query(condition.query)
        if self.equality == "conflating":
            # (t̄ IN Q)ᵗ = t̄ IN Q′
            return InQuery(condition.terms, inner, negated=False)
        # Syntactic equality: wrap in EXISTS with guarded component equalities.
        item, alias, columns = self._fresh_wrap(inner, len(condition.terms))
        comparisons = [
            self.translate_t(Predicate("=", (term, FullName(alias, column))))
            for term, column in zip(condition.terms, columns)
        ]
        return Exists(Select(STAR, (item,), conjunction(comparisons)))

    def _in_f(self, condition: InQuery) -> Condition:
        inner = self._query(condition.query)
        item, alias, columns = self._fresh_wrap(inner, len(condition.terms))
        disjuncts = []
        for term, column in zip(condition.terms, columns):
            full = FullName(alias, column)
            if self.equality == "syntactic":
                equality = self.translate_t(Predicate("=", (term, full)))
            else:
                equality = Predicate("=", (term, full))
            disjuncts.append(
                disjunction([_is_null(term), _is_null(full), equality])
            )
        return Not(Exists(Select(STAR, (item,), conjunction(disjuncts))))


# ---------------------------------------------------------------------------
# The converse: Q ↦ Q″ with ⟦Q⟧2v = ⟦Q″⟧
# ---------------------------------------------------------------------------


def to_three_valued(query: Query, schema: Schema, equality: str = "conflating") -> Query:
    """Express the two-valued semantics of Q in ordinary (3VL) SQL.

    Every atom is guarded so it is two-valued under 3VL evaluation and equal
    to its ⟦·⟧2v value; the connectives then behave classically.
    """
    if equality not in EQUALITY_MODES:
        raise ValueError(
            f"unknown equality mode {equality!r}; expected one of {EQUALITY_MODES}"
        )
    supply = _NameSupply(_collect_names(query, schema))
    return _3v_query(query, schema, equality, supply)


def _3v_query(query: Query, schema: Schema, equality: str, supply: _NameSupply) -> Query:
    if isinstance(query, SetOp):
        return SetOp(
            query.op,
            _3v_query(query.left, schema, equality, supply),
            _3v_query(query.right, schema, equality, supply),
            all=query.all,
        )
    assert isinstance(query, Select)
    from_items = tuple(
        item
        if item.is_base_table
        else FromItem(
            _3v_query(item.table, schema, equality, supply),
            item.alias,
            item.column_aliases,
        )
        for item in query.from_items
    )
    where = _3v_condition(query.where, schema, equality, supply)
    return Select(query.items, from_items, where, distinct=query.distinct)


def _guarded_equality(left: Term, right: Term, equality: str) -> Condition:
    plain = Predicate("=", (left, right))
    guarded = conjunction([plain, _not_null(left), _not_null(right)])
    if equality == "syntactic":
        return Or(guarded, And(_is_null(left), _is_null(right)))
    return guarded


def _3v_condition(
    condition: Condition, schema: Schema, equality: str, supply: _NameSupply
) -> Condition:
    if isinstance(condition, (TrueCond, FalseCond, IsNull)):
        return condition
    if isinstance(condition, Predicate):
        if equality == "syntactic" and condition.name == "=":
            return _guarded_equality(condition.args[0], condition.args[1], equality)
        return conjunction([condition, *[_not_null(t) for t in condition.args]])
    if isinstance(condition, Exists):
        return Exists(_3v_query(condition.query, schema, equality, supply))
    if isinstance(condition, InQuery):
        inner = _3v_query(condition.query, schema, equality, supply)
        alias = supply.fresh("V")
        columns = tuple(supply.fresh("W") for _ in condition.terms)
        item = FromItem(inner, alias, columns)
        comparisons = [
            _guarded_equality(term, FullName(alias, column), equality)
            for term, column in zip(condition.terms, columns)
        ]
        exists = Exists(Select(STAR, (item,), conjunction(comparisons)))
        return Not(exists) if condition.negated else exists
    if isinstance(condition, And):
        return And(
            _3v_condition(condition.left, schema, equality, supply),
            _3v_condition(condition.right, schema, equality, supply),
        )
    if isinstance(condition, Or):
        return Or(
            _3v_condition(condition.left, schema, equality, supply),
            _3v_condition(condition.right, schema, equality, supply),
        )
    if isinstance(condition, Not):
        return Not(_3v_condition(condition.operand, schema, equality, supply))
    raise TypeError(f"not a condition: {condition!r}")
