"""The n-way differential harness: all implementations must coincide."""

import pytest

from repro.core import validation_schema
from repro.generator import DM_CONFIG, DataFillerConfig, PAPER_CONFIG
from repro.validation import DifferentialRunner


def test_rejects_non_dm_config():
    with pytest.raises(ValueError):
        DifferentialRunner(generator_config=PAPER_CONFIG)


def test_trial_produces_all_implementations():
    runner = DifferentialRunner(data_config=DataFillerConfig(max_rows=3))
    results = runner.run_trial(seed=1)
    assert set(results) == {
        "semantics",
        "engine:postgres",
        "engine:oracle",
        "sqlra",
        "pure-ra",
        "2vl:conflating",
        "2vl:syntactic",
    }


def test_all_implementations_agree_on_campaign():
    runner = DifferentialRunner(data_config=DataFillerConfig(max_rows=3))
    report = runner.run(trials=20, base_seed=500)
    assert report.all_agree, report.disagreements
    assert report.agreements == report.trials == 20
    assert "20/20" in report.summary()


def test_small_schema_campaign():
    runner = DifferentialRunner(
        schema=validation_schema(3),
        generator_config=DM_CONFIG,
        data_config=DataFillerConfig(max_rows=4),
    )
    report = runner.run(trials=15)
    assert report.all_agree, report.disagreements


def test_trials_reproducible():
    runner = DifferentialRunner(data_config=DataFillerConfig(max_rows=3))
    a = runner.run_trial(seed=42)
    b = runner.run_trial(seed=42)
    assert a["semantics"].same_as(b["semantics"])
    assert a["pure-ra"].same_as(b["pure-ra"])
