"""End-to-end service tests: wire protocol, streaming, backpressure, auth,
and the concurrency battery (async clients vs the serial engine oracle)."""

import asyncio
import json
import random

import pytest

from repro.core import NULL, Database, Schema
from repro.engine import Engine
from repro.service import (
    QueryService,
    ResultSet,
    ServiceClient,
    ServiceError,
    ServiceThread,
)
from repro.service.protocol import bind_parameters, expand_placeholders
from repro.sql import annotate

SCHEMA_JSON = {"R": ["A", "B"], "S": ["A", "C"], "T": ["C"]}
TABLES_JSON = {
    "R": [[1, 2], [3, None], [1, 2], [4, 6], [5, 2]],
    "S": [[1, 10], [3, 30], [None, 50]],
    "T": [[2], [6], [None]],
}


def make_db():
    schema = Schema({t: tuple(cols) for t, cols in SCHEMA_JSON.items()})
    tables = {
        t: [tuple(NULL if v is None else v for v in row) for row in rows]
        for t, rows in TABLES_JSON.items()
    }
    return Database(schema, tables)


@pytest.fixture(scope="module")
def service_url():
    service = QueryService(secret="test-secret", batch_rows=2)
    service.install_database(make_db())
    with ServiceThread(service) as thread:
        yield thread.url, service


def run(coro):
    return asyncio.run(coro)


# -- basic round trips --------------------------------------------------------


def test_health_load_prepare_execute(service_url):
    url, _service = service_url

    async def go():
        async with ServiceClient(url, secret="test-secret", tenant="basic") as c:
            assert (await c.health()) == {"ok": True}
            loaded = await c.load(SCHEMA_JSON, TABLES_JSON)
            assert loaded["tables"] == {"R": 5, "S": 3, "T": 3}
            sid = await c.prepare("SELECT R.B FROM R WHERE R.A = $1")
            result = await c.execute(sid, [1])
            assert result.labels == ["B"]
            assert sorted(map(tuple, result.rows)) == [(2,), (2,)]
            assert result.row_count == 2
            # NULL crosses the wire as null, both directions.
            null_result = await c.execute(sid, [3])
            assert null_result.rows == [[None]]
            assert null_result.records() == [(NULL,)]
            return await c.query("SELECT R.A FROM R, S WHERE R.A = S.A")

    adhoc = run(go())
    assert sorted(map(tuple, adhoc.rows)) == [(1,), (1,), (3,)]


def test_streaming_batches_reassemble(service_url):
    """batch_rows=2 forces multi-chunk streams; the client must reassemble
    rows across chunk boundaries losslessly."""
    url, _service = service_url

    async def go():
        async with ServiceClient(url, secret="test-secret", tenant="stream") as c:
            await c.load(SCHEMA_JSON, TABLES_JSON)
            return await c.query("SELECT R.A, R.B FROM R")

    result = run(go())
    assert result.row_count == 5
    assert len(result.rows) == 5
    expected = sorted(
        (a, NULL if b is None else b) for a, b in TABLES_JSON["R"]
    )
    assert sorted(result.records()) == expected


def test_errors_are_structured(service_url):
    url, _service = service_url

    async def go():
        async with ServiceClient(url, secret="test-secret", tenant="errs") as c:
            await c.load(SCHEMA_JSON, TABLES_JSON)
            with pytest.raises(ServiceError) as unknown_stmt:
                await c.execute("no-such-statement", [])
            assert unknown_stmt.value.status == 404
            with pytest.raises(ServiceError) as unknown_db:
                await c.prepare("SELECT R.A FROM R", database="nope")
            assert unknown_db.value.status == 404
            sid = await c.prepare("SELECT R.B FROM R WHERE R.A = $1")
            with pytest.raises(ServiceError) as bad_arity:
                await c.execute(sid, [1, 2])
            assert bad_arity.value.status == 400
            assert "parameter" in bad_arity.value.message
            with pytest.raises(ServiceError) as bad_sql:
                await c.query("SELECT nothing FROM nowhere")
            assert bad_sql.value.status == 400
            # The connection survives every error: a good request still works.
            result = await c.execute(sid, [1])
            assert result.row_count == 2

    run(go())


def test_auth_required(service_url):
    url, _service = service_url

    async def go():
        async with ServiceClient(url, secret="wrong") as c:
            with pytest.raises(ServiceError) as err:
                await c.health()
            assert err.value.status == 401
        async with ServiceClient(url) as c:  # no secret at all
            with pytest.raises(ServiceError) as err:
                await c.stats()
            assert err.value.status == 401

    run(go())


def test_statement_ids_do_not_leak_across_tenants(service_url):
    url, _service = service_url

    async def go():
        async with ServiceClient(url, secret="test-secret", tenant="owner") as c:
            await c.load(SCHEMA_JSON, TABLES_JSON)
            sid = await c.prepare("SELECT R.A FROM R")
        async with ServiceClient(url, secret="test-secret", tenant="thief") as c:
            with pytest.raises(ServiceError) as err:
                await c.execute(sid, [])
            assert err.value.status == 404

    run(go())


# -- backpressure -------------------------------------------------------------


def test_slow_reader_backpressure():
    """A slow client suspends the producer at the bounded write buffer: the
    stream must still be in flight while the client sits on unread data,
    and be lossless once the client drains it."""
    rows = 4000
    service = QueryService(buffer_bytes=4096, batch_rows=64)
    schema = Schema({"R": ("A", "B")})
    # ~2 KB per row: the full stream (~8 MB) cannot fit in kernel socket
    # buffers, so an unthrottled producer would need the client to read.
    db = Database(schema, {"R": [(i, f"pad-{i:06d}" * 200) for i in range(rows)]})
    service.install_database(db)

    with ServiceThread(service) as thread:
        url = thread.url

        async def go():
            slow = ServiceClient(url)
            await slow.connect()
            await slow._send_request("POST", "/query", {"sql": "SELECT R.A, R.B FROM R"})
            # Give the producer time to run: with an unbounded buffer it
            # would finish the whole stream; with the 4 KiB bound it must
            # stall in drain() long before ~1 MB of rows fit.
            await asyncio.sleep(0.5)
            async with ServiceClient(url) as observer:
                stats = await observer.stats()
            assert stats["streams_in_flight"] == 1, "producer should be suspended"
            # Drain at full speed: everything arrives, nothing lost.
            status, headers = await slow._read_head()
            assert status == 200
            result = ResultSet()
            pending = b""
            while True:
                size_line = await slow._reader.readline()
                size = int(size_line.split(b";", 1)[0], 16)
                if size == 0:
                    await slow._reader.readline()
                    break
                pending += await slow._reader.readexactly(size)
                await slow._reader.readline()
                while b"\n" in pending:
                    line, pending = pending.split(b"\n", 1)
                    if line.strip():
                        obj = json.loads(line)
                        if "rows" in obj:
                            result.rows.extend(obj["rows"])
                        elif obj.get("done"):
                            result.row_count = obj["row_count"]
            await slow.close()
            return result

        result = asyncio.run(go())
        assert result.row_count == rows
        assert len(result.rows) == rows
        assert sorted(r[0] for r in result.rows) == list(range(rows))


# -- the concurrency battery --------------------------------------------------

BATTERY_STATEMENTS = [
    ("SELECT R.B FROM R WHERE R.A = $1", [[1], [3], [4], [99]]),
    ("SELECT R.A FROM R WHERE R.B IN (SELECT T.C FROM T)", [[]]),
    ("SELECT R.B FROM R WHERE R.B IN (SELECT T.C FROM T)", [[]]),
    ("SELECT R.A FROM R, S WHERE R.A = S.A", [[]]),
    ("SELECT R.B FROM R, S WHERE R.A = S.A", [[]]),
    (
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)"
        " AND R.B = $1",
        [[2], [6]],
    ),
]


def canon(records):
    """Multiset of records in a canonical order (NULL is not orderable)."""
    return sorted(records, key=repr)


def battery_oracle():
    """Serial ground truth: every (sql, params) through a plain Engine."""
    db = make_db()
    engine = Engine(db.schema, "postgres")
    expected = {}
    for sql, bindings in BATTERY_STATEMENTS:
        template, count = expand_placeholders(sql)
        query = annotate(template, db.schema)
        for params in bindings:
            terms = [NULL if p is None else p for p in params]
            bound = bind_parameters(query, terms, count)
            table = engine.execute(bound, db)
            expected[(sql, tuple(params))] = canon(table.bag)
    return expected


def test_concurrency_battery_matches_serial_oracle():
    """8 async clients x 200 mixed prepared executions: every streamed
    result bit-identical to the serial engine, cross-query build-cache
    hits observed, and no statement id usable from another tenant."""
    clients, per_client = 8, 200
    service = QueryService(batch_rows=3)
    service.install_database(make_db(), tenant="battery")
    service.install_database(make_db(), tenant="bystander")
    expected = battery_oracle()

    with ServiceThread(service) as thread:
        url = thread.url

        async def client_run(index):
            rng = random.Random(1000 + index)
            mismatches = []
            async with ServiceClient(url, tenant="battery") as c:
                prepared = {}
                for sql, _bindings in BATTERY_STATEMENTS:
                    prepared[sql] = await c.prepare(sql)
                for _ in range(per_client):
                    sql, bindings = rng.choice(BATTERY_STATEMENTS)
                    params = rng.choice(bindings)
                    result = await c.execute(prepared[sql], params)
                    got = canon(result.records())
                    want = expected[(sql, tuple(params))]
                    if got != want:
                        mismatches.append((sql, params, got, want))
                return prepared, mismatches

        async def go():
            results = await asyncio.gather(*(client_run(i) for i in range(clients)))
            for _prepared, mismatches in results:
                assert not mismatches, f"diverged from oracle: {mismatches[:3]}"
            # No leakage: another tenant cannot execute any battery id.
            async with ServiceClient(url, tenant="bystander") as c:
                for sid in results[0][0].values():
                    with pytest.raises(ServiceError) as err:
                        await c.execute(sid, [])
                    assert err.value.status == 404
            async with ServiceClient(url, tenant="battery") as c:
                return await c.stats()

        stats = asyncio.run(go())

    battery = stats["tenants"]["battery"]
    assert battery["executions"] == clients * per_client
    assert battery["build_cache"]["cross_hits"] > 0, (
        "different statements sharing subplan shapes must hit each other's "
        "build sides"
    )
    assert battery["plan_cache"]["hits"] > 0


def test_stats_shape(service_url):
    url, _service = service_url

    async def go():
        async with ServiceClient(url, secret="test-secret", tenant="shape") as c:
            await c.load(SCHEMA_JSON, TABLES_JSON)
            sid = await c.prepare("SELECT R.A FROM R")
            await c.execute(sid, [])
            return await c.stats()

    stats = run(go())
    assert {"uptime_s", "statement_evictions", "tenants", "requests"} <= set(stats)
    entry = stats["tenants"]["shape"]
    assert entry["databases"] == ["default"]
    assert entry["statements"] == 1
    for cache in (entry["plan_cache"], entry["build_cache"]):
        assert {"hits", "misses", "entries", "bytes"} <= set(cache)
