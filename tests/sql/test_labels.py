"""The output-attribute function ℓ of Figure 3."""

import pytest

from repro.core.errors import ArityMismatchError
from repro.core.schema import Schema
from repro.core.values import FullName
from repro.sql.annotate import annotate
from repro.sql.ast import FromItem, STAR, Select, SelectItem, SetOp, TRUE_COND
from repro.sql.labels import (
    from_item_labels,
    from_labels,
    prefix_names,
    query_labels,
    scope_full_names,
)


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A", "C")})


def test_prefix_names():
    assert prefix_names("T", ("A", "B")) == (FullName("T", "A"), FullName("T", "B"))


def test_base_table_labels(schema):
    assert from_item_labels(FromItem("R", "R"), schema) == ("A", "B")


def test_column_aliases_override(schema):
    item = FromItem("R", "X", ("P", "Q"))
    assert from_item_labels(item, schema) == ("P", "Q")


def test_column_aliases_arity_checked(schema):
    with pytest.raises(ArityMismatchError):
        from_item_labels(FromItem("R", "X", ("P",)), schema)


def test_select_labels_are_beta_prime(schema):
    q = annotate("SELECT R.A AS X, R.B AS Y FROM R", schema)
    assert query_labels(q, schema) == ("X", "Y")


def test_star_labels_concatenate_from_items(schema):
    """The paper's example: ℓ(SELECT * FROM R,S) = ℓ(R) ℓ(S) = (A,B,A,C)."""
    q = annotate("SELECT * FROM R, S", schema)
    assert query_labels(q, schema) == ("A", "B", "A", "C")


def test_subquery_labels(schema):
    q = annotate("SELECT U.A AS Z FROM (SELECT R.A AS A FROM R) AS U", schema)
    assert query_labels(q, schema) == ("Z",)
    assert from_item_labels(q.from_items[0], schema) == ("A",)


def test_set_op_labels_from_left(schema):
    q = annotate("SELECT R.A AS X FROM R UNION SELECT S.C AS Y FROM S", schema)
    assert query_labels(q, schema) == ("X",)


def test_from_labels(schema):
    q = annotate("SELECT * FROM R AS T1, S AS T2", schema)
    assert from_labels(q.from_items, schema) == ("A", "B", "A", "C")


def test_scope_full_names(schema):
    q = annotate("SELECT * FROM R AS T1, S AS T2", schema)
    assert scope_full_names(q.from_items, schema) == (
        FullName("T1", "A"),
        FullName("T1", "B"),
        FullName("T2", "A"),
        FullName("T2", "C"),
    )


def test_scope_full_names_with_duplicates(schema):
    """A subquery with duplicated output names yields repeated full names —
    the raw material of Example 2."""
    inner = Select(
        (SelectItem(FullName("R", "A"), "A"), SelectItem(FullName("R", "A"), "A")),
        (FromItem("R", "R"),),
        TRUE_COND,
    )
    scope = scope_full_names((FromItem(inner, "T"),), schema)
    assert scope == (FullName("T", "A"), FullName("T", "A"))


def test_query_labels_rejects_non_query(schema):
    with pytest.raises(TypeError):
        query_labels("not a query", schema)
