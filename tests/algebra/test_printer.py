"""Pretty-printing of RA expressions in the paper's notation."""

import pytest

from repro.algebra.ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    R_FALSE,
    R_TRUE,
    RAnd,
    Relation,
    Renaming,
    RNot,
    ROr,
    RPredicate,
    Selection,
    UnionOp,
)
from repro.algebra.printer import (
    print_condition,
    print_expression,
    print_expression_tree,
    print_term,
)
from repro.core.values import NULL


def test_terms():
    assert print_term(Attr("A")) == "A"
    assert print_term(NULL) == "NULL"
    assert print_term(3) == "3"
    assert print_term("o'k") == "'o''k'"


def test_relation():
    assert print_expression(Relation("R")) == "R"


def test_projection_and_selection():
    expr = Projection(Selection(Relation("R"), R_TRUE), ("A", "B"))
    assert print_expression(expr) == "π_{A, B}(σ_{TRUE}(R))"


def test_binary_operators():
    r, s = Relation("R"), Relation("S")
    assert print_expression(Product(r, s)) == "(R × S)"
    assert print_expression(UnionOp(r, s)) == "(R ∪ S)"
    assert print_expression(IntersectionOp(r, s)) == "(R ∩ S)"
    assert print_expression(DifferenceOp(r, s)) == "(R − S)"


def test_renaming_shows_changes_only():
    expr = Renaming(Relation("R"), ("A", "B"), ("A", "Z"))
    assert print_expression(expr) == "ρ_{B→Z}(R)"


def test_identity_renaming_elided():
    expr = Renaming(Relation("R"), ("A",), ("A",))
    assert print_expression(expr) == "R"


def test_dedup():
    assert print_expression(Dedup(Relation("R"))) == "ε(R)"


def test_conditions():
    assert print_condition(R_TRUE) == "TRUE"
    assert print_condition(R_FALSE) == "FALSE"
    assert print_condition(RPredicate("=", (Attr("A"), 1))) == "A = 1"
    assert print_condition(NullTest(Attr("A"))) == "null(A)"
    assert print_condition(ConstTest(Attr("A"))) == "const(A)"
    assert (
        print_condition(RAnd(R_TRUE, ROr(R_FALSE, RNot(R_TRUE))))
        == "(TRUE ∧ (FALSE ∨ ¬TRUE))"
    )


def test_named_predicate_functional_form():
    assert print_condition(RPredicate("LIKE", (Attr("A"), "x%"))) == "LIKE(A, 'x%')"


def test_sqlra_conditions():
    cond = InExpr((Attr("A"),), Relation("S"))
    assert print_condition(cond) == "(A) ∈ [S]"
    assert print_condition(Empty(Relation("S"))) == "empty([S])"


def test_tree_rendering_contains_all_operators():
    expr = Dedup(
        Projection(
            Selection(Product(Relation("R"), Relation("S")), R_TRUE), ("A",)
        )
    )
    text = print_expression_tree(expr)
    for fragment in ("ε", "π A", "σ TRUE", "×", "R", "S"):
        assert fragment in text
    # children are indented below their parents
    lines = text.splitlines()
    assert lines[0].startswith("ε")
    assert lines[1].startswith("  ")


def test_print_expression_rejects_non_expression():
    with pytest.raises(TypeError):
        print_expression("nope")
    with pytest.raises(TypeError):
        print_condition("nope")
