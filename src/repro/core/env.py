"""Environments η and the scoping operators of Section 3.

An environment is a partial map from full names (elements of N²) to values.
It supplies the bindings for *parameters*: full names referenced by a
subquery but bound by an enclosing scope.  The paper defines four operations,
all implemented here on an immutable :class:`Environment`:

* ``η_{Ā,r̄}``    (:meth:`Environment.from_bindings`) — binds each
  *non-repeated* full name of Ā to the corresponding value of r̄; a repeated
  full name is explicitly *undefined* (looking it up raises
  :class:`~repro.core.errors.AmbiguousReferenceError`, the situation of
  Example 2);
* ``η ⇑ Ā``       (:meth:`Environment.unbind`) — removes the bindings of Ā;
* ``η ; η′``      (:meth:`Environment.override`) — η overridden by η′;
* ``η ⊕r̄ Ā``     (:meth:`Environment.update`) — the composite
  ``(η ⇑ Ā); η_{Ā,r̄}`` used when entering the scope of a FROM clause.

Ambiguity is represented with a sentinel so that a name that was *shadowed by
a repeated name* is distinguishable from a name that was never bound: the
former is an ambiguous reference, the latter would not have compiled.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from .errors import AmbiguousReferenceError, UnboundReferenceError
from .values import FullName, Record, Value

__all__ = ["Environment", "ScopeBinder", "EMPTY_ENV"]


class _Ambiguous:
    """Sentinel marking a full name that occurs more than once in a scope."""

    _instance: "_Ambiguous | None" = None

    def __new__(cls) -> "_Ambiguous":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<ambiguous>"


_AMBIGUOUS = _Ambiguous()


class Environment:
    """An immutable partial map N² → C ∪ {NULL}."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[FullName, Union[Value, _Ambiguous]] = {}):
        self._bindings: Dict[FullName, Union[Value, _Ambiguous]] = dict(bindings)

    # -- construction -----------------------------------------------------------

    @classmethod
    def empty(cls) -> "Environment":
        return EMPTY_ENV

    @classmethod
    def from_bindings(
        cls, full_names: Sequence[FullName], record: Record
    ) -> "Environment":
        """The paper's ``η_{Ā,r̄}``.

        Maps each non-repeated element of ``full_names`` to the corresponding
        value of ``record``; repeated full names are marked ambiguous.
        """
        if len(full_names) != len(record):
            raise ValueError(
                f"binding {len(full_names)} names to a record of arity {len(record)}"
            )
        seen: Dict[FullName, int] = {}
        for name in full_names:
            seen[name] = seen.get(name, 0) + 1
        bindings: Dict[FullName, Union[Value, _Ambiguous]] = {}
        for name, value in zip(full_names, record):
            bindings[name] = _AMBIGUOUS if seen[name] > 1 else value
        return cls(bindings)

    # -- the paper's operators ----------------------------------------------------

    def unbind(self, full_names: Iterable[FullName]) -> "Environment":
        """``η ⇑ Ā``: undefined on every element of Ā, otherwise identical."""
        removed = set(full_names)
        if not removed:
            return self
        return Environment(
            {name: v for name, v in self._bindings.items() if name not in removed}
        )

    def override(self, other: "Environment") -> "Environment":
        """``η ; η′``: η′ wins wherever it is defined."""
        if not other._bindings:
            return self
        merged = dict(self._bindings)
        merged.update(other._bindings)
        return Environment(merged)

    def update(self, record: Record, full_names: Sequence[FullName]) -> "Environment":
        """``η ⊕r̄ Ā = (η ⇑ Ā); η_{Ā,r̄}`` — entering a FROM scope."""
        return self.unbind(full_names).override(
            Environment.from_bindings(full_names, record)
        )

    def binder(self, full_names: Sequence[FullName]) -> "ScopeBinder":
        """A precompiled form of ``η ⊕r̄ Ā`` for a fixed η and Ā.

        ``env.binder(names).bind(record)`` produces exactly the environment
        ``env.update(record, names)`` would, but the unbinding of Ā and the
        ambiguity analysis are done once instead of once per record — the
        update is the hottest operation of the evaluator, called for every
        row of every FROM product.
        """
        return ScopeBinder(self, full_names)

    # -- lookup ----------------------------------------------------------------------

    def lookup(self, full_name: FullName) -> Value:
        """The value bound to ``full_name``.

        Raises :class:`AmbiguousReferenceError` if the name is repeated in its
        scope, and :class:`UnboundReferenceError` if it is not bound at all.
        """
        try:
            value = self._bindings[full_name]
        except KeyError:
            raise UnboundReferenceError(
                f"reference {full_name} is not bound by any enclosing scope"
            ) from None
        if isinstance(value, _Ambiguous):
            raise AmbiguousReferenceError(
                f"reference {full_name} is ambiguous: the full name is repeated "
                f"in the scope that binds it"
            )
        return value

    def defined_on(self, full_name: FullName) -> bool:
        """Whether η is defined on ``full_name`` (ambiguous counts as not)."""
        value = self._bindings.get(full_name, _AMBIGUOUS)
        return not isinstance(value, _Ambiguous)

    def bound_names(self) -> Tuple[FullName, ...]:
        """The full names on which η is defined (excluding ambiguous marks)."""
        return tuple(
            name
            for name, value in self._bindings.items()
            if not isinstance(value, _Ambiguous)
        )

    # -- plumbing -----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Environment):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._bindings.items())
        return f"Environment({{{inner}}})"


class ScopeBinder:
    """Precompiled ``η ⊕r̄ Ā`` for fixed η and Ā (see
    :meth:`Environment.binder`): per record, one dict copy and one zip."""

    __slots__ = ("_base", "_marks", "_arity")

    def __init__(self, env: Environment, full_names: Sequence[FullName]):
        seen: Dict[FullName, int] = {}
        for name in full_names:
            seen[name] = seen.get(name, 0) + 1
        self._marks = tuple((name, seen[name] > 1) for name in full_names)
        self._arity = len(self._marks)
        self._base = env.unbind(full_names)._bindings

    def bind(self, record: Record) -> Environment:
        """The environment ``η ⊕r̄ Ā`` for one record r̄."""
        if len(record) != self._arity:
            raise ValueError(
                f"binding {self._arity} names to a record of arity {len(record)}"
            )
        bindings = dict(self._base)
        for (name, ambiguous), value in zip(self._marks, record):
            bindings[name] = _AMBIGUOUS if ambiguous else value
        bound = Environment.__new__(Environment)
        bound._bindings = bindings
        return bound


EMPTY_ENV = Environment()
