"""Distributed campaigns: a coordinator/worker layer over the executor.

The campaign core (:mod:`repro.campaigns.executor`) shards a seed range
across local cores; this module takes the same contract — trials are pure
functions of their seed, aggregation is order-independent — past one
machine.  The division of labour:

* a **coordinator** partitions the seed range ``[base_seed, base_seed +
  trials)`` into contiguous *leases*, records their lifecycle in a lease
  journal, and merges the workers' ``campaign-checkpoint/v1`` files into
  one aggregate whose ``outcome_digest`` is bit-identical to a
  single-machine run of the whole range;
* **workers** run their leased sub-range with the unchanged
  :func:`repro.campaigns.run_campaign` (file-based mode) or an in-process
  backend loop (HTTP mode) and hand the records back.

Two transports cover the deployment spectrum:

* **file-based / offline** (:class:`FileCoordinator`) — the coordinator
  writes the journal plus a ``plan.sh`` of ``repro work --seed-range A:B
  --checkpoint F`` command lines; workers run them anywhere the checkpoint
  directory is reachable (shared filesystem, rsync, artifact upload) and
  the coordinator polls the files, re-issues leases whose worker went
  silent, and merges.  No network path between the processes is required.
* **HTTP** (:class:`Coordinator` + :class:`CoordinatorServer` +
  :func:`work_remote`) — ``repro coordinate --serve PORT`` serves leases
  over a tiny stdlib JSON protocol and ``repro work --coordinator URL``
  polls for them, so workers on other hosts need nothing but the URL.

Fault tolerance is lease re-issue plus deduplicating merge: a lease whose
worker misses its deadline is marked expired in the journal and handed out
again; if the first worker was merely slow, both sets of records arrive
and the duplicates collapse (trials are seed-pure, so any record for a
seed equals any other).  Records that *disagree* raise
:class:`~repro.campaigns.checkpoint.CheckpointConflict` — corruption must
not be merged silently.

Lease journal (``campaign-leases/v1``)
--------------------------------------

Line 1 is a JSON header::

    {"schema": "campaign-leases/v1", "spec": {...}, "base_seed": 0,
     "trials": 100000, "lease_trials": 500}

Every other line is one lifecycle event::

    {"event": "issue", "lease": "lease-0003.a1", "lo": 1500, "hi": 2000,
     "worker": "w1", "attempt": 1, "checkpoint": ".../lease-0003.a1.w1.jsonl",
     "t": 1700000000.0}
    {"event": "complete", "lease": "lease-0003.a1", "t": ...}
    {"event": "expire", "lease": "lease-0003.a1", "reason": "timeout", "t": ...}

The journal is append-only and torn-line tolerant (same reader rules as
checkpoints), so a killed coordinator resumes by replaying it: live leases
stay assigned, expired ranges are re-issued, and the merge re-reads the
worker checkpoint files themselves — the journal carries no trial records.
"""

from __future__ import annotations

import json
import math
import os
import shlex
import socket
import threading
import time
import urllib.error
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..service.transport import JsonHttpServer, JsonRequestHandler, http_json

from .aggregate import Aggregator, CampaignResult
from .backends import CampaignSpec
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConflict,
    CheckpointWriter,
    load_checkpoint,
    merge_checkpoints,
    read_jsonl,
)

__all__ = [
    "LEASE_SCHEMA",
    "Lease",
    "Coordinator",
    "CoordinatorServer",
    "FileCoordinator",
    "partition_leases",
    "load_journal",
    "work_command",
    "work_remote",
]

LEASE_SCHEMA = "campaign-leases/v1"

#: Default seconds a lease may stay unfinished before it is re-issued.
DEFAULT_LEASE_TIMEOUT_S = 600.0

#: Default number of issues a seed range gets before it is quarantined.
DEFAULT_MAX_LEASE_ATTEMPTS = 5


def partition_leases(
    base_seed: int,
    trials: int,
    parts: Optional[int] = None,
    lease_trials: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges covering ``[base_seed, base_seed+trials)``.

    ``lease_trials`` fixes the range size directly; otherwise the span is
    split into ``parts`` equal pieces (the last may be shorter).
    """
    if trials <= 0:
        return []
    if lease_trials is None:
        lease_trials = math.ceil(trials / max(1, parts or 1))
    lease_trials = max(1, lease_trials)
    end = base_seed + trials
    return [
        (lo, min(lo + lease_trials, end))
        for lo in range(base_seed, end, lease_trials)
    ]


@dataclass
class Lease:
    """One issued sub-range of a campaign's seed span."""

    lease_id: str
    lo: int
    hi: int  # exclusive
    worker: str = ""
    attempt: int = 1
    checkpoint: Optional[str] = None
    state: str = "issued"  # issued | completed | expired | quarantined
    issued_at: float = 0.0

    @property
    def trials(self) -> int:
        return self.hi - self.lo

    def seeds(self) -> range:
        return range(self.lo, self.hi)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.lease_id,
            "lo": self.lo,
            "hi": self.hi,
            "worker": self.worker,
            "attempt": self.attempt,
        }
        if self.checkpoint is not None:
            payload["checkpoint"] = self.checkpoint
        return payload


def load_journal(
    path: str,
) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
    """Read ``(header, events)`` from a lease journal (same forgiving rules
    as checkpoints: torn or malformed lines are skipped)."""
    return read_jsonl(
        path, lambda payload: isinstance(payload.get("event"), str)
    )


def work_command(
    spec: CampaignSpec, lease: Lease, python: str = "python"
) -> List[str]:
    """The ``repro work`` argv that executes ``lease`` offline.

    The worker reuses :func:`repro.campaigns.run_campaign` unchanged —
    ``--seed-range`` maps to ``base_seed``/``trials``, ``--resume`` makes
    re-running the same command after a crash continue its own file.
    """
    argv = [
        python,
        "-m",
        "repro",
        "work",
        "--seed-range",
        f"{lease.lo}:{lease.hi}",
        "--checkpoint",
        str(lease.checkpoint),
        "--kind",
        spec.kind,
        "--variant",
        spec.variant,
        "--rows",
        str(spec.rows),
        "--resume",
    ]
    if spec.tables is not None:
        argv[-1:-1] = ["--tables", str(spec.tables)]
    return argv


class Coordinator:
    """Transport-agnostic lease bookkeeping + merging for one campaign.

    Thread-safe (the HTTP server drives it from handler threads).  The
    coordinator owns the campaign's :class:`Aggregator`; records submitted
    for any lease — live, expired, or unknown — are folded in with
    duplicate seeds deduplicated and conflicting ones rejected, so a slow
    worker racing its re-issued lease is harmless.  With ``checkpoint``
    the accepted records are also streamed to a normal
    ``campaign-checkpoint/v1`` file (and ``resume=True`` folds an existing
    one back in before handing out leases).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        trials: int,
        base_seed: int = 0,
        lease_trials: Optional[int] = None,
        lease_target_s: Optional[float] = None,
        journal_path: Optional[str] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        max_lease_attempts: int = DEFAULT_MAX_LEASE_ATTEMPTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.spec = spec
        self.trials = trials
        self.base_seed = base_seed
        self.lease_timeout_s = lease_timeout_s
        self.max_lease_attempts = max(1, int(max_lease_attempts))
        self._clock = clock
        self._lock = threading.Lock()
        self._seq = 0
        self._active: Dict[str, Lease] = {}
        self._completed: List[Lease] = []
        # Issue counts per (lo, hi) range; a range that burns through
        # max_lease_attempts issues without completing is poison — some
        # seed in it keeps killing workers — and is quarantined instead of
        # wedging the campaign in an endless re-issue loop.
        self._range_attempts: Dict[Tuple[int, int], int] = {}
        self._quarantined: List[Lease] = []
        self._workers: set = set()
        self.aggregator = Aggregator(spec.label, base_seed, trials)

        self.resumed_trials = 0
        self._writer: Optional[CheckpointWriter] = None
        if checkpoint is not None:
            header = {
                "schema": CHECKPOINT_SCHEMA,
                "spec": spec.to_json(),
                "base_seed": base_seed,
                "trials": trials,
            }
            fresh = True
            if resume:
                existing, records = load_checkpoint(checkpoint, strict=True)
                if existing is not None:
                    if existing.get("spec") != header["spec"] or existing.get(
                        "base_seed"
                    ) != base_seed:
                        raise ValueError(
                            f"{checkpoint}: existing checkpoint belongs to a "
                            "different campaign"
                        )
                    for record in records:
                        if self.aggregator.add(record):
                            self.resumed_trials += 1
                    fresh = False
            self._writer = CheckpointWriter(checkpoint, header, fresh=fresh)

        if lease_trials is None and lease_target_s is not None:
            # Adaptive lease sizing: the checkpoints already record per-trial
            # wall times (``ms``), so a resumed campaign sizes each lease to
            # roughly ``lease_target_s`` of work at the observed median —
            # long enough to amortize the HTTP round trip, short enough
            # that an expired lease re-issues little.
            p50 = self.aggregator.timing_percentiles().get("p50", 0.0)
            if p50 > 0:
                lease_trials = max(1, int(lease_target_s * 1000.0 / p50))
        self.lease_trials_used: Optional[int] = lease_trials
        if lease_trials is None:
            lease_trials = min(500, max(1, trials))
            self.lease_trials_used = lease_trials
        pending = [
            (lo, hi)
            for lo, hi in partition_leases(
                base_seed, trials, lease_trials=lease_trials
            )
            if any(self.aggregator.code_at(seed) == 0 for seed in range(lo, hi))
        ]
        self._pending = deque(pending)

        self._journal: Optional[CheckpointWriter] = None
        if journal_path is not None:
            self._journal = CheckpointWriter(
                journal_path,
                {
                    "schema": LEASE_SCHEMA,
                    "spec": spec.to_json(),
                    "base_seed": base_seed,
                    "trials": trials,
                    "lease_trials": lease_trials,
                },
                fresh=not resume,
            )

    # -- lease lifecycle -----------------------------------------------------

    def acquire(self, worker: str) -> Optional[Lease]:
        """Hand out the next pending range, or None when none is pending.

        Expired leases are recycled first, so a worker joining late picks
        up a dead worker's range before anything new.
        """
        with self._lock:
            self._workers.add(worker)
            self._expire_stale_locked()
            if not self._pending:
                return None
            lo, hi = self._pending.popleft()
            self._seq += 1
            attempt = self._range_attempts.get((lo, hi), 0) + 1
            self._range_attempts[(lo, hi)] = attempt
            lease = Lease(
                lease_id=f"lease-{self._seq:04d}",
                lo=lo,
                hi=hi,
                worker=worker,
                attempt=attempt,
                issued_at=self._clock(),
            )
            self._active[lease.lease_id] = lease
            self._journal_event(
                "issue",
                lease=lease.lease_id,
                lo=lo,
                hi=hi,
                worker=worker,
                attempt=lease.attempt,
            )
            return lease

    def submit(
        self,
        lease_id: str,
        records: Sequence[Dict[str, object]],
        worker: Optional[str] = None,
    ) -> Dict[str, object]:
        """Fold a lease's records in; returns acceptance counters.

        Unknown or expired lease ids are accepted too — their records are
        just as valid, and deduplication handles any overlap with the
        re-issued lease.  :class:`CheckpointConflict` is raised at the
        first record that contradicts an already-folded outcome (records
        checked *and* added are interleaved, so a batch that contradicts
        itself is caught too); the valid records folded before the
        conflict stay folded and checkpointed.
        """
        with self._lock:
            if worker is not None:
                self._workers.add(worker)
            accepted = []
            conflict: Optional[CheckpointConflict] = None
            for record in records:
                existing = self.aggregator.code_at(record["seed"])
                if existing and record["code"] != existing:
                    conflict = CheckpointConflict(
                        f"lease {lease_id}: seed {record['seed']} submitted "
                        f"with code {record['code']}, but code {existing} is "
                        "already recorded"
                    )
                    break
                if self.aggregator.add(record):
                    accepted.append(record)
            if self._writer is not None and accepted:
                self._writer.write_records(accepted)
            if conflict is not None:
                raise conflict
            lease = self._active.pop(lease_id, None)
            if lease is not None:
                lease.state = "completed"
                self._completed.append(lease)
                self._journal_event("complete", lease=lease_id)
            return {
                "accepted": len(accepted),
                "duplicates": len(records) - len(accepted),
                "known_lease": lease is not None,
                "done": self._done_locked(),
            }

    def expire_stale(self) -> List[Lease]:
        """Expire overdue leases, returning them (their ranges re-queue)."""
        with self._lock:
            return self._expire_stale_locked()

    def _expire_stale_locked(self) -> List[Lease]:
        now = self._clock()
        expired = [
            lease
            for lease in self._active.values()
            if now - lease.issued_at > self.lease_timeout_s
        ]
        for lease in expired:
            del self._active[lease.lease_id]
            if lease.attempt >= self.max_lease_attempts:
                # Poison lease: every issue of this range has died.  Report
                # it and move on — re-issuing forever would wedge the
                # campaign behind one bad seed range.
                lease.state = "quarantined"
                self._quarantined.append(lease)
                self._journal_event(
                    "quarantine",
                    lease=lease.lease_id,
                    lo=lease.lo,
                    hi=lease.hi,
                    attempts=lease.attempt,
                    reason="max lease attempts exhausted",
                )
            else:
                lease.state = "expired"
                self._pending.append((lease.lo, lease.hi))
                self._journal_event(
                    "expire", lease=lease.lease_id, reason="timeout"
                )
        return expired

    # -- results -------------------------------------------------------------

    @property
    def done(self) -> bool:
        with self._lock:
            return self._done_locked()

    def _quarantined_pending_locked(self) -> int:
        """Seeds inside quarantined ranges still lacking a record.

        Computed live: a slow first worker's late submit can still fill a
        quarantined range's seeds (deduplication makes that harmless), and
        those seeds must not be counted as abandoned twice.
        """
        return sum(
            1
            for lease in self._quarantined
            for seed in range(lease.lo, lease.hi)
            if self.aggregator.code_at(seed) == 0
        )

    def _done_locked(self) -> bool:
        # A campaign with quarantined ranges finishes — visibly incomplete
        # (the status reports exactly which seeds were abandoned) — rather
        # than wedging on ranges no worker survives.
        done = self.aggregator.completed >= self.trials
        if not done and self._quarantined:
            done = (
                self.aggregator.completed + self._quarantined_pending_locked()
                >= self.trials
                and not self._pending
                and not self._active
            )
        return done

    def quarantined(self) -> List[Dict[str, object]]:
        """The quarantined leases, with their still-missing seed counts."""
        with self._lock:
            return [
                {
                    "id": lease.lease_id,
                    "lo": lease.lo,
                    "hi": lease.hi,
                    "worker": lease.worker,
                    "attempts": lease.attempt,
                    "pending": sum(
                        1
                        for seed in range(lease.lo, lease.hi)
                        if self.aggregator.code_at(seed) == 0
                    ),
                }
                for lease in self._quarantined
            ]

    def status(self) -> Dict[str, object]:
        with self._lock:
            return {
                "trials": self.trials,
                "base_seed": self.base_seed,
                "completed": self.aggregator.completed,
                "mismatches": len(self.aggregator.mismatches),
                "pending_ranges": len(self._pending),
                "lease_trials": self.lease_trials_used,
                "active_leases": [lease.to_json() for lease in self._active.values()],
                "workers": sorted(self._workers),
                "quarantined_ranges": len(self._quarantined),
                "quarantined_pending": self._quarantined_pending_locked(),
                "done": self._done_locked(),
            }

    def result(self, elapsed_s: float = 0.0) -> CampaignResult:
        with self._lock:
            return self.aggregator.finalize(
                elapsed_s=elapsed_s,
                jobs=max(1, len(self._workers)),
                resumed_trials=self.resumed_trials,
            )

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
        if self._journal is not None:
            self._journal.close()

    def _journal_event(self, event: str, **fields) -> None:
        if self._journal is not None:
            record = {"event": event, "t": round(time.time(), 3)}
            record.update(fields)
            self._journal.write_records([record])


# -- HTTP transport ----------------------------------------------------------
#
# The wire mechanics (JSON framing, chunked submits, shared-secret auth,
# the threaded server wrapper, the retrying client) live in
# :mod:`repro.service.transport` — one transport for the campaign
# coordinator and the always-on query service.  This section only maps
# coordinator operations onto it.


class _CoordinatorHandler(JsonRequestHandler):
    """JSON-over-HTTP front end: POST /lease, POST /submit, GET /status."""

    @property
    def coordinator(self) -> Coordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if not self._authorized():
            return
        if self.path == "/status":
            self._send(self.coordinator.status())
        else:
            self._send({"error": f"unknown path {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802
        if not self._authorized():
            return
        try:
            payload = self._read_json()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send({"error": str(exc)}, 400)
            return
        coordinator = self.coordinator
        if self.path == "/lease":
            worker = str(payload.get("worker") or "anonymous")
            try:
                lease = coordinator.acquire(worker)
            except Exception as exc:  # e.g. a torn journal write
                # Same contract as /submit: a clean 500, not a stack trace.
                # The worker simply polls again; an issued-but-unanswered
                # lease expires and re-queues.
                self._send({"error": f"{type(exc).__name__}: {exc}"}, 500)
                return
            self._send(
                {
                    "spec": coordinator.spec.to_json(),
                    "lease": lease.to_json() if lease is not None else None,
                    "done": coordinator.done,
                }
            )
        elif self.path == "/submit":
            try:
                outcome = coordinator.submit(
                    str(payload.get("lease")),
                    payload.get("records") or [],
                    worker=payload.get("worker"),
                )
            except CheckpointConflict as exc:
                self._send({"error": str(exc)}, 409)
                return
            except Exception as exc:  # e.g. a torn checkpoint write
                # A clean 500 instead of a stack trace and a dropped
                # socket: the worker treats it as a failed submit and the
                # lease re-issues (already-folded records deduplicate).
                self._send({"error": f"{type(exc).__name__}: {exc}"}, 500)
                return
            self._send(outcome)
        else:
            self._send({"error": f"unknown path {self.path}"}, 404)

class CoordinatorServer(JsonHttpServer):
    """The shared threaded HTTP server wrapped around a :class:`Coordinator`.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    bound address either way.  With a ``secret``, every request must carry
    it in the shared transport's auth header.  Use as a context manager or
    call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
        secret: Optional[str] = None,
    ):
        self.coordinator = coordinator
        super().__init__(
            _CoordinatorHandler,
            host=host,
            port=port,
            secret=secret,
            name="repro-coordinator",
            coordinator=coordinator,
        )


def _http_json(
    url: str,
    payload: Optional[Dict[str, object]] = None,
    timeout: float = 60.0,
    **options,
) -> Dict[str, object]:
    return http_json(url, payload, timeout_s=timeout, **options)


def _run_lease_local(
    spec: CampaignSpec, lo: int, hi: int, jobs: int
) -> List[Dict[str, object]]:
    """Run one leased seed range through :func:`run_campaign(jobs=N)
    <repro.campaigns.executor.run_campaign>` and read the records back
    from a local checkpoint.

    This is how an HTTP worker uses all its cores: the lease becomes a
    miniature local campaign (seed-sharded over ``jobs`` processes,
    checkpointed to a temporary file), and the records — seed-pure, so
    bit-identical to serial execution at any ``jobs`` — are read back
    from the checkpoint in seed order for submission.
    """
    import tempfile

    from .executor import run_campaign

    with tempfile.TemporaryDirectory(prefix="repro-work-") as tmp:
        path = os.path.join(tmp, f"lease-{lo}-{hi}.jsonl")
        run_campaign(spec, trials=hi - lo, base_seed=lo, jobs=jobs, checkpoint=path)
        _header, records = load_checkpoint(path)
    by_seed: Dict[int, Dict[str, object]] = {}
    for record in records:
        seed = record["seed"]
        if lo <= seed < hi and seed not in by_seed:
            by_seed[seed] = record
    return [by_seed[seed] for seed in sorted(by_seed)]


def work_remote(
    url: str,
    worker: Optional[str] = None,
    poll_s: float = 1.0,
    max_idle_polls: Optional[int] = None,
    jobs: int = 1,
    timeout_s: float = 60.0,
    retries: int = 0,
    backoff_s: float = 0.5,
    secret: Optional[str] = None,
    chunked: bool = False,
) -> Dict[str, object]:
    """Worker loop for ``repro work --coordinator URL``.

    Polls ``/lease``, runs each leased seed range with a backend built
    once from the coordinator's spec, and posts the records to
    ``/submit``; returns a summary once the coordinator reports the
    campaign done (or after ``max_idle_polls`` consecutive empty polls).
    With ``jobs > 1`` each lease runs through the parallel local executor
    instead (:func:`_run_lease_local`), so one remote worker saturates
    all its cores; seed-purity keeps the submitted records — and the
    campaign digest — bit-identical to serial execution.
    With ``retries > 0`` a connection-level failure — the shape of a
    coordinator *restart*, not a finished campaign — is retried with
    exponential backoff (``backoff_s`` doubling per attempt, requests
    capped at ``timeout_s``) before the worker gives up, so a worker
    outlives a coordinator bounce and simply re-acquires a lease from the
    resumed campaign.  A coordinator that stays unreachable past the
    retry budget ends the loop cleanly rather than crashing: an
    unsubmitted lease will simply be re-issued.  The summary carries a
    ``note`` when that happens.  ``secret`` authenticates every request
    through the shared transport; ``chunked`` streams submit bodies with
    chunked transfer encoding.
    """
    from .. import faults
    from ..service.transport import _is_timeout

    worker = worker or f"{socket.gethostname()}-{os.getpid()}"
    url = url.rstrip("/")
    options = {
        "timeout_s": timeout_s,
        "retries": retries,
        "backoff_s": backoff_s,
        "secret": secret,
    }
    spec: Optional[CampaignSpec] = None
    backend = None
    spec_json: Optional[Dict[str, object]] = None
    leases = 0
    trials_run = 0
    idle = 0
    crashes = 0
    note: Optional[str] = None
    while True:
        try:
            # Idempotent: acquiring a lease twice because the first reply
            # was lost just issues a range that will expire and re-queue —
            # the dedup merge absorbs any overlap.
            reply = http_json(
                f"{url}/lease", {"worker": worker}, idempotent=True, **options
            )
        except urllib.error.HTTPError as exc:
            if exc.code >= 500:
                # Coordinator-side trouble (e.g. a torn journal write):
                # poll again — a half-issued lease expires and re-queues.
                note = f"lease answered {exc.code}; retrying"
                time.sleep(poll_s)
                continue
            raise
        except OSError as exc:  # URLError, refused/reset connections
            note = f"coordinator unreachable ({exc}); stopping"
            break
        lease = reply.get("lease")
        if lease is None:
            if reply.get("done"):
                break
            idle += 1
            if max_idle_polls is not None and idle >= max_idle_polls:
                break
            time.sleep(poll_s)
            continue
        idle = 0
        if spec is None or reply.get("spec") != spec_json:
            spec_json = reply["spec"]
            spec = CampaignSpec.from_json(spec_json)
            backend = None
        try:
            if faults.fire("worker.crash"):
                raise faults.InjectedCrash(
                    f"injected worker crash holding {lease['id']}"
                )
            if jobs > 1:
                records = _run_lease_local(spec, lease["lo"], lease["hi"], jobs)
            else:
                if backend is None:
                    backend = spec.build()
                records = [
                    backend.run_trial(seed)
                    for seed in range(lease["lo"], lease["hi"])
                ]
        except faults.InjectedCrash:
            # The "process" died holding the lease: nothing is submitted,
            # the lease expires and re-issues.  (The loop continuing here
            # models the worker's supervised restart.)
            crashes += 1
            backend = None
            continue
        submit_payload = {
            "lease": lease["id"],
            "worker": worker,
            "records": records,
        }
        try:
            # NOT idempotent: a /submit whose response is lost was very
            # likely processed; blindly re-sending it is exactly the retry
            # bug this flag exists to prevent.  (The coordinator's dedup
            # would absorb it, but dedup is the backstop, not the policy.)
            outcome = http_json(
                f"{url}/submit", submit_payload, chunked=chunked, **options
            )
        except urllib.error.HTTPError as exc:
            if exc.code >= 500:
                # Server-side trouble (e.g. its checkpoint write died
                # mid-line): the records either landed or the lease will
                # re-issue; keep working.
                note = f"submit answered {exc.code}; continuing"
                continue
            raise
        except OSError as exc:
            if _is_timeout(exc):
                # The records were probably accepted and only the reply
                # was lost; keep polling — either the range is recorded,
                # or the lease expires and re-issues.
                note = (
                    f"submit reply lost ({exc}); continuing — the lease "
                    "completes or re-issues server-side"
                )
                continue
            note = (
                f"coordinator unreachable on submit ({exc}); the lease "
                "will be re-issued"
            )
            break
        leases += 1
        trials_run += len(records)
        if faults.fire("worker.duplicate_submit"):
            # A retry-storm shape: the same submit delivered twice.  The
            # coordinator's seed dedup must absorb it without double
            # counting; a failure of the duplicate changes nothing.
            try:
                http_json(
                    f"{url}/submit", submit_payload, chunked=chunked, **options
                )
            except OSError:
                pass
        if outcome.get("done"):
            break
    summary: Dict[str, object] = {
        "worker": worker,
        "leases": leases,
        "trials": trials_run,
        "crashes": crashes,
    }
    if note is not None:
        summary["note"] = note
    return summary


# -- file-based transport ----------------------------------------------------


class FileCoordinator:
    """File-based (offline) coordination: leases are checkpoint files.

    The coordinator never talks to its workers: it assigns each lease a
    checkpoint path under ``out_dir``, emits the ``repro work`` command
    lines that produce those files (:meth:`plan` / :meth:`write_plan`),
    and observes progress purely by re-reading the files (:meth:`poll`).
    A lease whose file has not covered its range within
    ``lease_timeout_s`` of being issued is expired in the journal and
    re-issued under a fresh attempt/path (:meth:`reissue_stale`); the
    partial file still contributes to the merge, where duplicate seeds
    collapse.  Constructing a second coordinator over the same ``out_dir``
    replays the journal and resumes — the CI/bench pattern is
    plan → run workers → construct again → :meth:`merge`.
    """

    JOURNAL_NAME = "leases.jsonl"

    def __init__(
        self,
        spec: CampaignSpec,
        trials: int,
        base_seed: int = 0,
        workers: Sequence[str] = ("w1", "w2", "w3"),
        out_dir: str = "distributed-campaign",
        lease_trials: Optional[int] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        clock: Callable[[], float] = time.monotonic,
        python: str = "python",
    ):
        if not workers:
            raise ValueError("FileCoordinator needs at least one worker name")
        self.spec = spec
        self.trials = trials
        self.base_seed = base_seed
        self.workers = [str(name) for name in workers]
        self.out_dir = out_dir
        self.lease_timeout_s = lease_timeout_s
        self.python = python
        self._clock = clock
        os.makedirs(out_dir, exist_ok=True)
        self.journal_path = os.path.join(out_dir, self.JOURNAL_NAME)

        if lease_trials is None:
            lease_trials = math.ceil(trials / len(self.workers))
        header = {
            "schema": LEASE_SCHEMA,
            "spec": spec.to_json(),
            "base_seed": base_seed,
            "trials": trials,
            "lease_trials": lease_trials,
        }
        existing, events = load_journal(self.journal_path)
        self._leases: Dict[str, Lease] = {}
        # Checkpoint size at the last incomplete parse, per lease — the
        # files are append-only, so an unchanged size means an unchanged
        # (incomplete) verdict and poll() can skip re-parsing them.
        self._incomplete_at_size: Dict[str, int] = {}
        if existing is not None:
            for key in ("schema", "spec", "base_seed", "trials", "lease_trials"):
                if existing.get(key) != header[key]:
                    raise ValueError(
                        f"{self.journal_path}: journal {key} mismatch — file has "
                        f"{existing.get(key)!r}, campaign wants {header[key]!r}"
                    )
            self._replay(events)
        self.lease_trials = int(lease_trials)
        self._journal = CheckpointWriter(
            self.journal_path, header, fresh=existing is None
        )
        self._issue_missing()

    def _replay(self, events: Sequence[Dict[str, object]]) -> None:
        now = self._clock()
        for event in events:
            kind = event.get("event")
            if kind == "issue":
                lease = Lease(
                    lease_id=str(event.get("lease")),
                    lo=int(event["lo"]),
                    hi=int(event["hi"]),
                    worker=str(event.get("worker", "")),
                    attempt=int(event.get("attempt", 1)),
                    checkpoint=event.get("checkpoint"),
                    issued_at=now,  # the clock restarts with the coordinator
                )
                self._leases[lease.lease_id] = lease
            elif kind in ("complete", "expire"):
                lease = self._leases.get(str(event.get("lease")))
                if lease is not None:
                    lease.state = "completed" if kind == "complete" else "expired"

    def _issue_missing(self) -> None:
        """Issue a lease for every range lacking a live (non-expired) one."""
        ranges = partition_leases(
            self.base_seed, self.trials, lease_trials=self.lease_trials
        )
        live = {
            (lease.lo, lease.hi)
            for lease in self._leases.values()
            if lease.state != "expired"
        }
        attempts: Dict[Tuple[int, int], int] = {}
        for lease in self._leases.values():
            key = (lease.lo, lease.hi)
            attempts[key] = max(attempts.get(key, 0), lease.attempt)
        for index, (lo, hi) in enumerate(ranges):
            if (lo, hi) in live:
                continue
            self._issue(
                index, lo, hi, self.workers[index % len(self.workers)],
                attempts.get((lo, hi), 0) + 1,
            )

    def _issue(
        self, index: int, lo: int, hi: int, worker: str, attempt: int
    ) -> Lease:
        lease_id = f"lease-{index:04d}.a{attempt}"
        lease = Lease(
            lease_id=lease_id,
            lo=lo,
            hi=hi,
            worker=worker,
            attempt=attempt,
            checkpoint=os.path.join(self.out_dir, f"{lease_id}.{worker}.jsonl"),
            issued_at=self._clock(),
        )
        self._leases[lease_id] = lease
        self._journal_event(
            "issue",
            lease=lease_id,
            lo=lo,
            hi=hi,
            worker=worker,
            attempt=attempt,
            checkpoint=lease.checkpoint,
        )
        return lease

    def _journal_event(self, event: str, **fields) -> None:
        record: Dict[str, object] = {"event": event, "t": round(time.time(), 3)}
        record.update(fields)
        self._journal.write_records([record])

    # -- plan ----------------------------------------------------------------

    def active_leases(self) -> List[Lease]:
        """The issued-but-unfinished leases, in range order."""
        return sorted(
            (l for l in self._leases.values() if l.state == "issued"),
            key=lambda lease: lease.lo,
        )

    def plan(self) -> List[Tuple[Lease, List[str]]]:
        """``(lease, argv)`` for every lease a worker still has to run."""
        return [
            (lease, work_command(self.spec, lease, python=self.python))
            for lease in self.active_leases()
        ]

    def write_plan(self, path: Optional[str] = None) -> str:
        """Write ``plan.sh`` running every active lease in parallel."""
        path = path or os.path.join(self.out_dir, "plan.sh")
        lines = [
            "#!/bin/sh",
            "# Generated by `repro coordinate` — one worker command per lease.",
            "# Run on any machine(s) sharing the checkpoint directory, then",
            "# re-run `repro coordinate` (same flags) to merge.",
        ]
        for lease, argv in self.plan():
            lines.append(
                f"# {lease.lease_id}: seeds [{lease.lo}, {lease.hi}) -> {lease.worker}"
            )
            lines.append(" ".join(shlex.quote(arg) for arg in argv) + " &")
        lines.append("wait")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        os.chmod(path, 0o755)
        return path

    # -- progress ------------------------------------------------------------

    def _lease_complete(self, lease: Lease) -> bool:
        if lease.checkpoint is None or not os.path.exists(lease.checkpoint):
            return False
        size = os.path.getsize(lease.checkpoint)
        if self._incomplete_at_size.get(lease.lease_id) == size:
            return False  # nothing appended since the last incomplete parse
        _header, records = load_checkpoint(lease.checkpoint)
        covered = {
            record["seed"]
            for record in records
            if lease.lo <= record["seed"] < lease.hi
        }
        if len(covered) >= lease.trials:
            self._incomplete_at_size.pop(lease.lease_id, None)
            return True
        self._incomplete_at_size[lease.lease_id] = size
        return False

    def poll(self) -> Dict[str, object]:
        """Re-read every live lease's checkpoint; mark newly complete ones."""
        for lease in list(self._leases.values()):
            if lease.state == "issued" and self._lease_complete(lease):
                lease.state = "completed"
                self._journal_event("complete", lease=lease.lease_id)
        states = [lease.state for lease in self._leases.values()]
        return {
            "completed": states.count("completed"),
            "issued": states.count("issued"),
            "expired": states.count("expired"),
            "done": states.count("issued") == 0,
        }

    def reissue_stale(self) -> List[Lease]:
        """Expire overdue unfinished leases; issue replacements.

        Returns the *replacement* leases (rotated to the next worker —
        the original one is presumed dead).  The expired lease's partial
        checkpoint still merges; overlap deduplicates.
        """
        now = self._clock()
        ranges = partition_leases(
            self.base_seed, self.trials, lease_trials=self.lease_trials
        )
        index_of = {(lo, hi): i for i, (lo, hi) in enumerate(ranges)}
        replacements: List[Lease] = []
        for lease in list(self._leases.values()):
            if lease.state != "issued":
                continue
            if now - lease.issued_at <= self.lease_timeout_s:
                continue
            lease.state = "expired"
            self._journal_event("expire", lease=lease.lease_id, reason="timeout")
            index = index_of.get((lease.lo, lease.hi), 0)
            worker = self.workers[(index + lease.attempt) % len(self.workers)]
            replacements.append(
                self._issue(index, lease.lo, lease.hi, worker, lease.attempt + 1)
            )
        return replacements

    def wait(
        self,
        poll_s: float = 1.0,
        timeout_s: Optional[float] = None,
        reissue: bool = True,
        on_reissue: Optional[Callable[[Lease], None]] = None,
    ) -> bool:
        """Poll until every lease completes; False on overall timeout."""
        started = self._clock()
        while True:
            status = self.poll()
            if status["done"]:
                return True
            if reissue:
                for lease in self.reissue_stale():
                    if on_reissue is not None:
                        on_reissue(lease)
            if timeout_s is not None and self._clock() - started > timeout_s:
                return False
            time.sleep(poll_s)

    # -- merge ---------------------------------------------------------------

    def checkpoint_paths(self) -> List[str]:
        """Every lease checkpoint that exists on disk — expired attempts
        included (their partial records merge and deduplicate)."""
        return [
            lease.checkpoint
            for lease in sorted(self._leases.values(), key=lambda l: l.lease_id)
            if lease.checkpoint is not None and os.path.exists(lease.checkpoint)
        ]

    def merge(self, merged_path: Optional[str] = None) -> CampaignResult:
        """Merge all worker checkpoints over the campaign's full range."""
        paths = self.checkpoint_paths()
        if not paths:
            raise ValueError(
                f"{self.out_dir}: no worker checkpoints exist yet; run the "
                "plan's `repro work` commands first"
            )
        return merge_checkpoints(
            paths,
            merged_path=merged_path,
            base_seed=self.base_seed,
            trials=self.trials,
        )

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "FileCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
