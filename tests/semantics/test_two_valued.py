"""Theorem 2: 3VL and 2VL SQL are equally expressive (Figure 10)."""

import random

import pytest

from repro.core import NULL, Database, Schema, validation_schema
from repro.core.errors import ReproError
from repro.generator import DataFillerConfig, PAPER_CONFIG, QueryGenerator, fill_database
from repro.semantics import SqlSemantics, TwoValuedTranslator, to_three_valued
from repro.sql import annotate, check_query


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {"R": [(1, 2), (NULL, 2), (3, NULL), (1, 2)], "S": [(1,), (NULL,)]},
    )


@pytest.mark.parametrize("mode", ["conflating", "syntactic"])
class TestForwardTranslation:
    """⟦Q⟧ = ⟦Q′⟧2v for the Figure 10 translation."""

    def check(self, text, schema, db, mode):
        q = annotate(text, schema)
        sem3 = SqlSemantics(schema)
        expected = sem3.run(q, db)
        translator = TwoValuedTranslator(schema, mode)
        q2 = translator.translate_query(q)
        sem2 = SqlSemantics(schema, logic=translator.logic)
        got = sem2.run(q2, db)
        assert got.same_as(expected), text
        return q2

    def test_simple_comparison(self, schema, db, mode):
        self.check("SELECT R.A FROM R WHERE R.A = 1", schema, db, mode)

    def test_negated_comparison(self, schema, db, mode):
        """NOT over u is where naive conflation goes wrong; θᶠ fixes it."""
        self.check("SELECT R.A FROM R WHERE NOT R.A = 1", schema, db, mode)

    def test_is_null(self, schema, db, mode):
        self.check("SELECT R.A FROM R WHERE R.A IS NULL", schema, db, mode)

    def test_not_in(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            schema,
            db,
            mode,
        )

    def test_in(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE R.B IN (SELECT S.A FROM S)", schema, db, mode
        )

    def test_exists(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
            schema,
            db,
            mode,
        )

    def test_connectives_with_unknown(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE NOT (R.A = 1 OR R.B = 2)", schema, db, mode
        )

    def test_de_morgan_shape(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE NOT (R.A = 1 AND NOT R.B = 2)",
            schema,
            db,
            mode,
        )

    def test_nested_not_in(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE R.A NOT IN "
            "(SELECT S.A FROM S WHERE S.A NOT IN (SELECT R.B FROM R))",
            schema,
            db,
            mode,
        )

    def test_example1_q1(self, mode, schema, db):
        rs = Schema({"R": ("A",), "S": ("A",)})
        rsdb = Database(rs, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
        self.check(
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            rs,
            rsdb,
            mode,
        )

    def test_set_ops(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE NOT R.A = 1 "
            "UNION ALL SELECT S.A FROM S WHERE S.A NOT IN (SELECT R.B FROM R)",
            schema,
            db,
            mode,
        )


@pytest.mark.parametrize("mode", ["conflating", "syntactic"])
class TestBackwardTranslation:
    """⟦Q⟧2v = ⟦Q″⟧ for the guarded-atoms translation."""

    def check(self, text, schema, db, mode):
        q = annotate(text, schema)
        translator = TwoValuedTranslator(schema, mode)
        sem2 = SqlSemantics(schema, logic=translator.logic)
        expected = sem2.run(q, db)
        q3 = to_three_valued(q, schema, mode)
        got = SqlSemantics(schema).run(q3, db)
        assert got.same_as(expected), text

    def test_equality(self, schema, db, mode):
        self.check("SELECT R.A FROM R WHERE R.A = R.B", schema, db, mode)

    def test_null_literal_equality(self, schema, db, mode):
        """NULL = NULL: false under conflating, true under syntactic."""
        self.check("SELECT R.A FROM R WHERE NULL = NULL", schema, db, mode)

    def test_negation(self, schema, db, mode):
        self.check("SELECT R.A FROM R WHERE NOT R.A = 1", schema, db, mode)

    def test_in(self, schema, db, mode):
        self.check(
            "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)", schema, db, mode
        )

    def test_not_in(self, schema, db, mode):
        self.check(
            "SELECT R.B FROM R WHERE R.B NOT IN (SELECT S.A FROM S)",
            schema,
            db,
            mode,
        )


def test_null_equals_null_distinguishes_the_modes(schema, db):
    """Sanity check that the two equality interpretations truly differ."""
    q = annotate("SELECT R.B FROM R WHERE NULL = NULL", schema)
    conflating = SqlSemantics(schema, logic="2vl-conflating").run(q, db)
    syntactic = SqlSemantics(schema, logic="2vl-syntactic").run(q, db)
    assert conflating.is_empty()
    assert len(syntactic) == 4


def test_translator_rejects_unknown_mode(schema):
    with pytest.raises(ValueError):
        TwoValuedTranslator(schema, "both")
    with pytest.raises(ValueError):
        to_three_valued(annotate("SELECT R.A FROM R", schema), schema, "both")


def test_fresh_names_do_not_clash(schema, db):
    """The Q′ AS N(A1..An) wrapper must use names unused in the query."""
    translator = TwoValuedTranslator(schema, "conflating")
    q = annotate(
        "SELECT R.A AS V1 FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", schema
    )
    q2 = translator.translate_query(q)
    sem2 = SqlSemantics(schema, logic=translator.logic)
    expected = SqlSemantics(schema).run(q, db)
    assert sem2.run(q2, db).same_as(expected)


@pytest.mark.parametrize("mode", ["conflating", "syntactic"])
@pytest.mark.parametrize("seed", range(25))
def test_randomized_equivalence_both_directions(mode, seed):
    """Random queries: Q ↦ Q′ forward and Q ↦ Q″ backward both agree."""
    schema = validation_schema(4)
    rng = random.Random(seed)
    generator = QueryGenerator(schema, PAPER_CONFIG, rng)
    query = generator.generate()
    db = fill_database(schema, rng, DataFillerConfig(max_rows=4))
    try:
        check_query(query, schema, star_style="standard")
    except ReproError:
        pytest.skip("query intentionally ambiguous under the standard style")
    sem3 = SqlSemantics(schema)
    expected = sem3.run(query, db)
    translator = TwoValuedTranslator(schema, mode)
    translated = translator.translate_query(query)
    got = SqlSemantics(schema, logic=translator.logic).run(translated, db)
    assert got.same_as(expected)
    sem2 = SqlSemantics(schema, logic=translator.logic)
    direct = sem2.run(query, db)
    back = sem3.run(to_three_valued(query, schema, mode), db)
    assert back.same_as(direct)
