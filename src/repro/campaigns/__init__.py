"""Unified parallel campaign subsystem: every experiment, one pipeline.

The paper's empirical claims rest on large trial campaigns — 100,000
random (query, database) pairs per variant in Section 4.  This package is
the single execution core all of those experiments run on:

* **trial pipeline** — a trial is a pure function of its integer seed:
  ``random.Random(seed)`` drives the query generator and the data filler,
  and a pluggable *comparator backend* (:mod:`repro.campaigns.backends`)
  turns the pair into a small JSON record.  The Section 4
  semantics-vs-engine comparison (both paper variants) and the n-way
  differential harness are the two built-in backends;
* **sharded parallel executor** (:mod:`repro.campaigns.executor`) — the
  seed range is split into contiguous shards executed by a
  ``multiprocessing`` pool; results are bit-identical to a serial run at
  any ``jobs`` because trials are seed-pure and aggregation is
  order-independent;
* **streaming checkpoints** (:mod:`repro.campaigns.checkpoint`) — one
  JSONL line per trial, flushed per shard; a killed campaign resumes where
  it left off (``resume=True``) and yields the same aggregate as an
  uninterrupted run;
* **flat-memory aggregation** (:mod:`repro.campaigns.aggregate`) — counters
  plus one outcome byte per seed, summarized by a SHA-256 digest, so paper
  scale costs ~100 kB of aggregate state;
* **distributed coordination** (:mod:`repro.campaigns.distributed`) — a
  coordinator partitions the seed range into leases (journaled, re-issued
  on worker timeout) and merges the workers' checkpoint files
  (:func:`merge_checkpoints`) into an aggregate bit-identical to a
  single-machine run; ``repro coordinate`` / ``repro work`` are the CLI,
  with file-based (shared directory) and HTTP transports.

Paper-scale invocation (Section 4, PostgreSQL variant)::

    python -m repro validate --variants postgres --trials 100000 \\
        --jobs 8 --checkpoint pg.jsonl --resume

and the same machinery drives ``python -m repro differential`` and the
campaign-throughput stage of ``scripts/bench.py``.
"""

from .aggregate import Aggregator, CampaignResult
from .backends import (
    CODE_AGREE,
    CODE_AGREE_BOTH_ERROR,
    CODE_CLASSIFIED,
    CODE_MISMATCH,
    CODE_NAMES,
    CampaignSpec,
    DifferentialBackend,
    LiveSqliteBackend,
    RunnerBackend,
    ValidationBackend,
)
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConflict,
    CheckpointCorruption,
    CheckpointWriter,
    load_checkpoint,
    merge_checkpoints,
    record_crc,
    summarize_checkpoint,
    summarize_merged,
)
from .distributed import (
    LEASE_SCHEMA,
    Coordinator,
    CoordinatorServer,
    FileCoordinator,
    Lease,
    load_journal,
    partition_leases,
    work_command,
    work_remote,
)
from .executor import plan_shards, run_campaign

__all__ = [
    "Aggregator",
    "CampaignResult",
    "CampaignSpec",
    "ValidationBackend",
    "DifferentialBackend",
    "LiveSqliteBackend",
    "RunnerBackend",
    "CheckpointConflict",
    "CheckpointCorruption",
    "CheckpointWriter",
    "load_checkpoint",
    "merge_checkpoints",
    "record_crc",
    "summarize_checkpoint",
    "summarize_merged",
    "CHECKPOINT_SCHEMA",
    "LEASE_SCHEMA",
    "Coordinator",
    "CoordinatorServer",
    "FileCoordinator",
    "Lease",
    "load_journal",
    "partition_leases",
    "work_command",
    "work_remote",
    "plan_shards",
    "run_campaign",
    "CODE_AGREE",
    "CODE_AGREE_BOTH_ERROR",
    "CODE_CLASSIFIED",
    "CODE_MISMATCH",
    "CODE_NAMES",
]
