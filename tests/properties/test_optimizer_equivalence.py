"""Differential property tests for the optimizing engine and the fast oracle.

The paper's methodology, turned on our own optimizations: on ≥500 random
query/database pairs per dialect variant, the optimized engine, the naive
engine, and the formal semantics must coincide — same tables (columns,
rows, multiplicities) or the same error class.  A second battery pins the
evaluator's interleaved FROM/WHERE fast path to the literal Figure 5
evaluation, which must match bit for bit (``fast_from`` may not even change
*which* error is raised).
"""

import random

import pytest

from repro.core import validation_schema
from repro.generator import (
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from repro.sql.typecheck import check_query
from repro.validation.compare import capture

SCHEMA = validation_schema()
TRIALS = 500
DATA = DataFillerConfig(max_rows=5)

VARIANTS = [
    (DIALECT_POSTGRES, STAR_COMPOSITIONAL),
    (DIALECT_ORACLE, STAR_STANDARD),
]


def _pair(seed):
    rng = random.Random(seed)
    query = QueryGenerator(SCHEMA, PAPER_CONFIG, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    return query, db


@pytest.mark.parametrize("dialect,star_style", VARIANTS)
def test_optimized_naive_and_semantics_coincide(dialect, star_style):
    optimized = Engine(SCHEMA, dialect)
    naive = Engine(SCHEMA, dialect, optimize=False)
    semantics = SqlSemantics(SCHEMA, star_style=star_style)
    failures = []
    for seed in range(TRIALS):
        query, db = _pair(seed)

        def oracle():
            # The static check mirrors the RDBMS compiler, as in the
            # validation runner: ambiguity is rejected before evaluation.
            check_query(query, SCHEMA, star_style=star_style)
            return semantics.run(query, db)

        fast = capture(lambda: optimized.execute(query, db))
        slow = capture(lambda: naive.execute(query, db))
        formal = capture(oracle)
        # Identical tables are the optimizer's unconditional guarantee;
        # identical error *classes* additionally hold on this workload
        # because generated queries are type-checked over int-only data
        # (no data-dependent runtime errors whose surfacing order the
        # optimizer may legitimately change).
        if fast.error != slow.error or not fast.agrees_with(slow):
            failures.append(f"seed {seed}: optimized vs naive engine differ")
        if not fast.agrees_with(formal):
            failures.append(f"seed {seed}: optimized engine vs semantics differ")
    assert not failures, "; ".join(failures[:5])


def test_interleaved_fast_path_preserves_error_order():
    """Regression: residuals must be evaluated in *product order*.

    Staged conjunct ``T1.A = 1`` is unknown on the NULL row and true on the
    second; the residual ``T1.B < T2.C OR S.X = 1`` raises a type clash on
    the first (tainted) row but an ambiguity error on the second (clean)
    row.  Evaluating clean rows before tainted rows would surface the wrong
    error class; the naive Figure 5 order hits the type clash first.
    """
    from repro.core import NULL, Database, Schema

    schema = Schema({"T1": ("A", "B"), "T2": ("C",), "T3": ("E",)})
    db = Database(
        schema,
        {"T1": [(NULL, "x"), (1, 7)], "T2": [(5,)], "T3": [(1,)]},
    )
    sql = (
        "SELECT T1.A FROM T1, T2, (SELECT T3.E AS X, T3.E AS X FROM T3) AS S "
        "WHERE T1.A = 1 AND (T1.B < T2.C OR S.X = 1)"
    )
    from repro.sql import annotate

    query = annotate(sql, schema)
    # interleave_min_product=0 forces the fast path on this tiny product
    # (the cost dispatch would otherwise route it the literal way).
    fast = capture(
        lambda: SqlSemantics(schema, interleave_min_product=0).run(query, db)
    )
    slow = capture(lambda: SqlSemantics(schema, fast_from=False).run(query, db))
    assert fast.error == slow.error == "compile"


def test_interleave_cache_invalidated_on_registry_mutation():
    """Regression: re-registering a predicate must discard cached analyses.

    After ``register("=", ...)`` the builtin totality claim for ``=`` no
    longer holds, so a previously-hoisted conjunct may not be evaluated
    early any more (here: on an empty product, where the naive rule never
    evaluates the condition at all)."""
    from repro.core import Database, Schema
    from repro.sql import annotate

    schema = Schema({"R": ("A",)})
    db = Database(schema, {"R": []})
    query = annotate("SELECT S.A FROM R AS S, R AS T WHERE 1 = 2", schema)
    sem = SqlSemantics(schema, interleave_min_product=0)
    assert sem.run(query, db).is_empty()

    def boom(a, b):
        raise RuntimeError("user predicate must not be hoisted")

    sem.predicates.register("=", 2, boom)
    assert sem.run(query, db).is_empty()  # stale analysis would raise


@pytest.mark.parametrize("star_style", [STAR_STANDARD, STAR_COMPOSITIONAL])
def test_interleaved_fast_path_is_bit_for_bit(star_style):
    # interleave_min_product=0 keeps the battery exercising the interleaved
    # route on these small products despite the cost dispatch.
    fast = SqlSemantics(SCHEMA, star_style=star_style, interleave_min_product=0)
    slow = SqlSemantics(SCHEMA, star_style=star_style, fast_from=False)
    failures = []
    for seed in range(TRIALS):
        query, db = _pair(seed)
        a = capture(lambda: fast.run(query, db))
        b = capture(lambda: slow.run(query, db))
        # Identical tables *and* identical error classes: the fast path may
        # not change anything observable, including which error surfaces.
        if a.error != b.error or not a.agrees_with(b):
            failures.append(f"seed {seed}: fast_from changed the outcome")
    assert not failures, "; ".join(failures[:5])
