"""Figure 1: the truth tables of SQL's three-valued (Kleene) logic."""

import pytest

from repro.core.truth import (
    FALSE,
    TRUE,
    UNKNOWN,
    Truth,
    conj,
    conj_all,
    disj,
    disj_all,
    neg,
)

T, F, U = TRUE, FALSE, UNKNOWN
ALL = (T, F, U)

# The ∧ table of Figure 1, row-major: t, f, u against t, f, u.
AND_TABLE = {
    (T, T): T, (T, F): F, (T, U): U,
    (F, T): F, (F, F): F, (F, U): F,
    (U, T): U, (U, F): F, (U, U): U,
}

# The ∨ table of Figure 1.
OR_TABLE = {
    (T, T): T, (T, F): T, (T, U): T,
    (F, T): T, (F, F): F, (F, U): U,
    (U, T): T, (U, F): U, (U, U): U,
}

# The ¬ table of Figure 1.
NOT_TABLE = {T: F, F: T, U: U}


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
def test_conjunction_table(a, b):
    assert (a & b) is AND_TABLE[(a, b)]
    assert conj(a, b) is AND_TABLE[(a, b)]


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
def test_disjunction_table(a, b):
    assert (a | b) is OR_TABLE[(a, b)]
    assert disj(a, b) is OR_TABLE[(a, b)]


@pytest.mark.parametrize("a", ALL)
def test_negation_table(a):
    assert (~a) is NOT_TABLE[a]
    assert neg(a) is NOT_TABLE[a]


def test_interning():
    assert Truth("t") is TRUE
    assert Truth("f") is FALSE
    assert Truth("u") is UNKNOWN


def test_invalid_name_rejected():
    with pytest.raises(ValueError):
        Truth("x")


def test_from_bool():
    assert Truth.from_bool(True) is TRUE
    assert Truth.from_bool(False) is FALSE


def test_predicates():
    assert TRUE.is_true and not TRUE.is_false and not TRUE.is_unknown
    assert FALSE.is_false and not FALSE.is_true
    assert UNKNOWN.is_unknown and not UNKNOWN.is_true and not UNKNOWN.is_false


def test_no_implicit_bool():
    with pytest.raises(TypeError):
        bool(TRUE)
    with pytest.raises(TypeError):
        if UNKNOWN:  # pragma: no cover
            pass


def test_names():
    assert TRUE.name == "t" and FALSE.name == "f" and UNKNOWN.name == "u"


def test_repr():
    assert repr(TRUE) == "TRUE"
    assert repr(UNKNOWN) == "UNKNOWN"


def test_conj_all_empty_is_true():
    assert conj_all([]) is TRUE


def test_disj_all_empty_is_false():
    assert disj_all([]) is FALSE


def test_conj_all_mixed():
    assert conj_all([T, U]) is U
    assert conj_all([T, U, F]) is F
    assert conj_all([T, T, T]) is T


def test_disj_all_mixed():
    assert disj_all([F, U]) is U
    assert disj_all([F, U, T]) is T
    assert disj_all([F, F]) is F


@pytest.mark.parametrize("a", ALL)
def test_information_order_reflexive_and_u_bottom(a):
    assert a.le_info(a)
    assert UNKNOWN.le_info(a)
    if a is not UNKNOWN:
        assert not a.le_info(UNKNOWN)


def test_information_order_t_f_incomparable():
    assert not TRUE.le_info(FALSE)
    assert not FALSE.le_info(TRUE)


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
def test_de_morgan(a, b):
    assert ~(a & b) is (~a | ~b)
    assert ~(a | b) is (~a & ~b)


@pytest.mark.parametrize("a", ALL)
def test_double_negation(a):
    assert ~~a is a


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
def test_commutativity(a, b):
    assert (a & b) is (b & a)
    assert (a | b) is (b | a)


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
@pytest.mark.parametrize("c", ALL)
def test_associativity(a, b, c):
    assert ((a & b) & c) is (a & (b & c))
    assert ((a | b) | c) is (a | (b | c))


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
@pytest.mark.parametrize("c", ALL)
def test_distributivity(a, b, c):
    assert (a & (b | c)) is ((a & b) | (a & c))
    assert (a | (b & c)) is ((a | b) & (a | c))


@pytest.mark.parametrize("a", ALL)
@pytest.mark.parametrize("b", ALL)
@pytest.mark.parametrize("c", ALL)
def test_kleene_monotonicity(a, b, c):
    """Kleene connectives are monotone in the information order."""
    if a.le_info(b):
        assert (a & c).le_info(b & c)
        assert (a | c).le_info(b | c)
        assert (~a).le_info(~b)


def test_pickle_roundtrip_preserves_identity():
    import pickle

    for value in ALL:
        assert pickle.loads(pickle.dumps(value)) is value
