"""The predicate registry: the collection P of Section 2."""

import pytest

from repro.core.errors import CompileError
from repro.semantics.predicates import PredicateRegistry, default_registry, sql_like


@pytest.fixture
def registry():
    return default_registry()


def test_builtin_comparisons_present(registry):
    for name in ("=", "<>", "<", "<=", ">", ">=", "LIKE"):
        assert name in registry
        assert registry.arity(name) == 2


def test_equality(registry):
    assert registry.holds("=", (1, 1))
    assert not registry.holds("=", (1, 2))
    assert registry.holds("=", ("a", "a"))


def test_cross_type_equality_is_false(registry):
    assert not registry.holds("=", (1, "1"))
    assert registry.holds("<>", (1, "1"))


def test_orderings(registry):
    assert registry.holds("<", (1, 2))
    assert registry.holds("<=", (2, 2))
    assert registry.holds(">", ("b", "a"))
    assert registry.holds(">=", ("a", "a"))


def test_ordering_type_clash(registry):
    with pytest.raises(CompileError):
        registry.holds("<", (1, "x"))


@pytest.mark.parametrize(
    "value,pattern,expected",
    [
        ("hello", "hello", True),
        ("hello", "h%", True),
        ("hello", "%o", True),
        ("hello", "h_llo", True),
        ("hello", "h_", False),
        ("hello", "%ell%", True),
        ("", "%", True),
        ("a.b", "a.b", True),
        ("axb", "a.b", False),  # dot is literal, not regex
    ],
)
def test_like(value, pattern, expected):
    assert sql_like(value, pattern) is expected


def test_like_requires_strings():
    with pytest.raises(CompileError):
        sql_like(1, "%")


def test_unknown_predicate(registry):
    with pytest.raises(CompileError):
        registry.holds("nope", (1,))
    with pytest.raises(CompileError):
        registry.arity("nope")


def test_wrong_arity(registry):
    with pytest.raises(CompileError):
        registry.holds("=", (1,))


def test_register_custom_predicate():
    registry = PredicateRegistry()
    registry.register("even", 1, lambda x: x % 2 == 0)
    assert registry.holds("even", (4,))
    assert not registry.holds("even", (3,))


def test_register_invalid_arity():
    registry = PredicateRegistry()
    with pytest.raises(ValueError):
        registry.register("bad", 0, lambda: True)


def test_custom_predicate_in_evaluator():
    """The fragment is parameterized by P: a user predicate works end to end."""
    from repro.core import Database, Schema
    from repro.semantics import SqlSemantics
    from repro.sql import annotate

    schema = Schema({"R": ("A",)})
    db = Database(schema, {"R": [(1,), (2,), (3,), (4,)]})
    registry = default_registry()
    registry.register("even", 1, lambda x: x % 2 == 0)
    sem = SqlSemantics(schema, predicates=registry)
    t = sem.run(annotate("SELECT R.A FROM R WHERE even(R.A)", schema), db)
    assert sorted(t.bag) == [(2,), (4,)]
