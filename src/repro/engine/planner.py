"""Query compiler of the reference engine.

Compiles a fully-annotated basic SQL AST into a tree of physical operators
(:mod:`repro.engine.operators`), resolving every column reference *at plan
time* to a positional ``(depth, index)`` lookup.  This mirrors how real
systems behave and is what makes the engine's error behaviour match theirs:

* resolution of an explicit reference whose nearest binding scope holds the
  name more than once fails at compile time with
  :class:`~repro.core.errors.AmbiguousReferenceError` (both dialects — this
  is PostgreSQL's ``column reference is ambiguous`` and Oracle's
  ``ORA-00918``);
* ``SELECT *`` is expanded **positionally** in the ``postgres`` dialect (so
  duplicate column names are harmless, Example 2's observation) but
  **by name** in the ``oracle`` dialect, where a duplicated column name makes
  the query fail to compile — except directly under EXISTS, where Oracle
  follows the standard's constant-replacement reading and the query is fine.

Base tables are bound to materialized row lists at plan time, with NULLs
represented as Python ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.errors import (
    AmbiguousReferenceError,
    ArityMismatchError,
    CompileError,
    DuplicateAliasError,
    UnboundReferenceError,
    UnknownTableError,
)
from ..core.schema import Database, Schema
from ..core.values import FullName, Name, Null
from ..sql.ast import (
    And,
    BareColumn,
    Condition,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SetOp,
    TrueCond,
)
from .expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    IsNullPred,
    LiteralExpr,
    NotPred,
    OrPred,
    OuterStack,
    Row,
    RowExpr,
)
from .operators import (
    CrossJoin,
    DistinctOp,
    ExistsPred,
    FilterOp,
    InPred,
    PlanNode,
    ProjectOp,
    SetOpNode,
    StaticScan,
    TableScan,
)

__all__ = ["Planner", "CompiledQuery", "DIALECT_POSTGRES", "DIALECT_ORACLE"]

DIALECT_POSTGRES = "postgres"
DIALECT_ORACLE = "oracle"

_EXISTS_CONSTANT = 1
_EXISTS_LABEL = "C"


@dataclass
class _Scope:
    """The row layout contributed by one FROM clause."""

    entries: List[Tuple[Name, Name]] = field(default_factory=list)

    def positions(self, alias: Name, column: Name) -> List[int]:
        return [
            i for i, (a, c) in enumerate(self.entries) if a == alias and c == column
        ]

    @property
    def width(self) -> int:
        return len(self.entries)


@dataclass
class CompiledQuery:
    """A compiled plan plus its output column labels.

    ``run``, when present, is a lowered executor — either the
    closure-compiled tier (:func:`repro.engine.compile.compile_plan`) or
    the columnar batch tier
    (:func:`repro.engine.columnar.compile_columnar`) — a drop-in
    replacement for ``plan.iter_rows`` that shares all mutable state with
    the plan tree (so binding and unbinding work unchanged).  The planner
    itself leaves it unset; the :class:`~repro.engine.Engine` fills it in
    (at plan-cache admission for the closure tier; unconditionally for
    the cheap-to-compile columnar tier).
    """

    plan: PlanNode
    labels: Tuple[Name, ...]
    run: Optional[Callable[[OuterStack], object]] = None


class Planner:
    """Compiles annotated queries, bound to a database instance or unbound.

    With a database the planner emits :class:`~repro.engine.operators
    .StaticScan` leaves capturing the instance's rows (the original,
    plan-per-database mode).  With ``db=None`` it emits
    :class:`~repro.engine.operators.TableScan` leaves that only *name* their
    base table; the resulting plan is database-independent and is what the
    :class:`~repro.engine.Engine` plan cache stores — bind it to an instance
    with :func:`repro.engine.binding.bind_plan` before execution.  All
    compile-time errors depend on the schema and query alone, so both modes
    reject exactly the same queries.
    """

    def __init__(
        self,
        schema: Schema,
        db: Optional[Database] = None,
        dialect: str = DIALECT_POSTGRES,
    ):
        if dialect not in (DIALECT_POSTGRES, DIALECT_ORACLE):
            raise ValueError(f"unknown engine dialect: {dialect!r}")
        self.schema = schema
        self.db = db
        self.dialect = dialect

    # -- public ------------------------------------------------------------

    def compile(self, query: Query) -> CompiledQuery:
        return self._compile_query(query, [], under_exists=False)

    # -- queries ---------------------------------------------------------------

    def _compile_query(
        self, query: Query, scopes: List[_Scope], under_exists: bool
    ) -> CompiledQuery:
        if isinstance(query, SetOp):
            left = self._compile_query(query.left, scopes, under_exists=False)
            right = self._compile_query(query.right, scopes, under_exists=False)
            if len(left.labels) != len(right.labels):
                raise ArityMismatchError(
                    f"{query.op} combines arities {len(left.labels)} and "
                    f"{len(right.labels)}"
                )
            node = SetOpNode(query.op, query.all, left.plan, right.plan)
            return CompiledQuery(node, left.labels)
        if not isinstance(query, Select):
            raise TypeError(f"not a query: {query!r}")
        return self._compile_select(query, scopes, under_exists)

    def _compile_select(
        self, query: Select, scopes: List[_Scope], under_exists: bool
    ) -> CompiledQuery:
        children: List[PlanNode] = []
        local = _Scope()
        seen_aliases: set[Name] = set()
        for item in query.from_items:
            if item.alias in seen_aliases:
                raise DuplicateAliasError(
                    f"alias {item.alias} used twice in the same FROM clause"
                )
            seen_aliases.add(item.alias)
            child, labels = self._compile_from_item(item, scopes)
            children.append(child)
            local.entries.extend((item.alias, label) for label in labels)
        source: PlanNode = (
            children[0] if len(children) == 1 else CrossJoin(children)
        )
        inner_scopes = scopes + [local]
        if not isinstance(query.where, TrueCond):
            predicate = self._compile_condition(query.where, inner_scopes)
            source = FilterOp(source, predicate)
        if query.is_star:
            expressions, labels = self._expand_star(local, under_exists)
        else:
            expressions = [
                self._compile_term(item.term, inner_scopes) for item in query.items
            ]
            labels = tuple(item.alias for item in query.items)
        plan: PlanNode = ProjectOp(source, expressions)
        if query.distinct:
            plan = DistinctOp(plan)
        return CompiledQuery(plan, labels)

    def _compile_from_item(
        self, item: FromItem, scopes: List[_Scope]
    ) -> Tuple[PlanNode, Tuple[Name, ...]]:
        if item.is_base_table:
            if item.table not in self.schema:
                raise UnknownTableError(f"unknown base table: {item.table}")
            labels = self.schema.attributes(item.table)
            if self.db is None:
                plan: PlanNode = TableScan(item.table, arity=len(labels))
            else:
                data = [
                    tuple(None if isinstance(v, Null) else v for v in record)
                    for record in self.db.table(item.table).bag
                ]
                plan = StaticScan(data, arity=len(labels))
        else:
            compiled = self._compile_query(item.table, scopes, under_exists=False)
            plan, labels = compiled.plan, compiled.labels
        if item.column_aliases is not None:
            if len(item.column_aliases) != len(labels):
                raise ArityMismatchError(
                    f"alias {item.alias}({', '.join(item.column_aliases)}) "
                    f"renames {len(item.column_aliases)} columns but the table "
                    f"has {len(labels)}"
                )
            labels = item.column_aliases
        return plan, labels

    def _expand_star(
        self, local: _Scope, under_exists: bool
    ) -> Tuple[List[RowExpr], Tuple[Name, ...]]:
        if self.dialect == DIALECT_POSTGRES:
            # Positional expansion: duplicates are fine (compositional rule).
            expressions: List[RowExpr] = [
                ColumnRef(0, i) for i in range(local.width)
            ]
            return expressions, tuple(label for _alias, label in local.entries)
        # Oracle/standard: under EXISTS, * is an arbitrary constant; otherwise
        # it is expanded by name, so repeated full names fail to compile.
        if under_exists:
            return [LiteralExpr(_EXISTS_CONSTANT)], (_EXISTS_LABEL,)
        expressions = []
        for alias, label in local.entries:
            positions = local.positions(alias, label)
            if len(positions) > 1:
                raise AmbiguousReferenceError(
                    f"SELECT * forces a reference to the ambiguous column "
                    f"{alias}.{label}"
                )
            expressions.append(ColumnRef(0, positions[0]))
        return expressions, tuple(label for _alias, label in local.entries)

    # -- terms -------------------------------------------------------------------

    def _compile_term(self, term, scopes: List[_Scope]) -> RowExpr:
        if isinstance(term, FullName):
            return self._resolve(term, scopes)
        if isinstance(term, BareColumn):
            raise UnboundReferenceError(
                f"unannotated column reference {term.name}: the engine expects "
                f"fully-annotated queries"
            )
        if isinstance(term, Null):
            return LiteralExpr(None)
        return LiteralExpr(term)

    def _resolve(self, full_name: FullName, scopes: List[_Scope]) -> ColumnRef:
        for depth, scope in enumerate(reversed(scopes)):
            positions = scope.positions(full_name.qualifier, full_name.attribute)
            if len(positions) > 1:
                raise AmbiguousReferenceError(
                    f"column reference {full_name} is ambiguous"
                )
            if positions:
                return ColumnRef(depth, positions[0])
        raise UnboundReferenceError(f"column reference {full_name} cannot be resolved")

    # -- conditions -----------------------------------------------------------------

    def _compile_condition(
        self, condition: Condition, scopes: List[_Scope]
    ) -> Callable[[Row, OuterStack], Optional[bool]]:
        """Compile to a structured predicate node (see
        :mod:`repro.engine.expressions`) so the optimizer can introspect the
        referenced scope depths and column positions."""
        if isinstance(condition, TrueCond):
            return ConstPred(True)
        if isinstance(condition, FalseCond):
            return ConstPred(False)
        if isinstance(condition, Predicate):
            return self._compile_predicate(condition, scopes)
        if isinstance(condition, IsNull):
            expr = self._compile_term(condition.term, scopes)
            return IsNullPred(expr, condition.negated)
        if isinstance(condition, InQuery):
            return self._compile_in(condition, scopes)
        if isinstance(condition, Exists):
            compiled = self._compile_query(condition.query, scopes, under_exists=True)
            return ExistsPred(compiled.plan)
        if isinstance(condition, And):
            return AndPred(
                self._compile_condition(condition.left, scopes),
                self._compile_condition(condition.right, scopes),
            )
        if isinstance(condition, Or):
            return OrPred(
                self._compile_condition(condition.left, scopes),
                self._compile_condition(condition.right, scopes),
            )
        if isinstance(condition, Not):
            return NotPred(self._compile_condition(condition.operand, scopes))
        raise TypeError(f"not a condition: {condition!r}")

    def _compile_predicate(
        self, condition: Predicate, scopes: List[_Scope]
    ) -> ComparePred:
        if len(condition.args) != 2:
            raise CompileError(
                f"the engine supports binary predicates only, got "
                f"{condition.name}/{len(condition.args)}"
            )
        left = self._compile_term(condition.args[0], scopes)
        right = self._compile_term(condition.args[1], scopes)
        return ComparePred(condition.name, left, right)

    def _compile_in(self, condition: InQuery, scopes: List[_Scope]) -> InPred:
        compiled = self._compile_query(condition.query, scopes, under_exists=False)
        if len(compiled.labels) != len(condition.terms):
            raise ArityMismatchError(
                f"IN compares {len(condition.terms)} term(s) against a query of "
                f"arity {len(compiled.labels)}"
            )
        left_exprs = [self._compile_term(t, scopes) for t in condition.terms]
        return InPred(left_exprs, compiled.plan, condition.negated)
