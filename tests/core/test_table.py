"""Tables: labelled bags and the Section 4 comparison criterion."""

import pytest

from repro.core.bag import Bag
from repro.core.table import Table
from repro.core.values import NULL, FullName


def test_construction_from_iterable():
    t = Table(("A",), [(1,), (2,), (1,)])
    assert t.arity == 1
    assert len(t) == 3
    assert t.multiplicity((1,)) == 2


def test_construction_from_bag():
    bag = Bag([(1, 2)])
    t = Table(("A", "B"), bag)
    assert t.bag is bag


def test_zero_columns_rejected():
    with pytest.raises(ValueError):
        Table((), [])


def test_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        Table(("A",), [(1, 2)])


def test_repeated_labels_allowed():
    """SELECT R.A, R.A FROM R produces two columns both named A."""
    t = Table(("A", "A"), [(1, 1)])
    assert t.columns == ("A", "A")


def test_full_name_labels():
    t = Table((FullName("R", "A"),), [(1,)])
    assert t.columns == (FullName("R", "A"),)


def test_same_as_requires_same_columns():
    a = Table(("A",), [(1,)])
    b = Table(("B",), [(1,)])
    assert not a.same_as(b)


def test_same_as_requires_same_column_order():
    a = Table(("A", "B"), [(1, 2)])
    b = Table(("B", "A"), [(1, 2)])
    assert not a.same_as(b)


def test_same_as_ignores_row_order():
    a = Table(("A",), [(1,), (2,)])
    b = Table(("A",), [(2,), (1,)])
    assert a.same_as(b)


def test_same_as_checks_multiplicities():
    a = Table(("A",), [(1,), (1,)])
    b = Table(("A",), [(1,)])
    assert not a.same_as(b)


def test_equality_operator():
    assert Table(("A",), [(1,)]) == Table(("A",), [(1,)])
    assert Table(("A",), [(1,)]) != Table(("A",), [(2,)])


def test_distinct():
    t = Table(("A",), [(1,), (1,), (2,)]).distinct()
    assert t.multiplicity((1,)) == 1
    assert len(t) == 2


def test_with_columns():
    t = Table(("A",), [(1,)]).with_columns(("Z",))
    assert t.columns == ("Z",)
    assert t.multiplicity((1,)) == 1


def test_is_empty():
    assert Table(("A",), []).is_empty()
    assert not Table(("A",), [(NULL,)]).is_empty()


def test_pretty_renders_all_parts():
    text = Table(("A", "B"), [(1, NULL), ("x", 2)]).pretty()
    assert "A" in text and "B" in text
    assert "NULL" in text
    assert "'x'" in text


def test_pretty_truncates():
    t = Table(("A",), [(i,) for i in range(30)])
    text = t.pretty(max_rows=5)
    assert "more row(s)" in text
