"""Applications built on the formal semantics (Sections 5-6, 8 and beyond)."""

from .certainty import (
    approximate_certain,
    approximate_possible,
    count_nulls,
    exact_certain_answers,
    exact_possible_answers,
    is_positive,
    valuations,
)
from .equivalence import (
    EquivalenceReport,
    check_equivalence,
    find_counterexample,
    shrink_counterexample,
)

__all__ = [
    "EquivalenceReport",
    "check_equivalence",
    "find_counterexample",
    "shrink_counterexample",
    "approximate_certain",
    "approximate_possible",
    "exact_certain_answers",
    "exact_possible_answers",
    "valuations",
    "count_nulls",
    "is_positive",
]
