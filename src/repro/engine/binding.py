"""Late binding, cache hygiene and cross-execution build-side sharing.

A plan compiled without a database (:class:`~repro.engine.planner.Planner`
with ``db=None``) contains :class:`~repro.engine.operators.TableScan` leaves
that name their base table but carry no rows.  Such a plan is a pure
function of ``(query, schema, dialect, optimize)`` and can be cached and
re-executed against any number of databases — provided that, before each
execution,

* every ``TableScan`` is bound to the current database's rows
  (:func:`bind_plan`), and
* every per-execution memo the optimizer introduced is cleared
  (:func:`reset_plan`): :class:`~repro.engine.operators.CachedSubplan` /
  :class:`~repro.engine.operators.MemoSubplan` materializations,
  :class:`~repro.engine.operators.HashJoin` build tables,
  :class:`~repro.engine.operators.ExistsProbe` booleans and per-binding
  memos, :class:`~repro.engine.operators.InPred` binding memos, and
  :class:`~repro.engine.operators.SemiJoinProbe` probe sets — all of which
  are only valid for the database they were computed against.

:func:`iter_plan_nodes` / :func:`iter_predicates` walk the full operator
tree, *including* the subplans nested inside WHERE-clause predicates, which
is where most of the state lives.

Build-side sharing
------------------

The trial campaigns run the same handful of queries over thousands of
generated databases, and generated table contents repeat (small domains,
small row caps) — yet every execution used to rebuild hash-join build
tables, semi-join probe sets and subquery materializations from scratch.
:class:`BuildSideCache` shares them *across executions and across queries,
keyed by content*: each shareable structure is a pure function of (a) the
normalized text of the subplan that computes it (:func:`share_signature` —
a canonical rendering of the subtree's operators, compiled column
positions and literals, plus the carrier configuration the structure
depends on), and (b) the bound rows of the base tables its subtree reads
(plus, for per-binding memo dicts, the outer values in the memo key, which
the dicts already encode).  Two *different* prepared statements whose
plans embed the same subquery over the same table contents therefore
reuse one build side — the cross-query sharing the always-on query
service leans on; ``cross_hits`` counts lookups served from a structure
another plan built.  :func:`bind_plan` restores structures whose content
key hits the cache, and :func:`unbind_plan` harvests the structures the
execution computed, so a repeated-content trial pays for its build sides
exactly once.  Entries hold copies made at bind time — never the
:class:`~repro.core.schema.Database` object — and the cache is a bounded
LRU (entry count and, optionally, an estimated-byte budget), so rebinding
to fresh content simply misses and ages the old entries out.
"""

from __future__ import annotations

import itertools
import sys
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.schema import Database
from ..core.values import Null
from .expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    IsNullPred,
    LiteralExpr,
    NotPred,
    OrPred,
)
from .operators import (
    CachedSubplan,
    CrossJoin,
    DistinctOp,
    ExistsPred,
    ExistsProbe,
    FilterOp,
    GenericJoin,
    HashJoin,
    HashSetOp,
    InPred,
    MemoSubplan,
    PlanNode,
    ProjectOp,
    RemapOp,
    SemiJoinProbe,
    SetOpNode,
    TableScan,
)

__all__ = [
    "iter_plan_nodes",
    "iter_predicates",
    "bind_plan",
    "reset_plan",
    "unbind_plan",
    "share_signature",
    "estimate_bytes",
    "BuildSideCache",
]


def iter_predicates(pred) -> Iterator[object]:
    """Every predicate node reachable from ``pred`` (including itself)."""
    yield pred
    if isinstance(pred, (AndPred, OrPred)):
        yield from iter_predicates(pred.left)
        yield from iter_predicates(pred.right)
    elif isinstance(pred, NotPred):
        yield from iter_predicates(pred.operand)


def iter_plan_nodes(plan: PlanNode) -> Iterator[Tuple[PlanNode, object]]:
    """Walk a plan tree, yielding ``(node, None)`` for operators and
    ``(None, predicate)`` for the predicate nodes inside filters — and
    recursing into the subplans of EXISTS/IN predicates."""
    yield plan, None
    if isinstance(plan, (CrossJoin, GenericJoin)):
        for child in plan.children:
            yield from iter_plan_nodes(child)
    elif isinstance(plan, (FilterOp,)):
        yield from iter_plan_nodes(plan.child)
        for pred in iter_predicates(plan.predicate):
            yield None, pred
            subplan = getattr(pred, "subplan", None)
            if subplan is not None:
                yield from iter_plan_nodes(subplan)
    elif isinstance(
        plan, (ProjectOp, DistinctOp, CachedSubplan, MemoSubplan, RemapOp)
    ):
        yield from iter_plan_nodes(plan.child)
    elif isinstance(plan, (SetOpNode, HashSetOp, HashJoin)):
        yield from iter_plan_nodes(plan.left)
        yield from iter_plan_nodes(plan.right)
    # TableScan / StaticScan are leaves.


# -- the build-side cache -----------------------------------------------------

_MISSING = object()

#: Process-unique serials, used two ways: as the *fallback* signature for
#: structures the renderer cannot prove pure (an opaque predicate, an
#: unknown operator — a fresh serial can never alias anything), and to tag
#: each plan with an owner id so cross-query hits are countable.
_share_serial = itertools.count(1)


def _plan_owner(plan) -> int:
    owner = getattr(plan, "_share_owner", None)
    if owner is None:
        owner = next(_share_serial)
        plan._share_owner = owner
    return owner


#: Maximum nesting ``estimate_bytes`` descends before treating a value as a
#: leaf; build-side structures are at most (list of) tries of rows, so real
#: values never hit it.
_ESTIMATE_DEPTH = 8


def estimate_bytes(value, _depth: int = 0) -> int:
    """Rough recursive ``sys.getsizeof`` over a build-side structure.

    An *estimate*: shared substructure is double-counted and interned
    objects are charged per reference, which is the safe direction for a
    byte budget.  Containers are walked to a bounded depth; rows are flat
    tuples of ints/strings/None, so the bound is never reached in practice.
    """
    size = sys.getsizeof(value, 64)
    if _depth >= _ESTIMATE_DEPTH:
        return size
    if isinstance(value, dict):
        for key, item in value.items():
            size += estimate_bytes(key, _depth + 1)
            size += estimate_bytes(item, _depth + 1)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            size += estimate_bytes(item, _depth + 1)
    return size


class _Fingerprint(tuple):
    """A table-content fingerprint whose hash is computed once.

    Content keys embed the bound rows of every table a carrier reads, so
    each cache probe hashes them; plain tuples re-hash every probe.  The
    fingerprint is memoized on the immutable Table, so caching the hash
    here turns the per-bind cost into one dict hit per table.  Equality is
    inherited — keys still compare the actual rows.
    """

    _hash: Optional[int] = None

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = tuple.__hash__(self)
        return value


class BuildSideCache:
    """Content-keyed LRU cache of derived execution structures.

    Values are whatever a shareable carrier computes during one execution —
    a hash-join build table, a semi-join probe set, a materialized subquery
    row list, or a per-binding memo dict.  Keys pair the carrier's
    normalized subplan text (:func:`share_signature`) with the bound
    contents of the base tables its subtree reads, so a hit is exact (dict
    key equality compares the actual rows, not a digest), rebinding to
    different content is automatically a miss — the invalidation story is
    the key itself — and two different plans embedding the same subquery
    share one entry (``cross_hits`` counts those).

    Eviction is LRU by entry count (``maxsize``) and, when ``max_bytes`` is
    set, by total estimated bytes.  Re-storing the *identical* object only
    re-walks the estimate when its top-level ``len()`` changed — the one
    way a harvested structure grows between executions is a memo dict
    gaining keys, and that shows in its length; build tables and tries are
    immutable once built.

    Entries also carry the row count :func:`unbind_plan` observed for the
    structure, so a plan that restores a cached build side can report
    cardinality feedback without re-walking it.
    """

    def __init__(self, maxsize: int = 128, max_bytes: Optional[int] = None):
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        #: key -> (value, owner serial of the storing plan, estimated
        #: bytes, top-level len at estimate time, observed row count)
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cross_hits = 0
        self.bytes = 0

    def lookup(self, key: tuple, reader: Optional[int] = None):
        """The cached value, or the module-private miss sentinel."""
        value, _rows = self.lookup_entry(key, reader)
        return value

    def lookup_entry(self, key: tuple, reader: Optional[int] = None):
        """``(value, observed row count)``, or ``(miss sentinel, None)``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return _MISSING, None
        value, owner, _nbytes, _length, rows = entry
        self.hits += 1
        if reader is not None and owner is not None and owner != reader:
            self.cross_hits += 1
        self._entries.move_to_end(key)
        return value, rows

    def store(
        self,
        key: tuple,
        value,
        owner: Optional[int] = None,
        rows: Optional[int] = None,
    ) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes -= old[2]
        try:
            length = len(value)
        except TypeError:
            length = -1
        if old is not None and old[0] is value and old[3] == length:
            nbytes = old[2]
            if rows is None:
                rows = old[4]
        else:
            nbytes = estimate_bytes(value)
        self._entries[key] = (value, owner, nbytes, length, rows)
        self.bytes += nbytes
        while len(self._entries) > self.maxsize or (
            self.max_bytes is not None
            and self.bytes > self.max_bytes
            and self._entries
        ):
            _entry = self._entries.popitem(last=False)[1]
            self.bytes -= _entry[2]
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cross_hits": self.cross_hits,
            "evictions": self.evictions,
            "size": len(self._entries),
            "entries": len(self._entries),
            "bytes": self.bytes,
            "maxsize": self.maxsize,
            "max_bytes": self.max_bytes or 0,
        }


# -- normalized subplan text --------------------------------------------------
#
# ``share_signature`` renders the structure a cached value is a pure
# function of into a canonical string: operator kinds, compiled (depth,
# index) column positions, typed literals, predicate shapes — plus the
# carrier configuration that shapes the value (hash-join build keys,
# generic-join variables, memo reference positions).  Everything *not* in
# the rendering is deliberately excluded because the value does not depend
# on it: a ``SemiJoinProbe``'s probe set is a function of its subplan only,
# so statements probing the same subquery with different left-hand
# expressions still share one probe set.  Anything the renderer cannot
# prove pure (an opaque callable, an operator it does not know) gets a
# fresh process-unique serial instead — private, never aliased.


def _expr_text(expr) -> tuple:
    if isinstance(expr, ColumnRef):
        return ("col", expr.depth, expr.index)
    if isinstance(expr, LiteralExpr):
        value = expr.value
        return ("lit", type(value).__name__, value)
    return ("opaque", next(_share_serial))


def _pred_text(pred) -> tuple:
    if isinstance(pred, ConstPred):
        return ("const", pred.value)
    if isinstance(pred, ComparePred):
        return ("cmp", pred.op, _expr_text(pred.left), _expr_text(pred.right))
    if isinstance(pred, IsNullPred):
        return ("isnull", pred.negated, _expr_text(pred.expr))
    if isinstance(pred, AndPred):
        return ("and", _pred_text(pred.left), _pred_text(pred.right))
    if isinstance(pred, OrPred):
        return ("or", _pred_text(pred.left), _pred_text(pred.right))
    if isinstance(pred, NotPred):
        return ("not", _pred_text(pred.operand))
    if isinstance(pred, ExistsPred):
        return ("exists", _plan_text(pred.subplan))
    if isinstance(pred, ExistsProbe):
        return ("existsprobe", pred.closed, pred._refs, _plan_text(pred.subplan))
    if isinstance(pred, InPred):
        return (
            "in",
            pred.negated,
            pred._refs,
            tuple(_expr_text(e) for e in pred.exprs),
            _plan_text(pred.subplan),
        )
    if isinstance(pred, SemiJoinProbe):
        return (
            "semijoinprobe",
            pred.negated,
            tuple(_expr_text(e) for e in pred.exprs),
            _plan_text(pred.subplan),
        )
    return ("opaque", next(_share_serial))


def _plan_text(node: PlanNode) -> tuple:
    if isinstance(node, TableScan):
        return ("scan", node.table, node.arity)
    if isinstance(node, CrossJoin):
        return ("cross",) + tuple(_plan_text(c) for c in node.children)
    if isinstance(node, GenericJoin):
        return ("generic", node.variables) + tuple(
            _plan_text(c) for c in node.children
        )
    if isinstance(node, FilterOp):
        return ("filter", _pred_text(node.predicate), _plan_text(node.child))
    if isinstance(node, ProjectOp):
        return (
            "project",
            tuple(_expr_text(e) for e in node.expressions),
            _plan_text(node.child),
        )
    if isinstance(node, DistinctOp):
        return ("distinct", _plan_text(node.child))
    if isinstance(node, CachedSubplan):
        return ("cachedsub", _plan_text(node.child))
    if isinstance(node, MemoSubplan):
        return ("memosub", node.memo_refs, _plan_text(node.child))
    if isinstance(node, RemapOp):
        return ("remap", node.mapping, _plan_text(node.child))
    if isinstance(node, HashJoin):
        return (
            "hashjoin",
            node.left_keys,
            node.right_keys,
            _plan_text(node.left),
            _plan_text(node.right),
        )
    if isinstance(node, (SetOpNode, HashSetOp)):
        return (
            type(node).__name__.lower(),
            node.op,
            node.all,
            _plan_text(node.left),
            _plan_text(node.right),
        )
    # StaticScan (rows captured at plan time, not content-keyed) and any
    # operator a future tier adds: never share.
    return ("opaque", next(_share_serial))


def share_signature(carrier, subtree: PlanNode) -> str:
    """The normalized text a carrier's cached value is keyed by.

    Includes exactly the structure the value depends on: the feeding
    subtree's rendering plus the carrier configuration that shapes the
    structure (build keys, join variables, memo reference positions) —
    and *excludes* probe-side details the value does not depend on, so
    different statements sharing a subquery share the entry.
    """
    if isinstance(carrier, CachedSubplan):
        signature = ("cached", _plan_text(carrier.child))
    elif isinstance(carrier, MemoSubplan):
        signature = ("memo", carrier.memo_refs, _plan_text(carrier.child))
    elif isinstance(carrier, HashJoin):
        # The build table hashes the right child on right_keys; the left
        # (probe) side is irrelevant, so different probe sides share.
        signature = ("build", carrier.right_keys, _plan_text(carrier.right))
    elif isinstance(carrier, GenericJoin):
        signature = ("tries", carrier.variables) + tuple(
            _plan_text(c) for c in carrier.children
        )
    elif isinstance(carrier, ExistsProbe):
        if carrier.closed:
            signature = ("exists1", _plan_text(carrier.subplan))
        else:
            signature = ("existsmemo", carrier._refs, _plan_text(carrier.subplan))
    elif isinstance(carrier, InPred):
        # The memo holds the subplan's distinct rows per outer binding —
        # negation and the probe expressions only matter at probe time.
        signature = ("inmemo", carrier._refs, _plan_text(carrier.subplan))
    elif isinstance(carrier, SemiJoinProbe):
        signature = ("semijoin", _plan_text(carrier.subplan))
    else:
        signature = ("node", next(_share_serial))
    return repr(signature)


def _shareable_carriers(nodes) -> List[Tuple[object, PlanNode]]:
    """(carrier, feeding subtree) pairs for every structure worth sharing.

    A structure is shareable when it is a pure function of its subtree's
    bound table contents: closed materializations (``CachedSubplan``, a
    closed ``HashJoin`` build side, ``SemiJoinProbe`` sets, a closed
    ``ExistsProbe`` boolean) trivially are, and per-binding memo dicts
    (``MemoSubplan``, correlated ``ExistsProbe`` / ``InPred``) are pure
    once the binding — already part of each dict key — is accounted for.
    """
    carriers: List[Tuple[object, PlanNode]] = []
    for node, pred in nodes:
        if isinstance(node, (CachedSubplan, MemoSubplan)):
            carriers.append((node, node.child))
        elif isinstance(node, HashJoin):
            if node.right.free_refs() == frozenset():
                carriers.append((node, node.right))
        elif isinstance(node, GenericJoin):
            if node.free_refs() == frozenset():
                # The tries are a pure function of every child's rows, so
                # the feeding subtree is the whole node.
                carriers.append((node, node))
        elif isinstance(pred, ExistsProbe):
            if pred.closed or pred._refs is not None:
                carriers.append((pred, pred.subplan))
        elif isinstance(pred, InPred):
            if pred._refs is not None:
                carriers.append((pred, pred.subplan))
        elif isinstance(pred, SemiJoinProbe):
            carriers.append((pred, pred.subplan))
    return carriers


def _subtree_tables(subtree: PlanNode) -> Tuple[str, ...]:
    """Sorted names of the base tables a carrier's subtree reads."""
    names = set()
    for node, _pred in iter_plan_nodes(subtree):
        if isinstance(node, TableScan):
            names.add(node.table)
    return tuple(sorted(names))


def _share_plan(plan: PlanNode, nodes) -> List[Tuple[object, str, Tuple[str, ...]]]:
    """The plan's shareable carriers with their signatures and table names.

    Purely structural, so it is computed once per plan object and cached on
    it — the per-bind work is then only fingerprinting the bound rows of
    the tables the carriers actually read.
    """
    cached = getattr(plan, "_share_analysis", None)
    if cached is None:
        cached = [
            (carrier, share_signature(carrier, subtree), _subtree_tables(subtree))
            for carrier, subtree in _shareable_carriers(nodes)
        ]
        plan._share_analysis = cached
    return cached


def _restore(carrier, value, rows: Optional[int] = None) -> None:
    if isinstance(carrier, CachedSubplan):
        carrier._cache = value
    elif isinstance(carrier, MemoSubplan):
        carrier._memo = value
    elif isinstance(carrier, HashJoin):
        carrier._table = value
        carrier._restored_rows = rows
    elif isinstance(carrier, GenericJoin):
        carrier._tries = value
        carrier._restored_rows = rows
    elif isinstance(carrier, ExistsProbe):
        if carrier.closed:
            carrier._known = value
        else:
            carrier._memo = value
    elif isinstance(carrier, InPred):
        carrier._memo = value
    elif isinstance(carrier, SemiJoinProbe):
        carrier._keys, carrier._null_rows, carrier._rows = value
        # Keep the cache's tuple so the next harvest returns the identical
        # object and the re-store can skip its byte re-estimation.
        carrier._harvested = value


def _harvest(carrier):
    """The carrier's computed structure, or the miss sentinel if unbuilt."""
    if isinstance(carrier, CachedSubplan):
        return carrier._cache if carrier._cache is not None else _MISSING
    if isinstance(carrier, MemoSubplan):
        return carrier._memo if carrier._memo else _MISSING
    if isinstance(carrier, HashJoin):
        return carrier._table if carrier._table is not None else _MISSING
    if isinstance(carrier, GenericJoin):
        return carrier._tries if carrier._tries is not None else _MISSING
    if isinstance(carrier, ExistsProbe):
        if carrier.closed:
            return carrier._known if carrier._known is not None else _MISSING
        return carrier._memo if carrier._memo else _MISSING
    if isinstance(carrier, InPred):
        return carrier._memo if carrier._memo else _MISSING
    if isinstance(carrier, SemiJoinProbe):
        if carrier._rows is not None:
            value = getattr(carrier, "_harvested", None)
            if (
                value is None
                or value[0] is not carrier._keys
                or value[1] is not carrier._null_rows
                or value[2] is not carrier._rows
            ):
                value = (carrier._keys, carrier._null_rows, carrier._rows)
                carrier._harvested = value
            return value
    return _MISSING


def bind_plan(
    plan: PlanNode,
    db: Database,
    cache: Optional[BuildSideCache] = None,
    columnar: bool = False,
) -> PlanNode:
    """Bind every :class:`TableScan` to ``db`` and reset execution caches.

    Returns the same plan object (mutated in place): binding is cheap — one
    tree walk — compared to re-planning and re-optimizing the query, which
    is the point of the plan cache.  The Null -> None row conversion (and,
    with ``columnar=True``, the row -> column transposition the vectorized
    tier scans from) is a pure function of the immutable
    :class:`~repro.core.table.Table`, so both are memoized *on the table*:
    rebinding the same database — or another plan reading the same table —
    pays for the conversion exactly once, and the memos die with the
    database rather than pinning it to a cached plan.

    With a ``cache``, shareable structures whose content key hits are
    restored instead of recomputed, and the (carrier, key) pairs are
    remembered on the plan so :func:`unbind_plan` can harvest what the
    execution builds.  Sharing engages from a plan's *second* bind — or
    immediately, when the cache already holds entries another plan may
    have left for it (the cross-query case).  A lone plan executed once
    can neither hit nor be hit, so the trial campaigns — one fresh plan
    per generated query, empty cache — pay none of the bookkeeping.
    """
    nodes = []
    bound: Dict[str, list] = {}
    for node, pred in iter_plan_nodes(plan):
        if isinstance(node, TableScan):
            node.data = bound.get(node.table)
            if node.data is None:
                table = db.table(node.table)
                rows = table._scan_rows
                if rows is None:
                    rows = table._scan_rows = [
                        tuple(None if isinstance(v, Null) else v for v in record)
                        for record in table.bag
                    ]
                node.data = bound[node.table] = rows
            if columnar:
                table = db.table(node.table)
                cols = table._scan_cols
                if cols is None:
                    if table._scan_rows:
                        cols = list(map(list, zip(*table._scan_rows)))
                    else:
                        cols = [[] for _ in range(node.arity)]
                    table._scan_cols = cols
                node._columns = (node.data, cols)
        _reset_state(node, pred)
        nodes.append((node, pred))
    binds = getattr(plan, "_bind_count", 0) + 1
    plan._bind_count = binds
    if cache is not None and (binds >= 2 or len(cache) > 0):
        owner = _plan_owner(plan)
        fingerprints: Dict[str, tuple] = {}
        bindings = []
        for carrier, signature, tables in _share_plan(plan, nodes):
            contents = []
            for name in tables:
                fingerprint = fingerprints.get(name)
                if fingerprint is None:
                    # Pure function of the immutable Table, so it is
                    # memoized there alongside the scan rows themselves —
                    # rebinding the same database reuses one tuple (and
                    # its cached hash) instead of re-copying per bind.
                    table = db.table(name)
                    fingerprint = table._scan_fp
                    if fingerprint is None:
                        fingerprint = table._scan_fp = _Fingerprint(bound[name])
                    fingerprints[name] = fingerprint
                contents.append((name, fingerprint))
            # The execution tier is part of the key: the columnar backend
            # stores build sides in a different shape (column vectors +
            # row-id groups) than the row-wise tiers.
            key = (signature, columnar, tuple(contents))
            bindings.append((carrier, key))
            value, rows = cache.lookup_entry(key, reader=owner)
            if value is not _MISSING:
                _restore(carrier, value, rows)
        plan._shared_bindings = bindings
    else:
        plan._shared_bindings = []
    return plan


def reset_plan(plan: PlanNode) -> PlanNode:
    """Clear the per-execution memos of a plan without rebinding tables."""
    for node, pred in iter_plan_nodes(plan):
        _reset_state(node, pred)
    return plan


def unbind_plan(
    plan: PlanNode, cache: Optional[BuildSideCache] = None
) -> PlanNode:
    """Drop table data and memos so a cached plan holds no database rows.

    A plan sitting in the :class:`~repro.engine.Engine` cache would
    otherwise pin the last-executed database (scan rows, probe sets,
    subquery materializations) until its next execution overwrites them.
    With a ``cache``, the structures this execution built are harvested
    into it first, under the content keys recorded by :func:`bind_plan`.
    """
    observed_tables: Dict[str, int] = {}
    observed_nodes: Dict[str, int] = {}
    # Carrier id -> rows observed, recorded alongside the cache entry so a
    # future execution that restores the structure replays the count
    # instead of re-walking an unchanged build table or trie forest.
    carrier_rows: Dict[int, int] = {}
    walk = list(iter_plan_nodes(plan))
    for position, (node, pred) in enumerate(walk):
        if isinstance(node, TableScan):
            if node.data is not None:
                count = len(node.data)
                observed_tables[node.table] = count
                node.observed_rows = count
            node.data = None
            node._columns = None  # the columnar memo references the rows
        elif isinstance(node, CachedSubplan) and node._cache is not None:
            observed_nodes[f"{position}:CachedSubplan"] = len(node._cache)
        elif isinstance(node, HashJoin) and node._table is not None:
            count = getattr(node, "_restored_rows", None)
            if count is None:
                count = _build_size(node._table)
            observed_nodes[f"{position}:HashJoin"] = count
            carrier_rows[id(node)] = count
        elif isinstance(node, GenericJoin) and node._tries is not None:
            count = getattr(node, "_restored_rows", None)
            if count is None:
                count = sum(_trie_size(trie) for trie in node._tries)
            observed_nodes[f"{position}:GenericJoin"] = count
            carrier_rows[id(node)] = count
    if cache is not None:
        owner = _plan_owner(plan)
        for carrier, key in getattr(plan, "_shared_bindings", ()):
            value = _harvest(carrier)
            if value is not _MISSING:
                cache.store(
                    key, value, owner=owner, rows=carrier_rows.get(id(carrier))
                )
    plan._shared_bindings = []
    for node, pred in walk:
        _reset_state(node, pred)
    # Cardinality feedback: what this execution actually saw, keyed by
    # base table (scans) and by walk position (intermediate structures).
    # Stored under a private name so a bare-TableScan root keeps its
    # Optional[int] ``observed_rows`` field intact for the optimizer.
    plan._observed_feedback = {"tables": observed_tables, "nodes": observed_nodes}
    return plan


def _build_size(table) -> int:
    """Rows in a hash-join build side, either tier's shape: the row-wise
    tier stores ``key -> [row, ...]``, the columnar tier ``(right columns,
    key -> [row id, ...])``."""
    if isinstance(table, tuple):
        table = table[1]
    return sum(len(group) for group in table.values())


def _trie_size(trie) -> int:
    """Rows indexed by one generic-join trie (or held by a variable-free
    child's plain row list)."""
    if isinstance(trie, dict):
        return sum(_trie_size(level) for level in trie.values())
    return len(trie)


def _reset_state(node, pred) -> None:
    # Memo dicts are *re-bound*, never cleared in place: the harvested dict
    # may live on in the build-side cache, where clearing would wipe it.
    if isinstance(node, CachedSubplan):
        node._cache = None
    elif isinstance(node, MemoSubplan):
        node._memo = {}
    elif isinstance(node, HashJoin):
        node._table = None
        node._restored_rows = None
    elif isinstance(node, GenericJoin):
        node._tries = None
        node._restored_rows = None
    if isinstance(pred, ExistsProbe):
        pred._known = None
        pred._memo = {}
    elif isinstance(pred, InPred):
        pred._memo = {}
    elif isinstance(pred, SemiJoinProbe):
        pred._keys = None
        pred._null_rows = None
        pred._rows = None
        pred._harvested = None
    elif isinstance(pred, ExistsPred):
        pass  # stateless: re-executes its subplan every probe
