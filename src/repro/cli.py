"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        evaluate a SQL query on a database described by a JSON file
``translate``  print the relational-algebra translation of a query (Thm 1)
``two-valued`` print the Figure 10 two-valued rewriting of a query (Thm 2)
``validate``   run a Section 4 validation campaign
``generate``   print random queries from the Section 4 generator

The database JSON format is::

    {
      "schema": {"R": ["A"], "S": ["A"]},
      "tables": {"R": [[1], [null]], "S": [[null]]}
    }

JSON ``null`` becomes SQL NULL.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Optional, Sequence

from .algebra import desugar, to_sqlra
from .algebra.printer import print_expression_tree
from .core.schema import Database, Schema
from .core.values import NULL
from .generator.config import PAPER_CONFIG
from .generator.datafiller import DataFillerConfig
from .generator.queries import QueryGenerator
from .semantics.evaluator import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from .semantics.two_valued import TwoValuedTranslator
from .sql.annotate import annotate
from .sql.printer import print_query
from .validation.report import format_campaigns
from .validation.runner import ValidationRunner

__all__ = ["main", "load_database"]


def load_database(path: str) -> Database:
    """Load a schema + instance from the JSON format described above."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = Schema({name: tuple(attrs) for name, attrs in payload["schema"].items()})
    tables = {
        name: [
            tuple(NULL if value is None else value for value in row) for row in rows
        ]
        for name, rows in payload.get("tables", {}).items()
    }
    return Database(schema, tables)


def _cmd_run(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    star = STAR_COMPOSITIONAL if args.dialect == "postgres" else STAR_STANDARD
    semantics = SqlSemantics(schema, star_style=star)
    print(f"-- annotated: {print_query(query)}")
    print(semantics.run(query, db).pretty(max_rows=args.max_rows))
    return 0


def _cmd_translate(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    sqlra = to_sqlra(query, schema)
    if args.pure:
        expression = desugar(sqlra, schema)
        print("-- pure relational algebra (Theorem 1 / Proposition 2):")
    else:
        expression = sqlra
        print("-- SQL-RA (Figure 9):")
    print(print_expression_tree(expression))
    return 0


def _cmd_two_valued(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    translator = TwoValuedTranslator(schema, args.equality)
    translated = translator.translate_query(query)
    print(f"-- Q′ with ⟦Q⟧ = ⟦Q′⟧2v (equality: {args.equality}):")
    print(print_query(translated))
    return 0


def _cmd_validate(args) -> int:
    reports = []
    failed = False
    for variant in args.variants:
        runner = ValidationRunner(
            variant=variant, data_config=DataFillerConfig(max_rows=args.rows)
        )
        report = runner.run(trials=args.trials, base_seed=args.seed)
        reports.append(report)
        for mismatch in report.mismatches[: args.show_mismatches]:
            print(runner.explain(mismatch), file=sys.stderr)
        failed = failed or bool(report.mismatches)
    print(format_campaigns(reports))
    return 1 if failed else 0


def _cmd_generate(args) -> int:
    from .core.schema import validation_schema

    generator = QueryGenerator(
        validation_schema(), PAPER_CONFIG, random.Random(args.seed)
    )
    for i in range(args.count):
        print(print_query(generator.generate(seed=args.seed + i), args.dialect) + ";")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable formal semantics of basic SQL (VLDB 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a query under the formal semantics")
    run.add_argument("query")
    run.add_argument("--database", "-d", required=True, help="JSON database file")
    run.add_argument(
        "--dialect", choices=("standard", "postgres"), default="standard"
    )
    run.add_argument("--max-rows", type=int, default=50)
    run.set_defaults(func=_cmd_run)

    translate = sub.add_parser(
        "translate", help="translate a data manipulation query to algebra"
    )
    translate.add_argument("query")
    translate.add_argument("--database", "-d", required=True)
    translate.add_argument(
        "--pure", action="store_true", help="desugar SQL-RA into pure RA"
    )
    translate.set_defaults(func=_cmd_translate)

    twov = sub.add_parser(
        "two-valued", help="print the Figure 10 two-valued rewriting"
    )
    twov.add_argument("query")
    twov.add_argument("--database", "-d", required=True)
    twov.add_argument(
        "--equality", choices=("conflating", "syntactic"), default="conflating"
    )
    twov.set_defaults(func=_cmd_two_valued)

    validate = sub.add_parser("validate", help="run a validation campaign")
    validate.add_argument("--trials", type=int, default=200)
    validate.add_argument("--rows", type=int, default=6)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--variants", nargs="+", choices=("postgres", "oracle"),
        default=["postgres", "oracle"],
    )
    validate.add_argument("--show-mismatches", type=int, default=5)
    validate.set_defaults(func=_cmd_validate)

    generate = sub.add_parser("generate", help="print random queries")
    generate.add_argument("--count", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--dialect", choices=("standard", "postgres", "oracle"), default="standard"
    )
    generate.set_defaults(func=_cmd_generate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
