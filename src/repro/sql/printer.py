"""Dialect-aware rendering of query ASTs back to SQL text.

The printers emit SQL that the parser accepts (round-tripping is covered by
property tests) and that real systems would accept in the corresponding
dialect:

* ``standard`` / ``postgres`` — ``EXCEPT``;
* ``oracle`` — ``MINUS`` in place of ``EXCEPT`` (Section 4's syntactic
  adjustment);
* ``mysql`` — rejects ``EXCEPT`` altogether, since MySQL (as of the paper)
  "does not have it".

Identifiers that collide with keywords or contain unusual characters are
double-quoted.
"""

from __future__ import annotations

from ..core.errors import CompileError
from ..core.values import FullName, Name, Null, Term
from .ast import (
    And,
    BareColumn,
    COMPARISONS,
    Condition,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SelectItem,
    SetOp,
    TrueCond,
)
from .lexer import KEYWORDS

__all__ = ["print_query", "print_condition", "print_term", "DIALECTS"]

DIALECTS = ("standard", "postgres", "oracle", "mysql")


def print_query(query: Query, dialect: str = "standard") -> str:
    """Render a query AST as SQL text in the given dialect."""
    _check_dialect(dialect)
    return _query(query, dialect)


def print_condition(condition: Condition, dialect: str = "standard") -> str:
    _check_dialect(dialect)
    return _condition(condition, dialect)


def print_term(term: Term) -> str:
    """Render a term: constant, NULL, full name or (surface) bare column."""
    if isinstance(term, FullName):
        return f"{_ident(term.qualifier)}.{_ident(term.attribute)}"
    if isinstance(term, BareColumn):
        return _ident(term.name)
    if isinstance(term, Null):
        return "NULL"
    if isinstance(term, str):
        return "'" + term.replace("'", "''") + "'"
    if isinstance(term, int):
        return str(term)
    raise TypeError(f"not a term: {term!r}")


def _check_dialect(dialect: str) -> None:
    if dialect not in DIALECTS:
        raise ValueError(f"unknown dialect {dialect!r}; expected one of {DIALECTS}")


def _ident(name: Name) -> str:
    if name.upper() in KEYWORDS or not name or not (
        (name[0].isalpha() or name[0] == "_")
        and all(ch.isalnum() or ch == "_" for ch in name)
    ):
        return '"' + name + '"'
    return name


def _query(query: Query, dialect: str) -> str:
    if isinstance(query, Select):
        return _select(query, dialect)
    if isinstance(query, SetOp):
        op = query.op
        if op == "EXCEPT":
            if dialect == "oracle":
                op = "MINUS"
            elif dialect == "mysql":
                raise CompileError("MySQL has no EXCEPT operation")
        keyword = f"{op} ALL" if query.all else op
        left = _operand(query.left, dialect, parent=query.op, side="left")
        right = _operand(query.right, dialect, parent=query.op, side="right")
        return f"{left} {keyword} {right}"
    raise TypeError(f"not a query: {query!r}")


def _operand(query: Query, dialect: str, parent: str, side: str) -> str:
    text = _query(query, dialect)
    if isinstance(query, Select):
        return text
    # Parenthesize whenever precedence or associativity could be misread.
    needs_parens = True
    if side == "left" and isinstance(query, SetOp):
        same_level = (parent in ("UNION", "EXCEPT")) == (
            query.op in ("UNION", "EXCEPT")
        )
        higher = query.op == "INTERSECT" and parent in ("UNION", "EXCEPT")
        needs_parens = not (same_level or higher)
    return f"({text})" if needs_parens else text


def _select(query: Select, dialect: str) -> str:
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    if query.is_star:
        parts.append("*")
    else:
        parts.append(", ".join(_select_item(item) for item in query.items))
    parts.append("FROM")
    parts.append(", ".join(_from_item(item, dialect) for item in query.from_items))
    if not isinstance(query.where, TrueCond):
        parts.append("WHERE")
        parts.append(_condition(query.where, dialect))
    return " ".join(parts)


def _select_item(item: SelectItem) -> str:
    rendered = print_term(item.term)
    if item.alias:
        return f"{rendered} AS {_ident(item.alias)}"
    return rendered


def _from_item(item: FromItem, dialect: str) -> str:
    if item.is_base_table:
        rendered = _ident(item.table)
    else:
        rendered = f"({_query(item.table, dialect)})"
    alias = f" AS {_ident(item.alias)}" if item.alias else ""
    if item.column_aliases is not None:
        alias += "(" + ", ".join(_ident(a) for a in item.column_aliases) + ")"
    return rendered + alias


_PRECEDENCE = {"OR": 1, "AND": 2, "NOT": 3}


def _condition(condition: Condition, dialect: str, parent_level: int = 0) -> str:
    if isinstance(condition, TrueCond):
        text, level = "TRUE", 9
    elif isinstance(condition, FalseCond):
        text, level = "FALSE", 9
    elif isinstance(condition, Predicate):
        text, level = _predicate(condition), 9
    elif isinstance(condition, IsNull):
        keyword = "IS NOT NULL" if condition.negated else "IS NULL"
        text, level = f"{print_term(condition.term)} {keyword}", 9
    elif isinstance(condition, InQuery):
        if len(condition.terms) == 1:
            left = print_term(condition.terms[0])
        else:
            left = "(" + ", ".join(print_term(t) for t in condition.terms) + ")"
        keyword = "NOT IN" if condition.negated else "IN"
        text = f"{left} {keyword} ({_query(condition.query, dialect)})"
        level = 9
    elif isinstance(condition, Exists):
        text, level = f"EXISTS ({_query(condition.query, dialect)})", 9
    elif isinstance(condition, Not):
        inner = _condition(condition.operand, dialect, _PRECEDENCE["NOT"])
        text, level = f"NOT {inner}", _PRECEDENCE["NOT"]
    elif isinstance(condition, And):
        left = _condition(condition.left, dialect, _PRECEDENCE["AND"] - 1)
        right = _condition(condition.right, dialect, _PRECEDENCE["AND"])
        text, level = f"{left} AND {right}", _PRECEDENCE["AND"]
    elif isinstance(condition, Or):
        left = _condition(condition.left, dialect, _PRECEDENCE["OR"] - 1)
        right = _condition(condition.right, dialect, _PRECEDENCE["OR"])
        text, level = f"{left} OR {right}", _PRECEDENCE["OR"]
    else:
        raise TypeError(f"not a condition: {condition!r}")
    if level < parent_level or (level == parent_level and level in (1, 2)):
        return f"({text})"
    return text


def _predicate(predicate: Predicate) -> str:
    if predicate.name in COMPARISONS and len(predicate.args) == 2:
        left, right = predicate.args
        return f"{print_term(left)} {predicate.name} {print_term(right)}"
    if predicate.name == "LIKE" and len(predicate.args) == 2:
        value, pattern = predicate.args
        return f"{print_term(value)} LIKE {print_term(pattern)}"
    args = ", ".join(print_term(arg) for arg in predicate.args)
    return f"{predicate.name}({args})"
