"""Random query/data generators and TPC-H structural statistics (Section 4)."""

from .config import DM_CONFIG, GeneratorConfig, PAPER_CONFIG
from .datafiller import PAPER_ROW_CAP, DataFillerConfig, fill_database
from .queries import QueryGenerator
from .tpch import TPCH_QUERY_STATS, QueryStats, tpch_schema, tpch_statistics

__all__ = [
    "GeneratorConfig",
    "PAPER_CONFIG",
    "DM_CONFIG",
    "QueryGenerator",
    "DataFillerConfig",
    "fill_database",
    "PAPER_ROW_CAP",
    "tpch_schema",
    "tpch_statistics",
    "TPCH_QUERY_STATS",
    "QueryStats",
]
