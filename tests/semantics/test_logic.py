"""The three logic strategies: 3VL and the two two-valued readings of §6."""

import pytest

from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.core.values import NULL
from repro.semantics.logic import (
    THREE_VALUED,
    TWO_VALUED_CONFLATING,
    TWO_VALUED_SYNTACTIC,
    get_logic,
)
from repro.semantics.predicates import default_registry

REGISTRY = default_registry()


class TestThreeValued:
    logic = THREE_VALUED

    def test_equality_of_constants(self):
        assert self.logic.equal(1, 1) is TRUE
        assert self.logic.equal(1, 2) is FALSE

    def test_equality_with_null_unknown(self):
        assert self.logic.equal(1, NULL) is UNKNOWN
        assert self.logic.equal(NULL, NULL) is UNKNOWN

    def test_predicate_with_null_unknown(self):
        assert self.logic.predicate(REGISTRY, "<", (NULL, 3)) is UNKNOWN
        assert self.logic.predicate(REGISTRY, "<", (1, 3)) is TRUE

    def test_cross_type_equality_false(self):
        assert self.logic.equal(1, "1") is FALSE


class TestTwoValuedConflating:
    logic = TWO_VALUED_CONFLATING

    def test_null_conflates_to_false(self):
        assert self.logic.equal(1, NULL) is FALSE
        assert self.logic.equal(NULL, NULL) is FALSE
        assert self.logic.predicate(REGISTRY, "<", (NULL, 3)) is FALSE

    def test_non_null_classical(self):
        assert self.logic.equal(2, 2) is TRUE
        assert self.logic.predicate(REGISTRY, ">=", (3, 3)) is TRUE


class TestTwoValuedSyntactic:
    logic = TWO_VALUED_SYNTACTIC

    def test_null_equals_null_true(self):
        """Definition 2: NULL ≐ NULL is t."""
        assert self.logic.equal(NULL, NULL) is TRUE

    def test_null_vs_constant_false(self):
        assert self.logic.equal(1, NULL) is FALSE
        assert self.logic.equal(NULL, 1) is FALSE

    def test_equality_predicate_uses_syntactic(self):
        assert self.logic.predicate(REGISTRY, "=", (NULL, NULL)) is TRUE

    def test_other_predicates_conflate(self):
        assert self.logic.predicate(REGISTRY, "<", (NULL, 3)) is FALSE
        assert self.logic.predicate(REGISTRY, "<>", (NULL, NULL)) is FALSE


def test_get_logic_by_name():
    assert get_logic("3vl") is THREE_VALUED
    assert get_logic("2vl-conflating") is TWO_VALUED_CONFLATING
    assert get_logic("2vl-syntactic") is TWO_VALUED_SYNTACTIC


def test_get_logic_unknown():
    with pytest.raises(ValueError):
        get_logic("4vl")


def test_two_valued_logics_never_return_unknown():
    values = (NULL, 0, 1, "a")
    for logic in (TWO_VALUED_CONFLATING, TWO_VALUED_SYNTACTIC):
        for a in values:
            for b in values:
                assert logic.equal(a, b) in (TRUE, FALSE)


def test_repr():
    assert "3vl" in repr(THREE_VALUED)
