"""The Datafiller substitute: random instances of a schema."""

import random

import pytest

from repro.core import NULL, Schema, validation_schema
from repro.core.values import Null
from repro.generator.datafiller import PAPER_ROW_CAP, DataFillerConfig, fill_database


def test_paper_row_cap_constant():
    assert PAPER_ROW_CAP == 50


def test_row_counts_within_bounds():
    schema = validation_schema()
    config = DataFillerConfig(max_rows=5, min_rows=2)
    db = fill_database(schema, random.Random(0), config)
    for name in schema.table_names:
        assert 2 <= len(db.table(name)) <= 5


def test_arities_match_schema():
    schema = validation_schema()
    db = fill_database(schema, random.Random(1), DataFillerConfig(max_rows=3))
    for name in schema.table_names:
        table = db.table(name)
        assert table.arity == schema.arity(name)


def test_deterministic_given_seed():
    schema = validation_schema(3)
    a = fill_database(schema, random.Random(5), DataFillerConfig(max_rows=10))
    b = fill_database(schema, random.Random(5), DataFillerConfig(max_rows=10))
    for name in schema.table_names:
        assert a.table(name).bag == b.table(name).bag


def test_values_in_domain():
    schema = Schema({"R": ("A",)})
    config = DataFillerConfig(max_rows=200, min_rows=200, min_value=3, max_value=5, null_rate=0.0)
    db = fill_database(schema, random.Random(2), config)
    for (value,) in db.table("R").bag:
        assert value in (3, 4, 5)


def test_null_rate_zero_means_no_nulls():
    schema = Schema({"R": ("A", "B")})
    config = DataFillerConfig(max_rows=100, min_rows=100, null_rate=0.0)
    db = fill_database(schema, random.Random(3), config)
    assert not any(
        isinstance(v, Null) for row in db.table("R").bag for v in row
    )


def test_null_rate_one_means_all_nulls():
    schema = Schema({"R": ("A",)})
    config = DataFillerConfig(max_rows=20, min_rows=20, null_rate=1.0)
    db = fill_database(schema, random.Random(4), config)
    assert all(row == (NULL,) for row in db.table("R").bag)


def test_nulls_appear_at_default_rate():
    schema = Schema({"R": ("A",)})
    config = DataFillerConfig(max_rows=500, min_rows=500)
    db = fill_database(schema, random.Random(6), config)
    nulls = sum(1 for (v,) in db.table("R").bag if isinstance(v, Null))
    assert 40 < nulls < 180  # ~20% of 500


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        DataFillerConfig(max_rows=1, min_rows=2)
    with pytest.raises(ValueError):
        DataFillerConfig(null_rate=1.5)
    with pytest.raises(ValueError):
        DataFillerConfig(min_rows=-1, max_rows=3)


def test_default_rng():
    schema = Schema({"R": ("A",)})
    db = fill_database(schema, config=DataFillerConfig(max_rows=2))
    assert len(db.table("R")) <= 2
