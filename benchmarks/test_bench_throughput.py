"""Experiment PERF (engineering): throughput of the main components.

The paper notes its implementation "is not for performance" (it computes
Cartesian products); these microbenchmarks document the cost of each
pipeline stage so regressions are visible.  pytest-benchmark measures:

* random query generation,
* parsing + printing round trips,
* formal-semantics evaluation,
* reference-engine execution — optimized (the default engine: pushdown,
  hash joins, cached subquery probes) and naive (``optimize=False``,
  product-then-filter), at the paper's 50-row table cap; the seed repo
  benchmarked 5-row tables only because the naive engine could not handle
  the paper's own scale,
* the full Theorem 1 translation (to SQL-RA + desugaring).

``scripts/bench.py`` runs the same workloads standalone and writes
``BENCH_engine.json`` so the numbers are machine-readable across PRs.
"""

import random

import pytest

from repro.algebra import desugar, to_sqlra
from repro.core import validation_schema
from repro.engine import Engine
from repro.generator import (
    DM_CONFIG,
    DataFillerConfig,
    PAPER_CONFIG,
    PAPER_ROW_CAP,
    QueryGenerator,
    fill_database,
)
from repro.semantics import STAR_COMPOSITIONAL, SqlSemantics
from repro.sql import parse_query, print_query

SCHEMA = validation_schema()


def make_query(seed, config=PAPER_CONFIG):
    return QueryGenerator(SCHEMA, config, random.Random(seed)).generate()


def make_db(seed, rows=5):
    return fill_database(SCHEMA, random.Random(seed), DataFillerConfig(max_rows=rows))


def test_bench_query_generation(benchmark):
    generator = QueryGenerator(SCHEMA)
    counter = iter(range(10_000_000))

    def generate():
        return generator.generate(seed=next(counter))

    benchmark(generate)


def test_bench_parse_print_roundtrip(benchmark):
    texts = [print_query(make_query(seed)) for seed in range(50)]

    def roundtrip():
        for text in texts:
            print_query(parse_query(text))

    benchmark(roundtrip)


def test_bench_semantics_evaluation(benchmark):
    sem = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
    pairs = [(make_query(seed), make_db(seed)) for seed in range(20)]

    def evaluate():
        for query, db in pairs:
            try:
                sem.run(query, db)
            except Exception:
                pass

    benchmark(evaluate)


def engine_pairs():
    """The engine-execution workload, at the paper's 50-row table cap."""
    return [(make_query(seed), make_db(seed, rows=PAPER_ROW_CAP)) for seed in range(20)]


def run_workload(engine, pairs):
    for query, db in pairs:
        try:
            engine.execute(query, db)
        except Exception:
            pass


def test_bench_engine_execution(benchmark):
    engine = Engine(SCHEMA, "postgres")
    pairs = engine_pairs()
    benchmark(run_workload, engine, pairs)


def test_bench_engine_execution_naive(benchmark):
    """The optimize=False ablation: the paper's product-then-filter engine."""
    engine = Engine(SCHEMA, "postgres", optimize=False)
    pairs = engine_pairs()
    benchmark.pedantic(run_workload, args=(engine, pairs), rounds=3, iterations=1)


def test_bench_theorem1_translation(benchmark):
    queries = [make_query(seed, DM_CONFIG) for seed in range(10)]

    def translate():
        for query in queries:
            desugar(to_sqlra(query, SCHEMA), SCHEMA)

    benchmark(translate)
