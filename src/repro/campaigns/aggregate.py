"""Incremental, order-independent aggregation of trial records.

The aggregator is the reason a 100,000-trial campaign runs in flat memory:
instead of keeping per-trial objects, it folds each record into

* four integer counters (completed / agreements / both-error agreements /
  duplicates),
* a ``bytearray`` of outcome codes indexed by ``seed - base_seed`` (one
  byte per trial — 100 kB at paper scale),
* a float array of per-trial wall times (the records' optional ``ms``
  field — 400 kB at paper scale), summarized as p50/p95/p99 latency
  percentiles, and
* the rare mismatch details (seed + explanation string).

Because the codes live at fixed positions, aggregation commutes: records
may arrive in any order (parallel shards, resumed checkpoints) and the
finalized result is identical.  The per-seed outcomes are summarized by
``outcome_digest`` — the SHA-256 of the code array — so "bit-identical to
the serial run" is a single string comparison, at any campaign size.
"""

from __future__ import annotations

import hashlib
import math
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .backends import (
    CODE_AGREE,
    CODE_AGREE_BOTH_ERROR,
    CODE_CLASSIFIED,
    CODE_MISMATCH,
)

__all__ = ["Aggregator", "CampaignResult", "percentile"]


@dataclass
class CampaignResult:
    """The finalized aggregate of a campaign.

    Attribute-compatible with :class:`repro.validation.runner.CampaignReport`
    where it matters (``variant``, ``trials``, ``agreements``,
    ``error_agreements``, ``mismatches``, ``agreement_rate``), so the text
    reports in :mod:`repro.validation.report` render either.
    """

    variant: str
    base_seed: int
    trials: int
    completed: int
    agreements: int
    error_agreements: int
    mismatches: List[Dict[str, object]] = field(default_factory=list)
    #: Known dialect divergences (live-DBMS campaigns): total and per class.
    classified: int = 0
    classified_by_class: Dict[str, int] = field(default_factory=dict)
    outcome_digest: str = ""
    duplicates: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1
    resumed_trials: int = 0
    #: Per-trial latency percentiles in ms ({"p50": .., "p95": .., "p99": ..});
    #: empty when no record carried an ``ms`` field (e.g. custom backends).
    timing_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.completed if self.completed else 1.0

    @property
    def trials_per_sec(self) -> float:
        fresh = self.completed - self.resumed_trials
        return fresh / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def mismatch_seeds(self) -> List[int]:
        return [m["seed"] for m in self.mismatches]

    def summary(self) -> str:
        timing = ""
        if self.timing_ms:
            timing = (
                f" p50={self.timing_ms['p50']:.2f}ms"
                f" p95={self.timing_ms['p95']:.2f}ms"
                f" p99={self.timing_ms['p99']:.2f}ms"
            )
        classified = ""
        if self.classified:
            per_class = ", ".join(
                f"{name}: {count}"
                for name, count in sorted(self.classified_by_class.items())
            )
            classified = f"classified={self.classified} ({per_class}) "
        return (
            f"variant={self.variant} trials={self.completed}/{self.trials} "
            f"agreements={self.agreements} "
            f"(of which both-error: {self.error_agreements}) "
            f"{classified}"
            f"mismatches={len(self.mismatches)} "
            f"rate={self.agreement_rate:.4%} "
            f"jobs={self.jobs} {self.trials_per_sec:.0f} trials/s "
            f"digest={self.outcome_digest[:12]}{timing}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "variant": self.variant,
            "base_seed": self.base_seed,
            "trials": self.trials,
            "completed": self.completed,
            "agreements": self.agreements,
            "error_agreements": self.error_agreements,
            "mismatches": self.mismatches,
            "classified": self.classified,
            "classified_by_class": self.classified_by_class,
            "outcome_digest": self.outcome_digest,
            "duplicates": self.duplicates,
            "elapsed_s": round(self.elapsed_s, 6),
            "trials_per_sec": round(self.trials_per_sec, 3),
            "jobs": self.jobs,
            "resumed_trials": self.resumed_trials,
            "timing_ms": self.timing_ms,
        }


def percentile(sorted_values, fraction: float) -> float:
    """The nearest-rank percentile of an ascending sequence (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return float(sorted_values[rank - 1])


class Aggregator:
    """Folds trial records into counters + a per-seed outcome code array."""

    def __init__(self, label: str, base_seed: int, trials: int):
        self.label = label
        self.base_seed = base_seed
        self.trials = trials
        self.codes = bytearray(trials)
        self.completed = 0
        self.agreements = 0
        self.error_agreements = 0
        self.duplicates = 0
        self.mismatches: List[Dict[str, object]] = []
        self.classified = 0
        self.classified_by_class: Dict[str, int] = {}
        # Wall times of the folded records ("ms" field); four bytes per
        # trial, so paper scale stays flat-memory.  Percentiles are order
        # statistics, so out-of-order arrival (shards, resume) is harmless.
        self.timings = array("f")

    def add(self, record: Dict[str, object]) -> bool:
        """Fold one record in; returns False for duplicates/out-of-range."""
        seed = record["seed"]
        index = seed - self.base_seed
        if not 0 <= index < self.trials:
            return False
        if self.codes[index] != 0:
            self.duplicates += 1
            return False
        code = record["code"]
        if code not in (
            CODE_AGREE,
            CODE_AGREE_BOTH_ERROR,
            CODE_MISMATCH,
            CODE_CLASSIFIED,
        ):
            return False  # corrupted record: leave the seed pending
        self.codes[index] = code
        self.completed += 1
        elapsed_ms = record.get("ms")
        if isinstance(elapsed_ms, (int, float)):
            self.timings.append(elapsed_ms)
        if code in (CODE_AGREE, CODE_AGREE_BOTH_ERROR):
            self.agreements += 1
            if code == CODE_AGREE_BOTH_ERROR:
                self.error_agreements += 1
        elif code == CODE_MISMATCH:
            self.mismatches.append(
                {"seed": seed, "detail": record.get("detail", "")}
            )
        elif code == CODE_CLASSIFIED:
            self.classified += 1
            divergence = str(record.get("class", "unknown"))
            self.classified_by_class[divergence] = (
                self.classified_by_class.get(divergence, 0) + 1
            )
        return True

    def code_at(self, seed: int) -> int:
        """The folded outcome code for ``seed`` (0 when pending/out of range)."""
        index = seed - self.base_seed
        if 0 <= index < self.trials:
            return self.codes[index]
        return 0

    def pending_seeds(self) -> List[int]:
        """The seeds not yet folded in, in ascending order."""
        base = self.base_seed
        return [base + i for i, code in enumerate(self.codes) if code == 0]

    def timing_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the folded per-trial wall times (ms); {} if none."""
        if not self.timings:
            return {}
        ordered = sorted(self.timings)
        return {
            "p50": round(percentile(ordered, 0.50), 3),
            "p95": round(percentile(ordered, 0.95), 3),
            "p99": round(percentile(ordered, 0.99), 3),
        }

    def finalize(
        self,
        elapsed_s: float = 0.0,
        jobs: int = 1,
        resumed_trials: int = 0,
    ) -> CampaignResult:
        return CampaignResult(
            variant=self.label,
            base_seed=self.base_seed,
            trials=self.trials,
            completed=self.completed,
            agreements=self.agreements,
            error_agreements=self.error_agreements,
            mismatches=sorted(self.mismatches, key=lambda m: m["seed"]),
            classified=self.classified,
            classified_by_class=dict(sorted(self.classified_by_class.items())),
            outcome_digest=hashlib.sha256(bytes(self.codes)).hexdigest(),
            duplicates=self.duplicates,
            elapsed_s=elapsed_s,
            jobs=jobs,
            resumed_trials=resumed_trials,
            timing_ms=self.timing_percentiles(),
        )
