"""Experimental validation harness (Section 4)."""

from .compare import Outcome, capture, explain_difference, tables_coincide
from .differential import DifferentialReport, DifferentialRunner
from .report import format_campaigns, format_table
from .runner import CampaignReport, TrialResult, ValidationRunner, VARIANTS

__all__ = [
    "Outcome",
    "DifferentialRunner",
    "DifferentialReport",
    "capture",
    "tables_coincide",
    "explain_difference",
    "ValidationRunner",
    "TrialResult",
    "CampaignReport",
    "VARIANTS",
    "format_table",
    "format_campaigns",
]
