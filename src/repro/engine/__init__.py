"""Independent reference engine (the PostgreSQL/Oracle stand-in of Section 4)."""

from .engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from .planner import CompiledQuery, Planner

__all__ = [
    "Engine",
    "Planner",
    "CompiledQuery",
    "DIALECT_POSTGRES",
    "DIALECT_ORACLE",
]
