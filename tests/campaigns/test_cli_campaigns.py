"""CLI coverage for the campaign commands: ``validate`` (with the new
sharding/checkpoint flags) and the previously missing ``differential``
entry point — help text, exit codes, checkpoint files."""

import pytest

from repro.cli import build_parser, main


def test_differential_command_exists_in_help(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["differential", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--jobs" in out
    assert "--checkpoint" in out
    assert "--resume" in out


def test_validate_help_shows_campaign_flags(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["validate", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--jobs" in out and "--resume" in out


def test_differential_defaults():
    args = build_parser().parse_args(["differential"])
    assert args.trials == 200
    assert args.jobs == 1
    assert args.checkpoint is None
    assert not args.resume


def test_differential_small_run_exit_zero(capsys):
    code = main(["differential", "--trials", "6", "--rows", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "trials=6/6" in out
    assert "mismatches=0" in out


def test_validate_parallel_with_checkpoint(tmp_path, capsys):
    ckpt = tmp_path / "val.jsonl"
    argv = [
        "validate", "--trials", "20", "--rows", "3",
        "--variants", "postgres", "--jobs", "2",
        "--checkpoint", str(ckpt),
    ]
    assert main(argv) == 0
    assert "postgres" in capsys.readouterr().out
    assert ckpt.exists()
    assert len(ckpt.read_text().splitlines()) == 21  # header + one per trial
    # Resume over the complete checkpoint re-runs nothing and still passes.
    assert main(argv + ["--resume"]) == 0


def test_validate_two_variants_get_separate_checkpoints(tmp_path):
    ckpt = tmp_path / "val.jsonl"
    argv = [
        "validate", "--trials", "5", "--rows", "3",
        "--variants", "postgres", "oracle", "--checkpoint", str(ckpt),
    ]
    assert main(argv) == 0
    assert (tmp_path / "val.postgres.jsonl").exists()
    assert (tmp_path / "val.oracle.jsonl").exists()


def test_resume_without_checkpoint_is_a_clean_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["differential", "--trials", "2", "--resume"])
    assert "checkpoint" in str(excinfo.value)


def test_differential_checkpoint_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "diff.jsonl")
    assert main(["differential", "--trials", "5", "--rows", "3",
                 "--checkpoint", ckpt]) == 0
    assert main(["differential", "--trials", "10", "--rows", "3",
                 "--checkpoint", ckpt, "--resume"]) == 0
    out = capsys.readouterr().out
    assert "trials=10/10" in out
