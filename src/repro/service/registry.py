"""Prepared statements and per-tenant state for the query service.

A :class:`PreparedStatement` is parsed and annotated exactly once, at
``/prepare`` time; every ``/execute`` only binds parameter values into the
frozen AST (:func:`repro.service.protocol.bind_parameters`) and hands the
bound query to the tenant's :class:`~repro.engine.Engine`, whose plan
cache and cross-query :class:`~repro.engine.binding.BuildSideCache` do the
actual sharing.  Statement ids are unguessable tokens scoped to one
tenant: looking a statement up always goes through the owning tenant's
table, so one tenant's ids are simply undefined in another's namespace.

The registry is byte-budgeted with LRU-by-tenant fairness: when the
statements' combined estimated bytes exceed ``max_statement_bytes``, the
tenant holding the most bytes evicts *its* least-recently-used statement
first — a noisy tenant ages out its own statements before it can push
another tenant's out.
"""

from __future__ import annotations

import secrets
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.schema import Database, Schema
from ..engine import Engine
from ..sql import annotate
from .protocol import ProtocolError, ast_bytes, bind_parameters, expand_placeholders

__all__ = ["PreparedStatement", "Tenant", "ServiceRegistry"]

#: Bound-AST memo entries kept per statement (distinct parameter tuples).
BOUND_MEMO_SIZE = 64


class PreparedStatement:
    """One parsed-and-annotated statement template plus its binding memo."""

    def __init__(self, sql: str, schema: Schema, database: str):
        self.sql = sql
        self.database = database
        template, self.param_count = expand_placeholders(sql)
        # Parse + annotate once; compile/optimize happens at first execute
        # through the engine's plan cache (keyed by the bound AST).
        self.query = annotate(template, schema)
        #: params tuple -> bound AST, a small LRU so the hot path of a
        #: repeated binding skips even the substitution walk.
        self._bound: "OrderedDict[tuple, object]" = OrderedDict()
        self.executions = 0
        self.bytes = ast_bytes(self.query) + len(sql)

    def bind(self, params: List[object]):
        """The annotated AST with ``params`` bound (memoized per tuple)."""
        if self.param_count == 0 and not params:
            return self.query
        key = tuple(params)
        bound = self._bound.get(key)
        if bound is None:
            bound = bind_parameters(self.query, list(params), self.param_count)
            self._bound[key] = bound
            if len(self._bound) > BOUND_MEMO_SIZE:
                self._bound.popitem(last=False)
        else:
            self._bound.move_to_end(key)
        return bound


class Tenant:
    """One tenant's databases, engine, and statement table."""

    def __init__(
        self,
        name: str,
        dialect: str = "postgres",
        plan_cache_size: int = 256,
        plan_cache_bytes: Optional[int] = None,
        build_cache_size: int = 128,
        build_cache_bytes: Optional[int] = None,
    ):
        self.name = name
        self.dialect = dialect
        self._engine_options = {
            "plan_cache_size": plan_cache_size,
            "plan_cache_bytes": plan_cache_bytes,
            "build_cache_size": build_cache_size,
            "build_cache_bytes": build_cache_bytes,
        }
        self.databases: Dict[str, Database] = {}
        #: One engine per schema shape: the engine key is the schema's
        #: table/column layout, so statements prepared against databases
        #: sharing a schema also share plan and build caches — the
        #: cross-query sharing surface.
        self.engines: Dict[tuple, Engine] = {}
        self.statements: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self.statement_bytes = 0
        self.executions = 0

    def add_database(self, name: str, db: Database) -> None:
        self.databases[name] = db

    def engine_for(self, schema: Schema) -> Engine:
        key = tuple(sorted((t, schema.attributes(t)) for t in schema.table_names))
        engine = self.engines.get(key)
        if engine is None:
            engine = self.engines[key] = Engine(
                schema, self.dialect, **self._engine_options
            )
        return engine

    def touch(self, statement_id: str) -> Optional[PreparedStatement]:
        statement = self.statements.get(statement_id)
        if statement is not None:
            self.statements.move_to_end(statement_id)
        return statement


class ServiceRegistry:
    """All tenants plus the cross-tenant statement byte budget."""

    def __init__(
        self,
        dialect: str = "postgres",
        plan_cache_size: int = 256,
        plan_cache_bytes: Optional[int] = None,
        build_cache_size: int = 128,
        build_cache_bytes: Optional[int] = None,
        max_statement_bytes: Optional[int] = None,
    ):
        self._tenant_options = {
            "dialect": dialect,
            "plan_cache_size": plan_cache_size,
            "plan_cache_bytes": plan_cache_bytes,
            "build_cache_size": build_cache_size,
            "build_cache_bytes": build_cache_bytes,
        }
        self.max_statement_bytes = max_statement_bytes
        self.tenants: Dict[str, Tenant] = {}
        self.started_at = time.time()
        self.statement_evictions = 0

    # -- tenants -------------------------------------------------------------

    def tenant(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = self.tenants[name] = Tenant(name, **self._tenant_options)
        return tenant

    # -- statements ----------------------------------------------------------

    def prepare(self, tenant_name: str, sql: str, database: str) -> Tuple[str, PreparedStatement]:
        tenant = self.tenant(tenant_name)
        db = tenant.databases.get(database)
        if db is None:
            raise KeyError(f"unknown database {database!r}")
        statement = PreparedStatement(sql, db.schema, database)
        statement_id = secrets.token_hex(8)
        tenant.statements[statement_id] = statement
        tenant.statement_bytes += statement.bytes
        self._enforce_statement_budget()
        return statement_id, statement

    def lookup(self, tenant_name: str, statement_id: str) -> Optional[PreparedStatement]:
        """The tenant's statement, or None — ids never resolve across
        tenants (the no-leakage property the battery asserts)."""
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            return None
        return tenant.touch(statement_id)

    def _enforce_statement_budget(self) -> None:
        if self.max_statement_bytes is None:
            return
        while True:
            total = sum(t.statement_bytes for t in self.tenants.values())
            if total <= self.max_statement_bytes:
                return
            # Fairness: the heaviest tenant evicts its own oldest first.
            heaviest = max(
                (t for t in self.tenants.values() if t.statements),
                key=lambda t: t.statement_bytes,
                default=None,
            )
            if heaviest is None:
                return
            _sid, evicted = heaviest.statements.popitem(last=False)
            heaviest.statement_bytes -= evicted.bytes
            self.statement_evictions += 1

    # -- stats ---------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        tenants = {}
        for name, tenant in self.tenants.items():
            engines = [engine.cache_info() for engine in tenant.engines.values()]
            build = {
                "hits": sum(e["build"]["hits"] for e in engines),
                "misses": sum(e["build"]["misses"] for e in engines),
                "cross_hits": sum(e["build"]["cross_hits"] for e in engines),
                "entries": sum(e["build"]["entries"] for e in engines),
                "bytes": sum(e["build"]["bytes"] for e in engines),
            }
            plan = {
                "hits": sum(e["hits"] for e in engines),
                "misses": sum(e["misses"] for e in engines),
                "entries": sum(e["entries"] for e in engines),
                "bytes": sum(e["bytes"] for e in engines),
            }
            tenants[name] = {
                "databases": sorted(tenant.databases),
                "statements": len(tenant.statements),
                "statement_bytes": tenant.statement_bytes,
                "executions": tenant.executions,
                "plan_cache": plan,
                "build_cache": build,
            }
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "statement_evictions": self.statement_evictions,
            "tenants": tenants,
        }
