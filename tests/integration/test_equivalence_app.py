"""The randomized equivalence-testing application."""

import pytest

from repro.applications import EquivalenceReport, check_equivalence, find_counterexample
from repro.core import NULL, Database, Schema
from repro.semantics import SqlSemantics


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A",)})


NOT_IN = "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)"
NOT_EXISTS = (
    "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS "
    "(SELECT * FROM S WHERE S.A = R.A)"
)
EXCEPT = "SELECT DISTINCT R.A FROM R EXCEPT SELECT S.A FROM S"


def test_example1_rewriting_refuted(schema):
    """The NOT IN → NOT EXISTS rewriting is refuted by a random database."""
    report = check_equivalence(NOT_IN, NOT_EXISTS, schema, trials=300)
    assert not report.equivalent_so_far
    assert report.counterexample is not None
    assert "NOT equivalent" in report.describe()


def test_example1_all_three_pairwise_inequivalent(schema):
    pairs = [(NOT_IN, NOT_EXISTS), (NOT_IN, EXCEPT), (NOT_EXISTS, EXCEPT)]
    for left, right in pairs:
        report = check_equivalence(left, right, schema, trials=400)
        assert not report.equivalent_so_far, (left, right)


def test_true_equivalence_survives(schema):
    """A genuinely valid rewriting finds no counterexample."""
    left = "SELECT R.A FROM R WHERE R.A = 1"
    right = "SELECT R.A FROM R WHERE 1 = R.A"
    report = check_equivalence(left, right, schema, trials=150)
    assert report.equivalent_so_far
    assert report.trials == 150
    assert "no counterexample" in report.describe()


def test_commuted_union_equivalent_as_bags(schema):
    left = "SELECT R.A FROM R UNION ALL SELECT S.A FROM S"
    right = "SELECT S.A AS A FROM S UNION ALL SELECT R.A FROM R"
    report = check_equivalence(left, right, schema, trials=100)
    assert report.equivalent_so_far


def test_distinct_vs_bag_not_equivalent(schema):
    left = "SELECT R.A FROM R"
    right = "SELECT DISTINCT R.A FROM R"
    report = check_equivalence(left, right, schema, trials=200)
    assert not report.equivalent_so_far


def test_extra_databases_checked_first(schema):
    """Seeding the paper's Example 1 database finds the counterexample in
    one trial."""
    example1 = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    report = check_equivalence(
        NOT_IN, NOT_EXISTS, schema, trials=0, extra_databases=[example1]
    )
    assert not report.equivalent_so_far
    assert report.trials == 1
    assert report.counterexample is example1


def test_find_counterexample_wrapper(schema):
    db = find_counterexample(NOT_IN, EXCEPT, schema, trials=400)
    assert db is not None
    sem = SqlSemantics(schema)
    from repro.sql import annotate

    left = sem.run(annotate(NOT_IN, schema), db)
    right = sem.run(annotate(EXCEPT, schema), db)
    assert not left.same_as(right)


def test_no_counterexample_returns_none(schema):
    assert (
        find_counterexample(
            "SELECT R.A FROM R", "SELECT R.A AS A FROM R", schema, trials=50
        )
        is None
    )


def test_accepts_pre_annotated_queries(schema):
    from repro.sql import annotate

    left = annotate(NOT_IN, schema)
    right = annotate(EXCEPT, schema)
    report = check_equivalence(left, right, schema, trials=300)
    assert not report.equivalent_so_far


def test_deterministic_given_seed(schema):
    a = check_equivalence(NOT_IN, EXCEPT, schema, trials=300, seed=4)
    b = check_equivalence(NOT_IN, EXCEPT, schema, trials=300, seed=4)
    assert a.trials == b.trials
