"""The always-on query service: prepared statements over the engine.

- :mod:`~repro.service.transport` — shared authenticated JSON/HTTP
  transport (also used by the distributed-campaign coordinator).
- :mod:`~repro.service.protocol` — ``$k`` parameter binding and the
  NDJSON row framing.
- :mod:`~repro.service.registry` — per-tenant prepared statements,
  engines, and the statement byte budget.
- :mod:`~repro.service.server` — the asyncio HTTP front end.
- :mod:`~repro.service.client` — the asyncio client.
"""

from .client import ResultSet, ServiceClient, ServiceError, query_once, request_once
from .protocol import (
    ProtocolError,
    bind_parameters,
    expand_placeholders,
    row_to_json,
    rows_from_json,
)
from .registry import PreparedStatement, ServiceRegistry, Tenant
from .server import DEFAULT_TENANT, QueryService, ServiceThread
from .transport import (
    AUTH_HEADER,
    JsonHttpServer,
    JsonRequestHandler,
    auth_headers,
    check_secret,
    http_json,
)

__all__ = [
    "AUTH_HEADER",
    "DEFAULT_TENANT",
    "JsonHttpServer",
    "JsonRequestHandler",
    "PreparedStatement",
    "ProtocolError",
    "QueryService",
    "ResultSet",
    "ServiceClient",
    "ServiceError",
    "ServiceRegistry",
    "ServiceThread",
    "Tenant",
    "auth_headers",
    "bind_parameters",
    "check_secret",
    "expand_placeholders",
    "http_json",
    "query_once",
    "request_once",
    "row_to_json",
    "rows_from_json",
]
