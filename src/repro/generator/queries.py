"""The random query generator of Section 4.

Generates *fully annotated* queries of the basic SQL fragment over a given
schema: SELECT-FROM-WHERE blocks with subqueries in FROM and WHERE
(correlated through outer scopes), set operations with matching arities,
``SELECT *``, DISTINCT, IS NULL, IN / NOT IN, EXISTS, and boolean
combinations of comparisons — bounded by the four parameters of
:class:`~repro.generator.config.GeneratorConfig` (tables, nest, attr, cond).

The generator only emits references that are resolvable and unambiguous, so
every generated query compiles under the PostgreSQL-style dialect; under the
standard/Oracle dialect, queries with ``SELECT *`` over duplicated column
names (which the generator produces deliberately, with low probability) fail
to compile — exactly the disagreement class the paper observed and matched
against Oracle's errors.

Generation is deterministic given a seeded :class:`random.Random`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.schema import Schema
from ..core.values import NULL, FullName, Name, Term
from ..sql.ast import (
    And,
    Condition,
    Exists,
    FALSE_COND,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
)
from ..sql.labels import query_labels
from .config import GeneratorConfig, PAPER_CONFIG

__all__ = ["QueryGenerator"]

_COMPARISONS = ("=", "=", "=", "<>", "<", "<=", ">", ">=")
_SETOPS = ("UNION", "INTERSECT", "EXCEPT")


class _Scope:
    """Visible full names of one FROM clause, with ambiguity bookkeeping."""

    def __init__(self, full_names: Sequence[FullName]):
        self.full_names = tuple(full_names)
        counts: dict[FullName, int] = {}
        for name in self.full_names:
            counts[name] = counts.get(name, 0) + 1
        self.unambiguous = tuple(n for n in self.full_names if counts[n] == 1)
        self.has_duplicates = len(self.unambiguous) != len(self.full_names)


class QueryGenerator:
    """Random generator of annotated basic SQL queries."""

    def __init__(
        self,
        schema: Schema,
        config: GeneratorConfig = PAPER_CONFIG,
        rng: Optional[random.Random] = None,
    ):
        self.schema = schema
        self.config = config
        self.rng = rng if rng is not None else random.Random()
        self._alias_counter = 0
        self._output_counter = 0

    # -- public -------------------------------------------------------------

    def generate(self, seed: Optional[int] = None) -> Query:
        """Generate one query; with ``seed``, reset the RNG first."""
        if seed is not None:
            self.rng.seed(seed)
        self._alias_counter = 0
        self._output_counter = 0
        budget = [self.rng.randint(1, self.config.tables)]
        return self._query(
            depth=0, outer=[], budget=budget, target_arity=None
        )

    # -- helpers -------------------------------------------------------------

    def _fresh_alias(self) -> Name:
        self._alias_counter += 1
        return f"T{self._alias_counter}"

    def _fresh_output(self) -> Name:
        self._output_counter += 1
        return f"C{self._output_counter}"

    def _chance(self, probability: float) -> bool:
        return self.rng.random() < probability

    def _constant(self) -> int:
        return self.rng.randint(self.config.min_constant, self.config.max_constant)

    # -- queries ---------------------------------------------------------------

    def _query(
        self,
        depth: int,
        outer: List[_Scope],
        budget: List[int],
        target_arity: Optional[int],
    ) -> Query:
        if (
            budget[0] >= 2
            and depth < self.config.nest
            and self._chance(self.config.setop_probability)
        ):
            # Reserve one table for the right operand so the left one cannot
            # exhaust the whole budget (every SELECT needs a FROM item).
            budget[0] -= 1
            left = self._query(depth + 1, outer, budget, target_arity)
            budget[0] += 1
            arity = len(query_labels(left, self.schema))
            right = self._query(depth + 1, outer, budget, arity)
            op = self.rng.choice(_SETOPS)
            return SetOp(op, left, right, all=self._chance(0.5))
        return self._select(depth, outer, budget, target_arity)

    def _select(
        self,
        depth: int,
        outer: List[_Scope],
        budget: List[int],
        target_arity: Optional[int],
    ) -> Select:
        max_items = max(1, min(3, budget[0]))
        item_count = self.rng.randint(1, max_items)
        from_items: List[FromItem] = []
        for _ in range(item_count):
            if budget[0] <= 0:
                break
            from_items.append(self._from_item(depth, outer, budget))
        if not from_items:
            budget[0] -= 1
            from_items.append(self._base_from_item())
        scope = _Scope(self._scope_names(from_items))
        inner = outer + [scope]

        where = self._condition(depth, inner, budget)

        distinct = self._chance(self.config.distinct_probability)
        star_allowed = not self.config.data_manipulation_only and (
            target_arity is None or len(scope.full_names) == target_arity
        )
        if star_allowed and self._chance(self.config.star_probability):
            return Select(STAR, tuple(from_items), where, distinct=distinct)

        arity = (
            target_arity
            if target_arity is not None
            else self.rng.randint(1, self.config.attr)
        )
        items = self._select_items(arity, inner)
        return Select(tuple(items), tuple(from_items), where, distinct=distinct)

    def _base_from_item(self) -> FromItem:
        table = self.rng.choice(self.schema.table_names)
        return FromItem(table, self._fresh_alias())

    def _from_item(
        self, depth: int, outer: List[_Scope], budget: List[int]
    ) -> FromItem:
        if (
            depth < self.config.nest
            and budget[0] >= 1
            and self._chance(self.config.from_subquery_probability)
        ):
            # Subqueries in FROM see the outer scopes but not their siblings.
            subquery = self._query(depth + 1, outer, budget, target_arity=None)
            return FromItem(subquery, self._fresh_alias())
        budget[0] -= 1
        return self._base_from_item()

    def _scope_names(self, from_items: Sequence[FromItem]) -> List[FullName]:
        names: List[FullName] = []
        for item in from_items:
            if item.is_base_table:
                labels = self.schema.attributes(item.table)
            else:
                labels = query_labels(item.table, self.schema)
            names.extend(FullName(item.alias, label) for label in labels)
        return names

    def _select_items(self, arity: int, scopes: List[_Scope]) -> List[SelectItem]:
        items: List[SelectItem] = []
        aliases: List[Name] = []
        for _ in range(arity):
            term = self._select_term(scopes)
            alias = self._fresh_output()
            if (
                aliases
                and not self.config.data_manipulation_only
                and self._chance(self.config.duplicate_output_probability)
            ):
                alias = self.rng.choice(aliases)
            aliases.append(alias)
            items.append(SelectItem(term, alias))
        return items

    def _select_term(self, scopes: List[_Scope]) -> Term:
        local = scopes[-1]
        if self.config.data_manipulation_only:
            # Definition 1: only attributes of the local FROM clause.
            return self.rng.choice(local.unambiguous or local.full_names)
        if self._chance(self.config.null_term_probability):
            return NULL
        if self._chance(self.config.constant_probability):
            return self._constant()
        return self._reference(scopes)

    def _reference(self, scopes: List[_Scope]) -> Term:
        """A resolvable, unambiguous full name, preferring the local scope."""
        local = scopes[-1]
        candidates: Tuple[FullName, ...] = local.unambiguous
        if (
            len(scopes) > 1
            and self._chance(self.config.correlation_probability)
        ):
            outer_candidates = [
                name for scope in scopes[:-1] for name in scope.unambiguous
                # A correlated reference must not be shadowed by a closer scope.
                if all(
                    name not in closer.full_names
                    for closer in scopes[scopes.index(scope) + 1 :]
                )
            ]
            if outer_candidates:
                candidates = tuple(outer_candidates)
        if not candidates:
            return self._constant()
        return self.rng.choice(candidates)

    # -- conditions -----------------------------------------------------------------

    def _condition(
        self, depth: int, scopes: List[_Scope], budget: List[int]
    ) -> Condition:
        atom_budget = self.rng.randint(0, self.config.cond)
        if atom_budget == 0:
            return TRUE_COND
        return self._condition_tree(depth, scopes, budget, atom_budget)

    def _condition_tree(
        self, depth: int, scopes: List[_Scope], budget: List[int], atoms: int
    ) -> Condition:
        if atoms <= 1:
            condition = self._atom(depth, scopes, budget)
        else:
            split = self.rng.randint(1, atoms - 1)
            left = self._condition_tree(depth, scopes, budget, split)
            right = self._condition_tree(depth, scopes, budget, atoms - split)
            connective = And if self._chance(0.6) else Or
            condition = connective(left, right)
        if self._chance(self.config.negation_probability / 2):
            condition = Not(condition)
        return condition

    def _atom(
        self, depth: int, scopes: List[_Scope], budget: List[int]
    ) -> Condition:
        roll = self.rng.random()
        can_nest = depth < self.config.nest and budget[0] >= 1
        if roll < 0.04:
            return TRUE_COND if self._chance(0.5) else FALSE_COND
        if roll < 0.18:
            term = self._term(scopes)
            return IsNull(term, negated=self._chance(0.5))
        if can_nest and roll < 0.18 + self.config.where_subquery_probability:
            if self._chance(0.5):
                subquery = self._query(depth + 1, scopes, budget, target_arity=None)
                return Exists(subquery)
            width = 1 if self._chance(0.8) else 2
            terms = tuple(self._term(scopes) for _ in range(width))
            subquery = self._query(depth + 1, scopes, budget, target_arity=width)
            return InQuery(terms, subquery, negated=self._chance(0.4))
        left = self._term(scopes)
        right = self._term(scopes)
        return Predicate(self.rng.choice(_COMPARISONS), (left, right))

    def _term(self, scopes: List[_Scope]) -> Term:
        if self._chance(self.config.null_term_probability):
            return NULL
        if self._chance(self.config.constant_probability * 2):
            return self._constant()
        return self._reference(scopes)
