"""Metamorphic ingestion properties: import -> export -> re-import is
lossless, and campaigns over either side are bit-identical."""

from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, run_campaign
from repro.ingest import (
    export_sql_script,
    export_sqlite,
    import_scenario,
)
from repro.ingest.demo import library_scenario

FIXTURE = str(Path(__file__).resolve().parent.parent / "fixtures" / "library.sql")


@pytest.fixture(scope="module")
def scenario():
    return import_scenario(FIXTURE)


def roundtrip(scenario, tmp_path, via):
    out = tmp_path / ("rt.sql" if via == "sql" else "rt.db")
    if via == "sql":
        export_sql_script(scenario, out)
    else:
        export_sqlite(scenario, out)
    return import_scenario(str(out))


@pytest.mark.parametrize("via", ["sql", "sqlite"])
def test_roundtrip_table_fingerprints_bit_identical(scenario, tmp_path, via):
    again = roundtrip(scenario, tmp_path, via)
    assert again.table_fingerprints() == scenario.table_fingerprints()


@pytest.mark.parametrize("via", ["sql", "sqlite"])
def test_roundtrip_preserves_fks_and_types(scenario, tmp_path, via):
    again = roundtrip(scenario, tmp_path, via)
    assert sorted(map(repr, again.fks)) == sorted(map(repr, scenario.fks))
    for name in scenario.schema.table_names:
        for column in scenario.schema.attributes(name):
            assert again.column_type(name, column) == scenario.column_type(
                name, column
            )


def test_double_roundtrip_is_a_fixed_point(scenario, tmp_path):
    once = roundtrip(scenario, tmp_path, "sqlite")
    twice = roundtrip(once, tmp_path, "sql")
    assert twice.fingerprint() == scenario.fingerprint()


def test_roundtrip_campaign_outcome_digests_equal(scenario, tmp_path):
    """A live-SQLite campaign over the round-tripped database must replay
    seed-for-seed identically to one over the original fixture."""
    out = tmp_path / "rt.sql"
    export_sql_script(scenario, out)

    def digest(path):
        spec = CampaignSpec(kind="live-sqlite", scenario=str(path), rows=0)
        return run_campaign(spec, trials=60, base_seed=0).outcome_digest

    assert digest(out) == digest(FIXTURE)


def test_synthesized_scenario_roundtrip(tmp_path):
    """The loop holds for freshly synthesized data too (NULL-rich tables)."""
    scenario = library_scenario(250, seed=6, null_rate=0.3)
    out = tmp_path / "synth.db"
    export_sqlite(scenario, out)
    again = import_scenario(str(out))
    assert again.table_fingerprints() == scenario.table_fingerprints()
