"""The closure-generating compiler (:mod:`repro.engine.compile`).

Pins the contracts the compiler must keep:

* a compiled predicate tree is one function that agrees with the
  interpreted ``PredNode`` chain on every 3VL input — including *which*
  errors are raised, and when;
* constant folding is exact: total comparisons fold, raising ones do not,
  and the 3VL connectives absorb constants only along the interpreted
  short-circuit order;
* compiled plans round-trip through ``bind_plan``/``unbind_plan``: cached
  compiled plans pin no database rows, per-execution memos reset, and the
  build-side cache keeps sharing structures;
* compilation hooks in at plan-cache admission only — single-use plans
  (``plan_cache_size=0``) stay interpreted.
"""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import CompileError
from repro.engine import Engine, compile_plan, compile_predicate
from repro.engine.binding import iter_plan_nodes
from repro.engine.compile import compile_row
from repro.engine.expressions import (
    AndPred,
    ColumnRef,
    ComparePred,
    ConstPred,
    IsNullPred,
    LiteralExpr,
    NotPred,
    OrPred,
)
from repro.engine.operators import FilterOp, StaticScan, TableScan
from repro.sql import annotate

SCHEMA = Schema({"R": ("A", "B"), "S": ("A",)})


def make_db(rows_r, rows_s):
    return Database(SCHEMA, {"R": rows_r, "S": rows_s})


def run(pred, row, outers=()):
    return pred(row, outers)


# -- predicate compilation ----------------------------------------------------


PRED_CASES = [
    ComparePred("=", ColumnRef(0, 0), ColumnRef(0, 1)),
    ComparePred("<>", ColumnRef(0, 0), LiteralExpr(3)),
    ComparePred("<", ColumnRef(0, 0), ColumnRef(0, 1)),
    ComparePred(">=", ColumnRef(0, 1), LiteralExpr(2)),
    IsNullPred(ColumnRef(0, 0)),
    IsNullPred(ColumnRef(0, 1), negated=True),
    AndPred(
        ComparePred("=", ColumnRef(0, 0), LiteralExpr(1)),
        IsNullPred(ColumnRef(0, 1), negated=True),
    ),
    OrPred(
        ComparePred("=", ColumnRef(0, 0), LiteralExpr(1)),
        ComparePred("=", ColumnRef(0, 1), LiteralExpr(2)),
    ),
    NotPred(ComparePred("=", ColumnRef(0, 0), ColumnRef(0, 1))),
    AndPred(
        OrPred(
            IsNullPred(ColumnRef(0, 0)),
            ComparePred("<", ColumnRef(0, 0), ColumnRef(0, 1)),
        ),
        NotPred(IsNullPred(ColumnRef(0, 1))),
    ),
]

ROWS = [
    (1, 1),
    (1, 2),
    (2, 1),
    (None, 1),
    (1, None),
    (None, None),
    ("a", "b"),
    ("a", "a"),
    ("1", 1),
]


@pytest.mark.parametrize("pred", PRED_CASES, ids=lambda p: type(p).__name__)
def test_compiled_predicate_matches_interpreted_on_3vl_grid(pred):
    compiled = compile_predicate(pred)
    for row in ROWS:
        try:
            expected = run(pred, row)
            raised = None
        except CompileError as exc:
            expected, raised = None, exc
        if raised is None:
            assert run(compiled, row) == expected, row
        else:
            with pytest.raises(CompileError) as caught:
                run(compiled, row)
            assert str(caught.value) == str(raised), row


def test_compiled_predicate_matches_interpreted_error_messages():
    pred = ComparePred("<", ColumnRef(0, 0), ColumnRef(0, 1))
    compiled = compile_predicate(pred)
    with pytest.raises(CompileError) as interpreted_err:
        run(pred, ("a", 1))
    with pytest.raises(CompileError) as compiled_err:
        run(compiled, ("a", 1))
    assert str(compiled_err.value) == str(interpreted_err.value)


def test_outer_references_compile_to_stack_lookups():
    pred = ComparePred("=", ColumnRef(0, 0), ColumnRef(2, 1))
    compiled = compile_predicate(pred)
    outers = ((7, 8), (9, 10))
    # depth 2 = the outermost of the two enclosing rows.
    assert run(compiled, (8,), outers) is run(pred, (8,), outers) is True
    assert run(compiled, (10,), outers) is False


def test_total_comparisons_over_literals_fold():
    for pred, expected in [
        (ComparePred("=", LiteralExpr(1), LiteralExpr(1)), True),
        (ComparePred("=", LiteralExpr(1), LiteralExpr(2)), False),
        (ComparePred("=", LiteralExpr(1), LiteralExpr("1")), False),
        (ComparePred("<>", LiteralExpr(1), LiteralExpr(2)), True),
        (ComparePred("=", LiteralExpr(None), LiteralExpr(1)), None),
        (IsNullPred(LiteralExpr(None)), True),
        (IsNullPred(LiteralExpr(3), negated=True), True),
    ]:
        compiled = compile_predicate(pred)
        assert isinstance(compiled, ConstPred)
        assert compiled.value is expected


def test_raising_comparisons_never_fold():
    """``1 < 'a'`` raises per evaluation in the interpreter; folding it at
    compile time would move (or suppress) the error."""
    pred = ComparePred("<", LiteralExpr(1), LiteralExpr("a"))
    compiled = compile_predicate(pred)  # must not raise here
    assert not isinstance(compiled, ConstPred)
    with pytest.raises(CompileError):
        run(compiled, ())


def test_connective_absorption_is_shortcircuit_exact():
    raising = ComparePred("<", LiteralExpr(1), LiteralExpr("a"))
    # AND with a left FALSE never evaluates its right side.
    folded = compile_predicate(AndPred(ConstPred(False), raising))
    assert isinstance(folded, ConstPred) and folded.value is False
    # OR with a left TRUE never evaluates its right side.
    folded = compile_predicate(OrPred(ConstPred(True), raising))
    assert isinstance(folded, ConstPred) and folded.value is True
    # ... but a right-side constant cannot drop a raising left side.
    compiled = compile_predicate(AndPred(raising, ConstPred(False)))
    with pytest.raises(CompileError):
        run(compiled, ())
    # AND TRUE / OR FALSE are exact identities.
    keep = ComparePred("=", ColumnRef(0, 0), LiteralExpr(1))
    for combined in (AndPred(keep, ConstPred(True)), OrPred(keep, ConstPred(False))):
        compiled = compile_predicate(combined)
        assert run(compiled, (1,)) is True
        assert run(compiled, (2,)) is False
        assert run(compiled, (None,)) is None


def test_compile_row_builds_projection_tuples():
    row_fn = compile_row((ColumnRef(0, 1), LiteralExpr("x"), ColumnRef(1, 0)))
    assert row_fn((1, 2), ((9,),)) == (2, "x", 9)
    single = compile_row((ColumnRef(0, 0),))
    assert single((5,), ()) == (5,)


def test_filter_with_false_predicate_still_drains_its_child():
    """The interpreted FilterOp iterates its child even when no row can
    pass; a child that raises mid-iteration must raise compiled too."""

    def boom(row, outers):
        raise CompileError("boom")

    plan = FilterOp(
        FilterOp(StaticScan([(1,), (2,)], arity=1), boom), ConstPred(False)
    )
    with pytest.raises(CompileError):
        list(plan.iter_rows(()))
    compiled = compile_plan(plan)
    with pytest.raises(CompileError):
        list(compiled(()))


# -- engine integration -------------------------------------------------------


def test_compiled_engine_matches_interpreted_on_handwritten_queries():
    queries = [
        "SELECT R.A, R.B FROM R WHERE R.A = 1 OR R.B IS NULL",
        "SELECT R.A FROM R, S WHERE R.A = S.A AND R.B > 1",
        "SELECT DISTINCT R.B FROM R WHERE R.A IN (SELECT S.A FROM S)",
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.B)",
        "SELECT R.A FROM R UNION SELECT S.A FROM S",
        "SELECT R.A FROM R EXCEPT ALL SELECT S.A FROM S",
        "SELECT R.A FROM R WHERE NOT (R.A <= 2 AND R.B <> 4)",
    ]
    db = make_db([(1, 2), (2, NULL), (NULL, 4), (3, 3)], [(1,), (3,), (NULL,)])
    compiled_engine = Engine(SCHEMA, "postgres")
    interpreted_engine = Engine(SCHEMA, "postgres", compiled=False)
    for text in queries:
        query = annotate(text, SCHEMA)
        compiled = compiled_engine.execute(query, db)
        interpreted = interpreted_engine.execute(query, db)
        assert compiled.same_as(interpreted), text


def test_compiled_plan_unbinds_and_rebinds():
    """A cached compiled plan must pin no rows between executions, and the
    compiled closures must see each execution's freshly bound data."""
    engine = Engine(SCHEMA, "postgres")
    query = annotate("SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)", SCHEMA)
    db1 = make_db([(1, 2), (3, 4)], [(1,)])
    db2 = make_db([(1, 2), (3, 4)], [(3,)])
    assert [r for r in engine.execute(query, db1).bag] == [(1,)]
    assert [r for r in engine.execute(query, db2).bag] == [(3,)]
    plan = engine._plan(query).plan
    assert engine._plan(query).run is not None
    for node, _pred in iter_plan_nodes(plan):
        if isinstance(node, TableScan):
            assert node.data is None  # unbound: no database rows pinned
    # Executing the unbound compiled plan fails exactly like interpreted.
    with pytest.raises(RuntimeError, match="without a bound database"):
        list(engine._plan(query).run(()))


def test_compiled_engine_uses_build_side_cache():
    engine = Engine(SCHEMA, "postgres")
    query = annotate("SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)", SCHEMA)
    db = make_db([(1, 2), (3, 4)], [(1,), (3,)])
    for _ in range(3):
        assert len(engine.execute(query, db)) == 2
    assert engine.build_cache_info()["hits"] > 0


def test_compilation_hooks_in_at_plan_cache_admission_only():
    query = annotate("SELECT R.A FROM R", SCHEMA)
    cached_engine = Engine(SCHEMA, "postgres")
    assert cached_engine._plan(query).run is not None
    single_use = Engine(SCHEMA, "postgres", plan_cache_size=0)
    assert single_use._plan(query).run is None
    ablated = Engine(SCHEMA, "postgres", compiled=False)
    assert ablated._plan(query).run is None
    # All three still agree, of course.
    db = make_db([(1, 2)], [(1,)])
    results = [
        engine.execute(query, db)
        for engine in (cached_engine, single_use, ablated)
    ]
    assert results[0].same_as(results[1]) and results[0].same_as(results[2])
