#!/bin/sh
# Distributed validation campaign walkthrough (file-based mode).
#
# Splits one Section 4 campaign across three workers, "kills" one
# mid-shard, lets the coordinator expire + re-issue its lease, merges the
# worker checkpoints, and shows the merged outcome_digest is bit-identical
# to running the whole campaign serially on one machine.
#
# Run from the repository root:   sh examples/distributed_campaign.sh
set -e

PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
export PYTHONPATH
TRIALS=600
THIRD=$(( TRIALS / 3 ))
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

echo "== 1. serial reference run (one machine) =="
python -m repro validate --variants postgres --trials $TRIALS \
    --checkpoint "$DIR/serial.jsonl" >/dev/null
SERIAL=$(python -m repro report "$DIR/serial.jsonl" | grep outcome_digest)
echo "   $SERIAL"

echo "== 2. coordinator partitions the seed range into 3 leases =="
python -m repro coordinate --trials $TRIALS --workers 3 \
    --out "$DIR/dist" --no-wait
# (normally you now run $DIR/dist/plan.sh on your worker machines; here we
# run the same commands locally, simulating a mid-shard worker death)

echo "== 3. workers 1+2 complete; worker 3 dies a third into its lease =="
python -m repro work --seed-range 0:$THIRD \
    --checkpoint "$DIR/dist/lease-0000.a1.w1.jsonl" --resume >/dev/null
python -m repro work --seed-range $THIRD:$(( 2 * THIRD )) \
    --checkpoint "$DIR/dist/lease-0001.a1.w2.jsonl" --resume >/dev/null
python -m repro work --seed-range $(( 2 * THIRD )):$(( 2 * THIRD + THIRD / 3 )) \
    --checkpoint "$DIR/dist/lease-0002.a1.w3.jsonl" --resume >/dev/null
echo "   lease-0002 checkpoint covers only $(( THIRD / 3 )) of $THIRD seeds"

echo "== 4. coordinator expires the dead lease and re-issues it =="
# --lease-timeout-s 0 makes the unfinished lease count as overdue on the
# first poll, and --wait-timeout-s 0 stops after that single poll/re-issue
# round; the replacement command is printed on stderr (and plan.sh).
python -m repro coordinate --trials $TRIALS --workers 3 --out "$DIR/dist" \
    --lease-timeout-s 0 --wait-timeout-s 0 \
    2>"$DIR/reissue.log" >/dev/null || true
grep -o "re-issued lease-0002[^:]*" "$DIR/reissue.log" | head -1 | sed 's/^/   /'
REISSUED=$(grep -o "[^ ']*lease-0002\.a2[^ ']*\.jsonl" "$DIR/reissue.log" | head -1)
python -m repro work --seed-range $(( 2 * THIRD )):$TRIALS \
    --checkpoint "$REISSUED" --resume >/dev/null

echo "== 5. coordinator merges (partial file overlap deduplicates) =="
python -m repro coordinate --trials $TRIALS --workers 3 --out "$DIR/dist" \
    --merged "$DIR/merged.jsonl" >/dev/null
python -m repro report "$DIR/merged.jsonl"
MERGED=$(python -m repro report "$DIR/merged.jsonl" | grep outcome_digest)

echo
if [ "$SERIAL" = "$MERGED" ]; then
    echo "PASS: merged digest is bit-identical to the serial run"
    echo "  $MERGED"
else
    echo "FAIL: digests differ"
    echo "  serial: $SERIAL"
    echo "  merged: $MERGED"
    exit 1
fi
