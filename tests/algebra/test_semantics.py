"""Figure 8: the bag semantics of relational algebra and SQL-RA conditions."""

import pytest

from repro.algebra.ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    R_FALSE,
    R_TRUE,
    RAnd,
    Relation,
    Renaming,
    RNot,
    ROr,
    RPredicate,
    Selection,
    UnionOp,
)
from repro.algebra.semantics import EMPTY_RA_ENV, RAEnvironment, RASemantics
from repro.core import NULL, Database, Schema
from repro.core.errors import UnboundReferenceError
from repro.core.truth import FALSE, TRUE, UNKNOWN


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("C",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {"R": [("a", "b"), ("a", "c"), ("a", "b")], "S": [(1,), (NULL,)]},
    )


@pytest.fixture
def ra(schema):
    return RASemantics(schema)


def test_relation(ra, db):
    t = ra.evaluate(Relation("R"), db)
    assert t.columns == ("A", "B")
    assert t.multiplicity(("a", "b")) == 2


def test_projection_bag_semantics(ra, db):
    """The paper's example: π_A of {(a,b), (a,c)} is {a, a} (multiplicities)."""
    t = ra.evaluate(Projection(Relation("R"), ("A",)), db)
    assert t.multiplicity(("a",)) == 3


def test_projection_reorders(ra, db):
    t = ra.evaluate(Projection(Relation("R"), ("B", "A")), db)
    assert t.columns == ("B", "A")
    assert t.multiplicity(("b", "a")) == 2


def test_selection_keeps_true_rows_only(ra, db):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("B"), "b")))
    t = ra.evaluate(expr, db)
    assert len(t) == 2


def test_selection_drops_unknown(ra, db):
    expr = Selection(Relation("S"), RPredicate("=", (Attr("C"), 1)))
    t = ra.evaluate(expr, db)
    assert sorted(t.bag) == [(1,)]  # the NULL row gives u, dropped


def test_selection_false_constant(ra, db):
    assert ra.evaluate(Selection(Relation("R"), R_FALSE), db).is_empty()


def test_product(ra, db):
    t = ra.evaluate(Product(Relation("R"), Relation("S")), db)
    assert t.columns == ("A", "B", "C")
    assert len(t) == 6
    assert t.multiplicity(("a", "b", 1)) == 2


def test_set_operations(ra, schema):
    db = Database(
        schema, {"R": [("x", "y"), ("x", "y"), ("z", "w")], "S": []}
    )
    r = Relation("R")
    assert len(ra.evaluate(UnionOp(r, r), db)) == 6
    assert ra.evaluate(IntersectionOp(r, r), db).multiplicity(("x", "y")) == 2
    assert ra.evaluate(DifferenceOp(r, r), db).is_empty()


def test_renaming_keeps_data(ra, db):
    expr = Renaming(Relation("S"), ("C",), ("Z",))
    t = ra.evaluate(expr, db)
    assert t.columns == ("Z",)
    assert t.multiplicity((1,)) == 1


def test_dedup(ra, db):
    t = ra.evaluate(Dedup(Relation("R")), db)
    assert t.multiplicity(("a", "b")) == 1


# -- conditions ----------------------------------------------------------------


def test_condition_constants(ra, db):
    assert ra.eval_condition(R_TRUE, db, EMPTY_RA_ENV) is TRUE
    assert ra.eval_condition(R_FALSE, db, EMPTY_RA_ENV) is FALSE


def test_predicate_three_valued(ra, db):
    env = RAEnvironment({"X": NULL, "Y": 1})
    assert ra.eval_condition(RPredicate("=", (Attr("X"), Attr("Y"))), db, env) is UNKNOWN
    assert ra.eval_condition(RPredicate("=", (Attr("Y"), 1)), db, env) is TRUE


def test_null_and_const_tests_two_valued(ra, db):
    env = RAEnvironment({"X": NULL, "Y": 1})
    assert ra.eval_condition(NullTest(Attr("X")), db, env) is TRUE
    assert ra.eval_condition(NullTest(Attr("Y")), db, env) is FALSE
    assert ra.eval_condition(ConstTest(Attr("X")), db, env) is FALSE
    assert ra.eval_condition(ConstTest(Attr("Y")), db, env) is TRUE


def test_connectives(ra, db):
    env = RAEnvironment({"X": NULL})
    unknown = RPredicate("=", (Attr("X"), 1))
    assert ra.eval_condition(RAnd(unknown, R_FALSE), db, env) is FALSE
    assert ra.eval_condition(ROr(unknown, R_TRUE), db, env) is TRUE
    assert ra.eval_condition(RNot(unknown), db, env) is UNKNOWN


def test_in_condition_three_valued(ra, db):
    # S = {1, NULL}: 1 ∈ S is t; 2 ∈ S is u (the NULL row); on σ_FALSE(S) it's f.
    s = Relation("S")
    assert ra.eval_condition(InExpr((1,), s), db, EMPTY_RA_ENV) is TRUE
    assert ra.eval_condition(InExpr((2,), s), db, EMPTY_RA_ENV) is UNKNOWN
    empty_s = Selection(s, R_FALSE)
    assert ra.eval_condition(InExpr((2,), empty_s), db, EMPTY_RA_ENV) is FALSE


def test_empty_condition(ra, db):
    assert ra.eval_condition(Empty(Selection(Relation("S"), R_FALSE)), db, EMPTY_RA_ENV) is TRUE
    assert ra.eval_condition(Empty(Relation("S")), db, EMPTY_RA_ENV) is FALSE


def test_correlated_selection_uses_environment(ra, schema, db):
    """σ's row bindings override the outer environment (η ; η^ā)."""
    inner = Selection(Relation("S"), RPredicate("=", (Attr("C"), Attr("P"))))
    env = RAEnvironment({"P": 1})
    t = ra.evaluate(inner, db, env)
    assert sorted(t.bag) == [(1,)]


def test_unbound_name_raises(ra, db):
    expr = Selection(Relation("S"), RPredicate("=", (Attr("Q"), 1)))
    with pytest.raises(UnboundReferenceError):
        ra.evaluate(expr, db)


def test_environment_for_record_length_mismatch():
    with pytest.raises(ValueError):
        RAEnvironment.for_record(("A",), (1, 2))


def test_environment_override():
    env = RAEnvironment({"A": 1}).override_with(("A", "B"), (9, 2))
    assert env.lookup("A") == 9
    assert env.lookup("B") == 2


def test_nested_in_with_correlation(ra, schema, db):
    """t̄ ∈ E evaluates E under the current environment (correlation)."""
    cond = InExpr((Attr("P"),), Relation("S"))
    assert ra.eval_condition(cond, db, RAEnvironment({"P": 1})) is TRUE
    assert ra.eval_condition(cond, db, RAEnvironment({"P": 2})) is UNKNOWN
