"""Proposition 2: SQL-RA desugars to pure RA (α-renaming, two-valuing,
∈-elimination, decorrelation into semijoins)."""

import random

import pytest

from repro.algebra.ast import (
    Attr,
    Empty,
    InExpr,
    Product,
    Projection,
    R_TRUE,
    RAnd,
    Relation,
    RNot,
    ROr,
    RPredicate,
    Selection,
    is_pure,
)
from repro.algebra.desugar import alpha_rename, desugar, two_value_condition
from repro.algebra.semantics import EMPTY_RA_ENV, RAEnvironment, RASemantics
from repro.algebra.translate import to_sqlra
from repro.algebra.typecheck import signature
from repro.core import NULL, Database, Schema, validation_schema
from repro.core.errors import IllFormedExpressionError
from repro.core.truth import FALSE, TRUE
from repro.generator import DM_CONFIG, DataFillerConfig, QueryGenerator, fill_database
from repro.semantics import SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("C",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {"R": [(1, 2), (1, 2), (NULL, 3), (2, NULL)], "S": [(1,), (NULL,)]},
    )


@pytest.fixture
def ra(schema):
    return RASemantics(schema)


# -- α-renaming ----------------------------------------------------------------


def test_alpha_rename_preserves_data(ra, schema, db):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("A"), 1)))
    renamed = alpha_rename(expr, schema)
    t = ra.evaluate(renamed, db)
    assert sorted(t.bag) == [(1, 2), (1, 2)]
    assert signature(renamed, schema) != ("A", "B")  # labels freshened


def test_alpha_rename_handles_shadowing(ra, schema, db):
    """A condition name bound by the inner scope must not be rewritten to the
    outer scope's fresh name."""
    inner = Selection(Relation("S"), RPredicate("=", (Attr("C"), Attr("A"))))
    outer = Selection(Relation("R"), RNot(Empty(inner)))
    renamed = alpha_rename(outer, schema)
    assert ra.evaluate(renamed, db).bag == ra.evaluate(outer, db).bag


def test_alpha_rename_rejects_free_names(schema):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("Zfree"), 1)))
    with pytest.raises(IllFormedExpressionError):
        alpha_rename(expr, schema)


# -- two-valuing ------------------------------------------------------------------


def test_two_value_predicate_guarded(ra, schema, db):
    cond = RPredicate("=", (Attr("X"), Attr("Y")))
    tt = two_value_condition(cond, schema)
    env_null = RAEnvironment({"X": NULL, "Y": 1})
    assert ra.eval_condition(tt, db, env_null) is FALSE  # was u, now f
    env_eq = RAEnvironment({"X": 1, "Y": 1})
    assert ra.eval_condition(tt, db, env_eq) is TRUE


def test_two_value_negation(ra, schema, db):
    cond = RNot(RPredicate("=", (Attr("X"), 1)))
    tt = two_value_condition(cond, schema)
    env = RAEnvironment({"X": NULL})
    # ¬u is u under 3VL; the t-translation must give f, not t.
    assert ra.eval_condition(tt, db, env) is FALSE


def test_two_value_literal_null_argument(ra, schema, db):
    tt = two_value_condition(RPredicate("=", (NULL, NULL)), schema)
    assert ra.eval_condition(tt, db, EMPTY_RA_ENV) is FALSE


def test_two_value_matches_is_true_everywhere(ra, schema, db):
    """For every row of R, θᵗ is t exactly when θ is t (θ over A, B)."""
    conditions = [
        RPredicate("=", (Attr("A"), Attr("B"))),
        RNot(RPredicate("<", (Attr("A"), Attr("B")))),
        RAnd(RPredicate("=", (Attr("A"), 1)), RNot(RPredicate("=", (Attr("B"), NULL)))),
        ROr(RNot(RPredicate("=", (Attr("A"), 1))), RPredicate(">", (Attr("B"), 2))),
    ]
    for condition in conditions:
        tt = two_value_condition(condition, schema)
        for row in db.table("R").bag.distinct():
            env = RAEnvironment.for_record(("A", "B"), row)
            original = ra.eval_condition(condition, db, env)
            translated = ra.eval_condition(tt, db, env)
            assert translated in (TRUE, FALSE)
            assert (translated is TRUE) == (original is TRUE)


def test_two_value_false_translation(ra, schema, db):
    for condition in [
        RPredicate("=", (Attr("A"), Attr("B"))),
        RNot(RPredicate("=", (Attr("A"), 1))),
    ]:
        ff = two_value_condition(condition, schema, want_true=False)
        for row in db.table("R").bag.distinct():
            env = RAEnvironment.for_record(("A", "B"), row)
            original = ra.eval_condition(condition, db, env)
            translated = ra.eval_condition(ff, db, env)
            assert (translated is TRUE) == (original is FALSE)


# -- full desugaring ------------------------------------------------------------------


def desugared_equals(expr, ra, schema, db):
    pure = desugar(expr, schema)
    assert is_pure(pure)
    assert signature(pure, schema) == signature(expr, schema)
    expected = ra.evaluate(expr, db)
    got = ra.evaluate(pure, db)
    assert got.same_as(expected)
    return pure


def test_pure_expression_unchanged_semantics(ra, schema, db):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("A"), 1)))
    desugared_equals(expr, ra, schema, db)


def test_uncorrelated_empty(ra, schema, db):
    expr = Selection(Relation("R"), Empty(Selection(Relation("S"), RPredicate("=", (Attr("C"), 7)))))
    desugared_equals(expr, ra, schema, db)


def test_uncorrelated_nonempty(ra, schema, db):
    expr = Selection(Relation("R"), RNot(Empty(Relation("S"))))
    desugared_equals(expr, ra, schema, db)


def test_correlated_empty(ra, schema, db):
    inner = Selection(Relation("S"), RPredicate("=", (Attr("C"), Attr("A"))))
    expr = Selection(Relation("R"), Empty(inner))
    desugared_equals(expr, ra, schema, db)


def test_correlated_in(ra, schema, db):
    expr = Selection(Relation("R"), InExpr((Attr("A"),), Relation("S")))
    desugared_equals(expr, ra, schema, db)


def test_negated_in_three_valued_subtlety(ra, schema, db):
    """¬(A ∈ S) with S containing NULL: u rows must not survive σ."""
    expr = Selection(Relation("R"), RNot(InExpr((Attr("A"),), Relation("S"))))
    pure = desugared_equals(expr, ra, schema, db)
    # Sanity: with S = {1, NULL}, no row has ¬(A ∈ S) true.
    assert ra.evaluate(pure, db).is_empty()


def test_in_with_correlated_source(ra, schema, db):
    inner = Selection(Relation("S"), RPredicate("<", (Attr("C"), Attr("B"))))
    expr = Selection(Relation("R"), InExpr((Attr("A"),), inner))
    desugared_equals(expr, ra, schema, db)


def test_disjunction_of_empties(ra, schema, db):
    inner1 = Selection(Relation("S"), RPredicate("=", (Attr("C"), Attr("A"))))
    inner2 = Selection(Relation("S"), RPredicate("=", (Attr("C"), Attr("B"))))
    expr = Selection(Relation("R"), ROr(Empty(inner1), RNot(Empty(inner2))))
    desugared_equals(expr, ra, schema, db)


def test_nested_correlation_two_levels(ra, schema, db):
    """empty(F) where F itself contains a correlated emptiness test."""
    innermost = Selection(
        Relation("S"), RPredicate("=", (Attr("C"), Attr("A")))
    )
    middle = Selection(
        Relation("R"),
        RAnd(RPredicate("=", (Attr("B"), 2)), Empty(innermost)),
    )
    middle_projected = Projection(middle, ("B",))
    expr = Selection(Relation("S"), RNot(Empty(middle_projected)))
    # Note: A in `innermost` is bound by the *middle* R, not the outer S.
    desugared_equals(expr, ra, schema, db)


def test_desugar_rejects_free_parameters(schema):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("A"), Attr("Zfree"))))
    with pytest.raises(IllFormedExpressionError):
        desugar(expr, schema)


def test_desugar_preserves_multiplicities(ra, schema, db):
    """Semijoin branches must preserve bag multiplicities exactly."""
    expr = Selection(Relation("R"), RNot(Empty(Relation("S"))))
    pure = desugar(expr, schema)
    assert ra.evaluate(pure, db).multiplicity((1, 2)) == 2


@pytest.mark.parametrize("seed", range(30))
def test_randomized_sqlra_desugar_equivalence(seed):
    """to_sqlra(Q) and desugar(to_sqlra(Q)) agree on random DM queries."""
    schema = validation_schema(4)
    rng = random.Random(seed)
    generator = QueryGenerator(schema, DM_CONFIG, rng)
    query = generator.generate()
    db = fill_database(schema, rng, DataFillerConfig(max_rows=3))
    ra = RASemantics(schema)
    sqlra = to_sqlra(query, schema)
    pure = desugar(sqlra, schema)
    assert is_pure(pure)
    expected = SqlSemantics(schema).run(query, db)
    assert ra.evaluate(sqlra, db).same_as(expected)
    assert ra.evaluate(pure, db).same_as(expected)
