"""Dialect-aware SQL rendering and its round-trip with the parser."""

import random

import pytest

from repro.core.errors import CompileError
from repro.core.values import NULL, FullName
from repro.core.schema import validation_schema
from repro.generator import PAPER_CONFIG, QueryGenerator
from repro.sql.ast import (
    And,
    Exists,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
)
from repro.sql.parser import parse_condition, parse_query
from repro.sql.printer import print_condition, print_query, print_term

RA = FullName("R", "A")


def simple_select(**kwargs):
    return Select(
        (SelectItem(RA, "A"),), (FromItem("R", "R"),), TRUE_COND, **kwargs
    )


def test_print_terms():
    assert print_term(3) == "3"
    assert print_term("a'b") == "'a''b'"
    assert print_term(NULL) == "NULL"
    assert print_term(RA) == "R.A"


def test_keyword_identifiers_are_quoted():
    assert print_term(FullName("select", "from")) == '"select"."from"'


def test_print_simple_select():
    assert print_query(simple_select()) == "SELECT R.A AS A FROM R AS R"


def test_print_distinct():
    assert print_query(simple_select(distinct=True)).startswith("SELECT DISTINCT")


def test_print_star():
    q = Select(STAR, (FromItem("R", "R"),), TRUE_COND)
    assert print_query(q) == "SELECT * FROM R AS R"


def test_where_true_omitted():
    assert "WHERE" not in print_query(simple_select())


def test_print_except_dialects():
    q = SetOp("EXCEPT", simple_select(), simple_select())
    assert "EXCEPT" in print_query(q, "standard")
    assert "EXCEPT" in print_query(q, "postgres")
    assert "MINUS" in print_query(q, "oracle")
    with pytest.raises(CompileError):
        print_query(q, "mysql")


def test_mysql_accepts_union():
    q = SetOp("UNION", simple_select(), simple_select())
    assert "UNION" in print_query(q, "mysql")


def test_unknown_dialect_rejected():
    with pytest.raises(ValueError):
        print_query(simple_select(), "sqlite")


def test_column_alias_list_printed():
    q = Select(
        (SelectItem(FullName("N", "X"), "X"),),
        (FromItem(simple_select(), "N", ("X",)),),
        TRUE_COND,
    )
    text = print_query(q)
    assert "AS N(X)" in text
    assert parse_query(text) == q


def test_condition_precedence_round_trip():
    cond = Or(And(TRUE_COND, TRUE_COND), Not(TRUE_COND))
    text = print_condition(cond)
    assert parse_condition(text) == cond


def test_nested_or_in_and_gets_parens():
    cond = And(Or(TRUE_COND, TRUE_COND), TRUE_COND)
    assert print_condition(cond) == "(TRUE OR TRUE) AND TRUE"


def test_right_nested_same_op_gets_parens():
    cond = And(TRUE_COND, And(TRUE_COND, TRUE_COND))
    assert print_condition(cond) == "TRUE AND (TRUE AND TRUE)"


def test_in_and_exists_printed():
    inner = simple_select()
    assert "NOT IN" in print_condition(InQuery((RA,), inner, negated=True))
    assert print_condition(Exists(inner)).startswith("EXISTS (")


def test_row_in_printed():
    cond = InQuery((RA, RA), simple_select())
    assert print_condition(cond).startswith("(R.A, R.A) IN")


def test_like_infix():
    assert print_condition(Predicate("LIKE", (RA, "x%"))) == "R.A LIKE 'x%'"


def test_named_predicate_functional():
    assert print_condition(Predicate("prime", (RA,))) == "prime(R.A)"


def test_is_null_forms():
    assert print_condition(IsNull(RA)) == "R.A IS NULL"
    assert print_condition(IsNull(RA, negated=True)) == "R.A IS NOT NULL"


@pytest.mark.parametrize("dialect", ["standard", "postgres", "oracle"])
@pytest.mark.parametrize("seed", range(40))
def test_generated_query_round_trip(dialect, seed):
    """print → parse is the identity on randomly generated annotated ASTs."""
    schema = validation_schema()
    generator = QueryGenerator(schema, PAPER_CONFIG, random.Random(seed))
    query = generator.generate()
    assert parse_query(print_query(query, dialect)) == query


def test_set_op_associativity_preserved():
    a, b, c = simple_select(), simple_select(), simple_select()
    left_assoc = SetOp("EXCEPT", SetOp("UNION", a, b), c)
    right_assoc = SetOp("UNION", a, SetOp("EXCEPT", b, c))
    assert parse_query(print_query(left_assoc)) == left_assoc
    assert parse_query(print_query(right_assoc)) == right_assoc


def test_intersect_precedence_preserved():
    a, b, c = simple_select(), simple_select(), simple_select()
    q1 = SetOp("UNION", a, SetOp("INTERSECT", b, c))
    q2 = SetOp("INTERSECT", SetOp("UNION", a, b), c)
    assert parse_query(print_query(q1)) == q1
    assert parse_query(print_query(q2)) == q2
