"""The formal semantics of basic SQL: Figures 4–7 of the paper, executable.

The central object is :class:`SqlSemantics`, the semantic function ⟦·⟧.  It
evaluates

* **terms** under an environment η (Figure 4);
* **conditions** under a database and η, to a 3VL truth value (Figure 6);
* **queries** under a database, η, and the Boolean switch x (Figures 5 and 7).

The Boolean switch x implements the paper's treatment of the non-compositional
``SELECT *``: x is 1 exactly for the outermost query nested inside an EXISTS
condition, in which case ``*`` is replaced by an arbitrary constant; with
x = 0, ``*`` expands to the full names ℓ(τ:β) of the local FROM clause (and
referencing a *repeated* full name raises
:class:`~repro.core.errors.AmbiguousReferenceError` — the behaviour of
Example 2).

Two star styles are supported (Section 4's "adjustments"):

* ``standard`` — the Figures 4–7 semantics above (this is also the
  Oracle-adjusted variant; Oracle's syntactic quirk, MINUS, lives in the
  parser/printer, not here);
* ``compositional`` — PostgreSQL's choice: ``SELECT *`` returns the FROM
  product rows unchanged in every context, and the switch x is ignored.

The logic (3VL, or either two-valued interpretation of Section 6) is a
pluggable strategy; see :mod:`repro.semantics.logic`.

Performance: by default :meth:`SqlSemantics._from_where` interleaves
filtering with the FROM product (``fast_from=True``) instead of computing
the full Cartesian product first.  The interleaving is *provably
inconsequential*: only WHERE conjuncts that are total (they can neither
raise nor consult a subquery — constant conditions, ``IS NULL``, and the
built-in total comparisons ``=`` / ``<>``), refer to unambiguous names, and
are covered by a prefix of the FROM items are evaluated early, so results,
multiplicities *and* error behaviour match Figures 5–7 bit for bit; any
query outside that fragment falls back to the literal product-then-filter
rule.  ``fast_from=False`` disables the fast path entirely.

Because both routes are bit-identical, *which* one runs is purely a cost
decision: the interleaved route pays a fixed per-query overhead (staged
binders, taint bookkeeping) that only amortizes on large products, and on
the small tables of the validation campaigns it used to bench *slower*
than the literal rule.  The dispatch is therefore cost-based —
``interleave_min_product`` (default 32, measured as the crossover on the
benchmark and campaign workloads) is the estimated FROM-product size below
which the literal route runs even with ``fast_from=True``; a FROM-subquery
item makes the estimate unbounded, keeping the fast path.  Set it to 0 to
force interleaving wherever the analysis allows.

The dispatch itself must also cost nothing where it cannot help:
single-item FROM clauses (which can never stage a filter before another
item) skip even the analysis memo lookup — correlated subqueries re-enter
the FROM/WHERE rule once per outer row, so that lookup used to tax the
literal route by ~10% on the benchmark workload.  ``scripts/bench.py``
gates the residual overhead at 5% (``semantics_ratio``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.bag import Bag
from ..core.env import EMPTY_ENV, Environment
from ..core.errors import ArityMismatchError, CompileError, DuplicateAliasError
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.truth import FALSE, TRUE, UNKNOWN, Truth, conj_all
from ..core.values import NULL, FullName, Name, Null, Record, Term, Value
from ..sql.ast import (
    And,
    Condition,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    Query,
    Select,
    SetOp,
    TrueCond,
)
from ..sql.labels import (
    from_item_labels,
    from_labels,
    query_labels,
    scope_full_names,
)
from .logic import Logic, THREE_VALUED, get_logic
from .predicates import PredicateRegistry, default_registry, is_total_builtin

__all__ = ["SqlSemantics", "STAR_STANDARD", "STAR_COMPOSITIONAL"]

STAR_STANDARD = "standard"
STAR_COMPOSITIONAL = "compositional"


def _conjuncts_of(condition: Condition) -> List[Condition]:
    """The top-level AND conjuncts of a condition, in syntactic order."""
    if isinstance(condition, And):
        return _conjuncts_of(condition.left) + _conjuncts_of(condition.right)
    return [condition]


def _check_aliases(from_items: Tuple[FromItem, ...]) -> None:
    """Reject a FROM clause that binds the same alias twice."""
    seen_aliases = set()
    for item in from_items:
        if item.alias in seen_aliases:
            raise DuplicateAliasError(
                f"alias {item.alias} used twice in the same FROM clause"
            )
        seen_aliases.add(item.alias)




class SqlSemantics:
    """The semantic function ⟦·⟧ of Figures 4–7.

    Parameters
    ----------
    schema:
        The database schema, needed to compute ℓ(R) for base tables.
    star_style:
        ``"standard"`` for the paper's Figures 4–7 (with the Boolean switch),
        ``"compositional"`` for the PostgreSQL adjustment of Section 4.
    logic:
        A :class:`~repro.semantics.logic.Logic` instance or its name;
        defaults to SQL's three-valued logic.
    predicates:
        The collection P; defaults to the comparisons and LIKE.
    exists_constant, exists_label:
        The "arbitrary c ∈ C and N ∈ N" used when ``SELECT *`` occurs
        directly under EXISTS in the standard style.
    """

    def __init__(
        self,
        schema: Schema,
        star_style: str = STAR_STANDARD,
        logic: Logic | str = THREE_VALUED,
        predicates: Optional[PredicateRegistry] = None,
        exists_constant: Value = 1,
        exists_label: Name = "C",
        fast_from: bool = True,
        interleave_min_product: int = 32,
    ):
        if star_style not in (STAR_STANDARD, STAR_COMPOSITIONAL):
            raise ValueError(f"unknown star style: {star_style!r}")
        self.schema = schema
        self.star_style = star_style
        self.logic = get_logic(logic) if isinstance(logic, str) else logic
        self.predicates = predicates if predicates is not None else default_registry()
        self.exists_constant = exists_constant
        self.exists_label = exists_label
        self.fast_from = fast_from
        self.interleave_min_product = interleave_min_product
        # Interleaving analyses are env-independent; memoized per Select
        # node (keyed by id, with the node pinned to prevent id reuse)
        # because correlated subqueries re-enter _from_where per outer row.
        self._interleave_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Terms (Figure 4)
    # ------------------------------------------------------------------

    def eval_term(self, term: Term, env: Environment) -> Value:
        """⟦t⟧η: a full name denotes η(A); constants and NULL denote themselves."""
        if isinstance(term, FullName):
            return env.lookup(term)
        if isinstance(term, Null):
            return NULL
        return term

    def eval_terms(self, terms: Tuple[Term, ...], env: Environment) -> Record:
        """⟦(t1, …, tn)⟧η = (⟦t1⟧η, …, ⟦tn⟧η).

        A list comprehension (not a generator) feeds ``tuple``: this runs
        once per surviving product row and the generator frame's
        suspend/resume overhead is measurable at campaign scale.
        """
        eval_term = self.eval_term
        return tuple([eval_term(term, env) for term in terms])

    # ------------------------------------------------------------------
    # Queries (Figures 5 and 7)
    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: Query,
        db: Database,
        env: Environment = EMPTY_ENV,
        exists_context: bool = False,
    ) -> Table:
        """⟦Q⟧_{D,η,x}; for a top-level query, ⟦Q⟧_D = ⟦Q⟧_{D,∅,0}."""
        if isinstance(query, Select):
            return self._eval_select(query, db, env, exists_context)
        if isinstance(query, SetOp):
            return self._eval_setop(query, db, env)
        raise TypeError(f"not a query: {query!r}")

    def _eval_from(
        self, from_items: Tuple[FromItem, ...], db: Database, env: Environment
    ) -> Bag:
        """⟦τ:β⟧_{D,η,x} = ⟦T1⟧_{D,η,0} × ⋯ × ⟦Tk⟧_{D,η,0}."""
        _check_aliases(from_items)
        product: Optional[Bag] = None
        for item in from_items:
            if item.is_base_table:
                bag = db.table(item.table).bag
            else:
                bag = self.evaluate(item.table, db, env, exists_context=False).bag
            product = bag if product is None else product.product(bag)
        if product is None:
            raise CompileError("a FROM clause must reference at least one table")
        return product

    def _from_where(
        self, query: Select, db: Database, env: Environment
    ) -> list[tuple[Record, int, Environment]]:
        """The ⟦FROM τ:β WHERE θ⟧ rule: rows of the product that satisfy θ.

        Returns (record, multiplicity, revised environment η′) triples, where
        η′ = η ⊕r̄ ℓ(τ:β) is the environment against which the SELECT list is
        subsequently evaluated.

        With ``fast_from`` (the default), WHERE clauses made entirely of
        total, unambiguous conjuncts are filtered *while* the product is
        built (see :meth:`_from_where_interleaved`); every other query takes
        the literal Figure 5 route below.
        """
        scope = scope_full_names(query.from_items, self.schema)
        # The fast-path dispatch must never make the literal route slower:
        # a single-item FROM can never stage a filter before another item
        # (the analysis would just say None), so it skips the memo lookup
        # entirely — this matters because correlated subqueries re-enter
        # here once per outer row.
        if self.fast_from and len(query.from_items) > 1:
            survivors = self._from_where_interleaved(query, db, env, scope)
            if survivors is not None:
                return survivors
        product = self._eval_from(query.from_items, db, env)
        survivors = []
        binder = env.binder(scope)
        condition = query.where
        for record, count in product.counts().items():
            revised = binder.bind(record)
            if self.eval_condition(condition, db, revised).is_true:
                survivors.append((record, count, revised))
        return survivors

    # -- the interleaved FROM/WHERE fast path ---------------------------------

    def _hoistable(
        self, condition: Condition, names: List[FullName]
    ) -> bool:
        """Whether a conjunct is *total* (can never raise) and subquery-free,
        collecting the full names it references.

        Only such conjuncts may be evaluated early: evaluating a total
        condition on more rows, fewer rows, or in a different order is
        unobservable, which is what makes the interleaving bit-for-bit
        faithful to Figures 5–7 — including error behaviour.
        """
        if isinstance(condition, (TrueCond, FalseCond)):
            return True
        if isinstance(condition, Predicate):
            if len(condition.args) != 2 or not is_total_builtin(
                self.predicates, condition.name
            ):
                return False
            names.extend(t for t in condition.args if isinstance(t, FullName))
            return True
        if isinstance(condition, IsNull):
            if isinstance(condition.term, FullName):
                names.append(condition.term)
            return True
        if isinstance(condition, (And, Or)):
            return self._hoistable(condition.left, names) and self._hoistable(
                condition.right, names
            )
        if isinstance(condition, Not):
            return self._hoistable(condition.operand, names)
        return False

    def _interleave_analysis(
        self, query: Select, scope: Tuple[FullName, ...]
    ) -> Optional[tuple]:
        """The env-independent part of the interleaving decision.

        Splits the WHERE conjuncts (syntactic order) into a *stageable
        prefix* — total, subquery-free conjuncts over unambiguous local
        names, each tagged with the earliest FROM prefix that covers it and
        with the outer names it needs — and the *residual suffix*, which
        starts at the first conjunct that is not stageable and is evaluated
        the Figure 5 way.  The prefix restriction is what keeps error
        behaviour exact: a residual conjunct is only ever skipped on rows
        where a syntactically *earlier* conjunct was false, which is
        precisely the naive short-circuit.

        Returns ``(staged, residual, prefix_end)`` with ``staged`` a tuple
        of (condition, stage, outer_names) triples, or None when no staging
        is possible or nothing would be filtered before the last FROM item.
        """
        from_items = query.from_items
        if not from_items or len(from_items) == 1:
            return None
        conjuncts = _conjuncts_of(query.where)
        widths = [len(from_item_labels(item, self.schema)) for item in from_items]
        prefix_end = []
        total = 0
        for w in widths:
            total += w
            prefix_end.append(total)
        name_count: Dict[FullName, int] = {}
        for name in scope:
            name_count[name] = name_count.get(name, 0) + 1
        position = {name: i for i, name in enumerate(scope)}

        def covering_stage(pos: int) -> int:
            for k, end in enumerate(prefix_end):
                if pos < end:
                    return k + 1
            raise AssertionError("scope position out of range")

        staged: List[tuple] = []
        split = 0
        for condition in conjuncts:
            names: List[FullName] = []
            if not self._hoistable(condition, names):
                break
            stage = 0
            outer_names = []
            ambiguous = False
            for name in names:
                if name in name_count:
                    if name_count[name] > 1:
                        ambiguous = True  # not total: lookup raises
                        break
                    stage = max(stage, covering_stage(position[name]))
                else:
                    outer_names.append(name)
            if ambiguous:
                break
            staged.append((condition, stage, tuple(outer_names)))
            split += 1
        if not any(stage < len(from_items) for _c, stage, _n in staged):
            # Nothing can be filtered before the last FROM item: the
            # interleaving would just re-implement Figure 5 verbatim.
            return None
        return tuple(staged), tuple(conjuncts[split:]), tuple(prefix_end)

    def _from_where_interleaved(
        self,
        query: Select,
        db: Database,
        env: Environment,
        scope: Tuple[FullName, ...],
    ) -> Optional[list[tuple[Record, int, Environment]]]:
        """Filter-during-product evaluation of ⟦FROM τ:β WHERE θ⟧.

        Staged conjuncts are evaluated at the earliest FROM prefix that
        binds their local names, and rows on which one is *false* are
        dropped there — before later FROM items multiply them.  Rows on
        which a staged conjunct is unknown cannot survive either, but they
        are carried along (as "tainted") so the residual conjuncts are
        still evaluated on exactly the rows the naive And-chain would reach:
        staged conjuncts are total, so evaluating them early, on fewer rows,
        or in a different order is unobservable, and results,
        multiplicities, environments and error behaviour all match the
        Figure 5 product-then-filter evaluation bit for bit.
        """
        cached = self._interleave_cache.get(id(query))
        if cached is None or cached[1] != self.predicates.version:
            # Recompute when absent or stale: the analysis depends on the
            # predicate registry (a re-registered "=" may no longer be
            # total), so it is validated against the registry version.
            if len(self._interleave_cache) > 4096:
                self._interleave_cache.clear()
            # Pin the query object so its id cannot be reused.  The last
            # two slots memoize the per-database cost verdict below.
            cached = [
                query,
                self.predicates.version,
                self._interleave_analysis(query, scope),
                None,
                False,
            ]
            self._interleave_cache[id(query)] = cached
        analysis = cached[2]
        if analysis is None:
            return None
        if cached[3] != id(db):
            # Both routes are bit-identical, so this is purely a cost call:
            # on a small product the staged binders and taint bookkeeping
            # cost more than the filtering saves (the bench regression the
            # dispatch exists to avoid).  The verdict depends only on this
            # (query, database) pair, and correlated subqueries re-enter
            # here per outer row, so it is memoized per database identity
            # (a stale id hit could at worst pick the other, equally
            # correct route).
            cached[3] = id(db)
            cached[4] = self._product_worth_interleaving(query.from_items, db)
        if not cached[4]:
            return None
        staged, residual, prefix_end = analysis
        from_items = query.from_items
        n_items = len(from_items)
        # A staged conjunct whose outer names this environment does not bind
        # would raise; it and everything after it must go the naive route.
        usable = 0
        for _condition, _stage, outer_names in staged:
            if not all(env.defined_on(name) for name in outer_names):
                break
            usable += 1
        if not any(stage < n_items for _c, stage, _n in staged[:usable]):
            return None
        residual = tuple(c for c, _s, _n in staged[usable:]) + residual
        stages: List[List[Condition]] = [[] for _ in range(n_items + 1)]
        for condition, stage, _outer in staged[:usable]:
            stages[stage].append(condition)

        _check_aliases(from_items)

        # Outer-only staged conjuncts hold (or not) for every row alike.
        outer = TRUE
        for condition in stages[0]:
            outer = outer & self.eval_condition(condition, db, env)
            if outer is FALSE:
                break

        # One *ordered* map record -> (count, tainted): rows with a staged
        # conjunct unknown cannot survive, but are carried — in product
        # order, interleaved with the clean rows — so the residual is later
        # evaluated on exactly the rows, and in exactly the order, the
        # Figure 5 evaluation would visit (error fidelity).
        partial: Dict[Record, tuple[int, bool]] = (
            {(): (1, outer is UNKNOWN)} if outer is not FALSE else {}
        )
        for k, item in enumerate(from_items, start=1):
            # Bags are still evaluated for *every* item, even when no rows
            # survive: a subquery in FROM may raise, exactly as in Figure 5.
            if item.is_base_table:
                bag = db.table(item.table).bag
            else:
                bag = self.evaluate(item.table, db, env, exists_context=False).bag
            counts = bag.counts()
            if partial:
                grown: Dict[Record, tuple[int, bool]] = {}
                for record, (count, taint) in partial.items():
                    for sub_record, sub_count in counts.items():
                        grown[record + sub_record] = (count * sub_count, taint)
                partial = grown
            if stages[k] and partial:
                binder = env.binder(scope[: prefix_end[k - 1]])
                kept: Dict[Record, tuple[int, bool]] = {}
                for record, (count, taint) in partial.items():
                    truth = self._staged_truth(stages[k], db, binder, record)
                    if truth is TRUE:
                        kept[record] = (count, taint)
                    elif truth is UNKNOWN:
                        kept[record] = (count, True)
                partial = kept
        survivors: list[tuple[Record, int, Environment]] = []
        full_binder = env.binder(scope)
        if not residual:
            return [
                (record, count, full_binder.bind(record))
                for record, (count, taint) in partial.items()
                if not taint
            ]
        residual_cond = residual[0]
        for condition in residual[1:]:
            residual_cond = And(residual_cond, condition)
        for record, (count, taint) in partial.items():
            revised = full_binder.bind(record)
            if self.eval_condition(residual_cond, db, revised).is_true and not taint:
                survivors.append((record, count, revised))
        return survivors

    def _product_worth_interleaving(
        self, from_items: Tuple[FromItem, ...], db: Database
    ) -> bool:
        """Whether the FROM product is big enough to amortize interleaving.

        Multiplies the bound sizes of the base-table items; a FROM-subquery
        makes the product unbounded a priori (its bag is not known before
        evaluation), so it always qualifies.  Compared against
        ``interleave_min_product``.
        """
        threshold = self.interleave_min_product
        if threshold <= 0:
            return True
        estimate = 1
        for item in from_items:
            if not item.is_base_table:
                return True
            estimate *= len(db.table(item.table).bag)
            if estimate >= threshold:
                return True
        return False

    def _staged_truth(
        self,
        conditions: List[Condition],
        db: Database,
        binder,
        record: Record,
    ) -> Truth:
        """The conjunction of staged conjuncts on a product prefix row."""
        revised = binder.bind(record)
        result = TRUE
        for condition in conditions:
            result = result & self.eval_condition(condition, db, revised)
            if result is FALSE:
                return FALSE
        return result

    def _eval_select(
        self, query: Select, db: Database, env: Environment, exists_context: bool
    ) -> Table:
        if query.is_star:
            table = self._eval_select_star(query, db, env, exists_context)
        else:
            survivors = self._from_where(query, db, env)
            labels = tuple(item.alias for item in query.items)
            terms = tuple(item.term for item in query.items)
            counts: dict[Record, int] = {}
            for _record, count, revised in survivors:
                out = self.eval_terms(terms, revised)
                counts[out] = counts.get(out, 0) + count
            table = Table(labels, Bag.from_counts(counts))
        if query.distinct:
            table = table.distinct()
        return table

    def _eval_select_star(
        self, query: Select, db: Database, env: Environment, exists_context: bool
    ) -> Table:
        if self.star_style == STAR_COMPOSITIONAL:
            # PostgreSQL's rule: ⟦SELECT * FROM τ:β WHERE θ⟧ = ⟦FROM τ:β WHERE θ⟧.
            labels = from_labels(query.from_items, self.schema)
            survivors = self._from_where(query, db, env)
            counts: dict[Record, int] = {}
            for record, count, _revised in survivors:
                counts[record] = counts.get(record, 0) + count
            return Table(labels, Bag.from_counts(counts))
        if exists_context:
            # x = 1: ⟦SELECT * …⟧_{D,η,1} = ⟦SELECT c AS N …⟧_{D,η,1}.
            survivors = self._from_where(query, db, env)
            counts: dict[Record, int] = {}
            for _record, count, _revised in survivors:
                out = (self.exists_constant,)
                counts[out] = counts.get(out, 0) + count
            return Table((self.exists_label,), Bag.from_counts(counts))
        # x = 0: ⟦SELECT * …⟧_{D,η,0} = ⟦SELECT ℓ(τ:β) : ℓ(τ) …⟧_{D,η,0}.
        scope = scope_full_names(query.from_items, self.schema)
        labels = from_labels(query.from_items, self.schema)
        survivors = self._from_where(query, db, env)
        counts: dict[Record, int] = {}
        for _record, count, revised in survivors:
            out = self.eval_terms(scope, revised)
            counts[out] = counts.get(out, 0) + count
        return Table(labels, Bag.from_counts(counts))

    def _eval_setop(self, query: SetOp, db: Database, env: Environment) -> Table:
        """Figure 7: set and bag flavours of UNION, INTERSECT, EXCEPT."""
        left = self.evaluate(query.left, db, env, exists_context=False)
        right = self.evaluate(query.right, db, env, exists_context=False)
        if left.arity != right.arity:
            raise ArityMismatchError(
                f"{query.op} combines tables of arity {left.arity} and {right.arity}"
            )
        labels = left.columns  # ℓ(Q1 op Q2) = ℓ(Q1)
        if query.op == "UNION":
            bag = left.bag.union(right.bag)
            if not query.all:
                bag = bag.distinct_bag()
        elif query.op == "INTERSECT":
            bag = left.bag.intersection(right.bag)
            if not query.all:
                bag = bag.distinct_bag()
        else:  # EXCEPT
            if query.all:
                bag = left.bag.difference(right.bag)
            else:
                # ⟦Q1 EXCEPT Q2⟧ = ε(⟦Q1⟧) − ⟦Q2⟧ (not ε of the ALL version!)
                bag = left.bag.distinct_bag().difference(right.bag)
        return Table(labels, bag)

    # ------------------------------------------------------------------
    # Conditions (Figure 6)
    # ------------------------------------------------------------------

    def eval_condition(
        self, condition: Condition, db: Database, env: Environment
    ) -> Truth:
        """⟦θ⟧_{D,η} ∈ {t, f, u}.

        The isinstance chain is ordered by observed frequency (predicate
        leaves dominate every WHERE tree, and this runs once per conjunct
        per surviving row); the AST node classes are disjoint, so the
        order cannot change the result.
        """
        if isinstance(condition, Predicate):
            values = self.eval_terms(condition.args, env)
            return self.logic.predicate(self.predicates, condition.name, values)
        if isinstance(condition, TrueCond):
            return TRUE
        if isinstance(condition, FalseCond):
            return FALSE
        if isinstance(condition, IsNull):
            value = self.eval_term(condition.term, env)
            result = Truth.from_bool(value is NULL)
            return ~result if condition.negated else result
        if isinstance(condition, InQuery):
            result = self._eval_in(condition, db, env)
            return ~result if condition.negated else result
        if isinstance(condition, Exists):
            table = self.evaluate(condition.query, db, env, exists_context=True)
            return Truth.from_bool(not table.is_empty())
        if isinstance(condition, And):
            left = self.eval_condition(condition.left, db, env)
            if left is FALSE:
                return FALSE
            return left & self.eval_condition(condition.right, db, env)
        if isinstance(condition, Or):
            left = self.eval_condition(condition.left, db, env)
            if left is TRUE:
                return TRUE
            return left | self.eval_condition(condition.right, db, env)
        if isinstance(condition, Not):
            return ~self.eval_condition(condition.operand, db, env)
        raise TypeError(f"not a condition: {condition!r}")

    def _eval_in(self, condition: InQuery, db: Database, env: Environment) -> Truth:
        """⟦t̄ IN Q⟧: the disjunction of ⟦t̄ = r̄⟧ over the rows r̄ of Q."""
        table = self.evaluate(condition.query, db, env, exists_context=False)
        if table.arity != len(condition.terms):
            raise ArityMismatchError(
                f"IN compares {len(condition.terms)} term(s) against a query of "
                f"arity {table.arity}"
            )
        values = self.eval_terms(condition.terms, env)
        result = FALSE
        equal = self.logic.equal
        for row in table.bag.distinct():
            comparison = conj_all(
                [equal(a, b) for a, b in zip(values, row)]
            )
            result = result | comparison
            if result is TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run(self, query: Query, db: Database) -> Table:
        """⟦Q⟧_D for a parameter-free query: ⟦Q⟧_{D,∅,0}."""
        return self.evaluate(query, db, EMPTY_ENV, exists_context=False)

    def output_labels(self, query: Query) -> Tuple[Name, ...]:
        """ℓ(Q) for this semantics' schema."""
        return query_labels(query, self.schema)
