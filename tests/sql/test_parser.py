"""Recursive-descent parser for the Figure 2 grammar (surface syntax)."""

import pytest

from repro.core.errors import ParseError
from repro.core.values import NULL, FullName
from repro.sql.ast import (
    And,
    BareColumn,
    Exists,
    FalseCond,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Or,
    Predicate,
    STAR,
    Select,
    SetOp,
    TrueCond,
)
from repro.sql.parser import parse_condition, parse_query


def test_minimal_select():
    q = parse_query("SELECT R.A FROM R")
    assert isinstance(q, Select)
    assert q.items[0].term == FullName("R", "A")
    assert q.from_items == (FromItem("R", "R"),)
    assert isinstance(q.where, TrueCond)
    assert not q.distinct


def test_select_star():
    q = parse_query("SELECT * FROM R")
    assert q.items is STAR


def test_select_distinct():
    assert parse_query("SELECT DISTINCT R.A FROM R").distinct
    assert not parse_query("SELECT ALL R.A FROM R").distinct


def test_select_list_aliases():
    q = parse_query("SELECT R.A AS X, R.B Y, 3 FROM R")
    assert [item.alias for item in q.items] == ["X", "Y", ""]
    assert q.items[2].term == 3


def test_terms():
    q = parse_query("SELECT 1, 'a''b', NULL, A, R.A FROM R")
    terms = [item.term for item in q.items]
    assert terms == [1, "a'b", NULL, BareColumn("A"), FullName("R", "A")]


def test_from_aliases():
    q = parse_query("SELECT A FROM R AS X, S Y, T")
    assert [f.alias for f in q.from_items] == ["X", "Y", "T"]


def test_from_subquery_requires_alias():
    with pytest.raises(ParseError):
        parse_query("SELECT A FROM (SELECT B FROM T)")


def test_from_subquery_with_alias():
    q = parse_query("SELECT U.B FROM (SELECT T.B FROM T) AS U")
    sub = q.from_items[0]
    assert isinstance(sub.table, Select)
    assert sub.alias == "U"


def test_from_column_aliases():
    q = parse_query("SELECT N.X FROM (SELECT T.B FROM T) AS N(X)")
    assert q.from_items[0].column_aliases == ("X",)


def test_where_comparison():
    q = parse_query("SELECT R.A FROM R WHERE R.A = 3")
    assert q.where == Predicate("=", (FullName("R", "A"), 3))


@pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
def test_all_comparison_operators(op):
    q = parse_query(f"SELECT R.A FROM R WHERE R.A {op} 1")
    assert q.where == Predicate(op, (FullName("R", "A"), 1))


def test_bang_equals_is_not_equals():
    q = parse_query("SELECT R.A FROM R WHERE R.A != 1")
    assert q.where == Predicate("<>", (FullName("R", "A"), 1))


def test_is_null_and_is_not_null():
    q = parse_query("SELECT R.A FROM R WHERE R.A IS NULL")
    assert q.where == IsNull(FullName("R", "A"))
    q = parse_query("SELECT R.A FROM R WHERE R.A IS NOT NULL")
    assert q.where == IsNull(FullName("R", "A"), negated=True)


def test_in_subquery():
    q = parse_query("SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)")
    assert isinstance(q.where, InQuery)
    assert not q.where.negated
    assert q.where.terms == (FullName("R", "A"),)


def test_not_in_subquery():
    q = parse_query("SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)")
    assert isinstance(q.where, InQuery) and q.where.negated


def test_row_in_subquery():
    q = parse_query(
        "SELECT R.A FROM R WHERE (R.A, R.B) IN (SELECT S.A, S.B FROM S)"
    )
    assert isinstance(q.where, InQuery)
    assert q.where.terms == (FullName("R", "A"), FullName("R", "B"))


def test_row_equality_expands_to_conjunction():
    """Figure 6: (t1, t2) = (s1, s2) is the conjunction of equalities."""
    q = parse_query("SELECT R.A FROM R WHERE (R.A, R.B) = (1, 2)")
    assert q.where == And(
        Predicate("=", (FullName("R", "A"), 1)),
        Predicate("=", (FullName("R", "B"), 2)),
    )


def test_row_inequality_expands_to_disjunction():
    q = parse_query("SELECT R.A FROM R WHERE (R.A, R.B) <> (1, 2)")
    assert q.where == Or(
        Predicate("<>", (FullName("R", "A"), 1)),
        Predicate("<>", (FullName("R", "B"), 2)),
    )


def test_row_is_not_null_expands_to_conjunction():
    """Figure 10's (t1, t2) IS NOT NULL shorthand."""
    q = parse_query("SELECT R.A FROM R WHERE (R.A, R.B) IS NOT NULL")
    assert q.where == And(
        IsNull(FullName("R", "A"), negated=True),
        IsNull(FullName("R", "B"), negated=True),
    )


def test_row_length_mismatch_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT R.A FROM R WHERE (R.A, R.B) = (1, 2, 3)")


def test_exists():
    q = parse_query("SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S)")
    assert isinstance(q.where, Exists)


def test_boolean_precedence_and_binds_tighter():
    cond = parse_condition("TRUE OR FALSE AND TRUE")
    assert isinstance(cond, Or)
    assert isinstance(cond.right, And)


def test_not_precedence():
    cond = parse_condition("NOT TRUE AND FALSE")
    assert isinstance(cond, And)
    assert isinstance(cond.left, Not)


def test_parenthesized_condition():
    cond = parse_condition("(TRUE OR FALSE) AND TRUE")
    assert isinstance(cond, And)
    assert isinstance(cond.left, Or)


def test_parenthesized_single_term_condition():
    cond = parse_condition("(R.A) IS NULL")
    assert cond == IsNull(FullName("R", "A"))


def test_like():
    cond = parse_condition("R.A LIKE 'x%'")
    assert cond == Predicate("LIKE", (FullName("R", "A"), "x%"))


def test_not_like():
    cond = parse_condition("R.A NOT LIKE 'x%'")
    assert cond == Not(Predicate("LIKE", (FullName("R", "A"), "x%")))


def test_named_predicate_call():
    cond = parse_condition("prime(R.A)")
    assert cond == Predicate("prime", (FullName("R", "A"),))


def test_true_false_atoms():
    assert isinstance(parse_condition("TRUE"), TrueCond)
    assert isinstance(parse_condition("FALSE"), FalseCond)


def test_union_and_except_left_associative():
    q = parse_query("SELECT R.A FROM R UNION SELECT S.A FROM S EXCEPT SELECT T.A FROM T")
    assert isinstance(q, SetOp) and q.op == "EXCEPT"
    assert isinstance(q.left, SetOp) and q.left.op == "UNION"


def test_intersect_binds_tighter_than_union():
    q = parse_query(
        "SELECT R.A FROM R UNION SELECT S.A FROM S INTERSECT SELECT T.A FROM T"
    )
    assert q.op == "UNION"
    assert isinstance(q.right, SetOp) and q.right.op == "INTERSECT"


def test_set_op_all():
    q = parse_query("SELECT R.A FROM R UNION ALL SELECT S.A FROM S")
    assert q.all


def test_minus_is_except():
    q = parse_query("SELECT R.A FROM R MINUS SELECT S.A FROM S")
    assert q.op == "EXCEPT"


def test_parenthesized_query_in_set_op():
    q = parse_query("(SELECT R.A FROM R) UNION (SELECT S.A FROM S)")
    assert isinstance(q, SetOp) and q.op == "UNION"


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT R.A FROM R garbage garbage")


def test_missing_from_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT R.A")


@pytest.mark.parametrize(
    "text",
    [
        "SELECT R.A FROM R GROUP BY R.A",  # aggregation not in the fragment
        "SELECT R.A FROM R ORDER BY R.A",
        "SELECT COUNT(*) FROM R",
    ],
)
def test_out_of_fragment_rejected(text):
    with pytest.raises(ParseError):
        parse_query(text)


def test_parse_error_reports_position():
    with pytest.raises(ParseError) as excinfo:
        parse_query("SELECT R.A FROM\n   WHERE")
    assert excinfo.value.line == 2
