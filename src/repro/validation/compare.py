"""The correctness criterion of Section 4, and outcome classification.

Two results "coincide" when the tables have precisely the same number of
columns, with the same names and in the same order, and precisely the same
rows with the same multiplicities (row order is arbitrary).  In addition,
the paper's Oracle campaign counts a trial as agreement when *both* sides
raise an ambiguity error for the same query; :class:`Outcome` captures
either a table or a classified error so the runner can compare uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import AmbiguousReferenceError, CompileError, ReproError
from ..core.table import Table

__all__ = ["Outcome", "capture", "tables_coincide", "explain_difference"]

ERROR_AMBIGUOUS = "ambiguous"
ERROR_COMPILE = "compile"


@dataclass(frozen=True)
class Outcome:
    """Either a result table or a classified error."""

    table: Optional[Table] = None
    error: Optional[str] = None
    detail: str = ""

    @property
    def is_error(self) -> bool:
        return self.error is not None

    def agrees_with(self, other: "Outcome") -> bool:
        if self.is_error or other.is_error:
            return self.error == other.error
        return tables_coincide(self.table, other.table)


def capture(fn) -> Outcome:
    """Run a niladic callable, capturing tables and classified errors."""
    try:
        table = fn()
    except AmbiguousReferenceError as exc:
        return Outcome(error=ERROR_AMBIGUOUS, detail=str(exc))
    except CompileError as exc:
        return Outcome(error=ERROR_COMPILE, detail=str(exc))
    except ReproError as exc:  # pragma: no cover - unexpected classes
        return Outcome(error=type(exc).__name__, detail=str(exc))
    return Outcome(table=table)


def tables_coincide(left: Table, right: Table) -> bool:
    """Section 4's criterion: same columns (names, order), same bag of rows."""
    return left.same_as(right)


def explain_difference(left: Outcome, right: Outcome) -> str:
    """A human-readable account of why two outcomes differ."""
    if left.agrees_with(right):
        return "outcomes agree"
    if left.is_error != right.is_error:
        errored, ok = (left, right) if left.is_error else (right, left)
        return (
            f"one side raised {errored.error} ({errored.detail}) while the "
            f"other returned {len(ok.table)} row(s)"
        )
    if left.is_error:
        return f"different errors: {left.error} vs {right.error}"
    if left.table.columns != right.table.columns:
        return f"different columns: {left.table.columns} vs {right.table.columns}"
    missing = []
    for record in set(left.table.bag.distinct()) | set(right.table.bag.distinct()):
        lcount = left.table.multiplicity(record)
        rcount = right.table.multiplicity(record)
        if lcount != rcount:
            missing.append(f"{record!r}: {lcount} vs {rcount}")
    return "different multiplicities: " + "; ".join(missing[:10])
