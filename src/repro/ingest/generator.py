"""Query generation against ingested scenarios (FK-join-biased).

The Section 4 generator (:class:`repro.generator.queries.QueryGenerator`)
draws *structurally* random queries: FROM lists are arbitrary table
multisets and comparisons mix columns and constants freely.  That is the
right stressor for a 6-row validation database, but pointed at a 10⁵-row
ingested database it produces mostly-empty cross joins whose intermediate
products explode.

:class:`ScenarioGenerator` instead walks the scenario's foreign-key graph:

* FROM clauses grow **path-shaped** along FK edges — each new item joins the
  previously added one through an FK equality, so every join is
  key/foreign-key shaped and intermediate sizes stay near the data size;
* filter constants are **sampled from the column being filtered**, so
  predicates are type-homogeneous (never tripping the dialects' ordered
  int-vs-text type-clash divergence by accident) and selective;
* WHERE subqueries (EXISTS / IN) correlate through an FK edge too.

Generation is deterministic given a seeded :class:`random.Random`, exactly
like the base generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.values import NULL, FullName, Name
from ..sql.ast import (
    Condition,
    Exists,
    FromItem,
    InQuery,
    IsNull,
    Not,
    Predicate,
    Query,
    STAR,
    Select,
    SelectItem,
    SetOp,
    TRUE_COND,
    conjunction,
)
from .scenario import Scenario, TYPE_TEXT

__all__ = [
    "ScenarioGeneratorConfig",
    "ScenarioGenerator",
    "DEFAULT_SCENARIO_CONFIG",
    "SCALE_SCENARIO_CONFIG",
    "config_for_scenario",
]

_ORDERED = ("<", "<=", ">", ">=")
_SETOPS = ("UNION", "INTERSECT", "EXCEPT")


@dataclass(frozen=True)
class ScenarioGeneratorConfig:
    """Shape knobs for :class:`ScenarioGenerator`."""

    max_from: int = 3
    max_select: int = 3
    max_filters: int = 3
    star_probability: float = 0.15
    distinct_probability: float = 0.25
    setop_probability: float = 0.12
    subquery_probability: float = 0.25
    null_check_probability: float = 0.2
    negation_probability: float = 0.2


DEFAULT_SCENARIO_CONFIG = ScenarioGeneratorConfig()

#: Tuned for 10⁴–10⁶-row scenarios: no WHERE subqueries (the row-wise
#: evaluators run correlated subqueries per outer row — quadratic at scale)
#: and at most one FK join, so per-trial cost stays near-linear in the data.
SCALE_SCENARIO_CONFIG = ScenarioGeneratorConfig(
    max_from=2,
    subquery_probability=0.0,
    star_probability=0.08,
)


def config_for_scenario(scenario) -> ScenarioGeneratorConfig:
    """The default config, or the scale-tuned one for large scenarios."""
    return (
        SCALE_SCENARIO_CONFIG
        if scenario.total_rows > 5000
        else DEFAULT_SCENARIO_CONFIG
    )


class _Edge:
    """One FK edge viewed from a side: join ``near`` columns to ``far``."""

    __slots__ = ("near_table", "near_columns", "far_table", "far_columns")

    def __init__(self, near_table, near_columns, far_table, far_columns):
        self.near_table = near_table
        self.near_columns = tuple(near_columns)
        self.far_table = far_table
        self.far_columns = tuple(far_columns)


class ScenarioGenerator:
    """FK-join-biased random query generator over a :class:`Scenario`."""

    def __init__(
        self,
        scenario: Scenario,
        config: ScenarioGeneratorConfig = DEFAULT_SCENARIO_CONFIG,
        rng: Optional[random.Random] = None,
    ):
        self.scenario = scenario
        self.config = config
        self.rng = rng if rng is not None else random.Random()
        self._alias_counter = 0
        self._output_counter = 0
        # Adjacency: table -> edges leaving it (both FK directions).  The
        # edges are added in canonical (sorted) FK order so generation
        # depends only on the scenario's *content*: two scenarios with equal
        # fingerprints yield identical query streams even when their FK
        # tuples were discovered in different orders (SQLite's
        # foreign_key_list reverses declaration order on every export/
        # import round trip).
        self._edges: dict = {}
        for fk in sorted(scenario.fks, key=repr):
            self._edges.setdefault(fk.table, []).append(
                _Edge(fk.table, fk.columns, fk.ref_table, fk.ref_columns)
            )
            self._edges.setdefault(fk.ref_table, []).append(
                _Edge(fk.ref_table, fk.ref_columns, fk.table, fk.columns)
            )

    # -- public ----------------------------------------------------------------

    def generate(self, seed: Optional[int] = None) -> Query:
        if seed is not None:
            self.rng.seed(seed)
        self._alias_counter = 0
        self._output_counter = 0
        if self._chance(self.config.setop_probability):
            arity = self.rng.randint(1, self.config.max_select)
            left = self._select(target_arity=arity)
            right = self._select(target_arity=arity)
            op = self.rng.choice(_SETOPS)
            return SetOp(op, left, right, all=self._chance(0.5))
        return self._select()

    # -- helpers ----------------------------------------------------------------

    def _chance(self, probability: float) -> bool:
        return self.rng.random() < probability

    def _fresh_alias(self) -> Name:
        self._alias_counter += 1
        return f"T{self._alias_counter}"

    def _fresh_output(self) -> Name:
        self._output_counter += 1
        return f"C{self._output_counter}"

    # -- FROM construction -------------------------------------------------------

    def _walk_from(self) -> Tuple[List[FromItem], List[Tuple[str, Name]], List[Condition]]:
        """Grow a path along FK edges.

        Returns the FROM items, the ``(table, alias)`` pair per item, and the
        join conditions tying consecutive items together.
        """
        tables = self.scenario.schema.table_names
        start = self.rng.choice(tables)
        items = [FromItem(start, self._fresh_alias())]
        bindings = [(start, items[0].alias)]
        joins: List[Condition] = []
        want = self.rng.randint(1, self.config.max_from)
        while len(items) < want:
            near_table, near_alias = bindings[-1]
            edges = self._edges.get(near_table, ())
            if not edges:
                break
            edge = self.rng.choice(edges)
            alias = self._fresh_alias()
            items.append(FromItem(edge.far_table, alias))
            bindings.append((edge.far_table, alias))
            for near_col, far_col in zip(edge.near_columns, edge.far_columns):
                joins.append(
                    Predicate(
                        "=",
                        (
                            FullName(near_alias, near_col),
                            FullName(alias, far_col),
                        ),
                    )
                )
        return items, bindings, joins

    # -- SELECT blocks -----------------------------------------------------------

    def _select(self, target_arity: Optional[int] = None) -> Select:
        items, bindings, joins = self._walk_from()
        filters = self._filters(bindings)
        where = conjunction(joins + filters) if joins or filters else TRUE_COND
        distinct = self._chance(self.config.distinct_probability)

        if target_arity is None and self._chance(self.config.star_probability):
            return Select(STAR, tuple(items), where, distinct=distinct)

        arity = (
            target_arity
            if target_arity is not None
            else self.rng.randint(1, self.config.max_select)
        )
        select_items = []
        for _ in range(arity):
            table, alias = self.rng.choice(bindings)
            column = self.rng.choice(self.scenario.schema.attributes(table))
            select_items.append(
                SelectItem(FullName(alias, column), self._fresh_output())
            )
        return Select(tuple(select_items), tuple(items), where, distinct=distinct)

    # -- filters -----------------------------------------------------------------

    def _filters(self, bindings: List[Tuple[str, Name]]) -> List[Condition]:
        out: List[Condition] = []
        for _ in range(self.rng.randint(0, self.config.max_filters)):
            table, alias = self.rng.choice(bindings)
            column = self.rng.choice(self.scenario.schema.attributes(table))
            out.append(self._filter_for(bindings, table, alias, column))
        return out

    def _filter_for(
        self,
        bindings: List[Tuple[str, Name]],
        table: str,
        alias: Name,
        column: Name,
    ) -> Condition:
        term = FullName(alias, column)
        if self._chance(self.config.null_check_probability):
            return IsNull(term, negated=self._chance(0.5))
        if self._chance(self.config.subquery_probability):
            sub = self._correlated_subquery(table, alias)
            if sub is not None:
                return sub
        pool = self.scenario.value_pool(table, column)
        if not pool:
            return IsNull(term, negated=True)
        constant = self.rng.choice(pool)
        if self.scenario.column_type(table, column) == TYPE_TEXT:
            ops = ("=", "=", "<>") + _ORDERED
        else:
            ops = ("=", "=", "<>", "<>") + _ORDERED
        condition: Condition = Predicate(self.rng.choice(ops), (term, constant))
        if self._chance(self.config.negation_probability):
            condition = Not(condition)
        return condition

    # -- subqueries ---------------------------------------------------------------

    def _correlated_subquery(self, table: str, outer_alias: Name) -> Optional[Condition]:
        """EXISTS / IN over an FK neighbour, correlated through the edge."""
        edges = self._edges.get(table, ())
        if not edges:
            return None
        edge = self.rng.choice(edges)
        alias = self._fresh_alias()
        correlation = conjunction(
            [
                Predicate(
                    "=",
                    (
                        FullName(alias, far_col),
                        FullName(outer_alias, near_col),
                    ),
                )
                for near_col, far_col in zip(edge.near_columns, edge.far_columns)
            ]
        )
        if self._chance(0.5):
            inner = Select(
                (SelectItem(FullName(alias, edge.far_columns[0]), self._fresh_output()),),
                (FromItem(edge.far_table, alias),),
                correlation,
            )
            return Exists(inner)
        # t IN (SELECT ref FROM far): uncorrelated IN through the FK columns.
        inner = Select(
            (SelectItem(FullName(alias, edge.far_columns[0]), self._fresh_output()),),
            (FromItem(edge.far_table, alias),),
            TRUE_COND,
        )
        left: Tuple = (FullName(outer_alias, edge.near_columns[0]),)
        if self._chance(0.1):
            left = (NULL,)
        return InQuery(left, inner, negated=self._chance(0.4))


def scenario_generator(
    scenario: Scenario,
    seed: int = 0,
    config: ScenarioGeneratorConfig = DEFAULT_SCENARIO_CONFIG,
) -> ScenarioGenerator:
    """A generator with a private seeded RNG (convenience for campaigns)."""
    return ScenarioGenerator(scenario, config, random.Random(seed))
