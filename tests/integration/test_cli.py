"""The command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import load_database, main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(
        json.dumps(
            {
                "schema": {"R": ["A"], "S": ["A"]},
                "tables": {"R": [[1], [None]], "S": [[None]]},
            }
        )
    )
    return str(path)


def test_load_database(db_file):
    from repro.core import NULL

    db = load_database(db_file)
    assert db.schema.attributes("R") == ("A",)
    assert db.table("R").multiplicity((NULL,)) == 1
    assert db.table("S").multiplicity((NULL,)) == 1


def test_run_command(db_file, capsys):
    code = main(["run", "SELECT R.A FROM R EXCEPT SELECT S.A FROM S", "-d", db_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "annotated:" in out
    assert "| 1" in out


def test_run_command_postgres_dialect(db_file, capsys):
    code = main(
        [
            "run",
            "SELECT * FROM (SELECT R.A, R.A FROM R) AS T",
            "-d",
            db_file,
            "--dialect",
            "postgres",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("A") >= 2


def test_translate_command(db_file, capsys):
    code = main(
        ["translate", "SELECT R.A FROM R WHERE R.A = 1", "-d", db_file]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "SQL-RA" in out
    assert "σ" in out


def test_translate_pure(db_file, capsys):
    code = main(
        [
            "translate",
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            "-d",
            db_file,
            "--pure",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pure relational algebra" in out
    assert "∈" not in out  # desugared


def test_two_valued_command(db_file, capsys):
    code = main(
        [
            "two-valued",
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            "-d",
            db_file,
            "--equality",
            "conflating",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "NOT EXISTS" in out
    assert "IS NULL" in out


def test_two_valued_syntactic(db_file, capsys):
    code = main(
        [
            "two-valued",
            "SELECT R.A FROM R WHERE R.A = 1",
            "-d",
            db_file,
            "--equality",
            "syntactic",
        ]
    )
    assert code == 0
    assert "IS NOT NULL" in capsys.readouterr().out


def test_validate_command(capsys):
    code = main(["validate", "--trials", "15", "--variants", "postgres"])
    assert code == 0
    out = capsys.readouterr().out
    assert "postgres" in out
    assert "100.0000%" in out


def test_generate_command(capsys):
    code = main(["generate", "--count", "3", "--seed", "11"])
    assert code == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 3
    assert all(line.endswith(";") for line in out)


def test_generate_oracle_dialect(capsys):
    code = main(["generate", "--count", "5", "--seed", "2", "--dialect", "oracle"])
    assert code == 0
    assert "EXCEPT" not in capsys.readouterr().out


def test_generated_queries_parse_back(capsys):
    from repro.sql import parse_query

    main(["generate", "--count", "5", "--seed", "3"])
    for line in capsys.readouterr().out.strip().splitlines():
        parse_query(line.rstrip(";"))

def test_query_command_against_service(db_file, capsys):
    from repro.cli import load_database as _load
    from repro.service import QueryService, ServiceThread

    service = QueryService(secret="cli-secret")
    service.install_database(_load(db_file))
    with ServiceThread(service) as thread:
        code = main(
            [
                "query",
                thread.url,
                "SELECT R.A FROM R WHERE R.A = $1",
                "--params",
                "[1]",
                "--secret",
                "cli-secret",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "| 1" in out
        assert "(1 row(s))" in out
        # Bad secret is a clean diagnostic, not a traceback.
        with pytest.raises(SystemExit, match="401"):
            main(["query", thread.url, "SELECT R.A FROM R"])


def test_report_renders_service_bench(tmp_path, capsys):
    doc = {
        "schema": "bench-service/v1",
        "clients": 8,
        "rows": 60,
        "warm": {
            "requests": 400,
            "qps": 3000.0,
            "latency_ms": {"p50": 2.5, "p95": 4.0, "p99": 5.0},
        },
        "cold": {
            "requests": 400,
            "qps": 1400.0,
            "latency_ms": {"p50": 5.5, "p95": 9.0, "p99": 17.0},
        },
        "speedup": 2.14,
        "cross_query_build_hits": 500,
        "cross_query_hit_rate": 0.35,
        "plan_cache": {"hits": 800, "misses": 12, "entries": 12, "bytes": 8000},
        "build_cache": {"hits": 1400, "misses": 14, "entries": 14, "bytes": 300000},
        "served_digest": "abc123",
        "digest_match": True,
    }
    path = tmp_path / "BENCH_service.json"
    path.write_text(json.dumps(doc))
    code = main(["report", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "2.14x" in out
    assert "3000.0 qps" in out
    assert "replay matches" in out
    # A failed digest gate exits non-zero.
    doc["digest_match"] = False
    path.write_text(json.dumps(doc))
    assert main(["report", str(path)]) == 1
