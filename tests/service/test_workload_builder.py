"""The service-bench workload builders.

The bench's service stage used to hardcode its workload in a module-level
constant the spawned load-generator child re-read on import — so an ingested
schema could never drive the bench.  These tests pin (a) the factored-out
default workload byte-for-byte against the historical statement set, and
(b) the regression: the load generator takes the workload as an explicit
parameter and the bench module has no workload global left."""

import importlib.util
import inspect
from pathlib import Path

import pytest

from repro.engine import DIALECT_POSTGRES, Engine
from repro.ingest import import_scenario
from repro.ingest.workload import (
    build_service_workload,
    default_service_database,
    default_service_workload,
)
from repro.ingest.scenario import Scenario
from repro.service.protocol import bind_parameters, expand_placeholders
from repro.sql import annotate

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURE = str(REPO / "tests" / "fixtures" / "library.sql")

HISTORICAL = [
    (
        "SELECT R.A FROM R, S, T, U WHERE R.A = S.A AND S.C = T.C "
        "AND U.C = T.C AND R.B = U.B AND R.A = $1",
        [[0], [2], [4], [999]],
    ),
    (
        "SELECT R.B FROM R, S, T, U WHERE R.A = S.A AND S.C = T.C "
        "AND U.C = T.C AND R.B = U.B",
        [[]],
    ),
    (
        "SELECT R.A FROM R, S, U WHERE R.A = S.A AND R.B = U.B "
        "AND S.C = U.C AND R.B IN (SELECT T.C FROM T)",
        [[]],
    ),
    (
        "SELECT R.B FROM R, S, U WHERE R.A = S.A AND R.B = U.B "
        "AND S.C = U.C AND R.B IN (SELECT T.C FROM T)",
        [[]],
    ),
    (
        "SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.C = T.C AND EXISTS "
        "(SELECT U.B FROM U WHERE U.B = R.B) AND R.B = $1",
        [[0], [2]],
    ),
    (
        "SELECT U.B FROM U, T WHERE U.C = T.C "
        "AND U.B IN (SELECT R.B FROM R WHERE R.A = $1)",
        [[0], [2], [6]],
    ),
]


def test_default_workload_pins_the_historical_statements():
    assert default_service_workload() == HISTORICAL


def test_default_database_shape():
    db = default_service_database(64)
    assert db.schema.attributes("R") == ("A", "B")
    assert len(db.table("R")) == 64
    assert len(db.table("S")) == 32


def _check_workload_runs(workload, scenario):
    """Every statement parses, binds its parameters, and executes."""
    engine = Engine(scenario.schema, DIALECT_POSTGRES)
    assert workload
    for sql, bindings in workload:
        assert bindings, sql
        template, count = expand_placeholders(sql)
        query = annotate(template, scenario.schema)
        for params in bindings:
            bound = bind_parameters(query, list(params), count)
            table = engine.execute(bound, scenario.database)
            assert table is not None


def test_scenario_workload_executes_over_the_fixture():
    scenario = import_scenario(FIXTURE)
    _check_workload_runs(build_service_workload(scenario), scenario)


def test_scenario_workload_has_shared_probe_pairs():
    """Each FK edge contributes an IN-probe statement *pair* embedding the
    identical subquery — the shape that earns cross-query build-cache hits."""
    scenario = import_scenario(FIXTURE)
    workload = build_service_workload(scenario, max_statements=12)
    probes = {}
    for sql, _ in workload:
        marker = sql.find("IN (SELECT")
        if marker != -1:
            probes.setdefault(sql[marker:], []).append(sql)
    shared = [group for group in probes.values() if len(group) >= 2]
    assert shared, "no IN-probe pair shares a probe subquery"
    for group in shared:
        assert len(set(group)) == len(group)  # distinct statements


def test_fkless_scenario_degrades_to_parameterized_scans():
    scenario = import_scenario(FIXTURE)
    stripped = Scenario(
        schema=scenario.schema,
        database=scenario.database,
        fks=(),
        types=scenario.types,
        source=scenario.source,
        notes=scenario.notes,
    )
    workload = build_service_workload(stripped)
    assert workload
    assert all("IN (SELECT" not in sql for sql, _ in workload)
    _check_workload_runs(workload, stripped)


# -- the bench regression ------------------------------------------------------


@pytest.fixture(scope="module")
def bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_under_test", REPO / "scripts" / "bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_service_drive_takes_the_workload_explicitly(bench_module):
    """The spawned load generator must receive the workload as an argument —
    a module global would silently reset to the default in the child."""
    assert "workload" in inspect.signature(
        bench_module._service_drive
    ).parameters


def test_bench_has_no_hardcoded_workload_global(bench_module):
    assert not hasattr(bench_module, "SERVICE_WORKLOAD")
    assert not hasattr(bench_module, "_service_db")


def test_bench_service_accepts_a_scenario_path(bench_module):
    assert "scenario_path" in inspect.signature(
        bench_module.bench_service
    ).parameters
