"""The columnar batch backend (:mod:`repro.engine.columnar`).

Pins the contracts the vectorized tier must keep:

* batch execution agrees with the interpreted tier on every 3VL input —
  including *which* errors are raised, with which messages, and when
  short-circuit order suppresses them (the fused filters and the
  optimistic kernels both fall back to an exact per-row replay);
* plans round-trip through ``bind_plan(columnar=True)`` /
  ``unbind_plan``: cached plans pin no database rows or columns, and the
  per-:class:`~repro.core.table.Table` scan memos are computed once and
  reused across executions;
* the tier composes with the plan cache, the build-side cache and the
  cardinality feedback exactly like the row-wise tiers;
* invalid flag combinations are rejected eagerly, and — unlike the
  closure compiler — batch compilation also applies to single-use plans
  (``plan_cache_size=0``).
"""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import CompileError
from repro.engine import Engine, compile_columnar
from repro.engine.binding import bind_plan, iter_plan_nodes, unbind_plan
from repro.engine.operators import TableScan
from repro.sql import annotate

SCHEMA = Schema({"R": ("A", "B"), "S": ("A",)})


def make_db(rows_r, rows_s):
    return Database(SCHEMA, {"R": rows_r, "S": rows_s})


def engines():
    return (
        Engine(SCHEMA, "postgres", vectorized=True),
        Engine(SCHEMA, "postgres", compiled=False),
    )


def assert_tiers_agree(text, db):
    """Vectorized and interpreted outcomes must be bit-identical: same
    table or same error class and message."""
    query = annotate(text, SCHEMA)
    vectorized, interpreted = engines()
    outcomes = []
    for engine in (vectorized, interpreted):
        try:
            outcomes.append(("ok", engine.execute(query, db)))
        except Exception as exc:
            outcomes.append(("err", type(exc), str(exc)))
    tagged_v, tagged_i = outcomes
    if tagged_v[0] == "ok" and tagged_i[0] == "ok":
        assert tagged_v[1].same_as(tagged_i[1]), text
    else:
        assert tagged_v == tagged_i, text
    return tagged_i


# -- 3VL equivalence on hand-written grids ------------------------------------

#: Rows covering every 3VL corner: NULLs on either side, both strings,
#: and the str/int clashes the ordered comparisons raise on.
GRID_ROWS_R = [
    (1, 1),
    (1, 2),
    (2, 1),
    (NULL, 1),
    (1, NULL),
    (NULL, NULL),
    (3, 3),
]

GRID_QUERIES = [
    "SELECT R.A FROM R WHERE R.A = R.B",
    "SELECT R.A FROM R WHERE R.A <> 1",
    "SELECT R.A FROM R WHERE R.A < R.B",
    "SELECT R.A FROM R WHERE R.B >= 2",
    "SELECT R.A FROM R WHERE R.A IS NULL",
    "SELECT R.A FROM R WHERE R.B IS NOT NULL",
    "SELECT R.A FROM R WHERE R.A = 1 AND R.B IS NOT NULL",
    "SELECT R.A FROM R WHERE R.A = 1 OR R.B = 2",
    "SELECT R.A FROM R WHERE NOT (R.A = R.B)",
    "SELECT R.A FROM R WHERE NOT (R.A <= 2 AND R.B <> 4)",
    "SELECT R.A FROM R WHERE (R.A IS NULL OR R.A < R.B) AND R.B IS NOT NULL",
    # NULL literals: the comparison is UNKNOWN on every row.
    "SELECT R.A FROM R WHERE R.A = NULL",
    "SELECT R.A FROM R WHERE NOT (R.A < NULL)",
]


@pytest.mark.parametrize("text", GRID_QUERIES)
def test_vectorized_matches_interpreted_on_3vl_grid(text):
    assert_tiers_agree(text, make_db(GRID_ROWS_R, [(1,), (NULL,)]))


def test_string_rows_and_like():
    db = make_db([("ab", "ab"), ("ab", "ba"), (NULL, "ab")], [("ab",)])
    for text in (
        "SELECT R.A FROM R WHERE R.A = R.B",
        "SELECT R.A FROM R WHERE R.A LIKE 'a%'",
        "SELECT R.A FROM R WHERE NOT (R.A LIKE 'a%' OR R.A = 'xyz')",
        "SELECT R.A FROM R WHERE R.B LIKE '_b' AND R.A IS NOT NULL",
    ):
        assert_tiers_agree(text, db)


def test_type_clash_errors_match_interpreted_exactly():
    # Ordered comparison across the str/int boundary: the optimistic
    # kernel aborts and the per-row replay reproduces the interpreted
    # CompileError verbatim.
    for text, db in [
        ("SELECT R.A FROM R WHERE R.A < R.B", make_db([("a", 1)], [])),
        ("SELECT R.A FROM R WHERE R.A < 2", make_db([(1, 0), ("a", 0)], [])),
        ("SELECT R.A FROM R WHERE R.A LIKE 'a%'", make_db([(1, 0)], [])),
    ]:
        tag = assert_tiers_agree(text, db)
        assert tag[0] == "err" and tag[1] is CompileError, text


def test_shortcircuit_suppression_is_exact():
    # Left FALSE: the row-wise AND never evaluates its raising right side.
    assert_tiers_agree(
        "SELECT R.A FROM R WHERE R.A = 1 AND R.B < 2",
        make_db([(5, "b")], []),
    )
    # Left UNKNOWN: the row-wise AND *does* evaluate the right side (it
    # must split FALSE from UNKNOWN) — the error must surface.
    tag = assert_tiers_agree(
        "SELECT R.A FROM R WHERE R.A = 1 AND R.B < 2",
        make_db([(NULL, "b")], []),
    )
    assert tag[0] == "err" and tag[1] is CompileError
    # Left TRUE: the row-wise OR skips its raising right side.
    assert_tiers_agree(
        "SELECT R.A FROM R WHERE R.A = 1 OR R.B < 2",
        make_db([(1, "b")], []),
    )


def test_all_scalar_predicates_raise_per_selected_row():
    # A raising literal-only predicate evaluates once per row, so it
    # raises on a non-empty table and not at all on an empty one.
    text = "SELECT S.A FROM S WHERE 1 < 'a'"
    tag = assert_tiers_agree(text, make_db([], [(1,)]))
    assert tag[0] == "err" and tag[1] is CompileError
    assert_tiers_agree(text, make_db([], []))


def test_scalar_like_column_takes_scalar_first_kernel():
    # ``'lit' LIKE col`` with a probe in the tree runs on the kernel-mask
    # path, whose sv kernel takes (scalar, vector) — a flipped call used
    # to iterate the scalar instead, returning zero-length masks for the
    # empty-string literal and silently dropping every row.
    db = make_db([(1, ""), (2, "ab"), (3, NULL)], [(1,), (2,)])
    mask_path = (
        "SELECT R.A FROM R WHERE '' LIKE R.B AND R.A IN (SELECT S.A FROM S)",
        "SELECT R.A FROM R WHERE 'ab' LIKE R.B AND R.A IN (SELECT S.A FROM S)",
        "SELECT R.A FROM R WHERE NOT ('%' LIKE R.B AND R.A IN (SELECT S.A FROM S))",
    )
    for text in mask_path + ("SELECT R.A FROM R WHERE '' LIKE R.B",):
        assert_tiers_agree(text, db)
    # Not just agreeing on empty: the empty-string literal matches the
    # empty-string column value on both tiers.
    query = annotate(mask_path[0], SCHEMA)
    for engine in engines():
        assert [r for r in engine.execute(query, db).bag] == [(1,)]


def test_probe_subqueries_stay_exact():
    db = make_db(
        [(1, 2), (2, NULL), (NULL, 4), (3, 3)], [(1,), (3,), (NULL,)]
    )
    for text in (
        "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)",
        "SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S) AND R.B >= 2",
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.B)",
        "SELECT R.A FROM R WHERE NOT (R.A IN (SELECT S.A FROM S) AND R.A = 1)",
    ):
        assert_tiers_agree(text, db)


def test_joins_setops_distinct_agree():
    db = make_db([(1, 2), (2, NULL), (NULL, 4), (3, 3), (1, 2)], [(1,), (3,)])
    for text in (
        "SELECT R.A, S.A FROM R, S WHERE R.A = S.A",
        "SELECT R.A FROM R, S WHERE R.A = S.A AND R.B > 1",
        "SELECT DISTINCT R.A FROM R",
        "SELECT R.A FROM R UNION SELECT S.A FROM S",
        "SELECT R.A FROM R INTERSECT ALL SELECT S.A FROM S",
        "SELECT R.A FROM R EXCEPT ALL SELECT S.A FROM S",
    ):
        assert_tiers_agree(text, db)


# -- bind/unbind round-trip ---------------------------------------------------


def test_columnar_plan_unbinds_and_table_memos_persist():
    engine = Engine(SCHEMA, "postgres", vectorized=True)
    query = annotate("SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)", SCHEMA)
    db1 = make_db([(1, 2), (3, 4)], [(1,)])
    db2 = make_db([(1, 2), (3, 4)], [(3,)])
    assert [r for r in engine.execute(query, db1).bag] == [(1,)]
    assert [r for r in engine.execute(query, db2).bag] == [(3,)]
    plan = engine._plan(query).plan
    assert engine._plan(query).run is not None
    for node, _pred in iter_plan_nodes(plan):
        if isinstance(node, TableScan):
            assert node.data is None  # unbound: no database rows pinned
            assert node._columns is None  # ... and no column vectors either
    # The scan memos live on the (immutable) tables, not the plan: one
    # conversion + transposition per Table, reused across executions.
    table = db1.table("R")
    rows_memo, cols_memo = table._scan_rows, table._scan_cols
    assert rows_memo is not None and cols_memo is not None
    engine.execute(query, db1)
    assert table._scan_rows is rows_memo
    assert table._scan_cols is cols_memo


def test_bind_plan_without_columnar_skips_column_memo():
    engine = Engine(SCHEMA, "postgres")  # row-wise: no columns needed
    query = annotate("SELECT R.A FROM R", SCHEMA)
    db = make_db([(1, 2)], [])
    engine.execute(query, db)
    assert db.table("R")._scan_rows is not None
    assert db.table("R")._scan_cols is None


def test_unbound_columnar_plan_refuses_to_run():
    query = annotate("SELECT R.A FROM R WHERE R.A = 1", SCHEMA)
    engine = Engine(SCHEMA, "postgres", vectorized=True)
    db = make_db([(1, 2)], [])
    engine.execute(query, db)
    with pytest.raises(RuntimeError, match="without a bound database"):
        list(engine._plan(query).run(()))


def test_compile_columnar_direct_bind_roundtrip():
    engine = Engine(SCHEMA, "postgres", vectorized=True)
    query = annotate("SELECT R.B FROM R WHERE R.A = 1", SCHEMA)
    compiled = engine._plan(query)
    run = compile_columnar(compiled.plan)
    db = make_db([(1, 7), (2, 8)], [])
    bind_plan(compiled.plan, db, columnar=True)
    try:
        assert list(run(())) == [(7,)]
    finally:
        unbind_plan(compiled.plan)


# -- engine composition -------------------------------------------------------


def test_vectorized_engine_uses_build_side_cache():
    engine = Engine(SCHEMA, "postgres", vectorized=True)
    query = annotate("SELECT R.A FROM R WHERE R.A IN (SELECT S.A FROM S)", SCHEMA)
    db = make_db([(1, 2), (3, 4)], [(1,), (3,)])
    for _ in range(3):
        assert len(engine.execute(query, db)) == 2
    assert engine.build_cache_info()["hits"] > 0


def test_vectorized_observed_rows_feedback():
    engine = Engine(SCHEMA, "postgres", vectorized=True)
    query = annotate("SELECT R.A, S.A FROM R, S WHERE R.A = S.A", SCHEMA)
    db = make_db([(1, 2), (2, 3), (3, 4)], [(1,), (2,)])
    engine.execute(query, db)
    observed = engine.cache_info()["observed_rows"]
    assert observed == {"R": 3, "S": 2}


def test_flag_composition_rejected_eagerly():
    with pytest.raises(ValueError, match="vectorized=True, optimize=False"):
        Engine(SCHEMA, "postgres", vectorized=True, optimize=False)
    with pytest.raises(ValueError, match="compiled=True, optimize=False"):
        Engine(SCHEMA, "postgres", compiled=True, optimize=False)
    with pytest.raises(ValueError, match="compiled=True, vectorized=True"):
        Engine(SCHEMA, "postgres", compiled=True, vectorized=True)


def test_vectorized_compiles_single_use_plans():
    """Unlike the closure tier, batch compilation has no plan-cache
    admission gate: an explicit ``vectorized=True`` engine batch-compiles
    even single-use plans."""
    query = annotate("SELECT R.A FROM R", SCHEMA)
    assert Engine(SCHEMA, "postgres", plan_cache_size=0)._plan(query).run is None
    single_use = Engine(SCHEMA, "postgres", vectorized=True, plan_cache_size=0)
    assert single_use._plan(query).run is not None
    db = make_db([(1, 2), (NULL, 3)], [])
    result = single_use.execute(query, db)
    assert result.same_as(Engine(SCHEMA, "postgres").execute(query, db))


def test_hot_plan_cache_is_bit_identical():
    engine = Engine(SCHEMA, "postgres", vectorized=True)
    fresh = Engine(SCHEMA, "postgres", vectorized=True)
    query = annotate(
        "SELECT R.A FROM R WHERE R.A < R.B OR R.A IS NULL", SCHEMA
    )
    db1 = make_db([(1, 2), (NULL, 1), (2, 1)], [])
    db2 = make_db([(3, 4), (4, 3)], [])
    first = [engine.execute(query, db) for db in (db1, db2)]
    again = [engine.execute(query, db) for db in (db1, db2)]  # cache hot
    cold = [fresh.execute(query, db) for db in (db1, db2)]
    for hot, rehot, ref in zip(first, again, cold):
        assert hot.same_as(rehot) and hot.same_as(ref)
    assert engine.cache_info()["hits"] >= 2
