"""Derived RA operators used by the Section 5 translation and its proofs.

All operators here are *syntactic sugar*: they build trees of the primitive
operators of :mod:`repro.algebra.ast`, so anything expressed with them is
still plain relational algebra.  Implemented:

* syntactic equality ``t1 ≐ t2`` (Definition 2), expanded to
  ``(t1 = t2 ∧ const(t1) ∧ const(t2)) ∨ (null(t1) ∧ null(t2))``;
* the syntactic natural join ``E1 ⋈ˢ E2`` — natural join where the
  comparison on common attributes is syntactic equality;
* left semijoin and the paper's left antijoin
  ``E1 ▷ˢ E2 = E1 − E1 ∩ π_{ℓ(E1)}(E1 ⋈ˢ E2)``;
* single-column renaming ρ_{A→B} (a full-signature renaming underneath);
* the generalized projection π^α_β of Section 5, which duplicates columns via
  syntactic self-joins when α has repetitions.

Fresh attribute names are drawn from a :class:`NameSupply` seeded with every
name already in use, so generated trees never capture user names.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from ..core.errors import IllFormedExpressionError
from ..core.schema import Schema
from ..core.values import Name
from .ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    RACondition,
    RAExpr,
    RAnd,
    RATerm,
    Renaming,
    ROr,
    RPredicate,
    Selection,
    rand_all,
)
from .typecheck import signature

__all__ = [
    "NameSupply",
    "syn_eq",
    "rename_columns",
    "rename_one",
    "natural_join_syntactic",
    "semijoin",
    "antijoin",
    "generalized_projection",
    "used_names",
]


class NameSupply:
    """Generates attribute names guaranteed fresh w.r.t. a used set."""

    def __init__(self, used: Iterable[Name] = (), prefix: str = "x"):
        self._used: Set[Name] = set(used)
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: Name | None = None) -> Name:
        base = hint if hint else self._prefix
        candidate = base
        while candidate in self._used:
            self._counter += 1
            candidate = f"{base}_{self._counter}"
        self._used.add(candidate)
        return candidate

    def fresh_many(self, count: int, hint: Name | None = None) -> Tuple[Name, ...]:
        return tuple(self.fresh(hint) for _ in range(count))

    def reserve(self, names: Iterable[Name]) -> None:
        self._used.update(names)


def used_names(expr: RAExpr, schema: Schema) -> Set[Name]:
    """Every attribute name appearing anywhere in an expression tree."""
    from .ast import walk_expressions

    names: Set[Name] = set()
    for sub in walk_expressions(expr):
        if isinstance(sub, Projection):
            names.update(sub.attributes)
        elif isinstance(sub, Renaming):
            names.update(sub.old)
            names.update(sub.new)
        elif isinstance(sub, Selection):
            names.update(_condition_names(sub.condition))
        from .ast import Relation

        if isinstance(sub, Relation) and sub.name in schema:
            names.update(schema.attributes(sub.name))
    return names


def _condition_names(condition: RACondition) -> Set[Name]:
    from .ast import Empty, InExpr, RNot

    names: Set[Name] = set()
    if isinstance(condition, RPredicate):
        names.update(t.name for t in condition.args if isinstance(t, Attr))
    elif isinstance(condition, (NullTest, ConstTest)):
        if isinstance(condition.term, Attr):
            names.add(condition.term.name)
    elif isinstance(condition, (RAnd, ROr)):
        names.update(_condition_names(condition.left))
        names.update(_condition_names(condition.right))
    elif isinstance(condition, RNot):
        names.update(_condition_names(condition.operand))
    elif isinstance(condition, InExpr):
        names.update(t.name for t in condition.terms if isinstance(t, Attr))
    return names


def syn_eq(t1: RATerm, t2: RATerm) -> RACondition:
    """Definition 2's t1 ≐ t2, expanded into plain RA conditions.

    ``t1 ≐ t2`` is equivalent to
    ``(t1 = t2 ∧ const(t1) ∧ const(t2)) ∨ (null(t1) ∧ null(t2))`` and is
    two-valued by construction.
    """
    return ROr(
        RAnd(RAnd(RPredicate("=", (t1, t2)), ConstTest(t1)), ConstTest(t2)),
        RAnd(NullTest(t1), NullTest(t2)),
    )


def rename_columns(
    expr: RAExpr, schema: Schema, mapping: dict[Name, Name]
) -> RAExpr:
    """Rename a subset of columns, keeping the rest (a full ρ underneath)."""
    labels = signature(expr, schema)
    new = tuple(mapping.get(label, label) for label in labels)
    if new == labels:
        return expr
    return Renaming(expr, labels, new)


def rename_one(expr: RAExpr, schema: Schema, old: Name, new: Name) -> RAExpr:
    """ρ_{old→new} of a single column (the paper's ρ_{αi→βi})."""
    return rename_columns(expr, schema, {old: new})


def natural_join_syntactic(
    left: RAExpr, right: RAExpr, schema: Schema, supply: NameSupply | None = None
) -> RAExpr:
    """``E1 ⋈ˢ E2``: natural join with syntactic equality on common columns.

    Output signature: ℓ(E1) followed by the non-common columns of E2 (each
    common column appears once, from E1).  Built as
    π(σ_{⋀ A ≐ A′}(E1 × ρ(E2))) with the common columns of E2 renamed apart.
    """
    left_labels = signature(left, schema)
    right_labels = signature(right, schema)
    common = [a for a in right_labels if a in left_labels]
    if supply is None:
        supply = NameSupply(used_names(left, schema) | used_names(right, schema))
    else:
        supply.reserve(left_labels)
        supply.reserve(right_labels)
    mapping = {a: supply.fresh(f"{a}_r") for a in common}
    renamed_right = rename_columns(right, schema, mapping)
    product = Product(left, renamed_right)
    condition = rand_all([syn_eq(Attr(a), Attr(mapping[a])) for a in common])
    selected = Selection(product, condition)
    output = left_labels + tuple(a for a in right_labels if a not in left_labels)
    if output == signature(selected, schema):
        return selected
    return Projection(selected, output)


def semijoin(
    left: RAExpr, right: RAExpr, schema: Schema, supply: NameSupply | None = None
) -> RAExpr:
    """Left semijoin preserving multiplicities of ``left``.

    ``E1 ⋉ˢ E2 = E1 ∩ π_{ℓ(E1)}(E1 ⋈ˢ E2)``: a row of E1 survives with its
    multiplicity iff it ⋈ˢ-matches some row of E2 (with no common columns the
    join degenerates to a product, giving the uncorrelated emptiness test).
    """
    joined = natural_join_syntactic(left, right, schema, supply)
    left_labels = signature(left, schema)
    projected = (
        joined
        if signature(joined, schema) == left_labels
        else Projection(joined, left_labels)
    )
    return IntersectionOp(left, projected)


def antijoin(
    left: RAExpr, right: RAExpr, schema: Schema, supply: NameSupply | None = None
) -> RAExpr:
    """The paper's left antijoin ``E1 ▷ˢ E2 = E1 − E1 ∩ π_{ℓ(E1)}(E1 ⋈ˢ E2)``."""
    return DifferenceOp(left, semijoin(left, right, schema, supply))


def generalized_projection(
    expr: RAExpr,
    alpha: Sequence[Name],
    beta: Sequence[Name],
    schema: Schema,
    supply: NameSupply | None = None,
) -> RAExpr:
    """The paper's π^α_β: project the (possibly repeated) columns α of E and
    rename them to the distinct names β.

    With α repetition-free this is ρ_{α→β}(π_α(E)); otherwise column
    duplication is simulated with syntactic self-joins::

        π_β(σ_{α ≐ β}(E ⋈ˢ (⋈ˢ_{i} ε(ρ_{αi→βi}(E)))))
    """
    alpha = tuple(alpha)
    beta = tuple(beta)
    if len(alpha) != len(beta):
        raise IllFormedExpressionError("π^α_β needs |α| = |β|")
    if len(set(beta)) != len(beta):
        raise IllFormedExpressionError(f"β must be repetition-free: {beta}")
    labels = signature(expr, schema)
    missing = [a for a in alpha if a not in labels]
    if missing:
        raise IllFormedExpressionError(
            f"π^α_β over {missing} not in signature {labels}"
        )
    clash = [b for b in beta if b in labels]
    if len(set(alpha)) == len(alpha):
        if clash and tuple(beta) != tuple(alpha):
            # β may not overlap ℓ(E) except trivially; go through fresh names.
            if supply is None:
                supply = NameSupply(used_names(expr, schema) | set(beta))
            temp = supply.fresh_many(len(alpha))
            projected = Projection(expr, alpha)
            return Renaming(
                Renaming(projected, alpha, temp), temp, beta
            )
        projected = Projection(expr, alpha)
        if tuple(beta) == tuple(alpha):
            return projected
        return Renaming(projected, alpha, beta)
    if supply is None:
        supply = NameSupply(used_names(expr, schema) | set(beta))
    joined = expr
    for a_name, b_name in zip(alpha, beta):
        copy = Dedup(rename_one(expr, schema, a_name, b_name))
        joined = natural_join_syntactic(joined, copy, schema, supply)
    condition = rand_all(
        [syn_eq(Attr(a_name), Attr(b_name)) for a_name, b_name in zip(alpha, beta)]
    )
    return Projection(Selection(joined, condition), beta)
