"""Proposition 2: desugaring SQL-RA into plain relational algebra.

The paper proves that the SQL-RA extensions — conditions ``t̄ ∈ E`` and
``empty(E)``, with parameters resolved through environments — are syntactic
sugar, in three steps: (i) eliminate ``∈`` in favour of emptiness tests,
(ii) normalize conditions so each atom is a predicate, an emptiness test or
a negation thereof, and (iii) turn ``σ_{empty(E)}`` / ``σ_{¬empty(E)}`` into
left (anti)semijoins.  This module is an executable version of that proof.

The pipeline of :func:`desugar`:

1. **α-renaming** — every attribute name introduced anywhere in the
   expression is replaced by a globally fresh one (references in conditions
   follow the shadowing discipline of the SQL-RA environments).  After this
   pass, distinct scopes never collide, which makes decorrelation by
   context-products well-formed.

2. **Two-valuing + ∈-elimination** — each selection condition θ is replaced
   by its t-translation θᵗ (the Section 6 idea replayed inside RA): every
   predicate atom is guarded with ``const(·)`` so that unknown never arises,
   and ``t̄ ∈ E`` becomes emptiness tests over selections of E.  σ keeps
   exactly the rows where θ is true, and θᵗ is true on exactly those rows,
   so the rewriting is sound; because θᵗ is two-valued, classical Boolean
   reasoning (case splits on atoms) becomes available.

3. **Decorrelation** — for each emptiness atom ``empty(F)`` inside a
   selection over Ê, the parameters Π of F are enumerated by the *context*
   K = ε(π_Π(Ê)); F is recursively desugared against K (each base relation
   becomes K × R, products join on the context columns with the syntactic
   natural join, and so on), giving a pure expression whose Π-projection NE
   lists the bindings with F non-empty.  The selection then splits into the
   semijoin (atom false) and antijoin (atom true) branches of Ê against NE
   — the paper's left (anti)semijoins — and the case split recurses over
   the remaining atoms.

The result is a pure RA expression over the *renamed* signature; a final ρ
restores the original output names, so ``desugar(E)`` is equivalent to E on
every database (under the empty environment).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..core.errors import IllFormedExpressionError
from ..core.schema import Schema
from ..core.values import NULL, Name, Null
from .ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    RACondition,
    RAExpr,
    RAnd,
    RATerm,
    Relation,
    Renaming,
    RFalse,
    RNot,
    ROr,
    RPredicate,
    RTrue,
    R_FALSE,
    R_TRUE,
    Selection,
    UnionOp,
    rand_all,
    walk_expressions,
)
from .ops import NameSupply, natural_join_syntactic, semijoin, used_names
from .params import params
from .typecheck import signature

__all__ = ["desugar", "alpha_rename", "two_value_condition"]


def desugar(expr: RAExpr, schema: Schema) -> RAExpr:
    """Desugar an SQL-RA query (no parameters) into equivalent pure RA."""
    remaining = params(expr, schema)
    if remaining:
        raise IllFormedExpressionError(
            f"cannot desugar an expression with free parameters: {sorted(remaining)}"
        )
    original = signature(expr, schema)
    supply = NameSupply(used_names(expr, schema))
    renamed = _Renamer(schema, supply).rename(expr, {})
    pure = _Desugarer(schema, supply).desugar(renamed, None)
    final = signature(pure, schema)
    if final == original:
        return pure
    return Renaming(pure, final, original)


# ---------------------------------------------------------------------------
# Step 1: α-renaming
# ---------------------------------------------------------------------------


def alpha_rename(
    expr: RAExpr, schema: Schema, supply: Optional[NameSupply] = None
) -> RAExpr:
    """Rename every introduced label to a globally fresh one.

    The result is equivalent to ``expr`` up to its output signature (which
    changes); references in conditions are rewritten following the SQL-RA
    shadowing discipline.  Exposed mostly for tests and tooling; the full
    pipeline is :func:`desugar`.
    """
    if supply is None:
        supply = NameSupply(used_names(expr, schema))
    return _Renamer(schema, supply).rename(expr, {})


class _Renamer:
    """Rewrites an expression so every introduced label is globally fresh."""

    def __init__(self, schema: Schema, supply: NameSupply):
        self.schema = schema
        self.supply = supply

    def rename(self, expr: RAExpr, sub: Dict[Name, Name]) -> RAExpr:
        if isinstance(expr, Relation):
            old = self.schema.attributes(expr.name)
            new = tuple(self.supply.fresh(a) for a in old)
            return Renaming(expr, old, new)
        if isinstance(expr, Projection):
            old_labels = signature(expr.source, self.schema)
            source = self.rename(expr.source, sub)
            local = dict(zip(old_labels, signature(source, self.schema)))
            return Projection(source, tuple(local[a] for a in expr.attributes))
        if isinstance(expr, Selection):
            old_labels = signature(expr.source, self.schema)
            source = self.rename(expr.source, sub)
            local = dict(zip(old_labels, signature(source, self.schema)))
            inner_sub = {**sub, **local}
            condition = self._rename_condition(expr.condition, inner_sub)
            return Selection(source, condition)
        if isinstance(expr, Product):
            return Product(self.rename(expr.left, sub), self.rename(expr.right, sub))
        if isinstance(expr, (UnionOp, IntersectionOp, DifferenceOp)):
            left = self.rename(expr.left, sub)
            right = self.rename(expr.right, sub)
            left_labels = signature(left, self.schema)
            right_labels = signature(right, self.schema)
            if right_labels != left_labels:
                right = Renaming(right, right_labels, left_labels)
            return type(expr)(left, right)
        if isinstance(expr, Renaming):
            old_labels = signature(expr.source, self.schema)
            source = self.rename(expr.source, sub)
            fresh = tuple(self.supply.fresh(n) for n in expr.new)
            return Renaming(source, signature(source, self.schema), fresh)
        if isinstance(expr, Dedup):
            return Dedup(self.rename(expr.source, sub))
        raise TypeError(f"not an RA expression: {expr!r}")

    def _rename_condition(
        self, condition: RACondition, sub: Dict[Name, Name]
    ) -> RACondition:
        if isinstance(condition, (RTrue, RFalse)):
            return condition
        if isinstance(condition, RPredicate):
            return RPredicate(
                condition.name, tuple(self._rename_term(t, sub) for t in condition.args)
            )
        if isinstance(condition, NullTest):
            return NullTest(self._rename_term(condition.term, sub))
        if isinstance(condition, ConstTest):
            return ConstTest(self._rename_term(condition.term, sub))
        if isinstance(condition, RAnd):
            return RAnd(
                self._rename_condition(condition.left, sub),
                self._rename_condition(condition.right, sub),
            )
        if isinstance(condition, ROr):
            return ROr(
                self._rename_condition(condition.left, sub),
                self._rename_condition(condition.right, sub),
            )
        if isinstance(condition, RNot):
            return RNot(self._rename_condition(condition.operand, sub))
        if isinstance(condition, InExpr):
            return InExpr(
                tuple(self._rename_term(t, sub) for t in condition.terms),
                self.rename(condition.source, sub),
            )
        if isinstance(condition, Empty):
            return Empty(self.rename(condition.source, sub))
        raise TypeError(f"not an RA condition: {condition!r}")

    def _rename_term(self, term: RATerm, sub: Dict[Name, Name]) -> RATerm:
        if isinstance(term, Attr):
            if term.name not in sub:
                raise IllFormedExpressionError(
                    f"name {term.name} is free in the expression being desugared"
                )
            return Attr(sub[term.name])
        return term


# ---------------------------------------------------------------------------
# Step 2: two-valuing conditions and eliminating ∈
# ---------------------------------------------------------------------------


def two_value_condition(
    condition: RACondition, schema: Schema, want_true: bool = True
) -> RACondition:
    """θᵗ (or θᶠ): a two-valued condition true exactly where θ is t (resp. f).

    Predicate atoms are guarded with const(·) on their arguments, and ``∈``
    atoms become emptiness tests, following the Section 6 construction
    replayed at the RA level.  Sub-expressions inside Empty/∈ are *not*
    rewritten here; the decorrelation step recurses into them.
    """
    return _tt(condition, schema) if want_true else _ff(condition, schema)


def _guards(args: Tuple[RATerm, ...]) -> list:
    guards = []
    for arg in args:
        if isinstance(arg, Attr) or isinstance(arg, Null):
            guards.append(ConstTest(arg))
    return guards


def _tt(condition: RACondition, schema: Schema) -> RACondition:
    if isinstance(condition, RTrue):
        return R_TRUE
    if isinstance(condition, RFalse):
        return R_FALSE
    if isinstance(condition, RPredicate):
        return rand_all([condition, *_guards(condition.args)])
    if isinstance(condition, (NullTest, ConstTest)):
        return condition
    if isinstance(condition, RAnd):
        return RAnd(_tt(condition.left, schema), _tt(condition.right, schema))
    if isinstance(condition, ROr):
        return ROr(_tt(condition.left, schema), _tt(condition.right, schema))
    if isinstance(condition, RNot):
        return _ff(condition.operand, schema)
    if isinstance(condition, Empty):
        return condition
    if isinstance(condition, InExpr):
        # (t̄ ∈ E)ᵗ: some row of E matches t̄ with every equality true.
        return RNot(Empty(_membership_selection(condition, schema, mode="true")))
    raise TypeError(f"not an RA condition: {condition!r}")


def _ff(condition: RACondition, schema: Schema) -> RACondition:
    if isinstance(condition, RTrue):
        return R_FALSE
    if isinstance(condition, RFalse):
        return R_TRUE
    if isinstance(condition, RPredicate):
        return rand_all([RNot(condition), *_guards(condition.args)])
    if isinstance(condition, NullTest):
        return ConstTest(condition.term)
    if isinstance(condition, ConstTest):
        return NullTest(condition.term)
    if isinstance(condition, RAnd):
        return ROr(_ff(condition.left, schema), _ff(condition.right, schema))
    if isinstance(condition, ROr):
        return RAnd(_ff(condition.left, schema), _ff(condition.right, schema))
    if isinstance(condition, RNot):
        return _tt(condition.operand, schema)
    if isinstance(condition, Empty):
        return RNot(condition)
    if isinstance(condition, InExpr):
        # (t̄ ∈ E)ᶠ: every row of E makes some equality false, i.e. no row
        # has all component comparisons non-false.
        return Empty(_membership_selection(condition, schema, mode="nonfalse"))
    raise TypeError(f"not an RA condition: {condition!r}")


def _membership_selection(
    condition: InExpr, schema: Schema, mode: str
) -> RAExpr:
    """σ over the ∈-subexpression selecting the rows relevant to t̄ ∈ E.

    ``mode="true"`` keeps rows where every component equality is true;
    ``mode="nonfalse"`` keeps rows where no component equality is false.
    Thanks to α-renaming, ℓ(E) never collides with the names in t̄, so the
    component columns can be compared in place.
    """
    labels = signature(condition.source, schema)
    if len(labels) != len(condition.terms):
        raise IllFormedExpressionError(
            f"∈ compares {len(condition.terms)} term(s) against arity {len(labels)}"
        )
    atoms = []
    for term, label in zip(condition.terms, labels):
        equality = RPredicate("=", (term, Attr(label)))
        if mode == "true":
            atoms.append(rand_all([equality, *_guards((term, Attr(label)))]))
        else:
            falsity = rand_all([RNot(equality), *_guards((term, Attr(label)))])
            atoms.append(RNot(falsity))
    return Selection(condition.source, rand_all(atoms))


# ---------------------------------------------------------------------------
# Step 3: decorrelation into (anti)semijoins
# ---------------------------------------------------------------------------


class _Desugarer:
    """Removes Empty atoms via context-products and (anti)semijoins."""

    def __init__(self, schema: Schema, supply: NameSupply):
        self.schema = schema
        self.supply = supply

    def desugar(self, expr: RAExpr, ctx: Optional[RAExpr]) -> RAExpr:
        """Pure-RA equivalent of ``expr``; with a context C, the result has
        signature ℓ(C) ++ ℓ(expr) and, for each binding row c̄ ∈ C,
        restricting to c̄ gives ⟦expr⟧ under the environment η_c̄."""
        ctx_labels = signature(ctx, self.schema) if ctx is not None else ()
        if isinstance(expr, Relation):
            return Product(ctx, expr) if ctx is not None else expr
        if isinstance(expr, Projection):
            source = self.desugar(expr.source, ctx)
            return Projection(source, ctx_labels + expr.attributes)
        if isinstance(expr, Dedup):
            return Dedup(self.desugar(expr.source, ctx))
        if isinstance(expr, Renaming):
            source = self.desugar(expr.source, ctx)
            return Renaming(
                source, ctx_labels + expr.old, ctx_labels + expr.new
            )
        if isinstance(expr, Product):
            left = self.desugar(expr.left, ctx)
            right = self.desugar(expr.right, ctx)
            if ctx is None:
                return Product(left, right)
            # Join the two context-tagged sides on the context columns.
            return natural_join_syntactic(left, right, self.schema, self.supply)
        if isinstance(expr, (UnionOp, IntersectionOp, DifferenceOp)):
            left = self.desugar(expr.left, ctx)
            right = self.desugar(expr.right, ctx)
            right_labels = signature(right, self.schema)
            left_labels = signature(left, self.schema)
            if right_labels != left_labels:
                right = Renaming(right, right_labels, left_labels)
            return type(expr)(left, right)
        if isinstance(expr, Selection):
            source = self.desugar(expr.source, ctx)
            condition = two_value_condition(expr.condition, self.schema)
            return self._eliminate_empty(source, condition)
        raise TypeError(f"not an RA expression: {expr!r}")

    def _eliminate_empty(self, source: RAExpr, condition: RACondition) -> RAExpr:
        condition = _fold(condition)
        if isinstance(condition, RTrue):
            return source
        if isinstance(condition, RFalse):
            return Selection(source, R_FALSE)
        atom = _find_empty_atom(condition)
        if atom is None:
            return Selection(source, condition)
        matched = self._matched(source, atom.source)
        unmatched = DifferenceOp(source, matched)
        true_branch = self._eliminate_empty(
            unmatched, _substitute(condition, atom, R_TRUE)
        )
        false_branch = self._eliminate_empty(
            matched, _substitute(condition, atom, R_FALSE)
        )
        return UnionOp(true_branch, false_branch)

    def _matched(self, source: RAExpr, inner: RAExpr) -> RAExpr:
        """Rows of ``source`` for which the correlated ``inner`` is non-empty."""
        source_labels = signature(source, self.schema)
        free = params(inner, self.schema)
        outside = free - set(source_labels)
        if outside:
            raise IllFormedExpressionError(
                f"empty(·) atom with parameters {sorted(outside)} not bound by "
                f"the enclosing selection"
            )
        pi = tuple(a for a in source_labels if a in free)
        if pi:
            context = Dedup(Projection(source, pi))
            inner_pure = self.desugar(inner, context)
            nonempty = Dedup(Projection(inner_pure, pi))
        else:
            nonempty = self.desugar(inner, None)
        return semijoin(source, nonempty, self.schema, self.supply)


def _find_empty_atom(condition: RACondition) -> Optional[Empty]:
    if isinstance(condition, Empty):
        return condition
    if isinstance(condition, (RAnd, ROr)):
        found = _find_empty_atom(condition.left)
        if found is not None:
            return found
        return _find_empty_atom(condition.right)
    if isinstance(condition, RNot):
        return _find_empty_atom(condition.operand)
    return None


def _substitute(
    condition: RACondition, atom: Empty, value: RACondition
) -> RACondition:
    if condition == atom:
        return value
    if isinstance(condition, RAnd):
        return RAnd(
            _substitute(condition.left, atom, value),
            _substitute(condition.right, atom, value),
        )
    if isinstance(condition, ROr):
        return ROr(
            _substitute(condition.left, atom, value),
            _substitute(condition.right, atom, value),
        )
    if isinstance(condition, RNot):
        return RNot(_substitute(condition.operand, atom, value))
    return condition


def _fold(condition: RACondition) -> RACondition:
    """Constant-fold TRUE/FALSE through the two-valued connectives."""
    if isinstance(condition, RAnd):
        left = _fold(condition.left)
        right = _fold(condition.right)
        if isinstance(left, RFalse) or isinstance(right, RFalse):
            return R_FALSE
        if isinstance(left, RTrue):
            return right
        if isinstance(right, RTrue):
            return left
        return RAnd(left, right)
    if isinstance(condition, ROr):
        left = _fold(condition.left)
        right = _fold(condition.right)
        if isinstance(left, RTrue) or isinstance(right, RTrue):
            return R_TRUE
        if isinstance(left, RFalse):
            return right
        if isinstance(right, RFalse):
            return left
        return ROr(left, right)
    if isinstance(condition, RNot):
        inner = _fold(condition.operand)
        if isinstance(inner, RTrue):
            return R_FALSE
        if isinstance(inner, RFalse):
            return R_TRUE
        if isinstance(inner, RNot):
            return inner.operand
        return RNot(inner)
    return condition
