"""param(E) and param(θ, A): the free names of SQL-RA expressions."""

import pytest

from repro.algebra.ast import (
    Attr,
    Dedup,
    Empty,
    InExpr,
    Product,
    Projection,
    R_TRUE,
    RAnd,
    Relation,
    Renaming,
    RNot,
    RPredicate,
    NullTest,
    Selection,
    UnionOp,
)
from repro.algebra.params import condition_params, params, term_names
from repro.core.schema import Schema


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("C",)})


def test_term_names():
    assert term_names((Attr("A"), 1, "x", Attr("B"))) == {"A", "B"}


def test_base_relation_no_params(schema):
    assert params(Relation("R"), schema) == frozenset()


def test_selection_binds_its_signature(schema):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("A"), Attr("P"))))
    assert params(expr, schema) == {"P"}


def test_fully_local_selection(schema):
    expr = Selection(Relation("R"), RPredicate("=", (Attr("A"), Attr("B"))))
    assert params(expr, schema) == frozenset()


def test_projection_and_dedup_pass_through(schema):
    inner = Selection(Relation("R"), NullTest(Attr("Q")))
    assert params(Projection(inner, ("A",)), schema) == {"Q"}
    assert params(Dedup(inner), schema) == {"Q"}


def test_renaming_passes_through(schema):
    inner = Selection(Relation("R"), NullTest(Attr("Q")))
    assert params(Renaming(inner, ("A", "B"), ("X", "Y")), schema) == {"Q"}


def test_binary_ops_union_params(schema):
    left = Selection(Relation("R"), NullTest(Attr("P")))
    right = Selection(Relation("R"), NullTest(Attr("Q")))
    assert params(UnionOp(left, right), schema) == {"P", "Q"}


def test_product_params(schema):
    left = Selection(Relation("R"), NullTest(Attr("P")))
    assert params(Product(left, Relation("S")), schema) == {"P"}


def test_empty_condition_shielded_by_bound_names(schema):
    """param(empty(E), A) = param(E) − A: the enclosing row binds names."""
    inner = Selection(Relation("S"), RPredicate("=", (Attr("C"), Attr("A"))))
    outer = Selection(Relation("R"), Empty(inner))
    assert params(outer, schema) == frozenset()  # A is bound by R's signature


def test_in_condition_contributes_term_names(schema):
    cond = InExpr((Attr("X"),), Relation("S"))
    assert condition_params(cond, frozenset(), schema) == {"X"}
    assert condition_params(cond, frozenset({"X"}), schema) == frozenset()


def test_nested_correlation_two_levels(schema):
    innermost = Selection(
        Relation("S"), RAnd(NullTest(Attr("A")), NullTest(Attr("Z")))
    )
    middle = Selection(Relation("R"), Empty(innermost))
    # A is bound by R; Z is still free.
    assert params(middle, schema) == {"Z"}


def test_not_passes_through(schema):
    cond = RNot(NullTest(Attr("W")))
    assert condition_params(cond, frozenset(), schema) == {"W"}


def test_constants_are_not_params(schema):
    cond = RPredicate("=", (1, "x"))
    assert condition_params(cond, frozenset(), schema) == frozenset()


def test_true_has_no_params(schema):
    assert condition_params(R_TRUE, frozenset(), schema) == frozenset()
