"""TPC-H structural statistics (the Section 4 generator calibration).

The paper does not run TPC-H; it analyses the *structure* of the 22
benchmark queries to pick realistic generator parameters:

    "There [are] eight base tables in total, but on average each benchmark
     query uses only 3.2, and all queries but one use 6 or fewer.  Each
     query uses relatively few WHERE conditions per block, in fact only
     three queries use more than 8 conditions, and no query exceeds 3
     levels of nesting."

This module encodes the TPC-H schema and, for each query Q1–Q22, structural
metadata read off the TPC-H v2.17 specification: the distinct base tables
referenced (anywhere, including subqueries), an (approximate) count of
atomic WHERE conditions, and the maximum subquery nesting depth.  The
counts for conditions are estimates — the spec's queries contain BETWEEN
and date arithmetic that must be flattened to atoms somehow — but the
headline statistics the paper quotes are recomputed from them exactly
(see ``benchmarks/test_bench_tpch_stats.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.schema import Schema

__all__ = ["tpch_schema", "TPCH_QUERY_STATS", "QueryStats", "tpch_statistics"]


def tpch_schema() -> Schema:
    """The eight TPC-H base tables with their standard columns."""
    return Schema(
        {
            "region": ("r_regionkey", "r_name", "r_comment"),
            "nation": ("n_nationkey", "n_name", "n_regionkey", "n_comment"),
            "supplier": (
                "s_suppkey",
                "s_name",
                "s_address",
                "s_nationkey",
                "s_phone",
                "s_acctbal",
                "s_comment",
            ),
            "customer": (
                "c_custkey",
                "c_name",
                "c_address",
                "c_nationkey",
                "c_phone",
                "c_acctbal",
                "c_mktsegment",
                "c_comment",
            ),
            "part": (
                "p_partkey",
                "p_name",
                "p_mfgr",
                "p_brand",
                "p_type",
                "p_size",
                "p_container",
                "p_retailprice",
                "p_comment",
            ),
            "partsupp": (
                "ps_partkey",
                "ps_suppkey",
                "ps_availqty",
                "ps_supplycost",
                "ps_comment",
            ),
            "orders": (
                "o_orderkey",
                "o_custkey",
                "o_orderstatus",
                "o_totalprice",
                "o_orderdate",
                "o_orderpriority",
                "o_clerk",
                "o_shippriority",
                "o_comment",
            ),
            "lineitem": (
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_linenumber",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
                "l_returnflag",
                "l_linestatus",
                "l_shipdate",
                "l_commitdate",
                "l_receiptdate",
                "l_shipinstruct",
                "l_shipmode",
                "l_comment",
            ),
        }
    )


@dataclass(frozen=True)
class QueryStats:
    """Structural features of one TPC-H query."""

    tables: Tuple[str, ...]  # distinct base tables referenced anywhere
    conditions: int  # atomic WHERE conditions (BETWEEN counted as one)
    nesting: int  # max subquery nesting depth (0 = flat)


TPCH_QUERY_STATS: Dict[str, QueryStats] = {
    "Q1": QueryStats(("lineitem",), 1, 0),
    "Q2": QueryStats(("part", "supplier", "partsupp", "nation", "region"), 13, 1),
    "Q3": QueryStats(("customer", "orders", "lineitem"), 5, 0),
    "Q4": QueryStats(("orders", "lineitem"), 3, 1),
    "Q5": QueryStats(
        ("customer", "orders", "lineitem", "supplier", "nation", "region"), 9, 0
    ),
    "Q6": QueryStats(("lineitem",), 3, 0),
    "Q7": QueryStats(("supplier", "lineitem", "orders", "customer", "nation"), 8, 1),
    "Q8": QueryStats(
        (
            "part",
            "supplier",
            "lineitem",
            "orders",
            "customer",
            "nation",
            "region",
        ),
        8,
        1,
    ),
    "Q9": QueryStats(
        ("part", "supplier", "lineitem", "partsupp", "orders", "nation"), 6, 1
    ),
    "Q10": QueryStats(("customer", "orders", "lineitem", "nation"), 6, 0),
    "Q11": QueryStats(("partsupp", "supplier", "nation"), 6, 1),
    "Q12": QueryStats(("orders", "lineitem"), 5, 0),
    "Q13": QueryStats(("customer", "orders"), 2, 1),
    "Q14": QueryStats(("lineitem", "part"), 2, 0),
    "Q15": QueryStats(("supplier", "lineitem"), 3, 2),
    "Q16": QueryStats(("partsupp", "part", "supplier"), 5, 1),
    "Q17": QueryStats(("lineitem", "part"), 4, 1),
    "Q18": QueryStats(("customer", "orders", "lineitem"), 3, 2),
    "Q19": QueryStats(("lineitem", "part"), 8, 0),
    "Q20": QueryStats(("supplier", "nation", "partsupp", "part", "lineitem"), 6, 3),
    "Q21": QueryStats(("supplier", "lineitem", "orders", "nation"), 9, 1),
    "Q22": QueryStats(("customer", "orders"), 4, 2),
}


def tpch_statistics() -> Dict[str, float]:
    """Recompute the statistics the paper quotes from the encoded metadata."""
    stats = TPCH_QUERY_STATS.values()
    table_counts = [len(s.tables) for s in stats]
    return {
        "base_tables": len(tpch_schema().table_names),
        "queries": len(TPCH_QUERY_STATS),
        "avg_tables_per_query": sum(table_counts) / len(table_counts),
        "queries_with_more_than_6_tables": sum(1 for c in table_counts if c > 6),
        "queries_with_more_than_8_conditions": sum(
            1 for s in stats if s.conditions > 8
        ),
        "max_nesting": max(s.nesting for s in stats),
    }
