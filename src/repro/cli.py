"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``          evaluate a SQL query on a database described by a JSON file
``translate``    print the relational-algebra translation of a query (Thm 1)
``two-valued``   print the Figure 10 two-valued rewriting of a query (Thm 2)
``validate``     run a Section 4 validation campaign (semantics vs engine)
``differential`` run the n-way differential campaign (all implementations)
``ingest``       profile/export an ingested database (SQLite, .sql, CSV dir)
``report``       render campaign checkpoints (``--merge`` combines several)
``coordinate``   partition a campaign into leases + merge worker checkpoints
``work``         execute leases (``--coordinator URL`` or ``--seed-range A:B``)
``serve``        run the always-on HTTP query service (prepared statements)
``query``        run one query against a running ``serve`` instance
``generate``     print random queries from the Section 4 generator

The campaign commands run on the unified subsystem of
:mod:`repro.campaigns`: ``--jobs N`` shards the seed range over N worker
processes (results are bit-identical to a serial run at any N),
``--checkpoint FILE`` streams one JSONL record per trial so progress is
durable, and ``--resume`` restarts a killed campaign where it left off.
The paper-scale Section 4 experiment is::

    python -m repro validate --variants postgres --trials 100000 \\
        --jobs 8 --checkpoint pg.jsonl --resume

(with two variants, per-variant checkpoints get the variant name appended:
``pg.postgres.jsonl`` / ``pg.oracle.jsonl``).  Campaign commands exit
non-zero when any trial disagrees.

``differential --live-sqlite PATH`` points the same campaign machinery at a
*live* DBMS: the database at PATH (a SQLite file, ``.sql`` script, or CSV
directory) is ingested, FK-join-biased queries are generated against its
schema, and every query runs through the repository's implementations *and*
stdlib ``sqlite3``.  Known dialect gaps are *classified* (counted, reported
by class, exit code unaffected); only unclassified disagreements fail::

    python -m repro ingest tests/fixtures/library.sql
    python -m repro differential --live-sqlite tests/fixtures/library.sql \\
        --trials 500 --dialect postgres

``coordinate``/``work`` take the same campaign past one machine
(:mod:`repro.campaigns.distributed`).  File-based mode::

    python -m repro coordinate --trials 100000 --workers 3 --out dist --no-wait
    sh dist/plan.sh          # or run each printed `repro work` line anywhere
    python -m repro coordinate --trials 100000 --workers 3 --out dist \\
        --merged dist/merged.jsonl

partitions the seed range into journaled leases, waits for the workers'
checkpoint files, re-issues leases whose worker went silent, and merges —
the merged ``outcome_digest`` is bit-identical to a single-machine run.
``--serve PORT`` does the same over HTTP with ``repro work --coordinator
URL`` workers; ``repro work --coordinator URL --jobs N`` runs each leased
range through the parallel local executor, so one remote worker uses all
its cores (records stay bit-identical — trials are seed-pure).  ``repro
report --merge a.jsonl b.jsonl`` renders such a set of worker files
without a coordinator.

The database JSON format is::

    {
      "schema": {"R": ["A"], "S": ["A"]},
      "tables": {"R": [[1], [null]], "S": [[null]]}
    }

JSON ``null`` becomes SQL NULL.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Optional, Sequence

from .algebra import desugar, to_sqlra
from .algebra.printer import print_expression_tree
from .core.schema import Database, Schema
from .core.values import NULL
from .generator.config import PAPER_CONFIG
from .generator.queries import QueryGenerator
from .semantics.evaluator import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from .semantics.two_valued import TwoValuedTranslator
from .sql.annotate import annotate
from .sql.printer import print_query
from .validation.report import format_campaigns

__all__ = ["main", "load_database"]


def load_database(path: str) -> Database:
    """Load a schema + instance from the JSON format described above."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = Schema({name: tuple(attrs) for name, attrs in payload["schema"].items()})
    tables = {
        name: [
            tuple(NULL if value is None else value for value in row) for row in rows
        ]
        for name, rows in payload.get("tables", {}).items()
    }
    return Database(schema, tables)


def _cmd_run(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    star = STAR_COMPOSITIONAL if args.dialect == "postgres" else STAR_STANDARD
    semantics = SqlSemantics(schema, star_style=star)
    print(f"-- annotated: {print_query(query)}")
    print(semantics.run(query, db).pretty(max_rows=args.max_rows))
    return 0


def _cmd_translate(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    sqlra = to_sqlra(query, schema)
    if args.pure:
        expression = desugar(sqlra, schema)
        print("-- pure relational algebra (Theorem 1 / Proposition 2):")
    else:
        expression = sqlra
        print("-- SQL-RA (Figure 9):")
    print(print_expression_tree(expression))
    return 0


def _cmd_two_valued(args) -> int:
    db = load_database(args.database)
    schema = db.schema
    query = annotate(args.query, schema)
    translator = TwoValuedTranslator(schema, args.equality)
    translated = translator.translate_query(query)
    print(f"-- Q′ with ⟦Q⟧ = ⟦Q′⟧2v (equality: {args.equality}):")
    print(print_query(translated))
    return 0


def _campaign_checkpoint(path: Optional[str], suffix: Optional[str]) -> Optional[str]:
    """Derive a per-campaign checkpoint path (``pg.jsonl`` + ``postgres`` →
    ``pg.postgres.jsonl``) when one file would be shared by several runs."""
    if path is None or suffix is None:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}.{suffix}{ext or '.jsonl'}"


def _run_campaign_cmd(spec, args, checkpoint_suffix: Optional[str] = None):
    from .campaigns import run_campaign

    try:
        return run_campaign(
            spec,
            trials=args.trials,
            base_seed=args.seed,
            jobs=args.jobs,
            checkpoint=_campaign_checkpoint(args.checkpoint, checkpoint_suffix),
            resume=args.resume,
        )
    except ValueError as exc:
        # Misuse (resume without checkpoint, checkpoint/spec mismatch, ...):
        # a clean diagnostic, not a traceback.
        raise SystemExit(f"repro: {exc}")


def _resolved_rows(args, live: bool = False) -> int:
    """The ``--rows`` default depends on the mode: 6 for the generated
    trial databases of validate/differential, unlimited (0) as the import
    sample cap of a live-SQLite campaign."""
    if args.rows is not None:
        return args.rows
    return 0 if live else 6


def _cmd_validate(args) -> int:
    from .campaigns import CampaignSpec

    results = []
    failed = False
    multi = len(args.variants) > 1
    for variant in args.variants:
        spec = CampaignSpec(
            kind="validation", variant=variant, rows=_resolved_rows(args)
        )
        result = _run_campaign_cmd(
            spec, args, checkpoint_suffix=variant if multi else None
        )
        results.append(result)
        for mismatch in result.mismatches[: args.show_mismatches]:
            print(mismatch["detail"], file=sys.stderr)
        print(
            f"-- {variant}: {result.trials_per_sec:.0f} trials/s "
            f"(jobs={result.jobs}, digest={result.outcome_digest[:12]})",
            file=sys.stderr,
        )
        failed = failed or bool(result.mismatches)
    print(format_campaigns(results))
    return 1 if failed else 0


def _cmd_differential(args) -> int:
    from .campaigns import CampaignSpec

    if args.live_sqlite:
        spec = CampaignSpec(
            kind="live-sqlite",
            variant=args.dialect,
            rows=_resolved_rows(args, live=True),
            scenario=args.live_sqlite,
        )
    else:
        spec = CampaignSpec(
            kind="differential", rows=_resolved_rows(args), tables=args.tables
        )
    result = _run_campaign_cmd(spec, args)
    for mismatch in result.mismatches[: args.show_disagreements]:
        print(f"seed {mismatch['seed']}: {mismatch['detail']}", file=sys.stderr)
    print(result.summary())
    # Classified dialect divergences are expected and never fail the run;
    # the exit code tracks *unclassified* disagreements only.
    return 1 if result.mismatches else 0


def _cmd_ingest(args) -> int:
    """Import a database and print its profile (or export it back out)."""
    from .ingest import export_sql_script, export_sqlite, import_scenario

    try:
        scenario = import_scenario(args.source, sample_rows=args.sample_rows)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: {args.source}: {exc}")
    if args.export:
        if args.export.endswith(".sql"):
            export_sql_script(scenario, args.export)
        else:
            export_sqlite(scenario, args.export)
        print(f"exported {scenario.total_rows} row(s) -> {args.export}")
    profile = scenario.profile()
    if args.json:
        profile["fingerprint"] = scenario.fingerprint()
        print(json.dumps(profile, indent=2))
        return 0
    print(f"source: {profile['source']}")
    print(f"total rows: {profile['total_rows']}")
    for name, info in profile["tables"].items():
        print(f"  {name} ({info['rows']} rows)")
        for column, stats in info["columns"].items():
            print(
                f"    {column:<24} {stats['type']:<5} "
                f"null_rate={stats['null_rate']:.2%} "
                f"distinct={stats['distinct']}"
            )
    for fk in profile["foreign_keys"]:
        print(
            f"  fk: {fk['table']}({', '.join(fk['columns'])}) -> "
            f"{fk['ref_table']}({', '.join(fk['ref_columns'])})"
        )
    for note in profile["notes"]:
        print(f"  note: {note}")
    print(f"fingerprint: {scenario.fingerprint()}")
    return 0


def _load_bench_service(path: str) -> Optional[dict]:
    """The parsed ``bench-service/v1`` document, or None for anything else
    (campaign JSONL files fail the single-document parse or the schema
    check and fall through to the checkpoint renderer)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"repro: {path}: {exc}")
    except json.JSONDecodeError:
        return None
    if isinstance(doc, dict) and doc.get("schema") == "bench-service/v1":
        return doc
    return None


def _render_bench_service(path: str, doc: dict) -> int:
    def leg(label: str, entry: dict) -> str:
        lat = entry.get("latency_ms", {})
        return (
            f"  {label:<26} {entry.get('qps', 0.0):>8.1f} qps  "
            f"p50/p95/p99 {lat.get('p50', 0.0):.2f}/"
            f"{lat.get('p95', 0.0):.2f}/{lat.get('p99', 0.0):.2f} ms "
            f"({entry.get('requests', 0)} requests)"
        )

    print(f"service bench: {path}  ({doc.get('schema')})")
    print(f"clients: {doc.get('clients')}, {doc.get('rows')}-row tables")
    print(leg("cold (ad-hoc /query)", doc.get("cold", {})))
    print(leg("warm (prepared /execute)", doc.get("warm", {})))
    build = doc.get("build_cache", {})
    plan = doc.get("plan_cache", {})
    print(
        f"speedup: {doc.get('speedup', 0.0):.2f}x   "
        f"cross-query build hits: {doc.get('cross_query_build_hits', 0)} "
        f"({doc.get('cross_query_hit_rate', 0.0):.1%} of lookups)"
    )
    print(
        f"plan cache: {plan.get('hits', 0)} hits / {plan.get('misses', 0)} "
        f"misses, {plan.get('entries', 0)} entries, {plan.get('bytes', 0)} bytes"
    )
    print(
        f"build cache: {build.get('hits', 0)} hits / {build.get('misses', 0)} "
        f"misses, {build.get('entries', 0)} entries, {build.get('bytes', 0)} bytes"
    )
    match = bool(doc.get("digest_match"))
    print(
        f"served digest: {str(doc.get('served_digest', ''))[:16]} — formal-"
        f"semantics replay {'matches' if match else 'MISMATCH'}"
    )
    return 0 if match else 1


def _cmd_report(args) -> int:
    """Render ``campaign-checkpoint/v1`` file(s) — or a ``bench-service/v1``
    document from ``scripts/bench.py --stages service``."""
    from .campaigns import summarize_checkpoint, summarize_merged

    if not args.merge and len(args.checkpoints) == 1:
        doc = _load_bench_service(args.checkpoints[0])
        if doc is not None:
            return _render_bench_service(args.checkpoints[0], doc)
    try:
        if args.merge:
            header, aggregator = summarize_merged(args.checkpoints)
            source = " + ".join(args.checkpoints)
        else:
            if len(args.checkpoints) > 1:
                raise SystemExit(
                    "repro: several checkpoints need --merge "
                    "(or report them one at a time)"
                )
            header, aggregator = summarize_checkpoint(args.checkpoints[0])
            source = args.checkpoints[0]
    except ValueError as exc:
        # Missing file, headerless file, spec mismatch, CheckpointConflict.
        raise SystemExit(f"repro: {exc}")
    result = aggregator.finalize()
    pending = aggregator.trials - aggregator.completed
    plain_agreements = result.agreements - result.error_agreements
    print(f"checkpoint: {source}  ({header.get('schema')})")
    print(f"spec: {json.dumps(header.get('spec', {}), sort_keys=True)}")
    print(
        f"seeds: [{aggregator.base_seed}, "
        f"{aggregator.base_seed + aggregator.trials}) — "
        f"{aggregator.completed} recorded, {pending} pending, "
        f"{result.duplicates} duplicate record(s) skipped"
    )
    classified = ""
    if result.classified:
        per_class = ", ".join(
            f"{name}: {count}"
            for name, count in result.classified_by_class.items()
        )
        classified = f"{result.classified} classified ({per_class}), "
    print(
        f"outcomes: {plain_agreements} agree, "
        f"{result.error_agreements} agree-both-error, "
        f"{classified}"
        f"{len(result.mismatches)} mismatch "
        f"(rate {result.agreement_rate:.4%})"
    )
    if result.timing_ms:
        print(
            f"latency: p50={result.timing_ms['p50']:.2f}ms "
            f"p95={result.timing_ms['p95']:.2f}ms "
            f"p99={result.timing_ms['p99']:.2f}ms"
        )
    print(f"outcome_digest: {result.outcome_digest}")
    for mismatch in result.mismatches[: args.show_mismatches]:
        detail = mismatch.get("detail") or "(no detail recorded)"
        print(f"seed {mismatch['seed']}: {detail}", file=sys.stderr)
    return 1 if result.mismatches else 0


def _load_workers(args) -> list:
    """Worker names for file-based coordination: ``--workers-file`` (a JSON
    list of names, ``{"name": ...}`` objects, or ``{"workers": [...]}``)
    wins over the ``--workers`` count (names ``w1..wN``)."""
    if args.workers_file:
        try:
            with open(args.workers_file) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"repro: {args.workers_file}: {exc}")
        if isinstance(payload, dict):
            payload = payload.get("workers", [])
        workers = [
            str(entry.get("name") or entry.get("host"))
            if isinstance(entry, dict)
            else str(entry)
            for entry in payload
        ]
        workers = [name for name in workers if name and name != "None"]
        if not workers:
            raise SystemExit(f"repro: {args.workers_file} names no workers")
        return workers
    return [f"w{i + 1}" for i in range(max(1, args.workers))]


def _spec_from_args(args):
    from .campaigns import CampaignSpec

    try:
        return CampaignSpec(
            kind=args.kind, variant=args.variant, rows=args.rows, tables=args.tables
        )
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")


def _coordinate_files(spec, args) -> int:
    """File-based coordination: journal + plan.sh, wait, re-issue, merge."""
    import shlex

    from .campaigns import FileCoordinator, work_command

    try:
        coordinator = FileCoordinator(
            spec,
            trials=args.trials,
            base_seed=args.seed,
            workers=_load_workers(args),
            out_dir=args.out,
            lease_trials=args.lease_trials,
            lease_timeout_s=args.lease_timeout_s,
            python=sys.executable or "python",
        )
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")

    def show_reissue(lease):
        argv = work_command(spec, lease, python=sys.executable or "python")
        print(
            f"re-issued {lease.lease_id} (worker timeout): "
            + " ".join(shlex.quote(arg) for arg in argv),
            file=sys.stderr,
        )
        coordinator.write_plan()

    with coordinator:
        status = coordinator.poll()  # completed checkpoints drop off the plan
        plan_path = coordinator.write_plan()
        active = coordinator.plan()
        if active:
            print(f"{len(active)} lease(s) pending; worker commands ({plan_path}):")
            for _lease, argv in active:
                print("  " + " ".join(shlex.quote(arg) for arg in argv))
        if args.no_wait:
            print("--no-wait: run the plan, then re-run this command to merge.")
            return 0
        if not status["done"]:
            print(f"waiting for worker checkpoints in {args.out}/ ...")
            done = coordinator.wait(
                poll_s=args.poll_s,
                timeout_s=args.wait_timeout_s,
                on_reissue=show_reissue,
            )
            if not done:
                print(
                    "repro: wait timed out with leases outstanding; "
                    "re-run to keep waiting",
                    file=sys.stderr,
                )
                return 3
        try:
            result = coordinator.merge(merged_path=args.merged)
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}")
    print(result.summary())
    if args.merged:
        print(f"merged checkpoint -> {args.merged}")
    return 1 if result.mismatches else 0


def _coordinate_serve(spec, args) -> int:
    """HTTP coordination: serve leases until the campaign completes.

    The merged checkpoint doubles as the resume state — re-running the
    same command after a coordinator crash folds it back in and only the
    unfinished ranges are leased out again.
    """
    import time

    from .campaigns import Coordinator, CoordinatorServer

    os.makedirs(args.out, exist_ok=True)
    merged = args.merged or os.path.join(args.out, "merged.jsonl")
    try:
        coordinator = Coordinator(
            spec,
            trials=args.trials,
            base_seed=args.seed,
            lease_trials=args.lease_trials,
            lease_target_s=args.lease_target_s,
            journal_path=os.path.join(args.out, "leases.jsonl"),
            checkpoint=merged,
            resume=True,
            lease_timeout_s=args.lease_timeout_s,
            max_lease_attempts=args.max_lease_attempts,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    started = time.perf_counter()
    with CoordinatorServer(
        coordinator, host=args.host, port=args.serve, secret=args.secret
    ) as server:
        print(f"coordinator: {args.trials} trials at {server.url}")
        hint = " --secret ..." if args.secret else ""
        print(
            f"  start workers: python -m repro work --coordinator {server.url}{hint}"
        )
        try:
            while not coordinator.done:
                time.sleep(min(1.0, max(0.05, args.poll_s)))
                coordinator.expire_stale()
        except KeyboardInterrupt:
            coordinator.close()
            print(
                "repro: interrupted; progress is in the merged checkpoint — "
                "re-run the same command to resume",
                file=sys.stderr,
            )
            return 130
    result = coordinator.result(elapsed_s=time.perf_counter() - started)
    quarantined = coordinator.quarantined()
    coordinator.close()
    print(result.summary())
    for lease in quarantined:
        # A poison lease: every issue of this range died.  The campaign
        # finishes around it; the hole is reported, never papered over.
        print(
            f"repro: quarantined range [{lease['lo']}, {lease['hi']}) "
            f"after {lease['attempts']} attempt(s); "
            f"{lease['pending']} seed(s) unfinished",
            file=sys.stderr,
        )
    print(f"merged checkpoint -> {merged}")
    if quarantined:
        return 2
    return 1 if result.mismatches else 0


def _cmd_coordinate(args) -> int:
    spec = _spec_from_args(args)
    if args.serve is not None:
        return _coordinate_serve(spec, args)
    return _coordinate_files(spec, args)


def _cmd_serve(args) -> int:
    """Run the always-on query service until interrupted.

    SIGTERM triggers a graceful drain: the listener closes, new requests
    on open connections get 503 + Retry-After, in-flight streams finish
    within ``--drain-s``, and stragglers are aborted with an error
    trailer — the process never dies mid-chunk.
    """
    import asyncio
    import signal

    from . import faults
    from .service import QueryService

    faults.install_from_env()
    service = QueryService(
        secret=args.secret,
        dialect=args.dialect,
        plan_cache_size=args.plan_cache_size,
        plan_cache_bytes=args.plan_cache_bytes,
        build_cache_size=args.build_cache_size,
        build_cache_bytes=args.build_cache_bytes,
        batch_rows=args.batch_rows,
        request_deadline_s=args.deadline_s,
        max_inflight=args.max_inflight,
        drain_grace_s=args.drain_s,
    )
    if args.database:
        service.install_database(
            load_database(args.database), name=args.name, tenant=args.tenant
        )

    async def go() -> int:
        host, port = await service.start(args.host, args.port)
        url = f"http://{host}:{port}"
        print(f"query service at {url}" + (" (secret required)" if args.secret else ""))
        if args.database:
            print(
                f"  {args.database} loaded as database {args.name!r} "
                f"for tenant {args.tenant!r}"
            )
        print(f'  try: python -m repro query {url} "SELECT ..."')
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):  # non-Unix / nested loop
            signal.signal(
                signal.SIGTERM,
                lambda *_: loop.call_soon_threadsafe(stop.set),
            )
        # start() already accepts connections; this wait is the serve loop.
        await stop.wait()
        print("repro: SIGTERM — draining in-flight streams", file=sys.stderr)
        await service.shutdown(args.drain_s)
        return 0

    try:
        return asyncio.run(go())
    except KeyboardInterrupt:
        return 130


def _cmd_query(args) -> int:
    """One query against a running service; prints the streamed result."""
    from .core.bag import Bag
    from .core.table import Table
    from .service import ServiceError, query_once

    params = None
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"repro: --params: {exc}")
        if not isinstance(params, list):
            raise SystemExit("repro: --params must be a JSON array")
    try:
        result = query_once(
            args.url,
            args.sql,
            params=params,
            secret=args.secret,
            tenant=args.tenant,
            database=args.db,
            prepare=args.prepare,
        )
    except ServiceError as exc:
        raise SystemExit(f"repro: {exc}")
    except (ConnectionError, OSError, ValueError) as exc:
        raise SystemExit(f"repro: cannot reach {args.url}: {exc}")
    print(Table(result.labels, Bag(result.records())).pretty(max_rows=args.max_rows))
    print(f"({result.row_count} row(s))")
    return 0


def _cmd_work(args) -> int:
    from . import faults
    from .campaigns import run_campaign, work_remote

    faults.install_from_env()
    if args.coordinator:
        summary = work_remote(
            args.coordinator,
            worker=args.worker,
            poll_s=args.poll_s,
            max_idle_polls=args.max_idle_polls,
            jobs=args.jobs,
            timeout_s=args.timeout_s,
            retries=args.retries,
            backoff_s=args.backoff_s,
            secret=args.secret,
        )
        print(
            f"worker {summary['worker']}: {summary['leases']} lease(s), "
            f"{summary['trials']} trial(s)"
        )
        if summary.get("note"):
            print(f"repro: {summary['note']}", file=sys.stderr)
        return 0
    if not args.seed_range:
        raise SystemExit("repro: work needs --coordinator URL or --seed-range A:B")
    try:
        lo_text, _, hi_text = args.seed_range.partition(":")
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise SystemExit(
            f"repro: bad --seed-range {args.seed_range!r} (expected A:B)"
        )
    if hi <= lo:
        raise SystemExit("repro: --seed-range must be A:B with A < B")
    if not args.checkpoint:
        raise SystemExit("repro: file-based work needs --checkpoint FILE")
    spec = _spec_from_args(args)
    try:
        result = run_campaign(
            spec,
            trials=hi - lo,
            base_seed=lo,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    print(result.summary())
    # The merge step judges the campaign; a worker exits 0 once its range
    # is recorded, so a plan.sh under `set -e` survives mismatch trials.
    return 0


def _cmd_generate(args) -> int:
    from .core.schema import validation_schema

    generator = QueryGenerator(
        validation_schema(), PAPER_CONFIG, random.Random(args.seed)
    )
    for i in range(args.count):
        print(print_query(generator.generate(seed=args.seed + i), args.dialect) + ";")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable formal semantics of basic SQL (VLDB 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="evaluate a query under the formal semantics")
    run.add_argument("query")
    run.add_argument("--database", "-d", required=True, help="JSON database file")
    run.add_argument(
        "--dialect", choices=("standard", "postgres"), default="standard"
    )
    run.add_argument("--max-rows", type=int, default=50)
    run.set_defaults(func=_cmd_run)

    translate = sub.add_parser(
        "translate", help="translate a data manipulation query to algebra"
    )
    translate.add_argument("query")
    translate.add_argument("--database", "-d", required=True)
    translate.add_argument(
        "--pure", action="store_true", help="desugar SQL-RA into pure RA"
    )
    translate.set_defaults(func=_cmd_translate)

    twov = sub.add_parser(
        "two-valued", help="print the Figure 10 two-valued rewriting"
    )
    twov.add_argument("query")
    twov.add_argument("--database", "-d", required=True)
    twov.add_argument(
        "--equality", choices=("conflating", "syntactic"), default="conflating"
    )
    twov.set_defaults(func=_cmd_two_valued)

    def add_campaign_args(cmd) -> None:
        cmd.add_argument("--trials", type=int, default=200)
        cmd.add_argument(
            "--rows", type=int, default=None,
            help="row cap per generated trial table (default 6); with "
            "--live-sqlite, the per-table import sample cap (default: "
            "unlimited)",
        )
        cmd.add_argument("--seed", type=int, default=0, help="base seed")
        cmd.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (results identical at any value)",
        )
        cmd.add_argument(
            "--checkpoint", default=None, metavar="FILE",
            help="stream per-trial JSONL records to FILE",
        )
        cmd.add_argument(
            "--resume", action="store_true",
            help="fold a previous checkpoint in and run only missing seeds",
        )

    validate = sub.add_parser("validate", help="run a validation campaign")
    add_campaign_args(validate)
    validate.add_argument(
        "--variants", nargs="+", choices=("postgres", "oracle"),
        default=["postgres", "oracle"],
    )
    validate.add_argument("--show-mismatches", type=int, default=5)
    validate.set_defaults(func=_cmd_validate)

    differential = sub.add_parser(
        "differential",
        help="run the n-way differential campaign (all implementations)",
    )
    add_campaign_args(differential)
    differential.add_argument(
        "--tables", type=int, default=None,
        help="size of the R1..Rn validation schema (default: runner default)",
    )
    differential.add_argument(
        "--live-sqlite", default=None, metavar="PATH",
        help="differential-test against live stdlib SQLite over the "
        "ingested database at PATH (SQLite file, .sql script, or CSV "
        "directory); known dialect gaps are classified, not failed",
    )
    differential.add_argument(
        "--dialect", choices=("postgres", "oracle"), default="postgres",
        help="repository-side dialect pairing for --live-sqlite",
    )
    differential.add_argument("--show-disagreements", type=int, default=5)
    differential.set_defaults(func=_cmd_differential)

    ingest = sub.add_parser(
        "ingest",
        help="import a database (SQLite, .sql, CSV dir) and print its profile",
    )
    ingest.add_argument(
        "source", metavar="PATH",
        help="SQLite database file, .sql script, or CSV directory",
    )
    ingest.add_argument(
        "--sample-rows", type=int, default=0,
        help="per-table import row cap (0 = unlimited)",
    )
    ingest.add_argument(
        "--export", default=None, metavar="OUT",
        help="re-export the imported scenario (.sql extension writes a SQL "
        "script, anything else a SQLite database file)",
    )
    ingest.add_argument(
        "--json", action="store_true",
        help="print the profile (plus fingerprint) as JSON",
    )
    ingest.set_defaults(func=_cmd_ingest)

    report = sub.add_parser(
        "report",
        help="render existing campaign checkpoints without re-running",
    )
    report.add_argument(
        "checkpoints", nargs="+", metavar="CHECKPOINT",
        help="campaign-checkpoint/v1 JSONL file(s); several require --merge",
    )
    report.add_argument(
        "--merge", action="store_true",
        help="merge several worker checkpoints into one report "
        "(duplicate seeds deduplicate, conflicting records fail)",
    )
    report.add_argument("--show-mismatches", type=int, default=5)
    report.set_defaults(func=_cmd_report)

    def add_spec_args(cmd) -> None:
        cmd.add_argument(
            "--kind", choices=("validation", "differential"),
            default="validation", help="campaign comparator backend",
        )
        cmd.add_argument(
            "--variant", choices=("postgres", "oracle"), default="postgres",
            help="validation variant (ignored for differential)",
        )
        cmd.add_argument(
            "--rows", type=int, default=6,
            help="row cap per generated trial table",
        )
        cmd.add_argument(
            "--tables", type=int, default=None,
            help="size of the R1..Rn validation schema (default: runner default)",
        )

    coordinate = sub.add_parser(
        "coordinate",
        help="coordinate a distributed campaign across worker machines",
    )
    coordinate.add_argument("--trials", type=int, required=True)
    coordinate.add_argument("--seed", type=int, default=0, help="base seed")
    add_spec_args(coordinate)
    coordinate.add_argument(
        "--workers", type=int, default=3,
        help="file-based worker count (named w1..wN)",
    )
    coordinate.add_argument(
        "--workers-file", metavar="FILE",
        help="JSON list of worker names (overrides --workers)",
    )
    coordinate.add_argument(
        "--out", default="distributed-campaign", metavar="DIR",
        help="directory for the lease journal, plan.sh and worker checkpoints",
    )
    coordinate.add_argument(
        "--lease-trials", type=int, default=None,
        help="seeds per lease (default: trials/workers in file mode, "
        "500 with --serve; smaller leases = finer re-issue)",
    )
    coordinate.add_argument(
        "--lease-target-s", type=float, default=None,
        help="--serve: size leases so one takes about this many seconds, "
        "from the resumed checkpoint's p50 trial latency "
        "(--lease-trials wins when both are given)",
    )
    coordinate.add_argument(
        "--secret", default=None,
        help="--serve: require this shared secret on every worker request",
    )
    coordinate.add_argument(
        "--lease-timeout-s", type=float, default=600.0,
        help="re-issue a lease not finished within this many seconds",
    )
    coordinate.add_argument(
        "--max-lease-attempts", type=int, default=5,
        help="quarantine a seed range after this many failed issues "
        "instead of re-leasing it forever (exit code 2 reports holes)",
    )
    coordinate.add_argument(
        "--serve", type=int, metavar="PORT", default=None,
        help="serve leases over HTTP instead of file-based operation",
    )
    coordinate.add_argument(
        "--host", default="127.0.0.1", help="bind address for --serve"
    )
    coordinate.add_argument(
        "--no-wait", action="store_true",
        help="file mode: write the journal + plan.sh and exit without waiting",
    )
    coordinate.add_argument(
        "--poll-s", type=float, default=1.0,
        help="seconds between progress polls",
    )
    coordinate.add_argument(
        "--wait-timeout-s", type=float, default=None,
        help="file mode: give up waiting after this many seconds",
    )
    coordinate.add_argument(
        "--merged", metavar="FILE",
        help="write the merged campaign-checkpoint/v1 file here "
        "(default with --serve: OUT/merged.jsonl)",
    )
    coordinate.set_defaults(func=_cmd_coordinate)

    work = sub.add_parser(
        "work",
        help="run a distributed-campaign worker (HTTP or file-based)",
    )
    work.add_argument(
        "--coordinator", metavar="URL",
        help="poll this coordinator for leases (HTTP mode)",
    )
    work.add_argument(
        "--worker", default=None, help="worker name (default: hostname-pid)"
    )
    work.add_argument(
        "--poll-s", type=float, default=1.0,
        help="HTTP mode: seconds between idle polls",
    )
    work.add_argument(
        "--max-idle-polls", type=int, default=None,
        help="HTTP mode: give up after this many consecutive empty polls",
    )
    work.add_argument(
        "--timeout-s", type=float, default=60.0,
        help="HTTP mode: per-request timeout against the coordinator",
    )
    work.add_argument(
        "--retries", type=int, default=0,
        help="HTTP mode: retry an unreachable coordinator this many times "
        "before giving up (connection errors only; HTTP errors never retry)",
    )
    work.add_argument(
        "--backoff-s", type=float, default=0.5,
        help="HTTP mode: initial retry backoff, doubled per attempt",
    )
    work.add_argument(
        "--secret", default=None,
        help="HTTP mode: shared secret the coordinator requires",
    )
    work.add_argument(
        "--seed-range", metavar="A:B",
        help="file mode: run seeds [A, B) offline via run_campaign",
    )
    work.add_argument(
        "--checkpoint", metavar="FILE",
        help="file mode: write trial records here (required with --seed-range)",
    )
    add_spec_args(work)
    work.add_argument(
        "--jobs", type=int, default=1,
        help="local worker processes per leased range (both modes; "
        "records are bit-identical at any value)",
    )
    work.add_argument(
        "--resume", action="store_true",
        help="file mode: fold an existing checkpoint in and run only "
        "missing seeds",
    )
    work.set_defaults(func=_cmd_work)

    serve = sub.add_parser(
        "serve", help="run the always-on HTTP query service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--database", "-d", default=None,
        help="JSON database file to preload at boot",
    )
    serve.add_argument(
        "--name", default="default", help="database name for --database"
    )
    serve.add_argument(
        "--tenant", default="public", help="tenant owning --database"
    )
    serve.add_argument(
        "--secret", default=None,
        help="require this shared secret on every request",
    )
    serve.add_argument(
        "--dialect", choices=("postgres", "oracle"), default="postgres"
    )
    serve.add_argument(
        "--plan-cache-size", type=int, default=256,
        help="plan-cache entries per tenant engine",
    )
    serve.add_argument(
        "--plan-cache-bytes", type=int, default=None,
        help="estimated-byte budget for each tenant's plan cache",
    )
    serve.add_argument(
        "--build-cache-size", type=int, default=128,
        help="build-side cache entries per tenant engine",
    )
    serve.add_argument(
        "--build-cache-bytes", type=int, default=None,
        help="estimated-byte budget for each tenant's build-side cache",
    )
    serve.add_argument(
        "--batch-rows", type=int, default=256,
        help="rows per streamed chunk",
    )
    serve.add_argument(
        "--deadline-s", type=float, default=None,
        help="per-request deadline; a started stream past it is aborted "
        "with an error trailer, an unstarted one answers 503",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None,
        help="overload admission: shed requests beyond this many "
        "in flight with 429 + Retry-After",
    )
    serve.add_argument(
        "--drain-s", type=float, default=5.0,
        help="SIGTERM drain grace before in-flight streams are aborted "
        "with an error trailer",
    )
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser(
        "query", help="run one query against a running `repro serve`"
    )
    query.add_argument("url", metavar="URL", help="service base url")
    query.add_argument("sql", metavar="SQL")
    query.add_argument(
        "--params", default=None, metavar="JSON",
        help='JSON array bound to $1..$n (e.g. \'[1, null, "x"]\'); '
        "implies the prepared path",
    )
    query.add_argument(
        "--prepare", action="store_true",
        help="force the prepared path even without --params",
    )
    query.add_argument("--tenant", default=None)
    query.add_argument("--secret", default=None)
    query.add_argument(
        "--database", dest="db", default=None,
        help="database name on the service (default: the service default)",
    )
    query.add_argument("--max-rows", type=int, default=50)
    query.set_defaults(func=_cmd_query)

    generate = sub.add_parser("generate", help="print random queries")
    generate.add_argument("--count", type=int, default=5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--dialect", choices=("standard", "postgres", "oracle"), default="standard"
    )
    generate.set_defaults(func=_cmd_generate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
