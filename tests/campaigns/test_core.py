"""Unit tests of the campaign building blocks: specs, records, aggregation,
checkpoint files."""

import json

import pytest

from repro.campaigns import (
    CHECKPOINT_SCHEMA,
    CODE_AGREE,
    CODE_AGREE_BOTH_ERROR,
    CODE_MISMATCH,
    Aggregator,
    CampaignSpec,
    CheckpointWriter,
    load_checkpoint,
    plan_shards,
    run_campaign,
)


def test_spec_roundtrip_and_label():
    spec = CampaignSpec(kind="validation", variant="oracle", rows=4)
    assert CampaignSpec.from_json(spec.to_json()) == spec
    assert spec.label == "oracle"
    assert CampaignSpec(kind="differential").label == "differential"


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        CampaignSpec(kind="fuzz")


def test_spec_builds_backends():
    validation = CampaignSpec(kind="validation", variant="postgres", rows=3).build()
    record = validation.run_trial(7)
    assert record["seed"] == 7
    assert record["code"] in (CODE_AGREE, CODE_AGREE_BOTH_ERROR)
    differential = CampaignSpec(kind="differential", rows=3, tables=3).build()
    record = differential.run_trial(3)
    assert record["seed"] == 3 and record["code"] == CODE_AGREE
    assert record["ms"] >= 0  # per-trial wall time travels with the record


def test_plan_shards_cover_and_are_contiguous():
    seeds = list(range(100, 1100))
    shards = plan_shards(seeds, jobs=4)
    flattened = [seed for shard in shards for seed in shard]
    assert flattened == seeds
    assert plan_shards([], jobs=4) == []
    # The cap keeps checkpoints fresh even with one worker.
    assert max(len(s) for s in plan_shards(list(range(100_000)), jobs=1)) == 500


def test_aggregator_counts_and_digest_are_order_independent():
    records = [
        {"seed": 10, "code": CODE_AGREE},
        {"seed": 11, "code": CODE_AGREE_BOTH_ERROR},
        {"seed": 12, "code": CODE_MISMATCH, "detail": "boom"},
        {"seed": 13, "code": CODE_AGREE},
    ]
    forward = Aggregator("x", 10, 4)
    for record in records:
        assert forward.add(record)
    backward = Aggregator("x", 10, 4)
    for record in reversed(records):
        assert backward.add(record)
    a, b = forward.finalize(), backward.finalize()
    assert a.outcome_digest == b.outcome_digest
    assert a.agreements == b.agreements == 3
    assert a.error_agreements == 1
    assert a.mismatches == [{"seed": 12, "detail": "boom"}]
    assert a.agreement_rate == pytest.approx(0.75)


def test_aggregator_rejects_duplicates_and_out_of_range():
    agg = Aggregator("x", 0, 2)
    assert agg.add({"seed": 0, "code": CODE_AGREE})
    assert not agg.add({"seed": 0, "code": CODE_AGREE})
    assert not agg.add({"seed": 5, "code": CODE_AGREE})
    assert agg.duplicates == 1
    assert agg.pending_seeds() == [1]


def test_checkpoint_roundtrip_and_torn_line(tmp_path):
    path = str(tmp_path / "c.jsonl")
    header = {"schema": CHECKPOINT_SCHEMA, "spec": {"kind": "validation"}}
    with CheckpointWriter(path, header, fresh=True) as writer:
        writer.write_records([{"seed": 0, "code": 1}, {"seed": 1, "code": 3}])
    # Simulate a kill mid-write: append a torn line.
    with open(path, "a") as handle:
        handle.write('{"seed": 2, "co')
    loaded_header, records = load_checkpoint(path)
    assert loaded_header["schema"] == CHECKPOINT_SCHEMA
    assert records == [{"seed": 0, "code": 1}, {"seed": 1, "code": 3}]


def test_checkpoint_missing_file():
    assert load_checkpoint("/nonexistent/ckpt.jsonl") == (None, [])


def test_append_after_torn_line_does_not_merge_records(tmp_path):
    """Appending after a mid-write kill must not glue the new record onto
    the torn fragment (which would lose both lines on the next read)."""
    path = str(tmp_path / "c.jsonl")
    header = {"schema": CHECKPOINT_SCHEMA, "spec": {"kind": "validation"}}
    with CheckpointWriter(path, header, fresh=True) as writer:
        writer.write_records([{"seed": 0, "code": 1}])
    with open(path, "a") as handle:
        handle.write('{"seed": 1, "co')  # torn by a kill
    with CheckpointWriter(path, header, fresh=False) as writer:
        writer.write_records([{"seed": 2, "code": 1}])
    _header, records = load_checkpoint(path)
    assert records == [{"seed": 0, "code": 1}, {"seed": 2, "code": 1}]


def test_aggregator_skips_corrupt_codes():
    """A checkpoint record with an out-of-range code is ignored and its
    seed stays pending instead of crashing or double-counting."""
    agg = Aggregator("x", 0, 2)
    assert not agg.add({"seed": 0, "code": 999})
    assert not agg.add({"seed": 1, "code": 0})
    assert agg.completed == 0
    assert agg.pending_seeds() == [0, 1]


def test_run_campaign_rejects_backend_with_jobs():
    from repro.campaigns import RunnerBackend

    backend = RunnerBackend(lambda seed: {"seed": seed, "code": CODE_AGREE})
    with pytest.raises(ValueError):
        run_campaign(backend, trials=4, jobs=2)
    result = run_campaign(backend, trials=4, jobs=1)
    assert result.completed == 4
    assert result.agreements == 4


def test_run_campaign_resume_requires_checkpoint():
    spec = CampaignSpec(kind="validation", rows=2)
    with pytest.raises(ValueError):
        run_campaign(spec, trials=2, resume=True)


def test_resume_rejects_mismatched_header(tmp_path):
    path = str(tmp_path / "c.jsonl")
    spec = CampaignSpec(kind="validation", variant="postgres", rows=3)
    run_campaign(spec, trials=5, base_seed=0, checkpoint=path)
    other = CampaignSpec(kind="validation", variant="oracle", rows=3)
    with pytest.raises(ValueError, match="spec mismatch"):
        run_campaign(other, trials=5, base_seed=0, checkpoint=path, resume=True)
    with pytest.raises(ValueError, match="base_seed mismatch"):
        run_campaign(spec, trials=5, base_seed=9, checkpoint=path, resume=True)


def test_campaign_result_json(tmp_path):
    spec = CampaignSpec(kind="validation", rows=3)
    result = run_campaign(spec, trials=6, base_seed=100)
    doc = result.to_json()
    json.dumps(doc)  # JSON-safe
    assert doc["completed"] == 6
    assert doc["outcome_digest"] == result.outcome_digest
    assert "trials=6/6" in result.summary()
