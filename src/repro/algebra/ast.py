"""Abstract syntax of bag relational algebra and SQL-RA (Section 5).

Plain RA expressions are given by the paper's grammar::

    E := R | π_β(E) | σ_θ(E) | E × E | E ∪ E | E ∩ E | E − E
       | ρ_{β→β′}(E) | ε(E)

with selection conditions::

    θ := TRUE | FALSE | P(t̄) | const(t) | null(t) | θ ∧ θ | θ ∨ θ | ¬θ

SQL-RA extends conditions with the two constructs that mimic SQL subqueries::

    θ := … | t̄ ∈ E | empty(E)

An RA *term* is a name, a constant, or NULL.  Because Python strings are
used both for names and for string constants, attribute references are
wrapped in :class:`Attr`; bare ints/strings/NULL are constants.

A *pure* RA expression contains no ``∈``/``empty`` condition (see
:func:`is_pure`); Proposition 2 says every SQL-RA query can be desugared
into a pure one (:mod:`repro.algebra.desugar`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..core.values import Name, Null, Value

__all__ = [
    "Attr",
    "RATerm",
    "Relation",
    "Projection",
    "Selection",
    "Product",
    "UnionOp",
    "IntersectionOp",
    "DifferenceOp",
    "Renaming",
    "Dedup",
    "RAExpr",
    "RTrue",
    "RFalse",
    "R_TRUE",
    "R_FALSE",
    "RPredicate",
    "NullTest",
    "ConstTest",
    "RAnd",
    "ROr",
    "RNot",
    "InExpr",
    "Empty",
    "RACondition",
    "rand_all",
    "ror_all",
    "is_pure",
    "condition_is_pure",
    "walk_expressions",
]


@dataclass(frozen=True, slots=True)
class Attr:
    """An attribute reference in an RA term or projection list."""

    name: Name

    def __str__(self) -> str:
        return self.name


#: An RA term: attribute reference, constant, or NULL.
RATerm = Union[Attr, int, str, Null]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Relation:
    """A base relation R."""

    name: Name


@dataclass(frozen=True, slots=True)
class Projection:
    """π_β(E): well-defined iff β ⊆ ℓ(E) with no repetitions."""

    source: "RAExpr"
    attributes: Tuple[Name, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("projection needs at least one attribute")


@dataclass(frozen=True, slots=True)
class Selection:
    """σ_θ(E)."""

    source: "RAExpr"
    condition: "RACondition"


@dataclass(frozen=True, slots=True)
class Product:
    """E1 × E2: well-defined iff ℓ(E1) and ℓ(E2) are disjoint."""

    left: "RAExpr"
    right: "RAExpr"


@dataclass(frozen=True, slots=True)
class UnionOp:
    """E1 ∪ E2 (bag union): well-defined iff ℓ(E1) = ℓ(E2)."""

    left: "RAExpr"
    right: "RAExpr"


@dataclass(frozen=True, slots=True)
class IntersectionOp:
    """E1 ∩ E2 (bag intersection): well-defined iff ℓ(E1) = ℓ(E2)."""

    left: "RAExpr"
    right: "RAExpr"


@dataclass(frozen=True, slots=True)
class DifferenceOp:
    """E1 − E2 (bag difference): well-defined iff ℓ(E1) = ℓ(E2)."""

    left: "RAExpr"
    right: "RAExpr"


@dataclass(frozen=True, slots=True)
class Renaming:
    """ρ_{β→β′}(E): well-defined iff β = ℓ(E) and β′ repetition-free."""

    source: "RAExpr"
    old: Tuple[Name, ...]
    new: Tuple[Name, ...]

    def __post_init__(self) -> None:
        if len(self.old) != len(self.new):
            raise ValueError("renaming lists must have equal length")


@dataclass(frozen=True, slots=True)
class Dedup:
    """ε(E): duplicate elimination."""

    source: "RAExpr"


RAExpr = Union[
    Relation,
    Projection,
    Selection,
    Product,
    UnionOp,
    IntersectionOp,
    DifferenceOp,
    Renaming,
    Dedup,
]


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RTrue:
    """TRUE."""


@dataclass(frozen=True, slots=True)
class RFalse:
    """FALSE."""


R_TRUE = RTrue()
R_FALSE = RFalse()


@dataclass(frozen=True, slots=True)
class RPredicate:
    """P(t1, …, tk): three-valued, unknown when an argument is NULL."""

    name: str
    args: Tuple[RATerm, ...]


@dataclass(frozen=True, slots=True)
class NullTest:
    """null(t): two-valued test for NULL."""

    term: RATerm


@dataclass(frozen=True, slots=True)
class ConstTest:
    """const(t): the negation of null(t)."""

    term: RATerm


@dataclass(frozen=True, slots=True)
class RAnd:
    left: "RACondition"
    right: "RACondition"


@dataclass(frozen=True, slots=True)
class ROr:
    left: "RACondition"
    right: "RACondition"


@dataclass(frozen=True, slots=True)
class RNot:
    operand: "RACondition"


@dataclass(frozen=True, slots=True)
class InExpr:
    """t̄ ∈ E — SQL-RA only (the analogue of SQL's IN)."""

    terms: Tuple[RATerm, ...]
    source: RAExpr

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("∈ needs at least one term on the left")


@dataclass(frozen=True, slots=True)
class Empty:
    """empty(E) — SQL-RA only (the analogue of NOT EXISTS)."""

    source: RAExpr


RACondition = Union[
    RTrue,
    RFalse,
    RPredicate,
    NullTest,
    ConstTest,
    RAnd,
    ROr,
    RNot,
    InExpr,
    Empty,
]


def rand_all(conditions: list) -> RACondition:
    """Left-associated conjunction; TRUE for the empty list."""
    if not conditions:
        return R_TRUE
    result = conditions[0]
    for cond in conditions[1:]:
        result = RAnd(result, cond)
    return result


def ror_all(conditions: list) -> RACondition:
    """Left-associated disjunction; FALSE for the empty list."""
    if not conditions:
        return R_FALSE
    result = conditions[0]
    for cond in conditions[1:]:
        result = ROr(result, cond)
    return result


# ---------------------------------------------------------------------------
# Purity (plain RA vs SQL-RA)
# ---------------------------------------------------------------------------


def condition_is_pure(condition: RACondition) -> bool:
    """Whether a condition avoids the SQL-RA extensions ∈ and empty."""
    if isinstance(condition, (InExpr, Empty)):
        return False
    if isinstance(condition, (RAnd, ROr)):
        return condition_is_pure(condition.left) and condition_is_pure(condition.right)
    if isinstance(condition, RNot):
        return condition_is_pure(condition.operand)
    return True


def is_pure(expr: RAExpr) -> bool:
    """Whether an expression is plain RA (no ∈/empty anywhere)."""
    if isinstance(expr, Relation):
        return True
    if isinstance(expr, Selection):
        return condition_is_pure(expr.condition) and is_pure(expr.source) and all(
            is_pure(sub) for sub in _condition_subexpressions(expr.condition)
        )
    if isinstance(expr, (Projection, Dedup, Renaming)):
        return is_pure(expr.source)
    if isinstance(expr, (Product, UnionOp, IntersectionOp, DifferenceOp)):
        return is_pure(expr.left) and is_pure(expr.right)
    raise TypeError(f"not an RA expression: {expr!r}")


def _condition_subexpressions(condition: RACondition):
    if isinstance(condition, InExpr):
        yield condition.source
    elif isinstance(condition, Empty):
        yield condition.source
    elif isinstance(condition, (RAnd, ROr)):
        yield from _condition_subexpressions(condition.left)
        yield from _condition_subexpressions(condition.right)
    elif isinstance(condition, RNot):
        yield from _condition_subexpressions(condition.operand)


def walk_expressions(expr: RAExpr):
    """Yield every sub-expression of ``expr`` (including itself), including
    those nested inside selection conditions."""
    yield expr
    if isinstance(expr, (Projection, Dedup, Renaming)):
        yield from walk_expressions(expr.source)
    elif isinstance(expr, Selection):
        yield from walk_expressions(expr.source)
        for sub in _condition_subexpressions(expr.condition):
            yield from walk_expressions(sub)
    elif isinstance(expr, (Product, UnionOp, IntersectionOp, DifferenceOp)):
        yield from walk_expressions(expr.left)
        yield from walk_expressions(expr.right)
