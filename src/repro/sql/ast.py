"""Abstract syntax of basic SQL (Figure 2 of the paper).

Queries and conditions are defined by mutual recursion, exactly as in the
paper's grammar::

    Q := SELECT [DISTINCT] α : β′ FROM τ : β WHERE θ
       | SELECT [DISTINCT] *      FROM τ : β WHERE θ
       | Q (UNION | INTERSECT | EXCEPT) [ALL] Q

    θ := TRUE | FALSE | P(t1, …, tk)
       | t IS [NOT] NULL
       | t̄ [NOT] IN Q | EXISTS Q
       | θ AND θ | θ OR θ | NOT θ

Terms are shared with the core data model: a term is a constant, ``NULL`` or
a :class:`~repro.core.values.FullName`.  The AST is *fully annotated* in the
paper's sense — every FROM item carries an explicit alias, every SELECT item
an explicit output name; the :mod:`repro.sql.annotate` pass produces this
form from surface SQL.

One extension beyond Figure 2 is :attr:`FromItem.column_aliases`, modelling
the standard construct ``T AS N(A1, …, An)`` that Section 6's Figure 10
translation uses to rename the columns of a subquery in FROM.

All nodes are frozen dataclasses: hashable, comparable by structure, safe to
share between translations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..core.values import FullName, Name, Null, Term

__all__ = [
    "BareColumn",
    "Star",
    "STAR",
    "SelectItem",
    "FromItem",
    "Select",
    "SetOp",
    "Query",
    "TableExpr",
    "Condition",
    "TrueCond",
    "FalseCond",
    "TRUE_COND",
    "FALSE_COND",
    "Predicate",
    "IsNull",
    "InQuery",
    "Exists",
    "And",
    "Or",
    "Not",
    "COMPARISONS",
    "iter_terms",
    "conjunction",
    "disjunction",
]


@dataclass(frozen=True, slots=True)
class BareColumn:
    """A surface-syntax unqualified column reference (``A`` rather than ``R.A``).

    Only the parser produces these; the annotation pass
    (:mod:`repro.sql.annotate`) resolves every bare column to a
    :class:`~repro.core.values.FullName`, so fully-annotated ASTs never
    contain them.
    """

    name: Name

    def __str__(self) -> str:
        return self.name


class Star:
    """The ``*`` SELECT list — a singleton marker, not a term."""

    _instance: "Star | None" = None

    __slots__ = ()

    def __new__(cls) -> "Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


STAR = Star()


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One element ``t AS N`` of an annotated SELECT list (α : β′)."""

    term: Term
    alias: Name

    def __str__(self) -> str:
        return f"{_term_str(self.term)} AS {self.alias}"


@dataclass(frozen=True, slots=True)
class FromItem:
    """One element ``T AS N`` of an annotated FROM list (τ : β).

    ``table`` is either a base-table name (str) or a subquery.
    ``column_aliases``, when present, renames the columns of the item
    (``T AS N(A1, …, An)`` — the construct used by Figure 10).
    """

    table: "TableExpr"
    alias: Name
    column_aliases: Optional[Tuple[Name, ...]] = None

    @property
    def is_base_table(self) -> bool:
        return isinstance(self.table, str)


@dataclass(frozen=True, slots=True)
class Select:
    """A SELECT [DISTINCT] … FROM … WHERE … block.

    ``items`` is either the tuple of annotated select items or :data:`STAR`.
    ``where`` is always present; the annotator inserts ``TRUE`` when the
    surface query has no WHERE clause.
    """

    items: Union[Tuple[SelectItem, ...], Star]
    from_items: Tuple[FromItem, ...]
    where: "Condition"
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        return isinstance(self.items, Star)


@dataclass(frozen=True, slots=True)
class SetOp:
    """``Q1 (UNION | INTERSECT | EXCEPT) [ALL] Q2``."""

    op: str  # "UNION" | "INTERSECT" | "EXCEPT"
    left: "Query"
    right: "Query"
    all: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("UNION", "INTERSECT", "EXCEPT"):
            raise ValueError(f"invalid set operation: {self.op!r}")


Query = Union[Select, SetOp]
TableExpr = Union[Name, Query]


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TrueCond:
    """The constant condition TRUE."""


@dataclass(frozen=True, slots=True)
class FalseCond:
    """The constant condition FALSE."""


TRUE_COND = TrueCond()
FALSE_COND = FalseCond()

#: The built-in comparison predicate names (equality is always available).
COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class Predicate:
    """An atomic predicate ``P(t1, …, tk)`` from the collection P.

    The built-in binary comparisons use the symbols of :data:`COMPARISONS`;
    additional predicates (e.g. ``LIKE``) may be registered with the
    evaluator's predicate registry.
    """

    name: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise ValueError("a predicate needs at least one argument")


@dataclass(frozen=True, slots=True)
class IsNull:
    """``t IS [NOT] NULL``."""

    term: Term
    negated: bool = False


@dataclass(frozen=True, slots=True)
class InQuery:
    """``t̄ [NOT] IN Q``; arity of Q must equal ``len(terms)``."""

    terms: Tuple[Term, ...]
    query: Query
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("IN needs at least one term on the left")


@dataclass(frozen=True, slots=True)
class Exists:
    """``EXISTS Q``."""

    query: Query


@dataclass(frozen=True, slots=True)
class And:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True, slots=True)
class Or:
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Condition"


Condition = Union[
    TrueCond, FalseCond, Predicate, IsNull, InQuery, Exists, And, Or, Not
]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def conjunction(conditions: list) -> Condition:
    """Left-associated AND of a non-empty list (TRUE for the empty list)."""
    if not conditions:
        return TRUE_COND
    result = conditions[0]
    for cond in conditions[1:]:
        result = And(result, cond)
    return result


def disjunction(conditions: list) -> Condition:
    """Left-associated OR of a non-empty list (FALSE for the empty list)."""
    if not conditions:
        return FALSE_COND
    result = conditions[0]
    for cond in conditions[1:]:
        result = Or(result, cond)
    return result


def iter_terms(condition: Condition):
    """Yield every term occurring directly in a condition (not in subqueries)."""
    if isinstance(condition, Predicate):
        yield from condition.args
    elif isinstance(condition, IsNull):
        yield condition.term
    elif isinstance(condition, InQuery):
        yield from condition.terms
    elif isinstance(condition, (And, Or)):
        yield from iter_terms(condition.left)
        yield from iter_terms(condition.right)
    elif isinstance(condition, Not):
        yield from iter_terms(condition.operand)


def _term_str(term: Term) -> str:
    if isinstance(term, FullName):
        return str(term)
    if isinstance(term, Null):
        return "NULL"
    if isinstance(term, str):
        return "'" + term.replace("'", "''") + "'"
    return str(term)
