"""The reference engine end to end, including its dialect behaviours."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import (
    AmbiguousReferenceError,
    ArityMismatchError,
    CompileError,
    DuplicateAliasError,
    UnboundReferenceError,
    UnknownTableError,
)
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.sql import annotate, parse_query


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A", "B")})


@pytest.fixture
def db(schema):
    return Database(schema, {"R": [(1,), (2,), (NULL,)], "S": [(1, 5), (NULL, 6)]})


@pytest.fixture
def pg(schema):
    return Engine(schema, DIALECT_POSTGRES)


@pytest.fixture
def ora(schema):
    return Engine(schema, DIALECT_ORACLE)


def test_simple_scan(pg, schema, db):
    t = pg.execute(annotate("SELECT R.A FROM R", schema), db)
    assert t.columns == ("A",)
    assert sorted(t.bag, key=repr) == [(1,), (2,), (NULL,)]


def test_nulls_round_trip_the_boundary(pg, schema, db):
    """NULL→None on input, None→NULL on output."""
    t = pg.execute(annotate("SELECT S.B FROM S WHERE S.A IS NULL", schema), db)
    assert sorted(t.bag) == [(6,)]


def test_where_three_valued(pg, schema, db):
    t = pg.execute(annotate("SELECT R.A FROM R WHERE R.A > 1", schema), db)
    assert sorted(t.bag) == [(2,)]  # NULL row is unknown, dropped


def test_product_and_correlation(pg, schema, db):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
        schema,
    )
    t = pg.execute(q, db)
    assert sorted(t.bag) == [(1,)]


def test_in_three_valued(pg, schema, db):
    q = annotate("SELECT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)", schema)
    t = pg.execute(q, db)
    assert t.is_empty()  # S contains NULL, so NOT IN is never true


def test_distinct(pg, schema, db):
    q = annotate("SELECT DISTINCT 1 FROM R", schema)
    assert len(pg.execute(q, db)) == 1


def test_set_ops(pg, schema, db):
    q = annotate("SELECT R.A FROM R UNION ALL SELECT S.A FROM S", schema)
    assert len(pg.execute(q, db)) == 5


def test_except_matches_null_syntactically(pg, schema, db):
    q = annotate("SELECT R.A FROM R EXCEPT SELECT S.A FROM S", schema)
    t = pg.execute(q, db)
    assert sorted(t.bag) == [(2,)]


def test_unknown_table_error(pg, schema, db):
    q = parse_query("SELECT X.A FROM X AS X")
    with pytest.raises(UnknownTableError):
        pg.execute(q, db)


def test_duplicate_alias_error(pg, schema, db):
    q = parse_query("SELECT X.A FROM R AS X, S AS X")
    with pytest.raises(DuplicateAliasError):
        pg.execute(q, db)


def test_unbound_reference_error(pg, schema, db):
    q = parse_query("SELECT Z.A FROM R AS X")
    with pytest.raises(UnboundReferenceError):
        pg.execute(q, db)


def test_set_op_arity_error(pg, schema, db):
    q = annotate("SELECT R.A FROM R UNION SELECT S.A, S.B FROM S", schema)
    with pytest.raises(ArityMismatchError):
        pg.execute(q, db)


def test_in_arity_error(pg, schema, db):
    q = annotate("SELECT R.A FROM R WHERE R.A IN (SELECT S.A, S.B FROM S)", schema)
    with pytest.raises(ArityMismatchError):
        pg.execute(q, db)


class TestExample2Dialects:
    """Example 2: the dialect-defining behaviours of SELECT * expansion."""

    QUERY = "SELECT * FROM (SELECT R.A, R.A FROM R) AS T"
    NESTED = (
        "SELECT * FROM R WHERE EXISTS "
        "(SELECT * FROM (SELECT R.A, R.A FROM R) AS T)"
    )

    def test_postgres_accepts_duplicate_star(self, pg, schema, db):
        t = pg.execute(annotate(self.QUERY, schema), db)
        assert t.columns == ("A", "A")
        assert t.multiplicity((1, 1)) == 1

    def test_oracle_rejects_duplicate_star(self, ora, schema, db):
        with pytest.raises(AmbiguousReferenceError):
            ora.execute(annotate(self.QUERY, schema), db)

    def test_oracle_rejects_even_on_empty_table(self, ora, schema):
        """The error is a compile-time one: no data needed to trigger it."""
        empty = Database(Schema({"R": ("A",), "S": ("A", "B")}), {})
        with pytest.raises(AmbiguousReferenceError):
            ora.execute(annotate(self.QUERY, ora.schema), empty)

    def test_oracle_accepts_under_exists(self, ora, schema, db):
        t = ora.execute(annotate(self.NESTED, schema), db)
        assert t.columns == ("A",)
        assert len(t) == 3

    def test_postgres_accepts_under_exists(self, pg, schema, db):
        t = pg.execute(annotate(self.NESTED, schema), db)
        assert len(t) == 3

    def test_explicit_ambiguous_reference_rejected_by_both(self, pg, ora, schema, db):
        q = annotate("SELECT T.A AS X FROM (SELECT R.A, R.A FROM R) AS T", schema)
        for engine in (pg, ora):
            with pytest.raises(AmbiguousReferenceError):
                engine.execute(q, db)


def test_star_in_setop_under_exists_expands(ora, schema, db):
    """Set-operation operands are not 'directly under EXISTS': * expands."""
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS "
        "(SELECT * FROM (SELECT R.A, R.A FROM R) AS T "
        "UNION ALL SELECT S.A, S.B FROM S)",
        schema,
    )
    with pytest.raises(AmbiguousReferenceError):
        ora.execute(q, db)


def test_column_aliases_in_from(pg, schema, db):
    q = annotate(
        "SELECT N.X FROM (SELECT S.A, S.B FROM S) AS N(X, Y) WHERE N.Y = 5",
        schema,
    )
    t = pg.execute(q, db)
    assert t.columns == ("X",)
    assert sorted(t.bag) == [(1,)]


def test_unknown_dialect_rejected(schema):
    from repro.engine.planner import Planner

    with pytest.raises(ValueError):
        Planner(schema, Database(schema), "sqlite")


def test_nested_correlation_two_levels(pg, schema, db):
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS ("
        "SELECT S.A FROM S WHERE EXISTS ("
        "SELECT S2.A FROM S AS S2 WHERE S2.A = R.A AND S2.B = S.B))",
        schema,
    )
    t = pg.execute(q, db)
    assert sorted(t.bag) == [(1,)]
