"""Property-based cross-implementation equivalences (the paper's theorems).

Hypothesis picks seeds; each seed determines a random query and database.
The properties are the paper's main claims:

* Section 4 — the formal semantics agrees with the (independent) engine;
* Theorem 1 — data manipulation SQL ≡ its pure-RA translation;
* Theorem 2 — ⟦Q⟧ = ⟦Q′⟧2v for the Figure 10 translation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import RASemantics, sql_to_ra
from repro.core import validation_schema
from repro.core.errors import ReproError
from repro.engine import Engine
from repro.generator import (
    DM_CONFIG,
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.semantics import (
    STAR_COMPOSITIONAL,
    SqlSemantics,
    TwoValuedTranslator,
)
from repro.sql import check_query

SCHEMA = validation_schema(4)
DATA = DataFillerConfig(max_rows=3)
seeds = st.integers(min_value=0, max_value=100_000)


def make_inputs(seed, config):
    rng = random.Random(seed)
    query = QueryGenerator(SCHEMA, config, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    return query, db


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_semantics_agrees_with_postgres_engine(seed):
    query, db = make_inputs(seed, PAPER_CONFIG)
    sem = SqlSemantics(SCHEMA, star_style=STAR_COMPOSITIONAL)
    try:
        check_query(query, SCHEMA, star_style="compositional")
        expected = sem.run(query, db)
    except ReproError:
        return  # error behaviour is covered by the campaign tests
    got = Engine(SCHEMA, "postgres").execute(query, db)
    assert got.same_as(expected)


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_theorem1_sql_equals_pure_ra(seed):
    query, db = make_inputs(seed, DM_CONFIG)
    expected = SqlSemantics(SCHEMA).run(query, db)
    pure = sql_to_ra(query, SCHEMA)
    assert RASemantics(SCHEMA).evaluate(pure, db).same_as(expected)


@given(seeds, st.sampled_from(["conflating", "syntactic"]))
@settings(max_examples=30, deadline=None)
def test_theorem2_three_valued_equals_two_valued(seed, mode):
    query, db = make_inputs(seed, PAPER_CONFIG)
    try:
        check_query(query, SCHEMA, star_style="standard")
    except ReproError:
        return
    expected = SqlSemantics(SCHEMA).run(query, db)
    translator = TwoValuedTranslator(SCHEMA, mode)
    translated = translator.translate_query(query)
    got = SqlSemantics(SCHEMA, logic=translator.logic).run(translated, db)
    assert got.same_as(expected)
