"""Experiment V-PG (Section 4): validation against the PostgreSQL dialect.

Paper setup: 100,000 random queries over R1..R8 (Ri with i+1 int columns),
generator parameters tables=6 nest=3 attr=3 cond=8, random instances capped
at 50 rows per table, compositional-star semantics vs PostgreSQL.

Paper result: "The results were always the same" — 100% agreement, and no
ambiguity errors arise under PostgreSQL's compositional reading of *.

Default scale here: 300 trials (REPRO_TRIALS overrides); rows capped at 6 by
default because the semantics computes Cartesian products (shape-preserving;
use REPRO_ROWS=50 for the paper's cap).
"""

import os

from repro.generator import DataFillerConfig
from repro.validation import ValidationRunner, format_campaigns

from .conftest import print_banner, trials


def run_campaign():
    rows = int(os.environ.get("REPRO_ROWS", "6"))
    runner = ValidationRunner(
        variant="postgres", data_config=DataFillerConfig(max_rows=rows)
    )
    return runner, runner.run(trials=trials(300), base_seed=0)


def test_bench_validation_postgres(benchmark):
    runner, report = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    print_banner(
        "V-PG — Section 4 validation, PostgreSQL variant "
        "(paper: 100,000 queries, always the same results)"
    )
    print(format_campaigns([report]))
    for mismatch in report.mismatches[:5]:
        print(runner.explain(mismatch))
    assert report.agreements == report.trials
    # PostgreSQL's compositional * never produces ambiguity errors:
    assert report.error_agreements == 0
