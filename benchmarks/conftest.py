"""Shared benchmark configuration.

Campaign sizes default to a few hundred trials so the suite runs in minutes;
set ``REPRO_TRIALS`` to run at paper scale (the paper used 100,000 random
queries per variant)::

    REPRO_TRIALS=100000 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest


def trials(default: int) -> int:
    value = os.environ.get("REPRO_TRIALS")
    return int(value) if value else default


@pytest.fixture
def trial_count():
    return trials


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
