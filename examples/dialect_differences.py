"""Example 2 of the paper: no single semantics fits every RDBMS.

``SELECT * FROM (SELECT R.A, R.A FROM R) AS T`` compiles on PostgreSQL but
errors on Oracle ("column ambiguously defined"); the *same* subquery under
EXISTS works everywhere, because there ``*`` means only "some constant".

This script runs the two queries through:

* the standard (Oracle-adjusted) semantics with its compile-time check,
* the compositional (PostgreSQL-adjusted) semantics,
* both dialects of the independent reference engine,

showing the divergence the paper uses to justify per-system adjustments.

Run:  python examples/dialect_differences.py
"""

from repro import NULL, Database, Engine, Schema, SqlSemantics, annotate, check_query
from repro.core.errors import AmbiguousReferenceError

schema = Schema({"R": ("A",)})
db = Database(schema, {"R": [(1,), (NULL,)]})

STANDALONE = "SELECT * FROM (SELECT R.A, R.A FROM R) AS T"
NESTED = (
    "SELECT * FROM R WHERE EXISTS "
    "(SELECT * FROM (SELECT R.A, R.A FROM R) AS T)"
)


def try_run(label, fn):
    try:
        table = fn()
        print(f"  {label:<30} -> ok: columns {table.columns}, {len(table)} row(s)")
    except AmbiguousReferenceError as exc:
        print(f"  {label:<30} -> ERROR (ambiguous): {exc}")


def standard_pipeline(query):
    check_query(query, schema, star_style="standard")
    return SqlSemantics(schema, star_style="standard").run(query, db)


def compositional_pipeline(query):
    check_query(query, schema, star_style="compositional")
    return SqlSemantics(schema, star_style="compositional").run(query, db)


for title, text in [("standalone", STANDALONE), ("under EXISTS", NESTED)]:
    print(f"\n{text}   [{title}]")
    query = annotate(text, schema)
    try_run("semantics (Oracle-adjusted)", lambda q=query: standard_pipeline(q))
    try_run("semantics (PostgreSQL-adj.)", lambda q=query: compositional_pipeline(q))
    try_run("engine, oracle dialect", lambda q=query: Engine(schema, "oracle").execute(q, db))
    try_run("engine, postgres dialect", lambda q=query: Engine(schema, "postgres").execute(q, db))

print(
    "\nThe standalone query is rejected by the Oracle-style implementations\n"
    "and accepted by the PostgreSQL-style ones; under EXISTS everyone agrees\n"
    "— exactly the behaviour described in Example 2 of the paper."
)
