"""Shared fixtures: the paper's example databases and common schemas."""

from __future__ import annotations

import pytest

from repro.core import NULL, Database, Schema, validation_schema


@pytest.fixture
def rs_schema() -> Schema:
    """Example 1's schema: R(A) and S(A)."""
    return Schema({"R": ("A",), "S": ("A",)})


@pytest.fixture
def rs_db(rs_schema) -> Database:
    """Example 1's database: R = {1, NULL}, S = {NULL}."""
    return Database(rs_schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})


@pytest.fixture
def rt_schema() -> Schema:
    """Section 2's running schema: R(A) and T(A, B)."""
    return Schema({"R": ("A",), "T": ("A", "B")})


@pytest.fixture
def two_col_schema() -> Schema:
    return Schema({"R": ("A", "B"), "S": ("B", "C")})


@pytest.fixture
def two_col_db(two_col_schema) -> Database:
    return Database(
        two_col_schema,
        {
            "R": [(1, 2), (1, 3), (NULL, 2), (1, 2)],
            "S": [(2, 5), (3, NULL), (NULL, 7)],
        },
    )


@pytest.fixture
def val_schema() -> Schema:
    """The Section 4 schema R1..R8."""
    return validation_schema()
