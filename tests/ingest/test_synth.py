"""The FK-respecting synthesizer: referential integrity and determinism."""

import subprocess
import sys

import pytest

from repro.core.schema import Schema
from repro.core.values import Null
from repro.ingest import ForeignKey, SynthConfig, synthesize
from repro.ingest.demo import (
    library_foreign_keys,
    library_scenario,
    library_schema,
)


def fk_violations(scenario):
    """Non-NULL child FK tuples with no matching parent tuple."""
    broken = []
    for fk in scenario.fks:
        child = scenario.database.table(fk.table)
        parent = scenario.database.table(fk.ref_table)
        child_attrs = scenario.schema.attributes(fk.table)
        parent_attrs = scenario.schema.attributes(fk.ref_table)
        child_idx = [child_attrs.index(c) for c in fk.columns]
        parent_idx = [parent_attrs.index(c) for c in fk.ref_columns]
        parent_keys = {
            tuple(record[i] for i in parent_idx) for record in parent.bag
        }
        for record in child.bag:
            key = tuple(record[i] for i in child_idx)
            if any(isinstance(v, Null) for v in key):
                continue
            if key not in parent_keys:
                broken.append((fk, key))
    return broken


@pytest.mark.parametrize("total_rows", [50, 500, 5000])
@pytest.mark.parametrize("skew", [0.0, 1.1, 2.5])
def test_referential_integrity_at_scales_and_skews(total_rows, skew):
    scenario = library_scenario(total_rows, seed=3, skew=skew)
    assert fk_violations(scenario) == []


@pytest.mark.parametrize("null_rate", [0.0, 0.25, 0.6])
def test_referential_integrity_at_null_rates(null_rate):
    scenario = library_scenario(400, seed=5, null_rate=null_rate)
    assert fk_violations(scenario) == []


def test_null_rate_zero_leaves_no_nulls():
    scenario = library_scenario(300, seed=2, null_rate=0.0)
    for name in scenario.schema.table_names:
        for record in scenario.database.table(name).bag:
            assert not any(isinstance(v, Null) for v in record)


def test_fk_target_columns_unique_and_non_null():
    scenario = library_scenario(500, seed=7)
    for fk in scenario.fks:
        parent = scenario.database.table(fk.ref_table)
        attrs = scenario.schema.attributes(fk.ref_table)
        for column in fk.ref_columns:
            i = attrs.index(column)
            values = [record[i] for record in parent.bag]
            assert not any(isinstance(v, Null) for v in values)
            assert len(set(values)) == len(values)


def test_skew_concentrates_children_on_hot_parents():
    from collections import Counter

    flat = library_scenario(4000, seed=11, skew=0.0, null_rate=0.0)
    hot = library_scenario(4000, seed=11, skew=2.0, null_rate=0.0)

    def top_share(scenario):
        attrs = scenario.schema.attributes("loans")
        i = attrs.index("book_id")
        counts = Counter(
            record[i] for record in scenario.database.table("loans").bag
        )
        total = sum(counts.values())
        return max(counts.values()) / total

    assert top_share(hot) > top_share(flat)


def test_table_rows_overrides_default():
    schema = Schema({"p": ("pid",), "c": ("cid", "pid")})
    fks = (ForeignKey("c", ("pid",), "p", ("pid",)),)
    scenario = synthesize(
        schema, fks, SynthConfig(rows=10, table_rows={"p": 3}), seed=0
    )
    assert len(scenario.database.table("p")) == 3
    assert len(scenario.database.table("c")) == 10


def test_self_fk_filled_with_nulls_and_noted():
    schema = Schema({"emp": ("eid", "boss")})
    fks = (ForeignKey("emp", ("boss",), "emp", ("eid",)),)
    scenario = synthesize(schema, fks, SynthConfig(rows=5), seed=0)
    attrs = scenario.schema.attributes("emp")
    i = attrs.index("boss")
    assert all(
        isinstance(record[i], Null)
        for record in scenario.database.table("emp").bag
    )
    assert any("itself" in note for note in scenario.notes)


def test_fk_cycle_broken_with_note():
    schema = Schema({"a": ("aid", "bid"), "b": ("bid", "aid")})
    fks = (
        ForeignKey("a", ("bid",), "b", ("bid",)),
        ForeignKey("b", ("aid",), "a", ("aid",)),
    )
    scenario = synthesize(schema, fks, SynthConfig(rows=4), seed=0)
    assert any("cycle" in note for note in scenario.notes)
    assert fk_violations(scenario) == []  # NULL-filled edges never violate


def test_identical_seed_reproduces_identical_tables():
    a = library_scenario(200, seed=42)
    b = library_scenario(200, seed=42)
    assert a.table_fingerprints() == b.table_fingerprints()
    assert library_scenario(200, seed=43).table_fingerprints() != (
        a.table_fingerprints()
    )


def test_adding_a_table_does_not_perturb_existing_ones():
    base = Schema({"p": ("pid", "v")})
    extended = Schema({"p": ("pid", "v"), "q": ("qid",)})
    a = synthesize(base, (), SynthConfig(rows=20), seed=9)
    b = synthesize(extended, (), SynthConfig(rows=20), seed=9)
    assert (
        a.table_fingerprints()["p"] == b.table_fingerprints()["p"]
    )


def test_identical_seed_across_processes():
    """The per-table string seeds hash platform-independently, so a fresh
    interpreter must reproduce the exact fingerprints."""
    code = (
        "from repro.ingest.demo import library_scenario\n"
        "prints = library_scenario(150, seed=8).table_fingerprints()\n"
        "print(repr(sorted(prints.items())))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    here = sorted(library_scenario(150, seed=8).table_fingerprints().items())
    assert out.stdout.strip() == repr(here)


def test_library_scenario_scale_and_structure():
    scenario = library_scenario(1000, seed=0)
    assert scenario.total_rows == pytest.approx(1000, rel=0.15)
    assert len(scenario.fks) == len(library_foreign_keys())
    assert set(scenario.schema.table_names) == set(
        library_schema().table_names
    )
