"""repro: an executable reproduction of "A Formal Semantics of SQL Queries,
Its Validation, and Applications" (Guagliardo & Libkin, PVLDB 2017).

The package implements the paper end to end:

* :mod:`repro.core` — the data model: values and NULL, bags, tables,
  Kleene's three-valued logic, environments, schemas;
* :mod:`repro.sql` — the basic SQL fragment: AST (Figure 2), output labels
  (Figure 3), parser, printer, annotation to the fully-qualified form,
  compile-time checks;
* :mod:`repro.semantics` — the denotational semantics of Figures 4-7 with
  the standard and PostgreSQL-compositional star styles, pluggable logics
  (3VL and the two two-valued interpretations of Section 6), and the
  Figure 10 translations of Theorem 2;
* :mod:`repro.algebra` — bag relational algebra and SQL-RA (Figure 8), the
  Figure 9 translation, and the Proposition 2 desugaring (Theorem 1);
* :mod:`repro.engine` — an independent iterator-model executor standing in
  for PostgreSQL/Oracle in the validation experiment;
* :mod:`repro.generator` — the random query/data generators of Section 4
  and the TPC-H structural statistics behind their parameters;
* :mod:`repro.validation` — the validation campaign harness.

Quickstart::

    from repro import Schema, Database, NULL, annotate, SqlSemantics

    schema = Schema({"R": ("A",), "S": ("A",)})
    db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})
    query = annotate("SELECT R.A FROM R EXCEPT SELECT S.A FROM S", schema)
    print(SqlSemantics(schema).run(query, db).pretty())
"""

from .core import (
    NULL,
    Bag,
    Database,
    Environment,
    FullName,
    Schema,
    Table,
    Truth,
    validation_schema,
)
from .engine import Engine
from .semantics import SqlSemantics, TwoValuedTranslator, to_three_valued
from .sql import annotate, check_query, parse_query, print_query
from .algebra import RASemantics, desugar, ra_to_sql, sql_to_ra, to_sqlra
from .applications import EquivalenceReport, check_equivalence, find_counterexample
from .generator import QueryGenerator, fill_database
from .validation import ValidationRunner

__version__ = "1.0.0"

__all__ = [
    "NULL",
    "Bag",
    "Table",
    "Schema",
    "Database",
    "Environment",
    "FullName",
    "Truth",
    "validation_schema",
    "annotate",
    "parse_query",
    "print_query",
    "check_query",
    "SqlSemantics",
    "TwoValuedTranslator",
    "to_three_valued",
    "Engine",
    "RASemantics",
    "desugar",
    "sql_to_ra",
    "to_sqlra",
    "ra_to_sql",
    "QueryGenerator",
    "fill_database",
    "ValidationRunner",
    "EquivalenceReport",
    "check_equivalence",
    "find_counterexample",
    "__version__",
]
