"""Differential testing across every implementation in the repository.

The Section 4 experiment compares two implementations (formal semantics vs
RDBMS).  This module generalizes it to an n-way differential harness: for a
random data manipulation query it evaluates

* the formal semantics (Figures 4–7),
* the reference engine (both dialects),
* the SQL-RA translation (Figure 9),
* the desugared pure-RA translation (Proposition 2),
* the two-valued translations (Figure 10, both equality modes),

and requires all of them to coincide.  Any bug in any component shows up as
a disagreement with a seed that reproduces it — the repository's strongest
internal consistency check, used by the tests and the T1/T2 benchmarks.

Like the Section 4 runner, this class is the per-trial comparator; sharded
/checkpointed execution lives in :mod:`repro.campaigns` (CLI:
``python -m repro differential``), for which it is the ``differential``
backend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..algebra.desugar import desugar
from ..algebra.semantics import RASemantics
from ..algebra.translate import to_sqlra
from ..core.schema import Schema, validation_schema
from ..core.table import Table
from ..engine.engine import Engine
from ..generator.config import DM_CONFIG, GeneratorConfig
from ..generator.datafiller import DataFillerConfig, fill_database
from ..generator.queries import QueryGenerator
from ..semantics.evaluator import SqlSemantics
from ..semantics.two_valued import TwoValuedTranslator

__all__ = ["DifferentialRunner", "DifferentialReport"]


@dataclass
class DifferentialReport:
    """Aggregate of an n-way differential campaign."""

    trials: int = 0
    agreements: int = 0
    disagreements: List[str] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        return (
            f"differential: {self.agreements}/{self.trials} trials with all "
            f"implementations in agreement; {len(self.disagreements)} failure(s)"
        )


class DifferentialRunner:
    """Runs every implementation on the same random inputs."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        generator_config: GeneratorConfig = DM_CONFIG,
        data_config: Optional[DataFillerConfig] = None,
    ):
        if not generator_config.data_manipulation_only:
            raise ValueError(
                "the differential runner needs data manipulation queries "
                "(every implementation must be applicable)"
            )
        self.schema = schema if schema is not None else validation_schema(5)
        self.generator_config = generator_config
        self.data_config = (
            data_config if data_config is not None else DataFillerConfig(max_rows=4)
        )
        self.semantics = SqlSemantics(self.schema)
        self.ra = RASemantics(self.schema)
        # Fresh query per trial: plan-cache lookups can never hit, so the
        # cache is disabled (see ValidationRunner for the measurement).
        self.engines = {
            "engine:postgres": Engine(self.schema, "postgres", plan_cache_size=0),
            "engine:oracle": Engine(self.schema, "oracle", plan_cache_size=0),
        }
        self.translators = {
            "2vl:conflating": TwoValuedTranslator(self.schema, "conflating"),
            "2vl:syntactic": TwoValuedTranslator(self.schema, "syntactic"),
        }

    def run_trial(self, seed: int) -> Dict[str, Table]:
        """All implementations' outputs for the query/database of ``seed``."""
        rng = random.Random(seed)
        query = QueryGenerator(self.schema, self.generator_config, rng).generate()
        db = fill_database(self.schema, rng, self.data_config)
        results: Dict[str, Table] = {}
        results["semantics"] = self.semantics.run(query, db)
        for name, engine in self.engines.items():
            results[name] = engine.execute(query, db)
        sqlra = to_sqlra(query, self.schema)
        results["sqlra"] = self.ra.evaluate(sqlra, db)
        results["pure-ra"] = self.ra.evaluate(desugar(sqlra, self.schema), db)
        for name, translator in self.translators.items():
            translated = translator.translate_query(query)
            two_valued = SqlSemantics(self.schema, logic=translator.logic)
            results[name] = two_valued.run(translated, db)
        return results

    def run(self, trials: int, base_seed: int = 0) -> DifferentialReport:
        """Run a serial n-way campaign through the unified execution core.

        Delegates to :func:`repro.campaigns.run_campaign` with ``jobs=1``
        (use the campaign subsystem directly — or ``python -m repro
        differential`` — for sharded, checkpointed runs).
        """
        from ..campaigns import DifferentialBackend, run_campaign

        result = run_campaign(
            DifferentialBackend(self), trials=trials, base_seed=base_seed
        )
        return DifferentialReport(
            trials=result.completed,
            agreements=result.agreements,
            disagreements=[
                f"seed {m['seed']}: {m['detail']}" for m in result.mismatches
            ],
        )
