"""Signatures ℓ(E) and well-definedness of RA expressions (Section 5)."""

import pytest

from repro.algebra.ast import (
    Dedup,
    DifferenceOp,
    IntersectionOp,
    Product,
    Projection,
    R_TRUE,
    Relation,
    Renaming,
    Selection,
    UnionOp,
)
from repro.algebra.typecheck import signature
from repro.core.errors import IllFormedExpressionError, UnknownTableError
from repro.core.schema import Schema


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("C",), "S2": ("A",)})


def test_relation_signature(schema):
    assert signature(Relation("R"), schema) == ("A", "B")


def test_unknown_relation(schema):
    with pytest.raises(UnknownTableError):
        signature(Relation("X"), schema)


def test_projection_signature(schema):
    assert signature(Projection(Relation("R"), ("B",)), schema) == ("B",)


def test_projection_missing_attribute(schema):
    with pytest.raises(IllFormedExpressionError):
        signature(Projection(Relation("R"), ("Z",)), schema)


def test_projection_repetition_rejected(schema):
    with pytest.raises(IllFormedExpressionError):
        signature(Projection(Relation("R"), ("A", "A")), schema)


def test_selection_keeps_signature(schema):
    assert signature(Selection(Relation("R"), R_TRUE), schema) == ("A", "B")


def test_product_concatenates(schema):
    assert signature(Product(Relation("R"), Relation("S")), schema) == (
        "A",
        "B",
        "C",
    )


def test_product_overlap_rejected(schema):
    """E1 × E2 is well-defined only if ℓ(E1) and ℓ(E2) are disjoint."""
    with pytest.raises(IllFormedExpressionError):
        signature(Product(Relation("R"), Relation("S2")), schema)


@pytest.mark.parametrize("op", [UnionOp, IntersectionOp, DifferenceOp])
def test_set_ops_require_equal_signatures(op, schema):
    with pytest.raises(IllFormedExpressionError):
        signature(op(Relation("R"), Relation("S")), schema)
    assert signature(op(Relation("R"), Relation("R")), schema) == ("A", "B")


def test_renaming_signature(schema):
    expr = Renaming(Relation("R"), ("A", "B"), ("X", "Y"))
    assert signature(expr, schema) == ("X", "Y")


def test_renaming_must_match_source(schema):
    with pytest.raises(IllFormedExpressionError):
        signature(Renaming(Relation("R"), ("A",), ("X",)), schema)


def test_renaming_rejects_repetitions(schema):
    with pytest.raises(IllFormedExpressionError):
        signature(Renaming(Relation("R"), ("A", "B"), ("X", "X")), schema)


def test_renaming_length_mismatch_rejected(schema):
    with pytest.raises(ValueError):
        Renaming(Relation("R"), ("A", "B"), ("X",))


def test_dedup_keeps_signature(schema):
    assert signature(Dedup(Relation("R")), schema) == ("A", "B")


def test_signatures_are_repetition_free(schema):
    """Invariant: every well-defined expression has a repetition-free ℓ(E)."""
    exprs = [
        Relation("R"),
        Projection(Relation("R"), ("A",)),
        Product(Relation("R"), Relation("S")),
        Renaming(Relation("R"), ("A", "B"), ("B", "A")),
        Dedup(Selection(Relation("S"), R_TRUE)),
    ]
    for expr in exprs:
        labels = signature(expr, schema)
        assert len(set(labels)) == len(labels)
