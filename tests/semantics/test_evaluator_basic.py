"""The core evaluation rules of Figures 4–6: terms, conditions, SFW blocks."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.env import EMPTY_ENV, Environment
from repro.core.errors import (
    AmbiguousReferenceError,
    ArityMismatchError,
    CompileError,
    DuplicateAliasError,
    UnboundReferenceError,
)
from repro.core.truth import FALSE, TRUE, UNKNOWN
from repro.core.values import FullName
from repro.semantics import SqlSemantics
from repro.sql import annotate, parse_condition
from repro.sql.annotate import annotate_query


@pytest.fixture
def schema():
    return Schema({"R": ("A", "B"), "S": ("A",)})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {"R": [(1, 2), (1, 2), (NULL, 3), (4, NULL)], "S": [(1,), (NULL,)]},
    )


@pytest.fixture
def sem(schema):
    return SqlSemantics(schema)


def run(sem, schema, db, text):
    return sem.run(annotate(text, schema), db)


# -- terms (Figure 4) --------------------------------------------------------


def test_constant_term(sem):
    assert sem.eval_term(5, EMPTY_ENV) == 5
    assert sem.eval_term("x", EMPTY_ENV) == "x"


def test_null_term(sem):
    assert sem.eval_term(NULL, EMPTY_ENV) is NULL


def test_full_name_term(sem):
    env = Environment.from_bindings((FullName("R", "A"),), (7,))
    assert sem.eval_term(FullName("R", "A"), env) == 7


def test_unbound_full_name(sem):
    with pytest.raises(UnboundReferenceError):
        sem.eval_term(FullName("R", "A"), EMPTY_ENV)


def test_tuple_of_terms(sem):
    env = Environment.from_bindings((FullName("R", "A"),), (7,))
    assert sem.eval_terms((1, NULL, FullName("R", "A")), env) == (1, NULL, 7)


# -- conditions (Figure 6) ------------------------------------------------------


def cond(sem, db, text, env=EMPTY_ENV):
    return sem.eval_condition(parse_condition(text), db, env)


def test_true_false(sem, db):
    assert cond(sem, db, "TRUE") is TRUE
    assert cond(sem, db, "FALSE") is FALSE


def test_comparison_on_constants(sem, db):
    assert cond(sem, db, "1 = 1") is TRUE
    assert cond(sem, db, "1 = 2") is FALSE
    assert cond(sem, db, "1 < 2") is TRUE


def test_comparison_with_null_is_unknown(sem, db):
    assert cond(sem, db, "1 = NULL") is UNKNOWN
    assert cond(sem, db, "NULL = NULL") is UNKNOWN
    assert cond(sem, db, "NULL < 1") is UNKNOWN


def test_is_null_is_two_valued(sem, db):
    assert cond(sem, db, "NULL IS NULL") is TRUE
    assert cond(sem, db, "1 IS NULL") is FALSE
    assert cond(sem, db, "NULL IS NOT NULL") is FALSE
    assert cond(sem, db, "1 IS NOT NULL") is TRUE


def test_connectives_follow_kleene(sem, db):
    assert cond(sem, db, "1 = NULL OR TRUE") is TRUE
    assert cond(sem, db, "1 = NULL OR FALSE") is UNKNOWN
    assert cond(sem, db, "1 = NULL AND FALSE") is FALSE
    assert cond(sem, db, "1 = NULL AND TRUE") is UNKNOWN
    assert cond(sem, db, "NOT 1 = NULL") is UNKNOWN


def test_in_true_when_match_exists(sem, schema, db):
    text = "1 IN (SELECT S.A FROM S)"
    condition = annotate_condition(text, schema)
    assert sem.eval_condition(condition, db, EMPTY_ENV) is TRUE


def annotate_condition(text, schema):
    """Annotate a condition by wrapping it in a query."""
    q = annotate(f"SELECT R.A FROM R WHERE {text}", schema)
    return q.where


def test_in_unknown_when_only_null_candidates(sem, schema, db):
    condition = annotate_condition("2 IN (SELECT S.A FROM S)", schema)
    assert sem.eval_condition(condition, db, EMPTY_ENV) is UNKNOWN


def test_in_false_on_empty_subquery(sem, schema, db):
    condition = annotate_condition(
        "2 IN (SELECT S.A FROM S WHERE FALSE)", schema
    )
    assert sem.eval_condition(condition, db, EMPTY_ENV) is FALSE


def test_not_in_is_negation(sem, schema, db):
    assert (
        sem.eval_condition(
            annotate_condition("2 NOT IN (SELECT S.A FROM S)", schema), db, EMPTY_ENV
        )
        is UNKNOWN
    )
    assert (
        sem.eval_condition(
            annotate_condition("1 NOT IN (SELECT S.A FROM S)", schema), db, EMPTY_ENV
        )
        is FALSE
    )


def test_in_arity_mismatch(sem, schema, db):
    condition = annotate_condition("(1, 2) IN (SELECT S.A FROM S)", schema)
    with pytest.raises(ArityMismatchError):
        sem.eval_condition(condition, db, EMPTY_ENV)


def test_exists_two_valued(sem, schema, db):
    assert (
        sem.eval_condition(
            annotate_condition("EXISTS (SELECT S.A FROM S)", schema), db, EMPTY_ENV
        )
        is TRUE
    )
    assert (
        sem.eval_condition(
            annotate_condition("EXISTS (SELECT S.A FROM S WHERE FALSE)", schema),
            db,
            EMPTY_ENV,
        )
        is FALSE
    )


def test_unknown_predicate_rejected(sem, db):
    with pytest.raises(CompileError):
        cond(sem, db, "frobnicate(1, 2)")


def test_type_clash_in_ordering(sem, db):
    with pytest.raises(CompileError):
        cond(sem, db, "1 < 'x'")


def test_cross_type_equality_is_false(sem, db):
    assert cond(sem, db, "1 = 'x'") is FALSE


# -- SELECT-FROM-WHERE (Figure 5) --------------------------------------------------


def test_base_table(sem, schema, db):
    t = run(sem, schema, db, "SELECT R.A, R.B FROM R")
    assert t.columns == ("A", "B")
    assert t.multiplicity((1, 2)) == 2


def test_where_keeps_only_true(sem, schema, db):
    """Rows where the condition is f or u are both discarded."""
    t = run(sem, schema, db, "SELECT R.B FROM R WHERE R.A = 1")
    assert sorted(t.bag) == [(2,), (2,)]  # (NULL,3) row gives u, dropped


def test_product_multiplicities(sem, schema, db):
    t = run(sem, schema, db, "SELECT R.A, S.A FROM R, S")
    assert len(t) == 8  # 4 rows × 2 rows
    assert t.multiplicity((1, 1)) == 2


def test_select_constants_and_null(sem, schema, db):
    t = run(sem, schema, db, "SELECT 7 AS X, NULL AS Y FROM S")
    assert t.multiplicity((7, NULL)) == 2


def test_distinct(sem, schema, db):
    t = run(sem, schema, db, "SELECT DISTINCT R.A FROM R")
    assert t.multiplicity((1,)) == 1
    assert len(t) == 3


def test_output_columns_renamed(sem, schema, db):
    t = run(sem, schema, db, "SELECT R.A AS X FROM R")
    assert t.columns == ("X",)


def test_duplicate_output_names_allowed(sem, schema, db):
    t = run(sem, schema, db, "SELECT R.A AS X, R.A AS X FROM R WHERE R.A = 1")
    assert t.columns == ("X", "X")
    assert t.multiplicity((1, 1)) == 2


def test_correlated_exists(sem, schema, db):
    t = run(
        sem,
        schema,
        db,
        "SELECT R.B FROM R WHERE EXISTS (SELECT S.A FROM S WHERE S.A = R.A)",
    )
    assert sorted(t.bag) == [(2,), (2,)]


def test_correlated_in(sem, schema, db):
    t = run(
        sem,
        schema,
        db,
        "SELECT R.A FROM R WHERE R.B IN (SELECT S.A FROM S WHERE S.A = R.A)",
    )
    assert t.is_empty()


def test_scope_shadowing(sem, schema):
    """An inner FROM with the same alias shadows the outer binding."""
    db = Database(schema, {"R": [(1, 10)], "S": [(1,), (2,)]})
    t = sem.run(
        annotate(
            "SELECT R.A FROM R WHERE EXISTS "
            "(SELECT X.A FROM S AS X WHERE X.A = 2)",
            schema,
        ),
        db,
    )
    assert len(t) == 1


def test_duplicate_from_alias_raises(sem, schema, db):
    from repro.sql.ast import FromItem, Select, SelectItem, TRUE_COND

    q = Select(
        (SelectItem(FullName("X", "A"), "A"),),
        (FromItem("R", "X"), FromItem("S", "X")),
        TRUE_COND,
    )
    with pytest.raises(DuplicateAliasError):
        sem.run(q, db)


def test_subquery_in_from(sem, schema, db):
    t = run(
        sem,
        schema,
        db,
        "SELECT U.X FROM (SELECT R.A AS X FROM R WHERE R.A = 1) AS U",
    )
    assert sorted(t.bag) == [(1,), (1,)]


def test_ambiguous_reference_raises_at_lookup(sem, schema, db):
    q = annotate(
        "SELECT T.A AS X FROM (SELECT R.A, R.A FROM R) AS T", schema
    )
    with pytest.raises(AmbiguousReferenceError):
        sem.run(q, db)


def test_from_items_evaluated_under_outer_env(sem, schema):
    """Correlated subqueries in FROM see the enclosing environment."""
    db = Database(schema, {"R": [(1, 2)], "S": [(1,), (3,)]})
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS "
        "(SELECT U.Y FROM (SELECT R.B AS Y FROM S) AS U WHERE U.Y = 2)",
        schema,
    )
    t = sem.run(q, db)
    assert len(t) == 1
