"""The exception hierarchy: classification the validation harness relies on."""

import pytest

from repro.core.errors import (
    AlgebraError,
    AmbiguousReferenceError,
    ArityMismatchError,
    CompileError,
    DuplicateAliasError,
    IllFormedExpressionError,
    NotDataManipulationError,
    ParseError,
    ReproError,
    SchemaError,
    UnboundReferenceError,
    UnknownTableError,
)


def test_everything_is_a_repro_error():
    for exc_type in (
        CompileError,
        ParseError,
        UnknownTableError,
        DuplicateAliasError,
        ArityMismatchError,
        UnboundReferenceError,
        AmbiguousReferenceError,
        AlgebraError,
        IllFormedExpressionError,
        SchemaError,
        NotDataManipulationError,
    ):
        assert issubclass(exc_type, ReproError)


def test_compile_error_family():
    """The classes real compilers reject statically."""
    for exc_type in (
        ParseError,
        UnknownTableError,
        DuplicateAliasError,
        ArityMismatchError,
        UnboundReferenceError,
    ):
        assert issubclass(exc_type, CompileError)


def test_ambiguity_is_not_a_plain_compile_error():
    """The harness matches ambiguity separately from other compile errors."""
    assert not issubclass(AmbiguousReferenceError, CompileError)


def test_algebra_errors():
    assert issubclass(IllFormedExpressionError, AlgebraError)


def test_parse_error_location_formatting():
    exc = ParseError("bad token", line=3, column=7)
    assert "line 3" in str(exc)
    assert "column 7" in str(exc)
    assert exc.line == 3 and exc.column == 7


def test_parse_error_without_location():
    exc = ParseError("bad token")
    assert str(exc) == "bad token"
    assert exc.line is None


def test_errors_are_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise AmbiguousReferenceError("x")
    with pytest.raises(ReproError):
        raise NotDataManipulationError("y")
