"""Checkpoint merging: the distributed layer's correctness foundation.

Records are keyed by seed and aggregation is order-independent, so
checkpoints written by different workers must compose into exactly the
single-machine aggregate: disjoint ranges concatenate, overlaps (a killed
worker's partial file plus the re-issued lease's complete one) deduplicate,
and records that *disagree* on a seed's outcome are corruption and must
refuse to merge.
"""

import json

import pytest

from repro.campaigns import (
    CHECKPOINT_SCHEMA,
    CampaignSpec,
    CheckpointConflict,
    merge_checkpoints,
    run_campaign,
    summarize_checkpoint,
    summarize_merged,
)

SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)
TRIALS = 45


@pytest.fixture(scope="module")
def serial_digest():
    return run_campaign(SPEC, trials=TRIALS, base_seed=0, jobs=1).outcome_digest


def worker_file(tmp_path, name, lo, hi):
    """What `repro work --seed-range lo:hi` produces: a sub-range checkpoint."""
    path = str(tmp_path / name)
    run_campaign(SPEC, trials=hi - lo, base_seed=lo, jobs=1, checkpoint=path)
    return path


def synthetic_file(path, records, base_seed=0, trials=4, spec=None):
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "spec": spec if spec is not None else SPEC.to_json(),
        "base_seed": base_seed,
        "trials": trials,
    }
    path.write_text(
        "\n".join(json.dumps(doc) for doc in [header] + records) + "\n"
    )
    return str(path)


def test_disjoint_worker_files_merge_to_single_machine_digest(
    tmp_path, serial_digest
):
    paths = [
        worker_file(tmp_path, f"w{i}.jsonl", lo, hi)
        for i, (lo, hi) in enumerate([(0, 15), (15, 30), (30, 45)])
    ]
    merged = merge_checkpoints(paths)
    assert merged.outcome_digest == serial_digest
    assert merged.completed == TRIALS
    assert merged.trials == TRIALS and merged.base_seed == 0
    assert merged.duplicates == 0


def test_overlapping_duplicates_are_deduped(tmp_path, serial_digest):
    a = worker_file(tmp_path, "a.jsonl", 0, 30)
    b = worker_file(tmp_path, "b.jsonl", 15, 45)
    merged = merge_checkpoints([a, b])
    assert merged.outcome_digest == serial_digest
    assert merged.completed == TRIALS
    assert merged.duplicates == 15  # seeds [15, 30) arrived twice


def test_conflicting_records_for_a_seed_raise(tmp_path):
    a = synthetic_file(
        tmp_path / "a.jsonl", [{"seed": 0, "code": 1}, {"seed": 1, "code": 1}]
    )
    b = synthetic_file(
        tmp_path / "b.jsonl", [{"seed": 1, "code": 3, "detail": "corrupt"}]
    )
    with pytest.raises(CheckpointConflict, match="seed 1"):
        merge_checkpoints([a, b])
    # Identical duplicate records are not a conflict.
    c = synthetic_file(tmp_path / "c.jsonl", [{"seed": 1, "code": 1}])
    assert merge_checkpoints([a, c]).duplicates == 1


def test_torn_trailing_line_is_skipped(tmp_path, serial_digest):
    """A kill mid-write leaves a torn last line; the overlap from another
    file supplies the missing seed and the merge still completes."""
    a = worker_file(tmp_path, "a.jsonl", 0, 30)
    with open(a) as handle:
        lines = handle.readlines()
    with open(a, "w") as handle:
        handle.writelines(lines[:-1])
        handle.write(lines[-1][: len(lines[-1]) // 2])  # torn record: seed 29
    b = worker_file(tmp_path, "b.jsonl", 25, 45)
    merged = merge_checkpoints([a, b])
    assert merged.completed == TRIALS
    assert merged.outcome_digest == serial_digest


def test_torn_line_without_cover_stays_pending(tmp_path):
    a = worker_file(tmp_path, "a.jsonl", 0, 10)
    with open(a) as handle:
        lines = handle.readlines()
    with open(a, "w") as handle:
        handle.writelines(lines[:-1])
        handle.write(lines[-1][:10])
    header, aggregator = summarize_merged([a])
    assert aggregator.completed == 9
    assert aggregator.pending_seeds() == [9]


def test_merged_file_roundtrips_through_summarize(tmp_path, serial_digest):
    paths = [
        worker_file(tmp_path, "a.jsonl", 0, 20),
        worker_file(tmp_path, "b.jsonl", 20, 45),
    ]
    out = str(tmp_path / "merged.jsonl")
    merged = merge_checkpoints(paths, merged_path=out)
    header, aggregator = summarize_checkpoint(out)
    assert header["merged_from"] == 2
    assert aggregator.finalize().outcome_digest == merged.outcome_digest
    assert merged.outcome_digest == serial_digest
    # Merged files merge again (idempotent).
    assert merge_checkpoints([out]).outcome_digest == serial_digest


def test_spec_mismatch_refuses_to_merge(tmp_path):
    a = synthetic_file(tmp_path / "a.jsonl", [{"seed": 0, "code": 1}])
    other = CampaignSpec(kind="validation", variant="oracle", rows=3)
    b = synthetic_file(
        tmp_path / "b.jsonl", [{"seed": 1, "code": 1}], spec=other.to_json()
    )
    with pytest.raises(ValueError, match="spec"):
        merge_checkpoints([a, b])


def test_explicit_span_keeps_uncovered_seeds_pending(tmp_path):
    a = worker_file(tmp_path, "a.jsonl", 0, 10)
    merged = merge_checkpoints([a], base_seed=0, trials=20)
    assert merged.trials == 20
    assert merged.completed == 10  # the missing half is visible, not absorbed


def test_merge_rejects_empty_missing_and_headerless(tmp_path):
    with pytest.raises(ValueError):
        merge_checkpoints([])
    with pytest.raises(ValueError, match="no such"):
        merge_checkpoints([str(tmp_path / "nope.jsonl")])
    junk = tmp_path / "junk.jsonl"
    junk.write_text('{"seed": 0, "code": 1}\n')
    with pytest.raises(ValueError, match="header"):
        merge_checkpoints([str(junk)])
