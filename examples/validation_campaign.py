"""A miniature of the paper's Section 4 experiment.

Generates random queries over the fixed schema R1..R8 (Ri has i+1 int
attributes) with the paper's generator parameters (tables=6, nest=3, attr=3,
cond=8), a random database per query, and compares the formal semantics
against the independent reference engine — once per variant:

* postgres: compositional-star semantics vs positional-star engine;
* oracle:   standard semantics (+ compile check) vs name-based-star engine.

The paper ran 100,000 queries per variant and observed full agreement;
adjust TRIALS below (or pass a number as argv[1]) to scale.

Run:  python examples/validation_campaign.py [trials]
"""

import sys

from repro.generator import DataFillerConfig
from repro.validation import ValidationRunner, format_campaigns

TRIALS = int(sys.argv[1]) if len(sys.argv) > 1 else 250

reports = []
for variant in ("postgres", "oracle"):
    runner = ValidationRunner(
        variant=variant, data_config=DataFillerConfig(max_rows=6)
    )
    print(f"running {TRIALS} trials against the {variant} variant ...")
    report = runner.run(trials=TRIALS, base_seed=0)
    reports.append(report)
    for mismatch in report.mismatches:
        print(runner.explain(mismatch))

print()
print(format_campaigns(reports))
print(
    "\n'both-error' counts queries where BOTH the Oracle-adjusted semantics\n"
    "and the oracle-dialect engine rejected the query as ambiguous — the\n"
    "agreement-via-matching-errors class the paper reports for Oracle."
)
assert all(r.agreements == r.trials for r in reports), "disagreement found!"
print("\nAll trials agree — the Section 4 result reproduces.")
