"""Certain and possible answers over databases with SQL nulls.

Section 8 of the paper lists as future work "the extension of recent
attempts [17] to restore correctness of SQL query evaluation with
incomplete data … Now we have the formal tools to extend the notions of
certainty and possibility to handle SQL's nulls."  This module is a small
executable take on that direction, in the style of Guagliardo & Libkin's
PODS 2016 feasibility study:

* a database with NULLs represents the set of *complete* databases obtained
  by replacing each null occurrence with a constant (each occurrence is
  independent — Codd semantics);
* the **certain answers** of Q are the rows returned on *every* completion,
  the **possible answers** those returned on *some* completion;
* exact computation enumerates valuations (exponential — feasible only for
  tiny instances, and used here as ground truth);
* SQL evaluation itself gives cheap approximations:

  - :func:`approximate_certain` — evaluate under the paper's 3VL semantics
    and keep null-free rows.  For *positive* queries (no NOT / NOT IN /
    EXCEPT) this has **no false positives** (it under-approximates certain
    answers) — the correctness property the 2016 paper restores;
  - :func:`approximate_possible` — keep rows whose WHERE condition is t
    *or u*, computed by rewriting θ to ¬(θᶠ) with the Figure 10 machinery
    and evaluating under the two-valued semantics.

The test suite checks the soundness inclusion
``approximate_certain ⊆ exact_certain`` on random positive queries, and
exhibits the classical false-positive for queries with negation.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Set, Tuple, Union

from ..core.bag import Bag
from ..core.schema import Database, Schema
from ..core.table import Table
from ..core.values import NULL, Constant, Null, Record
from ..semantics.evaluator import SqlSemantics
from ..semantics.two_valued import TwoValuedTranslator
from ..sql.annotate import annotate
from ..sql.ast import (
    And,
    Condition,
    Exists,
    InQuery,
    Not,
    Or,
    Query,
    Select,
    SetOp,
)

__all__ = [
    "valuations",
    "exact_certain_answers",
    "exact_possible_answers",
    "approximate_certain",
    "approximate_possible",
    "is_positive",
    "count_nulls",
]


def _as_query(query: Union[str, Query], schema: Schema) -> Query:
    if isinstance(query, str):
        return annotate(query, schema)
    return query


def count_nulls(db: Database) -> int:
    """Number of null *occurrences* in the instance."""
    return sum(
        sum(1 for row in db.table(name).bag for v in row if isinstance(v, Null))
        for name in db.schema.table_names
    )


def valuations(db: Database, domain: Sequence[Constant]) -> Iterable[Database]:
    """All completions of ``db`` over ``domain`` (Codd nulls: occurrences
    are independent).  |domain| ** count_nulls(db) databases — keep tiny."""
    schema = db.schema
    positions = count_nulls(db)
    for assignment in itertools.product(domain, repeat=positions):
        values = iter(assignment)
        tables = {}
        for name in schema.table_names:
            rows: List[Record] = []
            for row in db.table(name).bag:
                rows.append(
                    tuple(next(values) if isinstance(v, Null) else v for v in row)
                )
            tables[name] = rows
        yield Database(schema, tables)


def _answer_set(table: Table) -> Set[Record]:
    return set(table.bag.distinct())


def exact_certain_answers(
    query: Union[str, Query],
    db: Database,
    domain: Sequence[Constant],
    semantics: SqlSemantics | None = None,
) -> Set[Record]:
    """Rows returned on *every* completion (ground truth, exponential)."""
    q = _as_query(query, db.schema)
    sem = semantics if semantics is not None else SqlSemantics(db.schema)
    result: Set[Record] | None = None
    for completion in valuations(db, domain):
        answers = _answer_set(sem.run(q, completion))
        result = answers if result is None else (result & answers)
        if not result:
            return set()
    return result if result is not None else set()


def exact_possible_answers(
    query: Union[str, Query],
    db: Database,
    domain: Sequence[Constant],
    semantics: SqlSemantics | None = None,
) -> Set[Record]:
    """Rows returned on *some* completion (ground truth, exponential)."""
    q = _as_query(query, db.schema)
    sem = semantics if semantics is not None else SqlSemantics(db.schema)
    result: Set[Record] = set()
    for completion in valuations(db, domain):
        result |= _answer_set(sem.run(q, completion))
    return result


def approximate_certain(
    query: Union[str, Query], db: Database, semantics: SqlSemantics | None = None
) -> Set[Record]:
    """SQL evaluation as a certain-answer approximation.

    Evaluate under the 3VL semantics and keep the rows without nulls.  For
    positive queries this is *sound*: every returned row is a certain
    answer (with nulls valued arbitrarily, a kept row re-appears because
    positive conditions are monotone in the information order).
    """
    q = _as_query(query, db.schema)
    sem = semantics if semantics is not None else SqlSemantics(db.schema)
    return {
        row
        for row in sem.run(q, db).bag.distinct()
        if not any(isinstance(v, Null) for v in row)
    }


def approximate_possible(
    query: Union[str, Query], db: Database
) -> Set[Record]:
    """Rows whose WHERE conditions are t or u: a possibility approximation.

    Uses the Figure 10 machinery: replacing each condition θ by ¬(θᶠ) keeps
    a row unless θ is definitely false, evaluated under the two-valued
    conflating semantics.
    """
    q = _as_query(query, db.schema)
    schema = db.schema
    translator = TwoValuedTranslator(schema, "conflating")
    translator._supply = None  # reset; translate_query would do this
    rewritten = _possible_query(q, translator)
    sem = SqlSemantics(schema, logic=translator.logic)
    return set(sem.run(rewritten, db).bag.distinct())


def _possible_query(query: Query, translator: TwoValuedTranslator) -> Query:
    from ..semantics.two_valued import _NameSupply, _collect_names

    if translator._supply is None:
        translator._supply = _NameSupply(_collect_names(query, translator.schema))
    if isinstance(query, SetOp):
        return SetOp(
            query.op,
            _possible_query(query.left, translator),
            _possible_query(query.right, translator),
            all=query.all,
        )
    assert isinstance(query, Select)
    from ..sql.ast import FromItem

    from_items = tuple(
        item
        if item.is_base_table
        else FromItem(
            _possible_query(item.table, translator), item.alias, item.column_aliases
        )
        for item in query.from_items
    )
    where = Not(translator.translate_f(query.where))
    return Select(query.items, from_items, where, distinct=query.distinct)


def is_positive(query: Union[str, Query], schema: Schema) -> bool:
    """Whether the query avoids negation (NOT, NOT IN, EXCEPT, FALSE-free
    negative atoms) — the fragment where :func:`approximate_certain` is
    sound."""
    q = _as_query(query, schema)
    return _positive_query(q)


def _positive_query(query: Query) -> bool:
    if isinstance(query, SetOp):
        if query.op == "EXCEPT":
            return False
        return _positive_query(query.left) and _positive_query(query.right)
    assert isinstance(query, Select)
    for item in query.from_items:
        if not item.is_base_table and not _positive_query(item.table):
            return False
    return _positive_condition(query.where)


def _positive_condition(condition: Condition) -> bool:
    if isinstance(condition, Not):
        return False
    if isinstance(condition, InQuery):
        return not condition.negated and _positive_query(condition.query)
    if isinstance(condition, Exists):
        return _positive_query(condition.query)
    if isinstance(condition, (And, Or)):
        return _positive_condition(condition.left) and _positive_condition(
            condition.right
        )
    from ..sql.ast import IsNull

    if isinstance(condition, IsNull):
        # t IS NULL is not monotone under valuations; exclude both forms.
        return False
    return True
