"""Quickstart: evaluate SQL under the paper's formal semantics.

Reproduces Example 1 of the paper — three queries that textbooks treat as
equivalent ways of computing R − S, and that disagree on databases with
NULLs:

    Q1  uses NOT IN,
    Q2  rewrites NOT IN as NOT EXISTS (the classic, *wrong* translation),
    Q3  uses EXCEPT.

Run:  python examples/quickstart.py
"""

from repro import NULL, Database, Schema, SqlSemantics, annotate, print_query

# 1. Declare a schema and a database instance.  R = {1, NULL}, S = {NULL}.
schema = Schema({"R": ("A",), "S": ("A",)})
db = Database(schema, {"R": [(1,), (NULL,)], "S": [(NULL,)]})

# 2. Parse + annotate queries (the paper's "fully annotated" normal form).
queries = {
    "Q1 (NOT IN)": "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
    "Q2 (NOT EXISTS)": (
        "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS "
        "(SELECT * FROM S WHERE S.A = R.A)"
    ),
    "Q3 (EXCEPT)": "SELECT R.A FROM R EXCEPT SELECT S.A FROM S",
}

# 3. Evaluate with the formal semantics of Figures 4-7.
semantics = SqlSemantics(schema)

print("Database: R = {1, NULL}, S = {NULL}\n")
for name, text in queries.items():
    query = annotate(text, schema)
    result = semantics.run(query, db)
    print(f"{name}:")
    print(f"  annotated: {print_query(query)}")
    print(result.pretty())
    print()

print(
    "All three are 'difference' queries, yet they return three different\n"
    "answers (∅, {1, NULL}, {1}) — the basic observation that motivates a\n"
    "formal semantics faithful to SQL's bag semantics and 3-valued logic."
)
