"""Per-trial timing percentiles and the ``repro report`` checkpoint renderer."""

import json

import pytest

from repro.campaigns import (
    Aggregator,
    CampaignSpec,
    run_campaign,
    summarize_checkpoint,
)
from repro.campaigns.aggregate import percentile
from repro.cli import main

SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)


# -- percentiles --------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(values, 0.50) == 5.0
    assert percentile(values, 0.95) == 10.0
    assert percentile([], 0.5) == 0.0
    assert percentile([7.5], 0.99) == 7.5


def test_aggregator_collects_ms_and_ignores_garbage():
    aggregator = Aggregator("x", 0, 3)
    aggregator.add({"seed": 0, "code": 1, "ms": 2.0})
    aggregator.add({"seed": 1, "code": 1, "ms": "fast"})  # malformed: skipped
    aggregator.add({"seed": 2, "code": 1})  # legacy record without timing
    result = aggregator.finalize()
    assert result.completed == 3
    assert result.timing_ms["p50"] == 2.0


def test_campaign_results_carry_timing_percentiles():
    result = run_campaign(SPEC, trials=25, base_seed=0, jobs=1)
    assert set(result.timing_ms) == {"p50", "p95", "p99"}
    assert 0 < result.timing_ms["p50"] <= result.timing_ms["p99"]
    assert "p50=" in result.summary()
    assert result.to_json()["timing_ms"] == result.timing_ms


# -- checkpoint summarization -------------------------------------------------


def test_summarize_checkpoint_matches_live_run(tmp_path):
    path = str(tmp_path / "c.jsonl")
    live = run_campaign(SPEC, trials=30, base_seed=10, jobs=1, checkpoint=path)
    header, aggregator = summarize_checkpoint(path)
    summarized = aggregator.finalize()
    assert header["base_seed"] == 10
    assert summarized.outcome_digest == live.outcome_digest
    assert summarized.completed == 30
    assert summarized.timing_ms  # ms fields round-tripped through the file
    assert not aggregator.pending_seeds()


def test_summarize_checkpoint_reports_pending(tmp_path):
    path = str(tmp_path / "c.jsonl")
    run_campaign(SPEC, trials=10, base_seed=0, jobs=1, checkpoint=path)
    with open(path) as handle:
        lines = handle.readlines()
    with open(path, "w") as handle:
        handle.writelines(lines[:6])  # header + 5 records
    _header, aggregator = summarize_checkpoint(path)
    assert aggregator.completed == 5
    assert len(aggregator.pending_seeds()) == 5


def test_summarize_checkpoint_rejects_headerless_file(tmp_path):
    path = tmp_path / "junk.jsonl"
    path.write_text('{"seed": 0, "code": 1}\n')
    with pytest.raises(ValueError):
        summarize_checkpoint(str(path))


# -- the report command -------------------------------------------------------


def test_report_command_renders_checkpoint(tmp_path, capsys):
    path = str(tmp_path / "c.jsonl")
    live = run_campaign(SPEC, trials=20, base_seed=0, jobs=2, checkpoint=path)
    assert main(["report", path]) == 0
    out = capsys.readouterr().out
    assert live.outcome_digest in out
    assert "20 recorded, 0 pending" in out
    assert "latency: p50=" in out
    assert "rate 100.0000%" in out


def test_report_command_exits_nonzero_on_mismatch(tmp_path, capsys):
    path = tmp_path / "c.jsonl"
    header = {
        "schema": "campaign-checkpoint/v1",
        "spec": {"kind": "validation", "variant": "postgres"},
        "base_seed": 0,
        "trials": 2,
    }
    records = [
        {"seed": 0, "code": 1, "ms": 1.0},
        {"seed": 1, "code": 3, "detail": "seed 1: engine disagrees", "ms": 2.0},
    ]
    path.write_text(
        "\n".join(json.dumps(doc) for doc in [header] + records) + "\n"
    )
    assert main(["report", str(path)]) == 1
    captured = capsys.readouterr()
    assert "1 mismatch" in captured.out
    assert "seed 1: engine disagrees" in captured.err


def test_report_command_rejects_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", str(tmp_path / "nope.jsonl")])
