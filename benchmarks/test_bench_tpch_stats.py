"""Experiment TPCH (Section 4): the TPC-H statistics behind the generator.

Paper claims: eight base tables; each query uses 3.2 tables on average; all
but one use 6 or fewer; only three queries use more than 8 WHERE conditions;
no query exceeds 3 levels of nesting.  These motivated the generator
parameters tables=6, nest=3, attr=3, cond=8.
"""

from repro.generator.tpch import TPCH_QUERY_STATS, tpch_schema, tpch_statistics
from repro.validation.report import format_table

from .conftest import print_banner


def test_bench_tpch_stats(benchmark):
    stats = benchmark.pedantic(tpch_statistics, rounds=1, iterations=1)
    print_banner("TPCH — Section 4: TPC-H structural statistics")
    per_query = [
        (name, len(s.tables), s.conditions, s.nesting)
        for name, s in TPCH_QUERY_STATS.items()
    ]
    print(format_table(("query", "tables", "conditions", "nesting"), per_query))
    print(
        format_table(
            ("statistic", "paper", "measured"),
            [
                ("base tables", 8, stats["base_tables"]),
                ("avg tables/query", "3.2", f"{stats['avg_tables_per_query']:.2f}"),
                (
                    "queries using > 6 tables",
                    1,
                    stats["queries_with_more_than_6_tables"],
                ),
                (
                    "queries with > 8 conditions",
                    3,
                    stats["queries_with_more_than_8_conditions"],
                ),
                ("max nesting", 3, stats["max_nesting"]),
            ],
        )
    )
    assert stats["base_tables"] == 8
    assert abs(stats["avg_tables_per_query"] - 3.2) < 0.15
    assert stats["queries_with_more_than_6_tables"] == 1
    assert stats["queries_with_more_than_8_conditions"] == 3
    assert stats["max_nesting"] == 3
    assert len(tpch_schema().table_names) == 8
