"""Streaming JSONL checkpoints: durable, resumable campaign state.

Format (``campaign-checkpoint/v1``)
-----------------------------------

A checkpoint is a line-oriented JSON file.  The first line is a header::

    {"schema": "campaign-checkpoint/v1", "spec": {...}, "base_seed": 0,
     "trials": 100000}

where ``spec`` is the :class:`~repro.campaigns.backends.CampaignSpec` that
produced the records.  Every subsequent line is one trial record::

    {"seed": 17, "code": 1}
    {"seed": 18, "code": 3, "detail": "seed 18: ..."}

Records are appended as soon as their shard completes and the file is
flushed after every shard, so a killed campaign loses at most the shard in
flight.  Readers are deliberately forgiving: a truncated final line (the
kill arrived mid-write) and duplicate seeds (a shard re-run after resume)
are both skipped — seeds are idempotent, so any record for a seed equals
any other.

Resuming (:func:`repro.campaigns.run_campaign` with ``resume=True``) loads
the records, verifies the header matches the requested spec and base seed,
folds the completed seeds into the aggregate, and only runs what is left.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointWriter",
    "load_checkpoint",
    "summarize_checkpoint",
]

CHECKPOINT_SCHEMA = "campaign-checkpoint/v1"


class CheckpointWriter:
    """Append-only JSONL writer with a one-line header for fresh files."""

    def __init__(self, path: str, header: Dict[str, object], fresh: bool):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if fresh or not os.path.exists(path):
            self._handle = open(path, "w")
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self._handle.flush()
        else:
            # A kill mid-write can leave a torn final line without a
            # newline; terminate it so the first appended record does not
            # merge into it (the torn fragment stays skippable garbage).
            with open(path, "rb") as existing:
                size = existing.seek(0, os.SEEK_END)
                if size > 0:
                    existing.seek(-1, os.SEEK_END)
                    needs_newline = existing.read(1) != b"\n"
                else:
                    needs_newline = False
            self._handle = open(path, "a")
            if needs_newline:
                self._handle.write("\n")
                self._handle.flush()

    def write_records(self, records: Iterable[Dict[str, object]]) -> None:
        for record in records:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_checkpoint(
    path: str,
) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
    """Read ``(header, records)`` from a checkpoint file.

    Returns ``(None, [])`` when the file does not exist.  Unparsable lines
    (for example the torn last line of a killed run) are skipped; lines
    without an integer ``seed`` and ``code`` are ignored as malformed.
    """
    if not os.path.exists(path):
        return None, []
    header: Optional[Dict[str, object]] = None
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if i == 0 and isinstance(payload, dict) and "schema" in payload:
                header = payload
                continue
            if (
                isinstance(payload, dict)
                and isinstance(payload.get("seed"), int)
                and isinstance(payload.get("code"), int)
            ):
                records.append(payload)
    return header, records


def summarize_checkpoint(path: str):
    """``(header, Aggregator)`` for an existing checkpoint, no re-running.

    Folds every record of the file into a fresh
    :class:`~repro.campaigns.aggregate.Aggregator`, exactly as a resumed
    campaign would — so the digest, counts and latency percentiles equal
    the live run's for a complete checkpoint, and ``pending_seeds()``
    tells how much of an interrupted one is missing.  Raises
    :class:`ValueError` when the file is missing or has no header line.
    """
    from .aggregate import Aggregator

    if not os.path.exists(path):
        raise ValueError(f"{path}: no such checkpoint file")
    header, records = load_checkpoint(path)
    if header is None:
        raise ValueError(
            f"{path}: not a campaign checkpoint (no {CHECKPOINT_SCHEMA} header)"
        )
    spec = header.get("spec") or {}
    label = (
        spec.get("variant")
        if spec.get("kind") == "validation"
        else spec.get("kind") or spec.get("label")
    ) or "campaign"
    base_seed = int(header.get("base_seed", 0))
    trials = int(header.get("trials", len(records)))
    aggregator = Aggregator(label, base_seed, trials)
    for record in records:
        aggregator.add(record)
    return header, aggregator
