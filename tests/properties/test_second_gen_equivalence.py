"""Differential property tests for the second-generation optimizer.

The paper's methodology again, aimed at the new rewrites: on ≥500 random
query/database pairs per dialect variant — drawn from a generator mix
tilted toward set operations, multi-table FROM clauses and subqueries —
the fully-optimized engine, each single-ablation engine
(``reorder_joins=False`` / ``hash_setops=False``), and the naive
``optimize=False`` engine must produce the same bag (columns, rows,
multiplicities) or the same error class.  A cache-stress battery re-runs
a prefix of the workload through one engine twice (plan cache + build-side
cache hot) and demands bit-identical outcomes.
"""

import random
from dataclasses import replace

import pytest

from repro.core import validation_schema
from repro.engine import DIALECT_ORACLE, DIALECT_POSTGRES, Engine
from repro.generator import (
    DataFillerConfig,
    PAPER_CONFIG,
    QueryGenerator,
    fill_database,
)
from repro.validation.compare import capture

SCHEMA = validation_schema()
TRIALS = 500
DATA = DataFillerConfig(max_rows=5)

#: PAPER_CONFIG with the second-generation rewrites' constructs boosted.
SECOND_GEN_CONFIG = replace(
    PAPER_CONFIG,
    setop_probability=0.45,
    from_subquery_probability=0.35,
    where_subquery_probability=0.35,
    correlation_probability=0.5,
)

DIALECTS = [DIALECT_POSTGRES, DIALECT_ORACLE]


def _pair(seed):
    rng = random.Random(seed)
    query = QueryGenerator(SCHEMA, SECOND_GEN_CONFIG, rng).generate()
    db = fill_database(SCHEMA, rng, DATA)
    return query, db


@pytest.mark.parametrize("dialect", DIALECTS)
def test_second_gen_and_ablations_coincide_with_naive(dialect):
    engines = {
        "second-gen": Engine(SCHEMA, dialect),
        "no-reorder": Engine(
            SCHEMA, dialect, optimizer_options={"reorder_joins": False}
        ),
        "no-hash-setops": Engine(
            SCHEMA, dialect, optimizer_options={"hash_setops": False}
        ),
        "naive": Engine(SCHEMA, dialect, optimize=False),
    }
    failures = []
    for seed in range(TRIALS):
        query, db = _pair(seed)
        outcomes = {
            name: capture(lambda e=engine: e.execute(query, db))
            for name, engine in engines.items()
        }
        baseline = outcomes["naive"]
        for name, outcome in outcomes.items():
            # Same error class and same bag: the generated workload is
            # type-checked over int-only data, so no data-dependent runtime
            # error order is in play and full error equality must hold.
            if outcome.error != baseline.error or not outcome.agrees_with(baseline):
                failures.append(f"seed {seed}: {name} differs from naive")
    assert not failures, "; ".join(failures[:5])


@pytest.mark.parametrize("dialect", DIALECTS)
def test_hot_caches_do_not_change_outcomes(dialect):
    """Second pass over the same pairs: every plan comes from the plan
    cache and every shareable build side from the build cache — outcomes
    must match the cold pass exactly."""
    engine = Engine(SCHEMA, dialect)
    # Few enough pairs that the shareable structures fit the build cache
    # (a sequential working set larger than the LRU would never re-hit).
    # Sharing engages from the second bind, so pass 2 harvests and pass 3
    # runs with both the plan cache and the build-side cache fully hot.
    pairs = [_pair(seed) for seed in range(40)]
    cold = [capture(lambda: engine.execute(q, db)) for q, db in pairs]
    [capture(lambda: engine.execute(q, db)) for q, db in pairs]
    hot = [capture(lambda: engine.execute(q, db)) for q, db in pairs]
    assert engine.build_cache_info()["hits"] > 0
    for seed, (a, b) in enumerate(zip(cold, hot)):
        assert a.error == b.error and a.agrees_with(b), f"seed {seed} changed"
