"""Executable formal semantics: Figures 4-7, logic strategies, Section 6."""

from .evaluator import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from .logic import (
    THREE_VALUED,
    TWO_VALUED_CONFLATING,
    TWO_VALUED_SYNTACTIC,
    Logic,
    ThreeValued,
    TwoValuedConflating,
    TwoValuedSyntactic,
    get_logic,
)
from .predicates import PredicateRegistry, default_registry, sql_like
from .trace import TraceNode, TracingSemantics, format_trace
from .two_valued import EQUALITY_MODES, TwoValuedTranslator, to_three_valued

__all__ = [
    "SqlSemantics",
    "STAR_STANDARD",
    "STAR_COMPOSITIONAL",
    "Logic",
    "ThreeValued",
    "TwoValuedConflating",
    "TwoValuedSyntactic",
    "THREE_VALUED",
    "TWO_VALUED_CONFLATING",
    "TWO_VALUED_SYNTACTIC",
    "get_logic",
    "PredicateRegistry",
    "default_registry",
    "sql_like",
    "TwoValuedTranslator",
    "to_three_valued",
    "EQUALITY_MODES",
    "TracingSemantics",
    "TraceNode",
    "format_trace",
]
