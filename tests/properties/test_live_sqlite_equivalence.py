"""Property battery: 500 seeds per dialect variant against live SQLite over
the ingested FK-rich fixture.  Any *unclassified* disagreement between the
repository's implementations and SQLite is a failure; classified dialect
divergences are expected and merely counted."""

from collections import Counter
from pathlib import Path

import pytest

from repro.campaigns.backends import CODE_CLASSIFIED, CODE_MISMATCH
from repro.ingest import import_scenario
from repro.validation.live import DIVERGENCE_CLASSES, LiveSqliteRunner

FIXTURE = str(Path(__file__).resolve().parent.parent / "fixtures" / "library.sql")

SEEDS = 500


@pytest.mark.parametrize("variant", ["postgres", "oracle"])
def test_live_sqlite_battery(variant):
    scenario = import_scenario(FIXTURE)
    runner = LiveSqliteRunner(scenario, variant=variant)
    mismatches = []
    classified = Counter()
    try:
        for seed in range(SEEDS):
            record = runner.run_trial(seed)
            if record["code"] == CODE_MISMATCH:
                mismatches.append((seed, record.get("detail", "")))
            elif record["code"] == CODE_CLASSIFIED:
                classified[record["class"]] += 1
    finally:
        runner.close()
    assert not mismatches, (
        f"{len(mismatches)} unclassified divergence(s) under {variant}; "
        f"first: seed {mismatches[0][0]}: {mismatches[0][1]}"
    )
    # Only registered classes ever appear, and the battery is wide enough
    # that at least one classified divergence shows up.
    assert set(classified) <= set(DIVERGENCE_CLASSES)
    assert sum(classified.values()) > 0
