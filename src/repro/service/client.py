"""Asyncio client for the query service.

:class:`ServiceClient` holds one keep-alive HTTP/1.1 connection per
instance (request pipelined serially per client; concurrency = many
clients, which is exactly how the bench's N-client load generator and the
concurrency battery use it).  Responses come back either as a plain JSON
object or — for ``/execute`` and ``/query`` — as the service's chunked
newline-delimited JSON stream, which :meth:`_read_stream` folds into a
:class:`ResultSet`.

``query_once`` / ``request_once`` are blocking conveniences for the CLI:
one connection, one request, one ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from .protocol import rows_from_json
from .transport import AUTH_HEADER

__all__ = ["ServiceClient", "ServiceError", "ResultSet", "request_once", "query_once"]


class ServiceError(Exception):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class ResultSet:
    """A fully received streamed result."""

    labels: List[str] = field(default_factory=list)
    rows: List[list] = field(default_factory=list)
    row_count: int = 0

    def records(self) -> List[tuple]:
        """Rows as engine records (JSON null back to NULL)."""
        return rows_from_json(self.rows)


class ServiceClient:
    """One keep-alive connection to a :class:`~repro.service.server.QueryService`."""

    def __init__(self, url: str, secret: Optional[str] = None, tenant: Optional[str] = None):
        parts = urlsplit(url)
        if parts.hostname is None or parts.port is None:
            raise ValueError(f"service url needs host and port: {url!r}")
        self.host = parts.hostname
        self.port = parts.port
        self.secret = secret
        self.tenant = tenant
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    # -- request plumbing ----------------------------------------------------

    def _payload(self, payload: Optional[dict]) -> Optional[dict]:
        if payload is not None and self.tenant is not None:
            payload = {"tenant": self.tenant, **payload}
        return payload

    async def _send_request(self, method: str, path: str, payload: Optional[dict]) -> None:
        await self.connect()
        assert self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        if self.secret:
            head.append(f"{AUTH_HEADER}: {self.secret}")
        if body:
            head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
        request = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        self._writer.write(request)
        await self._writer.drain()

    async def _read_head(self) -> Tuple[int, Dict[str, str]]:
        assert self._reader is not None
        try:
            head = await self._reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError("service closed the connection") from exc
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if line:
                name, _sep, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_body(self, headers: Dict[str, str]) -> bytes:
        assert self._reader is not None
        if (headers.get("transfer-encoding") or "").lower() == "chunked":
            chunks = []
            while True:
                size_line = await self._reader.readline()
                size = int(size_line.split(b";", 1)[0], 16)
                if size == 0:
                    await self._reader.readline()
                    break
                chunks.append(await self._reader.readexactly(size))
                await self._reader.readline()
            return b"".join(chunks)
        length = int(headers.get("content-length") or 0)
        return await self._reader.readexactly(length) if length else b""

    async def _request_json(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        await self._send_request(method, path, self._payload(payload))
        status, headers = await self._read_head()
        body = await self._read_body(headers)
        reply = json.loads(body.decode() or "{}")
        if status != 200:
            raise ServiceError(status, str(reply.get("error", body.decode())))
        return reply

    async def _request_stream(self, path: str, payload: dict) -> ResultSet:
        """POST and fold the NDJSON stream; plain-JSON errors raise."""
        await self._send_request("POST", path, self._payload(payload))
        status, headers = await self._read_head()
        if status != 200 or "ndjson" not in (headers.get("content-type") or ""):
            body = await self._read_body(headers)
            reply = json.loads(body.decode() or "{}")
            raise ServiceError(status, str(reply.get("error", body.decode())))
        assert self._reader is not None
        result = ResultSet()
        # Chunk boundaries and line boundaries are independent: reassemble
        # lines across chunks before decoding.
        pending = b""
        aborted: Optional[str] = None
        done = False
        while True:
            try:
                size_line = await self._reader.readline()
                if not size_line.strip():
                    raise ConnectionError("service dropped the stream")
                size = int(size_line.split(b";", 1)[0], 16)
                if size == 0:
                    await self._reader.readline()
                    break
                pending += await self._reader.readexactly(size)
                await self._reader.readline()
            except asyncio.IncompleteReadError as exc:
                raise ConnectionError("service dropped mid-chunk") from exc
            while b"\n" in pending:
                line, pending = pending.split(b"\n", 1)
                if not line.strip():
                    continue
                obj = json.loads(line.decode())
                if "labels" in obj:
                    result.labels = obj["labels"]
                elif "rows" in obj:
                    result.rows.extend(obj["rows"])
                elif obj.get("done"):
                    result.row_count = obj["row_count"]
                    done = True
                elif "error" in obj:
                    # The server's abort trailer: the stream ended early
                    # on purpose (deadline, drain, injected drop).
                    aborted = str(obj["error"])
        if aborted is not None:
            raise ServiceError(200, f"stream aborted: {aborted}")
        if not done:
            # The terminator arrived without a done trailer: the stream
            # was cut mid-flight; never hand back a short result as
            # complete.
            raise ConnectionError("stream ended without a done trailer")
        return result

    # -- API -----------------------------------------------------------------

    async def health(self) -> dict:
        return await self._request_json("GET", "/health")

    async def stats(self) -> dict:
        return await self._request_json("GET", "/stats")

    async def load(self, schema: Dict[str, list], tables: Dict[str, list], name: str = "default") -> dict:
        return await self._request_json(
            "POST", "/load", {"name": name, "schema": schema, "tables": tables}
        )

    async def prepare(self, sql: str, database: Optional[str] = None) -> str:
        payload: dict = {"sql": sql}
        if database is not None:
            payload["database"] = database
        reply = await self._request_json("POST", "/prepare", payload)
        return reply["statement"]

    async def execute(
        self,
        statement: str,
        params: Optional[list] = None,
        database: Optional[str] = None,
    ) -> ResultSet:
        payload: dict = {"statement": statement, "params": params or []}
        if database is not None:
            payload["database"] = database
        return await self._request_stream("/execute", payload)

    async def query(self, sql: str, database: Optional[str] = None) -> ResultSet:
        payload: dict = {"sql": sql}
        if database is not None:
            payload["database"] = database
        return await self._request_stream("/query", payload)


# -- blocking conveniences for the CLI --------------------------------------


def request_once(
    url: str,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    secret: Optional[str] = None,
    tenant: Optional[str] = None,
) -> dict:
    """One blocking JSON request on a fresh connection."""

    async def go() -> dict:
        async with ServiceClient(url, secret=secret, tenant=tenant) as client:
            return await client._request_json(method, path, payload)

    return asyncio.run(go())


def query_once(
    url: str,
    sql: str,
    params: Optional[list] = None,
    secret: Optional[str] = None,
    tenant: Optional[str] = None,
    database: Optional[str] = None,
    prepare: bool = False,
) -> ResultSet:
    """One blocking query on a fresh connection.

    With ``prepare=True`` (or any ``params``), the statement is prepared
    first and executed through the prepared path; otherwise it takes the
    ad-hoc ``/query`` path.
    """

    async def go() -> ResultSet:
        async with ServiceClient(url, secret=secret, tenant=tenant) as client:
            if prepare or params:
                statement = await client.prepare(sql, database=database)
                return await client.execute(statement, params or [], database=database)
            return await client.query(sql, database=database)

    return asyncio.run(go())
