"""The command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import load_database, main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(
        json.dumps(
            {
                "schema": {"R": ["A"], "S": ["A"]},
                "tables": {"R": [[1], [None]], "S": [[None]]},
            }
        )
    )
    return str(path)


def test_load_database(db_file):
    from repro.core import NULL

    db = load_database(db_file)
    assert db.schema.attributes("R") == ("A",)
    assert db.table("R").multiplicity((NULL,)) == 1
    assert db.table("S").multiplicity((NULL,)) == 1


def test_run_command(db_file, capsys):
    code = main(["run", "SELECT R.A FROM R EXCEPT SELECT S.A FROM S", "-d", db_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "annotated:" in out
    assert "| 1" in out


def test_run_command_postgres_dialect(db_file, capsys):
    code = main(
        [
            "run",
            "SELECT * FROM (SELECT R.A, R.A FROM R) AS T",
            "-d",
            db_file,
            "--dialect",
            "postgres",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("A") >= 2


def test_translate_command(db_file, capsys):
    code = main(
        ["translate", "SELECT R.A FROM R WHERE R.A = 1", "-d", db_file]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "SQL-RA" in out
    assert "σ" in out


def test_translate_pure(db_file, capsys):
    code = main(
        [
            "translate",
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            "-d",
            db_file,
            "--pure",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pure relational algebra" in out
    assert "∈" not in out  # desugared


def test_two_valued_command(db_file, capsys):
    code = main(
        [
            "two-valued",
            "SELECT DISTINCT R.A FROM R WHERE R.A NOT IN (SELECT S.A FROM S)",
            "-d",
            db_file,
            "--equality",
            "conflating",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "NOT EXISTS" in out
    assert "IS NULL" in out


def test_two_valued_syntactic(db_file, capsys):
    code = main(
        [
            "two-valued",
            "SELECT R.A FROM R WHERE R.A = 1",
            "-d",
            db_file,
            "--equality",
            "syntactic",
        ]
    )
    assert code == 0
    assert "IS NOT NULL" in capsys.readouterr().out


def test_validate_command(capsys):
    code = main(["validate", "--trials", "15", "--variants", "postgres"])
    assert code == 0
    out = capsys.readouterr().out
    assert "postgres" in out
    assert "100.0000%" in out


def test_generate_command(capsys):
    code = main(["generate", "--count", "3", "--seed", "11"])
    assert code == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 3
    assert all(line.endswith(";") for line in out)


def test_generate_oracle_dialect(capsys):
    code = main(["generate", "--count", "5", "--seed", "2", "--dialect", "oracle"])
    assert code == 0
    assert "EXCEPT" not in capsys.readouterr().out


def test_generated_queries_parse_back(capsys):
    from repro.sql import parse_query

    main(["generate", "--count", "5", "--seed", "3"])
    for line in capsys.readouterr().out.strip().splitlines():
        parse_query(line.rstrip(";"))
