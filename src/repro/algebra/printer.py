"""Pretty-printing of (SQL-)RA expressions in the paper's notation.

Renders expressions with the operator symbols of Section 5 — π, σ, ρ, ε,
×, ∪, ∩, −, plus the SQL-RA condition forms ``t̄ ∈ E`` and ``empty(E)`` —
either inline (:func:`print_expression`) or as an indented tree
(:func:`print_expression_tree`) for large desugared expressions.
"""

from __future__ import annotations

from .ast import (
    Attr,
    ConstTest,
    Dedup,
    DifferenceOp,
    Empty,
    InExpr,
    IntersectionOp,
    NullTest,
    Product,
    Projection,
    RACondition,
    RAExpr,
    RAnd,
    RATerm,
    Relation,
    Renaming,
    RFalse,
    RNot,
    ROr,
    RPredicate,
    RTrue,
    Selection,
)

__all__ = ["print_expression", "print_condition", "print_term", "print_expression_tree"]

def print_term(term: RATerm) -> str:
    from ..core.values import Null

    if isinstance(term, Attr):
        return term.name
    if isinstance(term, Null):
        return "NULL"
    if isinstance(term, str):
        return "'" + term.replace("'", "''") + "'"
    return str(term)


def print_condition(condition: RACondition) -> str:
    if isinstance(condition, RTrue):
        return "TRUE"
    if isinstance(condition, RFalse):
        return "FALSE"
    if isinstance(condition, RPredicate):
        if len(condition.args) == 2 and not condition.name.isalnum():
            left, right = condition.args
            return f"{print_term(left)} {condition.name} {print_term(right)}"
        args = ", ".join(print_term(a) for a in condition.args)
        return f"{condition.name}({args})"
    if isinstance(condition, NullTest):
        return f"null({print_term(condition.term)})"
    if isinstance(condition, ConstTest):
        return f"const({print_term(condition.term)})"
    if isinstance(condition, RAnd):
        return f"({print_condition(condition.left)} ∧ {print_condition(condition.right)})"
    if isinstance(condition, ROr):
        return f"({print_condition(condition.left)} ∨ {print_condition(condition.right)})"
    if isinstance(condition, RNot):
        return f"¬{print_condition(condition.operand)}"
    if isinstance(condition, InExpr):
        terms = ", ".join(print_term(t) for t in condition.terms)
        return f"({terms}) ∈ [{print_expression(condition.source)}]"
    if isinstance(condition, Empty):
        return f"empty([{print_expression(condition.source)}])"
    raise TypeError(f"not an RA condition: {condition!r}")


def print_expression(expr: RAExpr) -> str:
    """One-line rendering in the paper's notation."""
    from .ast import IntersectionOp, UnionOp

    if isinstance(expr, Relation):
        return expr.name
    if isinstance(expr, Projection):
        return f"π_{{{', '.join(expr.attributes)}}}({print_expression(expr.source)})"
    if isinstance(expr, Selection):
        return f"σ_{{{print_condition(expr.condition)}}}({print_expression(expr.source)})"
    if isinstance(expr, Product):
        return f"({print_expression(expr.left)} × {print_expression(expr.right)})"
    if isinstance(expr, UnionOp):
        return f"({print_expression(expr.left)} ∪ {print_expression(expr.right)})"
    if isinstance(expr, IntersectionOp):
        return f"({print_expression(expr.left)} ∩ {print_expression(expr.right)})"
    if isinstance(expr, DifferenceOp):
        return f"({print_expression(expr.left)} − {print_expression(expr.right)})"
    if isinstance(expr, Renaming):
        pairs = ", ".join(
            f"{old}→{new}" for old, new in zip(expr.old, expr.new) if old != new
        )
        if not pairs:
            return print_expression(expr.source)
        return f"ρ_{{{pairs}}}({print_expression(expr.source)})"
    if isinstance(expr, Dedup):
        return f"ε({print_expression(expr.source)})"
    raise TypeError(f"not an RA expression: {expr!r}")


def print_expression_tree(expr: RAExpr, indent: str = "") -> str:
    """Indented multi-line rendering, friendlier for desugared expressions."""
    from .ast import IntersectionOp, UnionOp

    bullet = indent + ("" if not indent else "")
    next_indent = indent + "  "
    if isinstance(expr, Relation):
        return f"{bullet}{expr.name}"
    if isinstance(expr, Projection):
        head = f"{bullet}π {', '.join(expr.attributes)}"
        return head + "\n" + print_expression_tree(expr.source, next_indent)
    if isinstance(expr, Selection):
        head = f"{bullet}σ {print_condition(expr.condition)}"
        return head + "\n" + print_expression_tree(expr.source, next_indent)
    if isinstance(expr, Renaming):
        pairs = ", ".join(
            f"{old}→{new}" for old, new in zip(expr.old, expr.new) if old != new
        )
        head = f"{bullet}ρ {pairs or '(identity)'}"
        return head + "\n" + print_expression_tree(expr.source, next_indent)
    if isinstance(expr, Dedup):
        return f"{bullet}ε\n" + print_expression_tree(expr.source, next_indent)
    symbol = {
        Product: "×",
        UnionOp: "∪",
        IntersectionOp: "∩",
        DifferenceOp: "−",
    }.get(type(expr))
    if symbol is not None:
        return (
            f"{bullet}{symbol}\n"
            + print_expression_tree(expr.left, next_indent)
            + "\n"
            + print_expression_tree(expr.right, next_indent)
        )
    raise TypeError(f"not an RA expression: {expr!r}")
