"""The always-on asyncio query service.

A stdlib-only HTTP/1.1 server (``asyncio.start_server`` — no third-party
frameworks, per the repo's dependency rule) in front of the engine:

* ``POST /prepare``   ``{sql, tenant?, database?}`` → ``{statement,
  params}``: parse + annotate once, returns an unguessable statement id
  scoped to the tenant.
* ``POST /execute``   ``{statement, params?, tenant?}``: bind parameter
  values into the frozen template, run through the tenant's engine (plan
  cache + cross-query build-side sharing), stream the result.
* ``POST /query``     ``{sql, tenant?, database?}``: the ad-hoc path —
  parse, plan and execute from scratch on an *uncached* engine.  This is
  deliberate admission policy, not a missing optimization: only prepared
  statements admit plans, so one-off queries can never churn a tenant's
  caches (and the bench's cold leg measures exactly this path).
* ``POST /load``      ``{name?, schema, tables, tenant?}``: install a
  database for a tenant (rows carry NULL as JSON null).
* ``GET /stats``, ``GET /health``.

Streaming and backpressure
--------------------------

Results stream as newline-delimited JSON objects in a chunked response:
``{"labels": …}``, then ``{"rows": [...]}`` batches of ``batch_rows``
records, then ``{"done": true, "row_count": n}``.  Each connection's
write buffer is bounded (``buffer_bytes`` high-water mark) and the
producer ``await``\\ s ``writer.drain()`` after every batch — a slow
client suspends *its own* response coroutine at the bounded buffer while
other connections keep being served.  (Rows are materialized by
``Engine.execute`` before streaming begins — the engine's result is a
bag, not a cursor — so the bound buffer governs the wire, not the
execution.)

Engine executions run synchronously on the event loop, which serializes
them: plans and build caches are mutable single-threaded structures, and
the service's concurrency lives in overlapped I/O (parse/execute of one
request proceeds while other connections stream), matching the engine's
thread-free design.  Authentication reuses the shared transport's
secret header (:mod:`repro.service.transport`).
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from .. import faults
from ..core.errors import ReproError
from ..core.schema import Database, Schema
from ..core.values import NULL
from ..engine import Engine
from .protocol import ProtocolError, row_to_json
from .registry import ServiceRegistry
from .transport import AUTH_HEADER, check_secret

__all__ = ["QueryService", "ServiceThread", "DEFAULT_TENANT"]

DEFAULT_TENANT = "public"
DEFAULT_DATABASE = "default"

#: Result records per streamed JSON batch.
DEFAULT_BATCH_ROWS = 256

#: Per-connection write-buffer high-water mark (bytes): the backpressure
#: bound — drain() suspends the producer once this much is unsent.
DEFAULT_BUFFER_BYTES = 64 * 1024

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _BadRequest(Exception):
    def __init__(
        self, message: str, status: int = 400, retry_after: Optional[int] = None
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class _StreamAbort(Exception):
    """An in-flight stream must end now (drain deadline, injected drop);
    the handler writes the error trailer so the client can tell a clean
    abort from silent truncation."""


class _CircuitBreaker:
    """Per-tenant failure breaker: trip after ``threshold`` consecutive
    server-side failures, reject with Retry-After until ``reset_s`` has
    passed, then allow one probe through (half-open)."""

    def __init__(self, threshold: int, reset_s: float):
        self.threshold = threshold
        self.reset_s = reset_s
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def retry_after(self, now: float) -> Optional[int]:
        """Seconds the caller should wait, or None when requests may pass."""
        if self.opened_at is None:
            return None
        remaining = self.reset_s - (now - self.opened_at)
        if remaining <= 0:
            # Half-open: let this request probe; one more failure re-opens.
            self.opened_at = None
            self.failures = max(0, self.threshold - 1)
            return None
        return max(1, math.ceil(remaining))

    def record(self, ok: bool, now: float) -> None:
        if ok:
            self.failures = 0
            return
        self.failures += 1
        if self.failures >= self.threshold and self.opened_at is None:
            self.opened_at = now
            self.trips += 1

    def snapshot(self, now: float) -> Dict[str, object]:
        """Read-only view for /stats (no half-open transition side effect)."""
        open_now = (
            self.opened_at is not None and (now - self.opened_at) < self.reset_s
        )
        return {"open": open_now, "failures": self.failures, "trips": self.trips}


class QueryService:
    """The service state plus its asyncio protocol handlers."""

    def __init__(
        self,
        secret: Optional[str] = None,
        dialect: str = "postgres",
        plan_cache_size: int = 256,
        plan_cache_bytes: Optional[int] = None,
        build_cache_size: int = 128,
        build_cache_bytes: Optional[int] = None,
        max_statement_bytes: Optional[int] = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        request_deadline_s: Optional[float] = None,
        max_inflight: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 30.0,
        drain_grace_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.secret = secret
        self.batch_rows = batch_rows
        self.buffer_bytes = buffer_bytes
        self.registry = ServiceRegistry(
            dialect=dialect,
            plan_cache_size=plan_cache_size,
            plan_cache_bytes=plan_cache_bytes,
            build_cache_size=build_cache_size,
            build_cache_bytes=build_cache_bytes,
            max_statement_bytes=max_statement_bytes,
        )
        self.requests = 0
        self.streams_in_flight = 0
        # -- degradation ladder -------------------------------------------
        self.request_deadline_s = request_deadline_s
        self.max_inflight = max_inflight
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.drain_grace_s = drain_grace_s
        self._clock = clock
        self._breakers: Dict[str, _CircuitBreaker] = {}
        self._inflight = 0
        self._draining = False
        self._abort_streams = False
        self.tier_fallbacks = 0
        self.deadline_timeouts = 0
        self.overload_rejections = 0
        self.breaker_rejections = 0
        self.aborted_streams = 0
        self.internal_errors = 0
        self._conn_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- databases -----------------------------------------------------------

    def install_database(
        self, db: Database, name: str = DEFAULT_DATABASE, tenant: str = DEFAULT_TENANT
    ) -> None:
        """Install a database for a tenant (also used by ``repro serve`` for
        the boot-time default)."""
        self.registry.tenant(tenant).add_database(name, db)

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def shutdown(self, drain_s: Optional[float] = None) -> None:
        """Graceful drain (the SIGTERM path): stop accepting, answer new
        requests on existing connections with 503, let in-flight work run
        to completion within the grace window, then abort stragglers — a
        cancelled stream carries its error trailer, never a silent
        mid-chunk truncation."""
        self._draining = True
        await self.stop()
        grace = self.drain_grace_s if drain_s is None else drain_s
        deadline = self._clock() + max(0.0, grace)
        while self._inflight and self._clock() < deadline:
            await asyncio.sleep(0.02)
        self._abort_streams = True
        lingering = list(self._conn_tasks)
        for task in lingering:
            task.cancel()
        if lingering:
            # Bounded: a peer that never reads must not hold up process
            # exit — its abort trailer is in the transport buffer and will
            # flush (or fail) as the socket closes in the background.
            await asyncio.wait(lingering, timeout=1.0)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        transport = writer.transport
        if transport is not None:
            transport.set_write_buffer_limits(high=self.buffer_bytes)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                self.requests += 1
                keep_alive = headers.get("connection", "keep-alive") != "close"
                writer._repro_started = False  # any response bytes sent yet?
                self._inflight += 1
                try:
                    if self._draining:
                        # Refuse new work during SIGTERM drain; in-flight
                        # streams get the grace period, new requests are
                        # told where to go instead.
                        await self._send_json(
                            writer,
                            {"error": "service is shutting down"},
                            status=503,
                            headers={"Retry-After": "1"},
                        )
                        keep_alive = False
                    elif (
                        self.max_inflight is not None
                        and self._inflight > self.max_inflight
                    ):
                        # Overload admission: shed the excess request with
                        # a clean 429 instead of queueing into collapse.
                        self.overload_rejections += 1
                        await self._send_json(
                            writer,
                            {"error": "too many in-flight requests"},
                            status=429,
                            headers={"Retry-After": "1"},
                        )
                    elif self.request_deadline_s is not None:
                        await asyncio.wait_for(
                            self._route(method, path, headers, body, writer),
                            timeout=self.request_deadline_s,
                        )
                    else:
                        await self._route(method, path, headers, body, writer)
                except _BadRequest as exc:
                    retry = getattr(exc, "retry_after", None)
                    await self._send_json(
                        writer,
                        {"error": str(exc)},
                        status=exc.status,
                        headers=(
                            {"Retry-After": str(retry)} if retry else None
                        ),
                    )
                except (ReproError, ProtocolError, ValueError, KeyError) as exc:
                    await self._send_json(
                        writer,
                        {"error": str(exc), "kind": type(exc).__name__},
                        status=400,
                    )
                except asyncio.TimeoutError:
                    # Deadline: the route coroutine was cancelled cleanly
                    # (a started stream already wrote its error trailer).
                    self.deadline_timeouts += 1
                    if not writer._repro_started:
                        await self._send_json(
                            writer,
                            {"error": "request deadline exceeded"},
                            status=503,
                            headers={"Retry-After": "1"},
                        )
                    keep_alive = False
                except ConnectionError:
                    # The peer is gone (really, or via server.disconnect):
                    # nothing to answer, the outer handler closes quietly.
                    raise
                except Exception as exc:
                    # Never die with a stack trace on the socket: even an
                    # unexpected server-side failure is a clean JSON 500
                    # (a started stream already carries its error trailer).
                    self.internal_errors += 1
                    if not writer._repro_started:
                        await self._send_json(
                            writer,
                            {"error": str(exc), "kind": type(exc).__name__},
                            status=500,
                        )
                    keep_alive = False
                finally:
                    self._inflight -= 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # The drain grace expired and shutdown() cancelled this
            # connection (a streaming response already wrote its abort
            # trailer); end quietly instead of logging cancellation noise.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        # One readuntil for the whole head: request line + headers arrive
        # in a single scan instead of a readline per header.
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if line:
                name, _sep, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        if (headers.get("transfer-encoding") or "").lower() == "chunked":
            chunks = []
            while True:
                size_line = await reader.readline()
                size = int(size_line.split(b";", 1)[0], 16)
                if size == 0:
                    while True:
                        trailer = await reader.readline()
                        if trailer in (b"\r\n", b"\n", b""):
                            break
                    break
                chunks.append(await reader.readexactly(size))
                await reader.readline()  # chunk CRLF
            body = b"".join(chunks)
        else:
            length = int(headers.get("content-length") or 0)
            if length > _MAX_BODY_BYTES:
                return None
            if length:
                body = await reader.readexactly(length)
        return method, path, headers, body

    # -- responses -----------------------------------------------------------

    _STATUS_TEXT = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
                    404: "Not Found", 409: "Conflict",
                    429: "Too Many Requests", 500: "Internal Server Error",
                    503: "Service Unavailable"}

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        payload: dict,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {self._STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"{extra}"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        writer._repro_started = True
        writer.write(head + body)
        await writer.drain()

    async def _stream_result(self, writer: asyncio.StreamWriter, labels, records) -> None:
        """Chunked newline-delimited JSON with drain-per-batch backpressure.

        The abort contract: a stream that cannot run to completion — the
        request deadline cancelled it, a SIGTERM drain ran out of grace,
        or an injected disconnect — ends with an ``{"error": …,
        "aborted": true}`` trailer line and the chunk terminator, at a
        batch boundary.  A reader therefore always sees either the
        ``done`` trailer, the error trailer, or a hard connection drop;
        never a silently short result that parses as complete.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n\r\n"
        ).encode("latin-1")
        writer._repro_started = True
        writer.write(head)
        self.streams_in_flight += 1
        try:
            # NDJSON lines coalesce into one HTTP chunk per rows batch (the
            # labels ride with the first batch, the done trailer with the
            # last), so a small result is a single chunk + terminator.
            lines: List[bytes] = [
                json.dumps({"labels": [str(l) for l in labels]}).encode()
            ]
            count = 0
            batch: List[list] = []
            for record in records:
                batch.append(row_to_json(record))
                count += 1
                if len(batch) >= self.batch_rows:
                    lines.append(json.dumps({"rows": batch}).encode())
                    batch = []
                    await self._write_chunk(writer, lines)
                    lines = []
                    if self._abort_streams:
                        raise _StreamAbort("service is shutting down")
                    if faults.fire("server.disconnect"):
                        raise faults.InjectedConnectionError(
                            "injected mid-stream disconnect"
                        )
            if batch:
                lines.append(json.dumps({"rows": batch}).encode())
            lines.append(
                json.dumps({"done": True, "row_count": count}).encode()
            )
            await self._write_chunk(writer, lines)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except asyncio.CancelledError:
            # Cancellation (deadline, or drain grace expired): finish the
            # response with the error trailer (no drain — we are being
            # cancelled) so the client sees an explicit abort, then let
            # the cancellation continue.
            self.aborted_streams += 1
            reason = (
                "service is shutting down"
                if self._abort_streams
                else "request deadline exceeded"
            )
            self._write_abort_trailer(writer, reason)
            raise
        except _StreamAbort as abort:
            self.aborted_streams += 1
            self._write_abort_trailer(writer, str(abort))
        finally:
            self.streams_in_flight -= 1

    def _write_abort_trailer(self, writer: asyncio.StreamWriter, reason: str) -> None:
        try:
            data = json.dumps({"error": reason, "aborted": True}).encode() + b"\n"
            writer.write(
                f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n0\r\n\r\n"
            )
        except (ConnectionError, OSError, RuntimeError):
            pass  # the socket is already gone; nothing cleaner to say

    async def _write_chunk(self, writer: asyncio.StreamWriter, lines: List[bytes]) -> None:
        data = b"\n".join(lines) + b"\n"
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        # The backpressure contract: suspend here whenever the connection's
        # bounded write buffer is above its high-water mark.
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(self, method, path, headers, body, writer) -> None:
        if not check_secret(headers.get(AUTH_HEADER.lower()), self.secret):
            await self._send_json(writer, {"error": "unauthorized"}, status=401)
            return
        if method == "GET" and path == "/health":
            await self._send_json(writer, {"ok": True})
            return
        if method == "GET" and path == "/stats":
            stats = self.registry.stats()
            stats["requests"] = self.requests
            stats["streams_in_flight"] = self.streams_in_flight
            now = self._clock()
            stats["degradation"] = {
                "tier_fallbacks": self.tier_fallbacks,
                "deadline_timeouts": self.deadline_timeouts,
                "overload_rejections": self.overload_rejections,
                "breaker_rejections": self.breaker_rejections,
                "aborted_streams": self.aborted_streams,
                "internal_errors": self.internal_errors,
                "draining": self._draining,
                "breakers": {
                    name: breaker.snapshot(now)
                    for name, breaker in sorted(self._breakers.items())
                },
            }
            plan = faults.current()
            stats["faults"] = plan.counts() if plan is not None else None
            await self._send_json(writer, stats)
            return
        if method != "POST":
            raise _BadRequest(f"unknown route {method} {path}", status=404)
        try:
            payload = json.loads(body.decode() or "{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"bad JSON body: {exc}")
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        tenant_name = str(payload.get("tenant") or DEFAULT_TENANT)
        if path == "/load":
            await self._send_json(writer, self._do_load(tenant_name, payload))
        elif path == "/prepare":
            await self._send_json(writer, self._do_prepare(tenant_name, payload))
        elif path == "/execute":
            await self._do_execute(tenant_name, payload, writer)
        elif path == "/query":
            await self._do_query(tenant_name, payload, writer)
        else:
            raise _BadRequest(f"unknown route {method} {path}", status=404)

    # -- route bodies --------------------------------------------------------

    def _do_load(self, tenant_name: str, payload: dict) -> dict:
        name = str(payload.get("name") or DEFAULT_DATABASE)
        schema_json = payload.get("schema")
        if not isinstance(schema_json, dict) or not schema_json:
            raise _BadRequest("'schema' must map table names to column lists")
        schema = Schema({t: tuple(cols) for t, cols in schema_json.items()})
        tables = {
            t: [
                tuple(NULL if v is None else v for v in row)
                for row in rows
            ]
            for t, rows in (payload.get("tables") or {}).items()
        }
        db = Database(schema, tables)
        self.registry.tenant(tenant_name).add_database(name, db)
        return {
            "database": name,
            "tables": {t: len(db.table(t)) for t in schema.table_names},
        }

    def _do_prepare(self, tenant_name: str, payload: dict) -> dict:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise _BadRequest("'sql' must be a non-empty string")
        database = str(payload.get("database") or DEFAULT_DATABASE)
        try:
            statement_id, statement = self.registry.prepare(
                tenant_name, sql, database
            )
        except KeyError as exc:
            raise _BadRequest(str(exc.args[0]), status=404)
        return {"statement": statement_id, "params": statement.param_count}

    def _resolve_database(self, tenant, statement, payload) -> Database:
        name = payload.get("database") or statement.database
        db = tenant.databases.get(str(name))
        if db is None:
            raise _BadRequest(f"unknown database {name!r}", status=404)
        return db

    # -- degradation ladder ----------------------------------------------------

    def _breaker_for(self, tenant_name: str) -> _CircuitBreaker:
        breaker = self._breakers.get(tenant_name)
        if breaker is None:
            breaker = self._breakers[tenant_name] = _CircuitBreaker(
                self.breaker_threshold, self.breaker_reset_s
            )
        return breaker

    def _check_breaker(self, tenant_name: str) -> None:
        """Raise a 503 + Retry-After when the tenant's breaker is open."""
        retry = self._breaker_for(tenant_name).retry_after(self._clock())
        if retry is not None:
            self.breaker_rejections += 1
            raise _BadRequest(
                f"tenant {tenant_name!r} circuit open after repeated "
                f"failures; retry in {retry}s",
                status=503,
                retry_after=retry,
            )

    def _execute_guarded(self, engine, tenant, tenant_name: str, query, db):
        """Run a query with tier fallback under the tenant's breaker.

        A failure of the *primary* (cached/compiled) tier that is not an
        expected client error is retried once on a fresh uncached engine —
        parse-to-interpretation from scratch, no shared mutable state.
        Either the retry produces the same-semantics answer (counted in
        ``tier_fallbacks``), or the request fails loudly; a wrong answer
        is never served quietly.  Consecutive hard failures trip the
        tenant's circuit breaker.
        """
        breaker = self._breaker_for(tenant_name)
        try:
            try:
                if faults.fire("server.exec_error"):
                    raise faults.InjectedCrash(
                        "injected execution failure (primary tier)"
                    )
                table = engine.execute(query, db)
            except (ReproError, ProtocolError, ValueError, KeyError):
                raise  # a client-visible 400, not a tier failure
            except Exception:
                self.tier_fallbacks += 1
                fallback = Engine(
                    db.schema,
                    tenant.dialect,
                    plan_cache_size=0,
                    build_cache_size=0,
                )
                if faults.fire("server.exec_error"):
                    raise faults.InjectedCrash(
                        "injected execution failure (fallback tier)"
                    )
                table = fallback.execute(query, db)
        except (ReproError, ProtocolError, ValueError, KeyError):
            raise
        except Exception:
            breaker.record(False, self._clock())
            raise
        breaker.record(True, self._clock())
        return table

    async def _do_execute(self, tenant_name: str, payload: dict, writer) -> None:
        statement_id = str(payload.get("statement") or "")
        statement = self.registry.lookup(tenant_name, statement_id)
        if statement is None:
            # Unknown here covers "another tenant's id" by construction:
            # lookups only ever see the requesting tenant's table.
            raise _BadRequest(f"unknown statement {statement_id!r}", status=404)
        params = payload.get("params") or []
        if not isinstance(params, list):
            raise _BadRequest("'params' must be an array")
        self._check_breaker(tenant_name)
        tenant = self.registry.tenant(tenant_name)
        db = self._resolve_database(tenant, statement, payload)
        bound = statement.bind(params)
        if faults.fire("server.slow"):
            await asyncio.sleep(0.25)
        engine = tenant.engine_for(db.schema)
        table = self._execute_guarded(engine, tenant, tenant_name, bound, db)
        statement.executions += 1
        tenant.executions += 1
        await self._stream_result(writer, table.columns, table.bag)

    async def _do_query(self, tenant_name: str, payload: dict, writer) -> None:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise _BadRequest("'sql' must be a non-empty string")
        self._check_breaker(tenant_name)
        tenant = self.registry.tenant(tenant_name)
        name = str(payload.get("database") or DEFAULT_DATABASE)
        db = tenant.databases.get(name)
        if db is None:
            raise _BadRequest(f"unknown database {name!r}", status=404)
        from ..sql import annotate

        if faults.fire("server.slow"):
            await asyncio.sleep(0.25)
        # Ad-hoc admission policy: a fresh single-use engine — parse, plan
        # and execute from scratch, no plan admitted, no cache churned.
        engine = Engine(
            db.schema,
            tenant.dialect,
            plan_cache_size=0,
            build_cache_size=0,
        )
        query = annotate(sql, db.schema)
        table = self._execute_guarded(engine, tenant, tenant_name, query, db)
        tenant.executions += 1
        await self._stream_result(writer, table.columns, table.bag)


class ServiceThread:
    """Run a :class:`QueryService` on a background event loop thread.

    The synchronous harness the benchmark and tests use: the server lives
    on its own loop; the caller gets ``url`` and drives clients from
    wherever it likes.  Context-manager protocol shuts the loop down.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self.url: Optional[str] = None

    def __enter__(self) -> "ServiceThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("query service failed to start")
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot():
            host, port = await self.service.start(self._host, self._port)
            self.url = f"http://{host}:{port}"
            self._started.set()

        self._loop.run_until_complete(boot())
        self._loop.run_forever()
        # Drain: close the listener and cancel still-open connection
        # handlers inside the loop before it is discarded.
        self._loop.run_until_complete(self.service.stop())
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    def shutdown(self, drain_s: Optional[float] = None, timeout: float = 30.0) -> None:
        """Graceful drain from the caller's thread (the SIGTERM analogue):
        blocks until in-flight streams finish or the grace expires."""
        assert self._loop is not None, "service thread is not running"
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain_s), self._loop
        )
        future.result(timeout=timeout)

    def __exit__(self, *exc) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
