"""Checkpoint corruption: torn lines, CRCs, and the strict/forgiving split.

The contract under test (ISSUE 10 satellite): a torn *final* line is the
ordinary kill-mid-write signature — tolerated everywhere, the seed
re-runs.  A torn or CRC-failing *interior* line means the file was
damaged after writing — strict readers (resume, merge) must raise
:class:`CheckpointCorruption` with the 1-indexed line number, never
silently drop completed work.
"""

import json

import pytest

from repro import faults
from repro.campaigns import (
    CHECKPOINT_SCHEMA,
    CampaignSpec,
    CheckpointCorruption,
    CheckpointWriter,
    load_checkpoint,
    merge_checkpoints,
    record_crc,
    run_campaign,
    summarize_checkpoint,
)

HEADER = {
    "schema": CHECKPOINT_SCHEMA,
    "spec": {"kind": "validation", "variant": "postgres"},
    "base_seed": 0,
    "trials": 4,
}


def write_checkpoint(path, records):
    with CheckpointWriter(str(path), HEADER, fresh=True) as writer:
        writer.write_records(records)
    return str(path)


RECORDS = [{"seed": s, "code": 1} for s in range(4)]


# -- CRC stamping --------------------------------------------------------------


def test_writer_stamps_crc_and_reader_verifies(tmp_path):
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    lines = [json.loads(l) for l in open(path).read().splitlines()]
    for payload in lines[1:]:
        stored = payload.pop("crc")
        assert stored == record_crc(payload)
    header, records = load_checkpoint(path, strict=True)
    assert header["schema"] == CHECKPOINT_SCHEMA
    assert records == RECORDS  # crc is stripped on read


def test_records_without_crc_still_accepted(tmp_path):
    """Pre-CRC checkpoints (no ``crc`` key) must keep loading."""
    path = str(tmp_path / "old.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps(HEADER) + "\n")
        for record in RECORDS:
            handle.write(json.dumps(record) + "\n")
    _header, records = load_checkpoint(path, strict=True)
    assert records == RECORDS


# -- torn final line: tolerated ------------------------------------------------


@pytest.mark.parametrize("strict", [False, True])
def test_torn_final_line_is_dropped_not_fatal(tmp_path, strict):
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    faults.tear_final_line(path)
    _header, records = load_checkpoint(path, strict=strict)
    assert records == RECORDS[:-1]  # the torn seed simply re-runs


def test_unterminated_but_parseable_final_line_is_still_dropped(tmp_path):
    """A final line without its newline is torn *by definition* — even if
    the fragment parses — so readers agree with the writer's
    truncate-on-append repair."""
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    with open(path, "rb+") as handle:
        handle.seek(-1, 2)
        assert handle.read(1) == b"\n"
        handle.seek(-1, 2)
        handle.truncate()  # drop just the newline: content intact
    _header, records = load_checkpoint(path, strict=True)
    assert records == RECORDS[:-1]


# -- interior damage: strict raises, forgiving skips ---------------------------


def test_interior_torn_line_raises_with_line_number(tmp_path):
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    with open(path) as handle:
        lines = handle.readlines()
    lines[2] = lines[2][: len(lines[2]) // 2].rstrip("\n") + "\n"  # tear line 3
    with open(path, "w") as handle:
        handle.writelines(lines)
    with pytest.raises(CheckpointCorruption) as excinfo:
        load_checkpoint(path, strict=True)
    assert excinfo.value.line_number == 3
    assert excinfo.value.path == path
    # Forgiving mode (live progress polling) skips it.
    _header, records = load_checkpoint(path, strict=False)
    assert records == [RECORDS[0]] + RECORDS[2:]


def test_interior_bit_flip_fails_crc_in_strict_mode(tmp_path):
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    faults.flip_bit(path, line_number=3)
    with pytest.raises(CheckpointCorruption) as excinfo:
        load_checkpoint(path, strict=True)
    assert excinfo.value.line_number == 3
    assert "CRC" in excinfo.value.reason or "unparsable" in excinfo.value.reason
    _header, forgiving = load_checkpoint(path, strict=False)
    assert len(forgiving) < len(RECORDS)


def test_merge_is_strict_about_interior_corruption(tmp_path):
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    faults.flip_bit(path, line_number=2)
    with pytest.raises(CheckpointCorruption):
        merge_checkpoints([path])


def test_summarize_strict_flag_propagates(tmp_path):
    path = write_checkpoint(tmp_path / "c.jsonl", RECORDS)
    faults.flip_bit(path, line_number=2)
    summarize_checkpoint(path)  # forgiving default still summarizes
    with pytest.raises(CheckpointCorruption):
        summarize_checkpoint(path, strict=True)


# -- resume over damage --------------------------------------------------------

SPEC = CampaignSpec(kind="validation", variant="postgres", rows=3)


def test_resume_tolerates_torn_final_line_and_matches_serial(tmp_path):
    reference = run_campaign(SPEC, trials=12, jobs=1).outcome_digest
    path = str(tmp_path / "c.jsonl")
    run_campaign(SPEC, trials=8, jobs=1, checkpoint=path)
    faults.tear_final_line(path)
    result = run_campaign(SPEC, trials=12, jobs=1, checkpoint=path, resume=True)
    assert result.outcome_digest == reference
    # The torn seed was re-run, not lost: the resumed file is complete.
    _header, records = load_checkpoint(path, strict=True)
    assert sorted(r["seed"] for r in records) == list(range(12))


def test_resume_refuses_interior_corruption(tmp_path):
    path = str(tmp_path / "c.jsonl")
    run_campaign(SPEC, trials=8, jobs=1, checkpoint=path)
    faults.flip_bit(path, line_number=4)
    with pytest.raises(CheckpointCorruption):
        run_campaign(SPEC, trials=12, jobs=1, checkpoint=path, resume=True)


# -- injected torn writes ------------------------------------------------------


def test_injected_torn_write_is_repaired_on_next_write(tmp_path):
    path = str(tmp_path / "c.jsonl")
    writer = CheckpointWriter(path, HEADER, fresh=True)
    plan = faults.FaultPlan(0, {"checkpoint.torn": 1.0}, limits={"checkpoint.torn": 1})
    with faults.active(plan):
        with pytest.raises(faults.InjectedCrash):
            writer.write_records(RECORDS[:2])
        # The file now ends mid-line, exactly like a kill mid-write.
        assert not open(path, "rb").read().endswith(b"\n")
        writer.write_records(RECORDS[2:])  # repairs the tear, replays batch
    writer.close()
    _header, records = load_checkpoint(path, strict=True)
    assert records == RECORDS
    assert plan.injected == {"checkpoint.torn": 1}


def test_injected_torn_write_without_repair_reads_as_torn_final(tmp_path):
    """If the process really dies on the torn write, the file is a normal
    kill-mid-write checkpoint: strict readers accept it minus the torn
    line, and append-mode writers truncate the fragment away."""
    path = str(tmp_path / "c.jsonl")
    writer = CheckpointWriter(path, HEADER, fresh=True)
    plan = faults.FaultPlan(0, {"checkpoint.torn": 1.0}, limits={"checkpoint.torn": 1})
    with faults.active(plan):
        with pytest.raises(faults.InjectedCrash):
            writer.write_records(RECORDS)
    writer._handle.close()  # simulate the crash: no close() repair
    _header, records = load_checkpoint(path, strict=True)
    assert records == RECORDS[:-1]
    # A successor process appends cleanly over the repaired file.
    with CheckpointWriter(path, HEADER, fresh=False) as successor:
        successor.write_records(RECORDS[-1:])
    _header, records = load_checkpoint(path, strict=True)
    assert records == RECORDS
