"""Comparator backends: the pluggable trial logic of a campaign.

A *backend* is the per-trial comparator the execution core drives.  It owns
the heavyweight objects (schemas, semantics, engines) and exposes a single
method::

    run_trial(seed) -> record

where ``record`` is a small JSON-safe dict — the unit that crosses process
boundaries and checkpoint files::

    {"seed": <int>, "code": <1|2|3>[, "detail": <str>][, "ms": <float>]}

``ms`` is the trial's wall time in milliseconds, recorded by the built-in
backends so the aggregate can report latency percentiles; it never enters
the outcome digest (timing is machine noise, outcomes are deterministic).

Codes classify the trial outcome:

* ``CODE_AGREE`` (1) — all compared implementations coincide;
* ``CODE_AGREE_BOTH_ERROR`` (2) — agreement because every side raised the
  same classified error (the paper's Oracle-variant ambiguity case);
* ``CODE_MISMATCH`` (3) — a disagreement; ``detail`` holds a human-readable
  explanation including the offending query.

Two backends cover the repository's experiments, both thin adapters over
the existing runners (:mod:`repro.validation`):

* :class:`ValidationBackend` — the Section 4 semantics-vs-engine comparison
  (``postgres`` and ``oracle`` variants);
* :class:`DifferentialBackend` — the n-way differential harness comparing
  every implementation in the repository.

Because worker processes must construct their own backend (the objects are
not shipped across the fork/spawn boundary), campaigns are configured with
a :class:`CampaignSpec` — a flat, picklable, JSON-roundtrippable value
object with a :meth:`CampaignSpec.build` factory.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional

__all__ = [
    "CODE_AGREE",
    "CODE_AGREE_BOTH_ERROR",
    "CODE_MISMATCH",
    "CODE_CLASSIFIED",
    "CODE_NAMES",
    "CampaignSpec",
    "ValidationBackend",
    "DifferentialBackend",
    "LiveSqliteBackend",
    "RunnerBackend",
]

CODE_AGREE = 1
CODE_AGREE_BOTH_ERROR = 2
CODE_MISMATCH = 3
#: A *known, documented* dialect divergence (live-DBMS campaigns only): the
#: record carries the divergence class name in its ``"class"`` field.  Not an
#: agreement — the sides returned different results — but not a bug signal
#: either; CI gates on unclassified mismatches, never on this code.
CODE_CLASSIFIED = 4

CODE_NAMES = {
    CODE_AGREE: "agree",
    CODE_AGREE_BOTH_ERROR: "agree-both-error",
    CODE_MISMATCH: "mismatch",
    CODE_CLASSIFIED: "classified-divergence",
}

KINDS = ("validation", "differential", "live-sqlite")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to rebuild a campaign's backend.

    ``kind`` selects the comparator; the remaining fields parameterize it.
    For ``validation``, ``variant`` is the paper variant (``postgres`` /
    ``oracle``) and ``tables`` sizes the R1..Rn validation schema; for
    ``differential``, ``variant`` is ignored.  ``rows`` caps the rows per
    generated trial table.

    For ``live-sqlite``, ``scenario`` is the path of the ingested database
    (SQLite file, ``.sql`` script or CSV directory — every worker re-imports
    it, so the spec stays a flat picklable value), ``variant`` is the
    dialect pairing of the repository side, and ``rows`` is the per-table
    import sample cap (``<= 0`` = unlimited).
    """

    kind: str = "validation"
    variant: str = "postgres"
    rows: int = 6
    tables: Optional[int] = None
    scenario: Optional[str] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown campaign kind {self.kind!r}; expected {KINDS}")
        if self.kind == "live-sqlite" and not self.scenario:
            raise ValueError("live-sqlite campaigns need a scenario path")

    @property
    def label(self) -> str:
        """The report label: the variant for validation, the kind otherwise."""
        if self.kind == "validation":
            return self.variant
        if self.kind == "live-sqlite":
            return f"live-sqlite[{self.variant}]"
        return self.kind

    def build(self):
        """Construct the backend this spec describes (called per worker)."""
        from ..core.schema import validation_schema
        from ..generator.datafiller import DataFillerConfig
        from ..validation.differential import DifferentialRunner
        from ..validation.runner import ValidationRunner

        if self.kind == "live-sqlite":
            from ..ingest.importer import import_scenario
            from ..validation.live import LiveSqliteRunner

            sample = self.rows if self.rows > 0 else 0
            imported = import_scenario(self.scenario, sample_rows=sample)
            return LiveSqliteBackend(
                LiveSqliteRunner(imported, variant=self.variant)
            )
        data_config = DataFillerConfig(max_rows=self.rows)
        if self.kind == "validation":
            schema = (
                validation_schema(self.tables) if self.tables is not None else None
            )
            return ValidationBackend(
                ValidationRunner(
                    schema=schema, variant=self.variant, data_config=data_config
                )
            )
        schema = validation_schema(self.tables) if self.tables is not None else None
        return DifferentialBackend(
            DifferentialRunner(schema=schema, data_config=data_config)
        )

    def to_json(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CampaignSpec":
        return cls(**payload)


class ValidationBackend:
    """Section 4 comparator: formal semantics vs reference engine."""

    def __init__(self, runner):
        self.runner = runner

    @property
    def label(self) -> str:
        return self.runner.variant

    def run_trial(self, seed: int) -> Dict[str, object]:
        started = time.perf_counter()
        result = self.runner.run_trial(seed)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if result.agreed:
            code = CODE_AGREE_BOTH_ERROR if result.both_errored else CODE_AGREE
            return {"seed": seed, "code": code, "ms": round(elapsed_ms, 3)}
        return {
            "seed": seed,
            "code": CODE_MISMATCH,
            "detail": self.runner.explain(result),
            "ms": round(elapsed_ms, 3),
        }


class DifferentialBackend:
    """n-way comparator: every implementation against the formal semantics."""

    def __init__(self, runner):
        self.runner = runner

    label = "differential"

    def run_trial(self, seed: int) -> Dict[str, object]:
        started = time.perf_counter()
        results = self.runner.run_trial(seed)
        reference = results["semantics"]
        mismatched = [
            name for name, table in results.items() if not table.same_as(reference)
        ]
        elapsed_ms = round((time.perf_counter() - started) * 1e3, 3)
        if mismatched:
            return {
                "seed": seed,
                "code": CODE_MISMATCH,
                "detail": f"{', '.join(mismatched)} disagree with the semantics",
                "ms": elapsed_ms,
            }
        return {"seed": seed, "code": CODE_AGREE, "ms": elapsed_ms}


class LiveSqliteBackend:
    """Live-DBMS comparator: repository implementations vs stdlib SQLite.

    The runner (:class:`repro.validation.live.LiveSqliteRunner`) already
    emits campaign records — including ``CODE_CLASSIFIED`` with the
    divergence class — so this adapter only forwards and labels.
    """

    def __init__(self, runner):
        self.runner = runner

    @property
    def label(self) -> str:
        return self.runner.label

    def run_trial(self, seed: int) -> Dict[str, object]:
        return self.runner.run_trial(seed)


class RunnerBackend:
    """Adapter for an arbitrary in-process trial function (serial only).

    Wraps any ``seed -> record`` callable so custom comparators can use the
    campaign core without defining a spec; such backends cannot be rebuilt
    in worker processes, so :func:`repro.campaigns.run_campaign` restricts
    them to ``jobs=1``.
    """

    def __init__(self, trial_fn, label: str = "custom"):
        self._trial_fn = trial_fn
        self.label = label

    def run_trial(self, seed: int) -> Dict[str, object]:
        return self._trial_fn(seed)
