"""Figure 7: set and bag flavours of UNION, INTERSECT, EXCEPT."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import ArityMismatchError
from repro.semantics import SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A",), "W": ("A", "B")})


@pytest.fixture
def db(schema):
    return Database(
        schema,
        {
            "R": [(1,), (1,), (2,), (NULL,)],
            "S": [(1,), (2,), (2,), (NULL,), (NULL,)],
            "W": [(1, 2)],
        },
    )


def run(schema, db, text):
    return SqlSemantics(schema).run(annotate(text, schema), db)


def q(text):
    return text


def test_union_all_adds(schema, db):
    t = run(schema, db, "SELECT R.A FROM R UNION ALL SELECT S.A FROM S")
    assert t.multiplicity((1,)) == 3
    assert t.multiplicity((2,)) == 3
    assert t.multiplicity((NULL,)) == 3


def test_union_dedups(schema, db):
    t = run(schema, db, "SELECT R.A FROM R UNION SELECT S.A FROM S")
    assert sorted(t.bag, key=repr) == [(1,), (2,), (NULL,)]


def test_intersect_all_min(schema, db):
    t = run(schema, db, "SELECT R.A FROM R INTERSECT ALL SELECT S.A FROM S")
    assert t.multiplicity((1,)) == 1
    assert t.multiplicity((2,)) == 1
    assert t.multiplicity((NULL,)) == 1


def test_intersect_dedups(schema, db):
    t = run(schema, db, "SELECT R.A FROM R INTERSECT SELECT S.A FROM S")
    assert len(t) == 3


def test_except_all_truncated_subtraction(schema, db):
    t = run(schema, db, "SELECT R.A FROM R EXCEPT ALL SELECT S.A FROM S")
    assert t.multiplicity((1,)) == 1
    assert t.multiplicity((2,)) == 0
    assert t.multiplicity((NULL,)) == 0


def test_except_is_dedup_left_minus_right():
    """Figure 7's subtlety: Q1 EXCEPT Q2 = ε(⟦Q1⟧) − ⟦Q2⟧ — the right side is
    NOT deduplicated, so a single right occurrence cancels the deduped left."""
    schema = Schema({"R": ("A",), "S": ("A",)})
    db = Database(schema, {"R": [(1,), (1,), (2,)], "S": [(2,), (2,)]})
    t = SqlSemantics(schema).run(
        annotate("SELECT R.A FROM R EXCEPT SELECT S.A FROM S", schema), db
    )
    assert sorted(t.bag) == [(1,)]
    # And ε(Q1) − Q2 differs from ε(Q1 EXCEPT ALL Q2) on this instance:
    t_all = SqlSemantics(schema).run(
        annotate(
            "SELECT DISTINCT * FROM (SELECT R.A FROM R EXCEPT ALL SELECT S.A FROM S) AS T",
            schema,
        ),
        db,
    )
    assert sorted(t_all.bag) == [(1,)]
    db2 = Database(schema, {"R": [(1,), (1,)], "S": [(1,)]})
    left = SqlSemantics(schema).run(
        annotate("SELECT R.A FROM R EXCEPT SELECT S.A FROM S", schema), db2
    )
    assert left.is_empty()  # ε{1,1} − {1} = ∅
    right = SqlSemantics(schema).run(
        annotate("SELECT R.A FROM R EXCEPT ALL SELECT S.A FROM S", schema), db2
    )
    assert sorted(right.bag) == [(1,)]  # {1,1} − {1} = {1}


def test_nulls_match_syntactically_in_set_ops(schema, db):
    """Set operations treat NULL = NULL as the same value (Section 1)."""
    t = run(schema, db, "SELECT R.A FROM R INTERSECT SELECT S.A FROM S")
    assert t.multiplicity((NULL,)) == 1


def test_labels_come_from_left(schema, db):
    t = run(schema, db, "SELECT R.A AS X FROM R UNION SELECT S.A AS Y FROM S")
    assert t.columns == ("X",)


def test_arity_mismatch(schema, db):
    with pytest.raises(ArityMismatchError):
        run(schema, db, "SELECT R.A FROM R UNION SELECT W.A, W.B FROM W")


def test_nested_set_ops(schema, db):
    t = run(
        schema,
        db,
        "SELECT R.A FROM R UNION ALL SELECT S.A FROM S "
        "EXCEPT ALL SELECT R.A FROM R",
    )
    # (R ⊎ S) − R: multiplicities (1,2,NULL) = (3,3,3) − (2,1,1) = (1,2,2)
    assert t.multiplicity((1,)) == 1
    assert t.multiplicity((2,)) == 2
    assert t.multiplicity((NULL,)) == 2


def test_set_op_as_subquery_in_from(schema, db):
    t = run(
        schema,
        db,
        "SELECT U.A FROM (SELECT R.A FROM R UNION SELECT S.A FROM S) AS U "
        "WHERE U.A IS NOT NULL",
    )
    assert sorted(t.bag) == [(1,), (2,)]


def test_set_op_in_in_subquery(schema, db):
    t = run(
        schema,
        db,
        "SELECT W.A FROM W WHERE W.B IN "
        "(SELECT R.A FROM R UNION ALL SELECT S.A FROM S)",
    )
    assert sorted(t.bag) == [(1,)]
