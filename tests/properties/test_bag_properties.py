"""Property-based tests (hypothesis): the bag algebra of Section 3.

Every property here is a direct consequence of the defining multiplicity
equations, checked on arbitrary bags of small records (including NULLs —
record equality is syntactic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bag import Bag
from repro.core.values import NULL

values = st.one_of(st.integers(min_value=0, max_value=3), st.just(NULL))
records = st.tuples(values, values)
bags = st.lists(records, max_size=12).map(Bag)
record_samples = records


@given(bags, bags, record_samples)
def test_union_multiplicity_equation(a, b, r):
    assert a.union(b).multiplicity(r) == a.multiplicity(r) + b.multiplicity(r)


@given(bags, bags, record_samples)
def test_intersection_multiplicity_equation(a, b, r):
    assert a.intersection(b).multiplicity(r) == min(
        a.multiplicity(r), b.multiplicity(r)
    )


@given(bags, bags, record_samples)
def test_difference_multiplicity_equation(a, b, r):
    assert a.difference(b).multiplicity(r) == max(
        a.multiplicity(r) - b.multiplicity(r), 0
    )


@given(bags, record_samples)
def test_dedup_multiplicity_equation(a, r):
    assert a.distinct_bag().multiplicity(r) == min(a.multiplicity(r), 1)


@given(bags, bags, record_samples, record_samples)
def test_product_multiplicity_equation(a, b, r, s):
    assert a.product(b).multiplicity(r + s) == a.multiplicity(r) * b.multiplicity(s)


@given(bags, bags)
def test_union_commutes(a, b):
    assert a.union(b) == b.union(a)


@given(bags, bags)
def test_intersection_commutes(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(bags, bags, bags)
def test_union_associates(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(bags, bags)
def test_intersection_via_double_difference(a, b):
    assert a.intersection(b) == a.difference(a.difference(b))


@given(bags)
def test_difference_with_self_empty(a):
    assert a.difference(a).is_empty()


@given(bags, bags)
def test_difference_then_add_back_bounds(a, b):
    """(a − b) ∪ (a ∩ b) = a for bags."""
    assert a.difference(b).union(a.intersection(b)) == a


@given(bags)
def test_dedup_idempotent(a):
    assert a.distinct_bag().distinct_bag() == a.distinct_bag()


@given(bags, bags)
def test_dedup_distributes_over_union_as_set_union(a, b):
    """ε(a ∪ b) = ε(ε(a) ∪ ε(b))."""
    assert a.union(b).distinct_bag() == a.distinct_bag().union(
        b.distinct_bag()
    ).distinct_bag()


@given(bags)
def test_length_is_sum_of_multiplicities(a):
    assert len(a) == sum(a.counts().values())


@given(bags)
def test_iteration_matches_counts(a):
    seen = {}
    for record in a:
        seen[record] = seen.get(record, 0) + 1
    assert seen == dict(a.counts())


@given(bags, bags)
@settings(max_examples=50)
def test_except_set_flavor_equals_epsilon_of_all_iff_right_dedup(a, b):
    """ε(a) − b = ε(a) − ε(b) (a set minus a bag ignores right multiplicities
    beyond one — the Figure 7 EXCEPT subtlety)."""
    left = a.distinct_bag().difference(b)
    right = a.distinct_bag().difference(b.distinct_bag())
    assert left == right
