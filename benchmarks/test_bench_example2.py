"""Experiment E2 (Example 2): dialect-divergent SELECT * behaviour.

Paper claim: ``SELECT * FROM (SELECT R.A, R.A FROM R) AS T`` is accepted by
PostgreSQL but fails to compile on some commercial systems (Oracle); the
same subquery *under EXISTS* is accepted everywhere.  No single semantics
accounts for all systems — hence the two adjusted variants.
"""

from repro.core import NULL, Database, Schema
from repro.core.errors import AmbiguousReferenceError, ReproError
from repro.engine import Engine
from repro.semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from repro.sql import annotate, check_query
from repro.validation.report import format_table

from .conftest import print_banner

STANDALONE = "SELECT * FROM (SELECT R.A, R.A FROM R) AS T"
NESTED = (
    "SELECT * FROM R WHERE EXISTS (SELECT * FROM (SELECT R.A, R.A FROM R) AS T)"
)


def outcome(fn):
    try:
        table = fn()
        return f"ok ({len(table)} rows)"
    except AmbiguousReferenceError:
        return "error: ambiguous"
    except ReproError as exc:  # pragma: no cover
        return f"error: {type(exc).__name__}"


def run_example2():
    schema = Schema({"R": ("A",)})
    db = Database(schema, {"R": [(1,), (NULL,)]})
    queries = {"standalone": STANDALONE, "under EXISTS": NESTED}
    rows = []
    for label, text in queries.items():
        q = annotate(text, schema)

        def run_semantics(style, star):
            check_query(q, schema, star_style=style)
            return SqlSemantics(schema, star_style=star).run(q, db)

        rows.append(
            (
                label,
                outcome(lambda: run_semantics("standard", STAR_STANDARD)),
                outcome(lambda: run_semantics("compositional", STAR_COMPOSITIONAL)),
                outcome(lambda: Engine(schema, "oracle").execute(q, db)),
                outcome(lambda: Engine(schema, "postgres").execute(q, db)),
            )
        )
    return rows


def test_bench_example2(benchmark):
    rows = benchmark.pedantic(run_example2, rounds=1, iterations=1)
    print_banner(
        "E2 — Example 2: SELECT * over duplicated columns "
        "(paper: PostgreSQL accepts, Oracle errors; both accept under EXISTS)"
    )
    print(
        format_table(
            ("query", "sem oracle-adj", "sem postgres-adj", "engine ora", "engine pg"),
            rows,
        )
    )
    standalone, nested = rows
    assert standalone[1] == "error: ambiguous"  # Oracle-adjusted semantics
    assert standalone[2] == "ok (2 rows)"  # PostgreSQL-adjusted semantics
    assert standalone[3] == "error: ambiguous"  # Oracle engine
    assert standalone[4] == "ok (2 rows)"  # PostgreSQL engine
    assert all(cell == "ok (2 rows)" for cell in nested[1:])
