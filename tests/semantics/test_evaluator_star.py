"""SELECT * under the standard (Figures 4–7) and compositional variants."""

import pytest

from repro.core import NULL, Database, Schema
from repro.core.errors import AmbiguousReferenceError
from repro.semantics import STAR_COMPOSITIONAL, STAR_STANDARD, SqlSemantics
from repro.sql import annotate


@pytest.fixture
def schema():
    return Schema({"R": ("A",), "S": ("A", "B")})


@pytest.fixture
def db(schema):
    return Database(schema, {"R": [(1,), (2,)], "S": [(1, NULL)]})


def test_star_expands_to_from_labels(schema, db):
    sem = SqlSemantics(schema, star_style=STAR_STANDARD)
    t = sem.run(annotate("SELECT * FROM R, S", schema), db)
    assert t.columns == ("A", "A", "B")
    assert t.multiplicity((1, 1, NULL)) == 1


def test_star_compositional_same_result_on_plain_query(schema, db):
    std = SqlSemantics(schema, star_style=STAR_STANDARD)
    comp = SqlSemantics(schema, star_style=STAR_COMPOSITIONAL)
    q = annotate("SELECT * FROM R, S WHERE R.A = S.A", schema)
    assert std.run(q, db).same_as(comp.run(q, db))


def test_star_with_distinct(schema, db):
    sem = SqlSemantics(schema)
    q = annotate("SELECT DISTINCT * FROM R, R AS R2", schema)
    t = sem.run(q, db)
    assert len(t) == 4


def test_example2_first_query_standard_errors(schema, db):
    """SELECT * FROM (SELECT R.A, R.A FROM R) AS T fails: the * forces a
    reference to the repeated full name T.A (x = 0 expansion)."""
    sem = SqlSemantics(schema, star_style=STAR_STANDARD)
    q = annotate("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", schema)
    with pytest.raises(AmbiguousReferenceError):
        sem.run(q, db)


def test_example2_first_query_compositional_works(schema, db):
    """PostgreSQL's compositional semantics returns the rows positionally."""
    sem = SqlSemantics(schema, star_style=STAR_COMPOSITIONAL)
    q = annotate("SELECT * FROM (SELECT R.A, R.A FROM R) AS T", schema)
    t = sem.run(q, db)
    assert t.columns == ("A", "A")
    assert t.multiplicity((1, 1)) == 1
    assert t.multiplicity((2, 2)) == 1


def test_example2_second_query_standard_works(schema, db):
    """Under EXISTS the same subquery is fine: * becomes a constant (x = 1)
    and outputs R whenever it is nonempty."""
    sem = SqlSemantics(schema, star_style=STAR_STANDARD)
    q = annotate(
        "SELECT * FROM R WHERE EXISTS "
        "(SELECT * FROM (SELECT R.A, R.A FROM R) AS T)",
        schema,
    )
    t = sem.run(q, db)
    assert t.columns == ("A",)
    assert len(t) == 2


def test_star_under_exists_uses_constant(schema, db):
    sem = SqlSemantics(schema, exists_constant=99, exists_label="K")
    # Evaluate the subquery directly in exists context to observe the rule.
    sub = annotate("SELECT * FROM R", schema)
    t = sem.evaluate(sub, db, exists_context=True)
    assert t.columns == ("K",)
    assert sorted(t.bag) == [(99,), (99,)]


def test_star_under_exists_constant_arbitrary(schema, db):
    """The choice of c and N is immaterial: only emptiness is observable."""
    sem1 = SqlSemantics(schema, exists_constant=1, exists_label="X")
    sem2 = SqlSemantics(schema, exists_constant=42, exists_label="Y")
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS (SELECT * FROM S WHERE S.A = R.A)", schema
    )
    assert sem1.run(q, db).same_as(sem2.run(q, db))


def test_star_in_set_op_children_expands_even_under_exists(schema, db):
    """Figure 7 evaluates set-op operands with x = 0, so a * there expands
    to the FROM labels, not to a constant."""
    sem = SqlSemantics(schema)
    q = annotate(
        "SELECT R.A FROM R WHERE EXISTS "
        "(SELECT * FROM S UNION ALL SELECT S.A, S.B FROM S)",
        schema,
    )
    t = sem.run(q, db)
    assert len(t) == 2


def test_compositional_ignores_exists_context(schema, db):
    sem = SqlSemantics(schema, star_style=STAR_COMPOSITIONAL)
    sub = annotate("SELECT * FROM R", schema)
    t = sem.evaluate(sub, db, exists_context=True)
    assert t.columns == ("A",)
    assert sorted(t.bag) == [(1,), (2,)]


def test_unknown_star_style_rejected(schema):
    with pytest.raises(ValueError):
        SqlSemantics(schema, star_style="mysql")
